//! Thin wrapper over the registry module `e16_abort` (see
//! [`bench::experiments`]): runs the full sweep and exits nonzero if
//! any structured check fails. The unified driver is
//! `cargo run --release -p bench --bin experiments`.

fn main() {
    bench::exp::run_as_bin("e16_abort", false);
}
