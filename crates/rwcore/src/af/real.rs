//! The real-atomics `A_f` reader-writer lock (Algorithm 1 of the paper).
//!
//! Line numbers in comments refer to the paper's pseudo-code. Readers are
//! statically partitioned into `f(n)` groups; each group consolidates its
//! in-passage count (`C[i]`) and waiting count (`W[i]`) in f-array
//! counters; writers serialize on the tournament mutex `WL` and handshake
//! with readers through the `(seq, opcode)` signal words `RSIG` and
//! `WSIG[i]`.

use crate::config::AfConfig;
use crate::sig::{Opcode, Signal};
use fcounter::FArray;
use std::sync::atomic::{AtomicU64, Ordering};
use wmutex::{IdMutex, TournamentLock};

/// The raw (data-less) `A_f` lock: entry/exit sections for registered
/// reader and writer process ids.
///
/// Per Theorem 18 the lock guarantees Mutual Exclusion, Bounded Exit,
/// Deadlock Freedom, Concurrent Entering and freedom from reader
/// starvation, with writer passages in `Θ(f(n))` RMRs and reader passages
/// in `Θ(log(n/f(n)))` RMRs (CC model).
///
/// # Contract
/// Each reader id in `0..cfg.readers` and writer id in `0..cfg.writers`
/// must be used by at most one thread at a time, and lock/unlock calls
/// must be properly paired. The typed [`crate::AfRwLock`] wrapper enforces
/// this with handles and guards.
///
/// A slot's passage *may* be handed between threads mid-flight — thread A
/// calls `reader_lock(i)` and thread B later calls `reader_unlock(i)` —
/// provided the handoff is synchronized (a happens-before edge from A's
/// return to B's call, and exclusion of any other use of slot `i` in
/// between). This works because the real lock, unlike the simulated one,
/// keeps no thread-local per-slot state: the f-array `add` reads its leaf
/// back from shared memory, so the exit path is position-independent.
/// [`crate::ShardedAfRwLock`] relies on this: its batch leader locks a
/// shard's slot 0 and the last batch member out unlocks it, with the
/// shard's gate word providing the synchronization.
#[derive(Debug)]
pub struct RawAfLock {
    cfg: AfConfig,
    /// Non-empty reader groups (`g ≤ f(n)`, see [`AfConfig::occupied_groups`]).
    groups: usize,
    /// `C[i]`: readers of group i currently inside a passage (line 1).
    c: Vec<FArray>,
    /// `W[i]`: readers of group i waiting to be signalled (line 1).
    w: Vec<FArray>,
    /// `WL`: the m-process writer mutex (line 2).
    wl: TournamentLock,
    /// `WSEQ`: the writer-passage sequence number (line 3).
    wseq: AtomicU64,
    /// `WSIG[i]`: group-i readers → writer signal word (line 4).
    wsig: Vec<AtomicU64>,
    /// `RSIG`: writer → readers signal word (line 4).
    rsig: AtomicU64,
}

impl RawAfLock {
    /// Build a lock for the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration has zero readers or writers.
    pub fn new(cfg: AfConfig) -> Self {
        cfg.validate();
        let groups = cfg.occupied_groups();
        RawAfLock {
            cfg,
            groups,
            c: (0..groups)
                .map(|g| FArray::new(cfg.group_population(g)))
                .collect(),
            w: (0..groups)
                .map(|g| FArray::new(cfg.group_population(g)))
                .collect(),
            wl: TournamentLock::new(cfg.writers),
            wseq: AtomicU64::new(0),
            wsig: (0..groups)
                .map(|_| AtomicU64::new(Signal::new(0, Opcode::Bot).pack()))
                .collect(),
            rsig: AtomicU64::new(Signal::new(0, Opcode::Nop).pack()),
        }
    }

    /// The lock's configuration.
    pub fn config(&self) -> &AfConfig {
        &self.cfg
    }

    /// Number of non-empty reader groups actually maintained.
    pub fn groups(&self) -> usize {
        self.groups
    }

    fn rsig(&self) -> Signal {
        Signal::unpack(self.rsig.load(Ordering::SeqCst))
    }

    fn wsig(&self, i: usize) -> Signal {
        Signal::unpack(self.wsig[i].load(Ordering::SeqCst))
    }

    /// `HelpWCS(seq)` for group `i` (lines 50–54): if every in-passage
    /// group-i reader is waiting, signal the writer it may enter the CS.
    ///
    /// **Reproduction note.** The paper's line 51 reads `C[i]` and then
    /// `W[i]`. Our model checker found a 71-step execution (n = 3, f = 1)
    /// in which the two non-atomic reads return equal values that were
    /// never simultaneously true — a reader's `C` increment lands between
    /// them — letting the writer enter the CS alongside a reader. Reading
    /// `W[i]` *first* is sound: while `WSIG[i] = <seq, WAIT>` no reader
    /// decrements `W[i]` (decrements happen only after the writer's exit
    /// changes `RSIG`), so `W` is non-decreasing across the two reads, and
    /// `C ≥ W` holds at every instant (each reader increments `C` before
    /// `W`); hence `w(t1) = c(t2)` forces `C(t2) = W(t2)` — a true
    /// instant at which every in-passage group-i reader is waiting. See
    /// DESIGN.md, "Reproduction findings".
    fn help_wcs(&self, seq: u64, i: usize) {
        let waiting = self.w[i].read();
        if self.c[i].read() == waiting {
            // Line 52: exactly one such CAS can succeed for this passage.
            let _ = self.wsig[i].compare_exchange(
                Signal::new(seq, Opcode::Wait).pack(),
                Signal::new(seq, Opcode::Cs).pack(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }

    /// Reader entry section (lines 31–38).
    ///
    /// # Panics
    /// Panics if `reader_id` is out of range.
    pub fn reader_lock(&self, reader_id: usize) {
        let slot = self.cfg.group_of(reader_id);
        let (i, leaf) = (slot.group, slot.leaf);
        self.c[i].add(leaf, 1); // line 31
        let sig = self.rsig(); // line 32
        if sig.op == Opcode::Wait {
            // lines 33–38: a writer demands we wait for its passage `sig.seq`.
            self.w[i].add(leaf, 1); // line 34
            self.help_wcs(sig.seq, i); // line 35
            let wait_word = Signal::new(sig.seq, Opcode::Wait).pack();
            while self.rsig.load(Ordering::SeqCst) == wait_word {
                std::hint::spin_loop(); // line 36 (WSEQ never repeats: ≤2 RMRs)
            }
            self.w[i].add(leaf, -1); // line 37
        }
    }

    /// Bounded reader entry: like [`RawAfLock::reader_lock`], but give up
    /// after `spins` failed re-reads of `RSIG` in the line-36 wait loop.
    /// On timeout the reader *withdraws*: it retracts its waiting count
    /// and runs the normal exit section (retracting `C[i]` and performing
    /// the exit-signal duties), so to every other process the attempt
    /// looks like a passage that never reached the CS. Returns whether
    /// the lock was acquired; after `false`, do **not** call
    /// [`RawAfLock::reader_unlock`].
    ///
    /// # Panics
    /// Panics if `reader_id` is out of range.
    pub fn try_reader_lock(&self, reader_id: usize, spins: u64) -> bool {
        let slot = self.cfg.group_of(reader_id);
        let (i, leaf) = (slot.group, slot.leaf);
        self.c[i].add(leaf, 1); // line 31
        let sig = self.rsig(); // line 32
        if sig.op == Opcode::Wait {
            self.w[i].add(leaf, 1); // line 34
            self.help_wcs(sig.seq, i); // line 35
            let wait_word = Signal::new(sig.seq, Opcode::Wait).pack();
            let mut remaining = spins;
            while self.rsig.load(Ordering::SeqCst) == wait_word {
                if remaining == 0 {
                    // Withdraw: W first (preserving the C ≥ W invariant),
                    // then the whole exit section — its helping duties
                    // make sure the writer we abandoned is not stranded.
                    self.w[i].add(leaf, -1);
                    self.reader_unlock(reader_id);
                    return false;
                }
                remaining -= 1;
                std::hint::spin_loop();
            }
            self.w[i].add(leaf, -1); // line 37
        }
        true
    }

    /// Reader exit section (lines 40–49).
    ///
    /// # Panics
    /// Panics if `reader_id` is out of range.
    pub fn reader_unlock(&self, reader_id: usize) {
        let slot = self.cfg.group_of(reader_id);
        let (i, leaf) = (slot.group, slot.leaf);
        self.c[i].add(leaf, -1); // line 40
        let sig = self.rsig(); // line 41
        match sig.op {
            Opcode::Preentry
                // lines 42–46: a writer asked to be told when C[i] hits 0.
                if self.c[i].read() == 0 => {
                    let _ = self.wsig[i].compare_exchange(
                        Signal::new(sig.seq, Opcode::Bot).pack(),
                        Signal::new(sig.seq, Opcode::Proceed).pack(),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ); // line 45
                }
            Opcode::Wait => self.help_wcs(sig.seq, i), // lines 47–48
            _ => {}
        }
    }

    /// Writer entry section (lines 6–23).
    ///
    /// # Panics
    /// Panics if `writer_id` is out of range.
    pub fn writer_lock(&self, writer_id: usize) {
        self.wl.lock(writer_id); // line 6
        let seq = self.wseq.load(Ordering::SeqCst);
        // Lines 7–9: arm WSIG[i] for this passage.
        for i in 0..self.groups {
            self.wsig[i].store(Signal::new(seq, Opcode::Bot).pack(), Ordering::SeqCst);
        }
        // Line 11: ask exiting readers to report empty groups.
        self.rsig
            .store(Signal::new(seq, Opcode::Preentry).pack(), Ordering::SeqCst);
        // Lines 12–17: verify no readers are still waiting on a previous
        // passage, group by group.
        for i in 0..self.groups {
            if self.c[i].read() > 0 {
                // line 14
                let proceed = Signal::new(seq, Opcode::Proceed);
                while self.wsig(i) != proceed {
                    std::hint::spin_loop();
                }
            }
            // line 16
            self.wsig[i].store(Signal::new(seq, Opcode::Wait).pack(), Ordering::SeqCst);
        }
        // Line 18: from now on, arriving readers wait for us.
        self.rsig
            .store(Signal::new(seq, Opcode::Wait).pack(), Ordering::SeqCst);
        // Lines 19–23: wait for in-flight readers to clear the CS.
        for i in 0..self.groups {
            if self.c[i].read() > 0 {
                // line 21
                let cs = Signal::new(seq, Opcode::Cs);
                while self.wsig(i) != cs {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Bounded writer entry: like [`RawAfLock::writer_lock`], but spend at
    /// most `spins` re-reads in any one wait loop (the `WL` tournament
    /// nodes and the two per-group signal waits). On timeout the writer
    /// withdraws; if it had already armed this passage's signals, the
    /// withdrawal runs the normal exit section — burning the abandoned
    /// epoch, since readers may already be parked on (or armed to help)
    /// its sequence number — before releasing `WL`. Returns whether the
    /// lock was acquired; after `false`, do **not** call
    /// [`RawAfLock::writer_unlock`].
    ///
    /// # Panics
    /// Panics if `writer_id` is out of range.
    pub fn try_writer_lock(&self, writer_id: usize, spins: u64) -> bool {
        if !self.wl.try_lock(writer_id, spins) {
            return false; // line 6 timed out: no signal state touched yet
        }
        let seq = self.wseq.load(Ordering::SeqCst);
        for i in 0..self.groups {
            self.wsig[i].store(Signal::new(seq, Opcode::Bot).pack(), Ordering::SeqCst);
        }
        self.rsig
            .store(Signal::new(seq, Opcode::Preentry).pack(), Ordering::SeqCst);
        for i in 0..self.groups {
            if self.c[i].read() > 0 {
                let proceed = Signal::new(seq, Opcode::Proceed);
                let mut remaining = spins;
                while self.wsig(i) != proceed {
                    if remaining == 0 {
                        self.writer_unlock(writer_id); // burn epoch `seq`
                        return false;
                    }
                    remaining -= 1;
                    std::hint::spin_loop();
                }
            }
            self.wsig[i].store(Signal::new(seq, Opcode::Wait).pack(), Ordering::SeqCst);
        }
        self.rsig
            .store(Signal::new(seq, Opcode::Wait).pack(), Ordering::SeqCst);
        for i in 0..self.groups {
            if self.c[i].read() > 0 {
                let cs = Signal::new(seq, Opcode::Cs);
                let mut remaining = spins;
                while self.wsig(i) != cs {
                    if remaining == 0 {
                        self.writer_unlock(writer_id); // burn epoch `seq`
                        return false;
                    }
                    remaining -= 1;
                    std::hint::spin_loop();
                }
            }
        }
        true
    }

    /// Writer exit section (lines 25–27).
    ///
    /// # Panics
    /// Panics if `writer_id` is out of range.
    pub fn writer_unlock(&self, writer_id: usize) {
        let seq = self.wseq.load(Ordering::SeqCst);
        self.wseq.store(seq + 1, Ordering::SeqCst); // line 25
                                                    // Line 26: release waiting readers and reset for the next passage.
        self.rsig
            .store(Signal::new(seq + 1, Opcode::Nop).pack(), Ordering::SeqCst);
        self.wl.unlock(writer_id); // line 27
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FPolicy;
    use std::sync::atomic::AtomicU64 as TestAtomic;
    use std::sync::Arc;

    /// Shared oracle state: tracks CS occupancy and checks the paper's
    /// Mutual Exclusion property on every transition.
    #[derive(Default)]
    struct Oracle {
        /// Low 32 bits: reader count; high 32 bits: writer count.
        occupancy: TestAtomic,
    }

    impl Oracle {
        fn reader_enter(&self) {
            let v = self.occupancy.fetch_add(1, Ordering::SeqCst);
            assert_eq!(v >> 32, 0, "reader entered while a writer was in the CS");
        }
        fn reader_exit(&self) {
            self.occupancy.fetch_sub(1, Ordering::SeqCst);
        }
        fn writer_enter(&self) {
            let v = self.occupancy.fetch_add(1 << 32, Ordering::SeqCst);
            assert_eq!(v, 0, "writer entered a non-empty CS (occupancy {v:#x})");
        }
        fn writer_exit(&self) {
            self.occupancy.fetch_sub(1 << 32, Ordering::SeqCst);
        }
    }

    fn stress(cfg: AfConfig, passes: u64) {
        let lock = Arc::new(RawAfLock::new(cfg));
        let oracle = Arc::new(Oracle::default());
        let mut handles = Vec::new();
        for r in 0..cfg.readers {
            let lock = Arc::clone(&lock);
            let oracle = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                for _ in 0..passes {
                    lock.reader_lock(r);
                    oracle.reader_enter();
                    oracle.reader_exit();
                    lock.reader_unlock(r);
                }
            }));
        }
        for w in 0..cfg.writers {
            let lock = Arc::clone(&lock);
            let oracle = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                for _ in 0..passes {
                    lock.writer_lock(w);
                    oracle.writer_enter();
                    oracle.writer_exit();
                    lock.writer_unlock(w);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn single_reader_single_writer() {
        stress(AfConfig::new(1, 1), 2_000);
    }

    #[test]
    fn many_readers_one_writer_all_policies() {
        for policy in FPolicy::NAMED {
            stress(
                AfConfig {
                    readers: 6,
                    writers: 1,
                    policy,
                },
                500,
            );
        }
    }

    #[test]
    fn many_readers_many_writers() {
        stress(
            AfConfig {
                readers: 6,
                writers: 3,
                policy: FPolicy::LogN,
            },
            500,
        );
    }

    #[test]
    fn groups_of_one() {
        stress(
            AfConfig {
                readers: 4,
                writers: 2,
                policy: FPolicy::Linear,
            },
            500,
        );
    }

    #[test]
    fn single_group() {
        stress(
            AfConfig {
                readers: 5,
                writers: 2,
                policy: FPolicy::One,
            },
            500,
        );
    }

    #[test]
    fn uncontended_reader_passage() {
        let lock = RawAfLock::new(AfConfig::new(4, 1));
        for _ in 0..100 {
            lock.reader_lock(2);
            lock.reader_unlock(2);
        }
    }

    #[test]
    fn uncontended_writer_passage() {
        let lock = RawAfLock::new(AfConfig::new(4, 2));
        for _ in 0..100 {
            lock.writer_lock(1);
            lock.writer_unlock(1);
        }
    }

    #[test]
    fn readers_overlap_in_cs() {
        // Two readers hold the lock simultaneously: acquire both before
        // releasing either. Deadlock here would hang the test (harness
        // timeout) — Concurrent Entering says this must complete.
        let lock = RawAfLock::new(AfConfig::new(2, 1));
        lock.reader_lock(0);
        lock.reader_lock(1);
        lock.reader_unlock(1);
        lock.reader_unlock(0);
    }

    #[test]
    fn writer_waits_for_reader() {
        let lock = Arc::new(RawAfLock::new(AfConfig::new(2, 1)));
        lock.reader_lock(0);
        let l2 = Arc::clone(&lock);
        let waited = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let w2 = Arc::clone(&waited);
        let t = std::thread::spawn(move || {
            l2.writer_lock(0);
            assert!(
                w2.load(Ordering::SeqCst),
                "writer entered before reader left"
            );
            l2.writer_unlock(0);
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        waited.store(true, Ordering::SeqCst);
        lock.reader_unlock(0);
        t.join().unwrap();
    }

    #[test]
    fn reader_waits_for_writer() {
        let lock = Arc::new(RawAfLock::new(AfConfig::new(2, 1)));
        lock.writer_lock(0);
        let l2 = Arc::clone(&lock);
        let released = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let r2 = Arc::clone(&released);
        let t = std::thread::spawn(move || {
            l2.reader_lock(1);
            assert!(
                r2.load(Ordering::SeqCst),
                "reader entered before writer left"
            );
            l2.reader_unlock(1);
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        released.store(true, Ordering::SeqCst);
        lock.writer_unlock(0);
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_reader_id_panics() {
        RawAfLock::new(AfConfig::new(2, 1)).reader_lock(2);
    }
}
