//! Real-atomics baseline reader-writer locks.
//!
//! These are the comparison points of experiment E7/E8:
//!
//! * [`CentralizedRwLock`] — the textbook single-word lock with CAS retry
//!   loops. Its reader *exit* is a CAS loop, so an adversary can charge an
//!   exiting reader `Θ(n)` RMRs (it does not satisfy Bounded Exit), which
//!   is exactly the failure mode the paper's tradeoff formalises.
//! * [`FaaRwLock`] — a read-indicator lock whose reader exit is a single
//!   fetch-and-add: `O(1)` RMRs, *escaping* the `Ω(log n)` bound by using
//!   an operation outside the read/write/CAS model (§6, Bhatt–Jayanti).
//! * [`MutexRwLock`] — treats every passage as exclusive via the
//!   tournament mutex: correct, but readers lose all parallelism.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use wmutex::{IdMutex, TournamentLock};

/// Entry/exit sections of a reader-writer lock for registered processes.
/// Implemented by the `A_f` lock and every baseline so experiments can
/// sweep implementations uniformly.
pub trait RawRwLock: Send + Sync {
    /// Reader entry section.
    fn reader_lock(&self, id: usize);
    /// Reader exit section.
    fn reader_unlock(&self, id: usize);
    /// Writer entry section.
    fn writer_lock(&self, id: usize);
    /// Writer exit section.
    fn writer_unlock(&self, id: usize);
    /// Short implementation name for bench tables.
    fn name(&self) -> &'static str;
    /// The shard count the instance actually runs with (sharded
    /// variants only; they may cap a requested count at the CPU count,
    /// and report tables surface the effective value). `None` for
    /// unsharded locks.
    fn effective_shards(&self) -> Option<usize> {
        None
    }
}

impl RawRwLock for crate::af::real::RawAfLock {
    fn reader_lock(&self, id: usize) {
        Self::reader_lock(self, id);
    }
    fn reader_unlock(&self, id: usize) {
        Self::reader_unlock(self, id);
    }
    fn writer_lock(&self, id: usize) {
        Self::writer_lock(self, id);
    }
    fn writer_unlock(&self, id: usize) {
        Self::writer_unlock(self, id);
    }
    fn name(&self) -> &'static str {
        "a_f"
    }
}

const WRITER_BIT: u64 = 1 << 62;

/// The textbook centralized reader-writer lock: one word holding a reader
/// count and a writer bit, manipulated by CAS retry loops.
///
/// Violates Bounded Exit: under contention an exiting reader's CAS can
/// fail unboundedly often — the behaviour the Theorem-5 adversary
/// amplifies in experiment E7.
#[derive(Debug, Default)]
pub struct CentralizedRwLock {
    state: AtomicU64,
}

impl CentralizedRwLock {
    /// A fresh unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RawRwLock for CentralizedRwLock {
    fn reader_lock(&self, _id: usize) {
        loop {
            let s = self.state.load(Ordering::SeqCst);
            if s & WRITER_BIT != 0 {
                std::hint::spin_loop();
                continue;
            }
            if self
                .state
                .compare_exchange(s, s + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    fn reader_unlock(&self, _id: usize) {
        loop {
            let s = self.state.load(Ordering::SeqCst);
            debug_assert!(s & !WRITER_BIT > 0, "unlock without lock");
            if self
                .state
                .compare_exchange(s, s - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    fn writer_lock(&self, _id: usize) {
        loop {
            if self
                .state
                .compare_exchange(0, WRITER_BIT, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
            std::hint::spin_loop();
        }
    }

    fn writer_unlock(&self, _id: usize) {
        self.state.store(0, Ordering::SeqCst);
    }

    fn name(&self) -> &'static str {
        "centralized-cas"
    }
}

/// A read-indicator lock whose reader exit is one fetch-and-add.
///
/// Writers serialize on a tournament mutex, raise a flag, and wait for the
/// indicator to drain; readers that see the flag back out and wait. The
/// reader exit section is a single FAA — `O(1)` RMRs regardless of
/// contention, demonstrating that the paper's lower bound is specific to
/// the read/write/CAS model.
#[derive(Debug)]
pub struct FaaRwLock {
    /// In-CS reader count (the read indicator).
    readers: AtomicI64,
    /// 1 while a writer wants or holds the CS.
    writer_flag: AtomicI64,
    /// Serializes writers.
    wl: TournamentLock,
}

impl FaaRwLock {
    /// A lock for `m` writer processes (reader ids are unbounded).
    pub fn new(writers: usize) -> Self {
        FaaRwLock {
            readers: AtomicI64::new(0),
            writer_flag: AtomicI64::new(0),
            wl: TournamentLock::new(writers),
        }
    }
}

impl RawRwLock for FaaRwLock {
    fn reader_lock(&self, _id: usize) {
        loop {
            self.readers.fetch_add(1, Ordering::SeqCst);
            if self.writer_flag.load(Ordering::SeqCst) == 0 {
                return;
            }
            // A writer is active: back out and wait for it to finish.
            self.readers.fetch_sub(1, Ordering::SeqCst);
            while self.writer_flag.load(Ordering::SeqCst) != 0 {
                std::hint::spin_loop();
            }
        }
    }

    fn reader_unlock(&self, _id: usize) {
        // The whole exit section: one FAA.
        self.readers.fetch_sub(1, Ordering::SeqCst);
    }

    fn writer_lock(&self, id: usize) {
        self.wl.lock(id);
        self.writer_flag.store(1, Ordering::SeqCst);
        while self.readers.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
    }

    fn writer_unlock(&self, id: usize) {
        self.writer_flag.store(0, Ordering::SeqCst);
        self.wl.unlock(id);
    }

    fn name(&self) -> &'static str {
        "faa-indicator"
    }
}

/// A reader-writer lock that grants every passage exclusive access through
/// one tournament mutex: readers are treated as writers.
#[derive(Debug)]
pub struct MutexRwLock {
    readers: usize,
    mutex: TournamentLock,
}

impl MutexRwLock {
    /// A lock for `n` readers and `m` writers (mutex over `n + m` ids).
    pub fn new(readers: usize, writers: usize) -> Self {
        MutexRwLock {
            readers,
            mutex: TournamentLock::new(readers + writers),
        }
    }
}

impl RawRwLock for MutexRwLock {
    fn reader_lock(&self, id: usize) {
        self.mutex.lock(id);
    }
    fn reader_unlock(&self, id: usize) {
        self.mutex.unlock(id);
    }
    fn writer_lock(&self, id: usize) {
        self.mutex.lock(self.readers + id);
    }
    fn writer_unlock(&self, id: usize) {
        self.mutex.unlock(self.readers + id);
    }
    fn name(&self) -> &'static str {
        "mutex-only"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestWord;
    use std::sync::Arc;

    fn stress(lock: Arc<dyn RawRwLock>, readers: usize, writers: usize, passes: u64) {
        // Occupancy oracle: readers in low bits, writers in high bits.
        let occ = Arc::new(TestWord::new(0));
        let mut handles = Vec::new();
        for r in 0..readers {
            let lock = Arc::clone(&lock);
            let occ = Arc::clone(&occ);
            handles.push(std::thread::spawn(move || {
                for _ in 0..passes {
                    lock.reader_lock(r);
                    let v = occ.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(v >> 32, 0, "{}: reader joined a writer", lock.name());
                    occ.fetch_sub(1, Ordering::SeqCst);
                    lock.reader_unlock(r);
                }
            }));
        }
        for w in 0..writers {
            let lock = Arc::clone(&lock);
            let occ = Arc::clone(&occ);
            handles.push(std::thread::spawn(move || {
                for _ in 0..passes {
                    lock.writer_lock(w);
                    let v = occ.fetch_add(1 << 32, Ordering::SeqCst);
                    assert_eq!(v, 0, "{}: writer joined occupants", lock.name());
                    occ.fetch_sub(1 << 32, Ordering::SeqCst);
                    lock.writer_unlock(w);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn centralized_mutual_exclusion() {
        stress(Arc::new(CentralizedRwLock::new()), 4, 2, 1_000);
    }

    #[test]
    fn faa_mutual_exclusion() {
        stress(Arc::new(FaaRwLock::new(2)), 4, 2, 1_000);
    }

    #[test]
    fn mutex_rw_mutual_exclusion() {
        stress(Arc::new(MutexRwLock::new(4, 2)), 4, 2, 500);
    }

    #[test]
    fn af_via_trait_object() {
        let cfg = crate::AfConfig::new(4, 2);
        stress(Arc::new(crate::RawAfLock::new(cfg)), 4, 2, 300);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            RawRwLock::name(&CentralizedRwLock::new()),
            RawRwLock::name(&FaaRwLock::new(1)),
            RawRwLock::name(&MutexRwLock::new(1, 1)),
            RawRwLock::name(&crate::RawAfLock::new(crate::AfConfig::new(1, 1))),
            RawRwLock::name(&crate::GatedAfLock::new(crate::AfConfig::new(1, 1))),
            RawRwLock::name(&crate::ShardedAfRwLock::new(1, 1)),
            RawRwLock::name(&crate::BusyForbiddenLock::new(1, 1)),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            names.len()
        );
    }
}
