//! E8 — real-hardware throughput: `A_f` vs baselines vs `std`/`parking_lot`.
//!
//! Each sample runs a complete multi-threaded workload (threads spawned
//! per iteration, synchronized on a barrier) and reports time per total
//! workload; divide by `Workload::total_passages()` for per-passage cost.
//! Run with `cargo bench -p bench --bench throughput`.

use bench::throughput::{contenders, run_throughput, Workload};
use criterion::{criterion_group, criterion_main, Criterion};

fn thread_budget() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

fn bench_read_heavy(c: &mut Criterion) {
    let threads = thread_budget();
    let workload = Workload {
        readers: threads.saturating_sub(1).max(1),
        writers: 1,
        reads_per_reader: 2_000,
        writes_per_writer: 200,
    };
    let mut group = c.benchmark_group(format!("read_heavy/{threads}threads"));
    group.sample_size(10);
    for lock in contenders(workload.readers, workload.writers) {
        let label = lock.label();
        group.bench_function(&label, |b| {
            b.iter(|| run_throughput(lock.clone(), workload));
        });
    }
    group.finish();
}

fn bench_mixed(c: &mut Criterion) {
    let threads = thread_budget();
    let workload = Workload {
        readers: (threads / 2).max(1),
        writers: (threads / 2).max(1),
        reads_per_reader: 1_000,
        writes_per_writer: 1_000,
    };
    let mut group = c.benchmark_group(format!("mixed/{threads}threads"));
    group.sample_size(10);
    for lock in contenders(workload.readers, workload.writers) {
        let label = lock.label();
        group.bench_function(&label, |b| {
            b.iter(|| run_throughput(lock.clone(), workload));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_read_heavy, bench_mixed);
criterion_main!(benches);
