//! Step traces: the execution fragments the knowledge formalism analyses.

use crate::op::Op;
use crate::program::{Phase, Role};
use crate::value::{ProcId, Value};
use std::fmt;

/// What happened in one scheduled step.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// A shared-memory operation was applied.
    Op {
        /// The operation.
        op: Op,
        /// The response delivered to the process.
        response: Value,
        /// Variable value before the step.
        old: Value,
        /// Variable value after the step.
        new: Value,
        /// Whether the step incurred an RMR.
        rmr: bool,
        /// Whether the step was trivial (left the value unchanged).
        trivial: bool,
    },
    /// The process left the remainder section and began its entry section.
    BeginPassage,
    /// The process left the critical section and began its exit section.
    BeginExit,
    /// The process crashed: local state and cached lines lost, program
    /// reset to the remainder section (shared memory survives).
    Crash,
    /// A system-wide crash: *every* process lost its local state and
    /// cached lines in one event (shared memory survives). Recorded once,
    /// conventionally against process 0.
    CrashAll,
    /// The process requested to abort its passage: its program switched
    /// onto the withdrawal path (it still takes steps to unwind).
    Abort,
}

/// One entry in a [`Trace`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct StepRecord {
    /// Global step index (within the `Sim`'s lifetime).
    pub index: u64,
    /// The process that took the step.
    pub proc: ProcId,
    /// The process's role.
    pub role: Role,
    /// The phase the process was in when the step was taken.
    pub phase: Phase,
    /// The action taken.
    pub kind: StepKind,
}

impl StepRecord {
    /// The operation, if this was a memory step.
    pub fn op(&self) -> Option<&Op> {
        match &self.kind {
            StepKind::Op { op, .. } => Some(op),
            _ => None,
        }
    }

    /// Whether this step incurred an RMR.
    pub fn is_rmr(&self) -> bool {
        matches!(self.kind, StepKind::Op { rmr: true, .. })
    }

    /// Whether this step was a *non-trivial* memory step.
    pub fn is_non_trivial(&self) -> bool {
        matches!(self.kind, StepKind::Op { trivial: false, .. })
    }
}

impl fmt::Display for StepRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            StepKind::Op {
                op,
                response,
                rmr,
                trivial,
                ..
            } => write!(
                f,
                "#{:<5} {} [{}/{}] {} -> {}{}{}",
                self.index,
                self.proc,
                self.role,
                self.phase,
                op,
                response,
                if *rmr { " RMR" } else { "" },
                if *trivial { " (trivial)" } else { "" },
            ),
            StepKind::BeginPassage => {
                write!(
                    f,
                    "#{:<5} {} [{}] begins passage",
                    self.index, self.proc, self.role
                )
            }
            StepKind::BeginExit => {
                write!(
                    f,
                    "#{:<5} {} [{}] leaves CS, begins exit",
                    self.index, self.proc, self.role
                )
            }
            StepKind::Crash => {
                write!(
                    f,
                    "#{:<5} {} [{}] CRASHES in {} (local state and cache lost)",
                    self.index, self.proc, self.role, self.phase
                )
            }
            StepKind::CrashAll => {
                write!(
                    f,
                    "#{:<5} SYSTEM-WIDE CRASH (every process loses local state and cache)",
                    self.index
                )
            }
            StepKind::Abort => {
                write!(
                    f,
                    "#{:<5} {} [{}] ABORTS its passage in {} (withdrawing)",
                    self.index, self.proc, self.role, self.phase
                )
            }
        }
    }
}

/// A recorded sequence of steps — an execution fragment in the paper's
/// sense, suitable for offline awareness/familiarity analysis.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    records: Vec<StepRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a record.
    pub fn push(&mut self, r: StepRecord) {
        self.records.push(r);
    }

    /// All records, in schedule order.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, StepRecord> {
        self.records.iter()
    }

    /// Total RMRs charged to `p` in this trace.
    pub fn rmrs_of(&self, p: ProcId) -> u64 {
        self.records
            .iter()
            .filter(|r| r.proc == p && r.is_rmr())
            .count() as u64
    }

    /// Total memory steps taken by `p` in this trace.
    pub fn steps_of(&self, p: ProcId) -> u64 {
        self.records
            .iter()
            .filter(|r| r.proc == p && r.op().is_some())
            .count() as u64
    }
}

/// Aggregate statistics of a [`Trace`], per process.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TraceSummary {
    /// `(memory steps, RMRs)` per process id (dense, indexed by id).
    pub per_proc: Vec<(u64, u64)>,
    /// Total memory steps.
    pub steps: u64,
    /// Total RMRs.
    pub rmrs: u64,
    /// Non-trivial steps (the ones that define familiarity, Def. 1).
    pub non_trivial: u64,
}

impl Trace {
    /// Aggregate the trace into per-process and total counts.
    pub fn summary(&self) -> TraceSummary {
        let max_proc = self.records.iter().map(|r| r.proc.0 + 1).max().unwrap_or(0);
        let mut s = TraceSummary {
            per_proc: vec![(0, 0); max_proc],
            ..Default::default()
        };
        for r in &self.records {
            if let StepKind::Op { rmr, trivial, .. } = r.kind {
                s.steps += 1;
                s.per_proc[r.proc.0].0 += 1;
                if rmr {
                    s.rmrs += 1;
                    s.per_proc[r.proc.0].1 += 1;
                }
                if !trivial {
                    s.non_trivial += 1;
                }
            }
        }
        s
    }

    /// The sub-trace of one process's steps (preserving order and the
    /// original global indices).
    pub fn of_proc(&self, p: ProcId) -> Trace {
        Trace {
            records: self
                .records
                .iter()
                .filter(|r| r.proc == p)
                .copied()
                .collect(),
        }
    }

    /// The records that accessed a given variable.
    pub fn touching(&self, var: crate::value::VarId) -> Vec<&StepRecord> {
        self.records
            .iter()
            .filter(|r| r.op().map(|o| o.var()) == Some(var))
            .collect()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a StepRecord;
    type IntoIter = std::slice::Iter<'a, StepRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl Extend<StepRecord> for Trace {
    fn extend<T: IntoIterator<Item = StepRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl FromIterator<StepRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = StepRecord>>(iter: T) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::VarId;

    fn op_record(index: u64, proc: usize, rmr: bool) -> StepRecord {
        StepRecord {
            index,
            proc: ProcId(proc),
            role: Role::Reader,
            phase: Phase::Entry,
            kind: StepKind::Op {
                op: Op::Read(VarId(0)),
                response: Value::Int(0),
                old: Value::Int(0),
                new: Value::Int(0),
                rmr,
                trivial: true,
            },
        }
    }

    #[test]
    fn rmr_and_step_counting() {
        let t: Trace = vec![
            op_record(0, 0, true),
            op_record(1, 0, false),
            op_record(2, 1, true),
            StepRecord {
                index: 3,
                proc: ProcId(0),
                role: Role::Reader,
                phase: Phase::Cs,
                kind: StepKind::BeginExit,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(t.rmrs_of(ProcId(0)), 1);
        assert_eq!(t.steps_of(ProcId(0)), 2, "transitions are not memory steps");
        assert_eq!(t.rmrs_of(ProcId(1)), 1);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn display_is_nonempty() {
        let r = op_record(0, 0, true);
        assert!(r.to_string().contains("read"));
        assert!(r.to_string().contains("RMR"));
    }

    #[test]
    fn summary_aggregates() {
        let t: Trace = vec![
            op_record(0, 0, true),
            op_record(1, 0, false),
            op_record(2, 2, true),
        ]
        .into_iter()
        .collect();
        let s = t.summary();
        assert_eq!(s.steps, 3);
        assert_eq!(s.rmrs, 2);
        assert_eq!(s.per_proc.len(), 3);
        assert_eq!(s.per_proc[0], (2, 1));
        assert_eq!(s.per_proc[2], (1, 1));
        assert_eq!(s.non_trivial, 0, "all records here are trivial reads");
    }

    #[test]
    fn of_proc_and_touching_filter() {
        let t: Trace = vec![op_record(0, 0, true), op_record(1, 1, false)]
            .into_iter()
            .collect();
        assert_eq!(t.of_proc(ProcId(0)).len(), 1);
        assert_eq!(t.of_proc(ProcId(1)).len(), 1);
        assert_eq!(t.of_proc(ProcId(9)).len(), 0);
        assert_eq!(t.touching(VarId(0)).len(), 2, "both records read v0");
        assert_eq!(t.touching(VarId(1)).len(), 0);
    }

    #[test]
    fn empty_trace_summary() {
        let s = Trace::new().summary();
        assert_eq!(s.steps, 0);
        assert!(s.per_proc.is_empty());
    }
}
