//! Pluggable visited-set backends for the explorers.
//!
//! The explorers deduplicate configurations through one [`Visited`]
//! object: the backend chooses both the **key discipline** (which
//! serialization partitions the space) and the **storage**. Two
//! orthogonal axes select a backend ([`crate::CheckConfig`]):
//!
//! * [`Symmetry`] — *what* is keyed: concrete per-slot state
//!   ([`Symmetry::Off`]), the orbit under the declared
//!   [`ccsim::SymmetryClass`]es ([`Symmetry::Quotient`]), or the
//!   pre-optimization SipHash walk kept as an independent-hash-family
//!   oracle ([`Symmetry::FullRehash`]).
//! * [`VisitedBackend`] — *how* it is stored: one hashed `u64` per
//!   state in a 64-way striped hash set ([`VisitedBackend::Hash`]), or
//!   the full canonical state **vector** in an LDD-style set store
//!   ([`VisitedBackend::Ldd`]) that prefix- and suffix-shares vectors
//!   across states, which 64-bit digests structurally cannot do.
//!
//! The LDD store is sharded 64 ways exactly like the hash sets, so
//! `explore_par` scales identically; every shard is a unified
//! append-only arena of `(value, down, right)` nodes with hash-consing
//! (node id equality ⇔ set equality) plus a bounded direct-mapped
//! memo table for the `insert`-as-union operation — the classic
//! decision-diagram computed table, with hit rates reported in
//! [`VisitedStats`].
//!
//! The same sharded storage backs the sequential explorer (where the
//! striping is simply uncontended) and the parallel one, so
//! [`Visited::stats`] reports comparable occupancy numbers in either.

use crate::VisitedBackend;
use crate::{state_key_canonical, state_key_concrete, state_key_full, Budgets, Symmetry};
use ccsim::{FxBuildHasher, FxHasher, ProcId, Sim};
use std::collections::HashSet;
use std::hash::Hasher;
use std::sync::Mutex;

/// Shard count for the striped visited set. 64 keeps the per-shard
/// mutexes essentially uncontended for any plausible worker count while
/// the selector stays a single shift.
const SHARDS: usize = 64;

/// Occupancy statistics of a visited-set backend, reported at the end of
/// an exploration in [`crate::CheckReport`]. The set only ever grows, so
/// the end-of-run numbers are also the peak.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct VisitedStats {
    /// Distinct keys stored (equals `states_explored` after a run).
    pub entries: u64,
    /// Approximate resident bytes of the backing tables. For the hash
    /// backend: allocated capacity (not occupancy) at 9 bytes per slot —
    /// an 8-byte key plus one control byte, the std hash-table layout.
    /// For the LDD backend: node arenas, unique tables, and memo tables.
    pub resident_bytes: u64,
    /// Entries in the most-occupied shard (the striping balance
    /// numerator; keys are full-avalanche hashes, so skew beyond a small
    /// factor indicates a key-function defect).
    pub shard_max: u64,
    /// Entries in the least-occupied shard.
    pub shard_min: u64,
    /// LDD only: live `(value, down, right)` nodes across all shard
    /// arenas (0 for hash backends).
    pub nodes: u64,
    /// LDD only: memoized union operations answered from the computed
    /// table.
    pub op_cache_hits: u64,
    /// LDD only: union operations that had to run.
    pub op_cache_misses: u64,
}

impl VisitedStats {
    /// Max/min shard occupancy ratio (1.0 = perfectly balanced). Returns
    /// `None` when any shard is empty — skew is meaningless before the
    /// set outgrows the shard count.
    pub fn shard_skew(&self) -> Option<f64> {
        (self.shard_min > 0).then(|| self.shard_max as f64 / self.shard_min as f64)
    }

    /// Fraction of union operations answered from the memo table
    /// (`None` for hash backends, which run no unions).
    pub fn op_cache_hit_rate(&self) -> Option<f64> {
        let total = self.op_cache_hits + self.op_cache_misses;
        (total > 0).then(|| self.op_cache_hits as f64 / total as f64)
    }
}

/// Fold per-shard occupancies into the stats' max/min fields.
fn shard_balance(stats: &mut VisitedStats, occupancies: impl Iterator<Item = u64>) {
    let (mut max, mut min) = (0u64, u64::MAX);
    for n in occupancies {
        max = max.max(n);
        min = min.min(n);
    }
    stats.shard_max = max;
    stats.shard_min = if min == u64::MAX { 0 } else { min };
}

/// A visited set striped across [`SHARDS`] mutex-protected shards,
/// selected by the key's top bits (the keys are full-avalanche hashes,
/// so any fixed bit range balances).
struct ShardedSet {
    shards: Vec<Mutex<HashSet<u64, FxBuildHasher>>>,
}

impl ShardedSet {
    fn new() -> Self {
        ShardedSet {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(HashSet::default()))
                .collect(),
        }
    }

    /// Insert `key`, returning true if it was new. The per-shard lock is
    /// held only for the probe itself.
    fn insert(&self, key: u64) -> bool {
        let shard = (key >> 58) as usize & (SHARDS - 1);
        self.shards[shard].lock().unwrap().insert(key)
    }

    fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().len() as u64)
            .sum()
    }

    fn stats(&self) -> VisitedStats {
        let mut stats = VisitedStats::default();
        let mut occupancies = [0u64; SHARDS];
        for (i, s) in self.shards.iter().enumerate() {
            let set = s.lock().unwrap();
            occupancies[i] = set.len() as u64;
            stats.entries += set.len() as u64;
            stats.resident_bytes += set.capacity() as u64 * 9;
        }
        shard_balance(&mut stats, occupancies.iter().copied());
        stats
    }
}

/// The visited-set abstraction both explorers deduplicate through: the
/// backend pairs a key discipline (which serialization partitions the
/// state space) with shared storage. Exactly-once expansion rests on
/// [`Visited::insert`] being atomic per key, which the striped mutexes
/// provide. `scratch` is a caller-owned buffer (one per explorer /
/// worker) the vector backends serialize into, keeping the hot path
/// allocation-free.
pub(crate) trait Visited: Sync {
    /// Record a configuration, returning true if it was new.
    fn insert(&self, sim: &Sim, quota: u64, budgets: Budgets, scratch: &mut Vec<u64>) -> bool;

    /// A 64-bit digest consistent with [`Visited::insert`]'s partition
    /// (up to hash collisions), for the BFS-local deduplication of the
    /// deterministic counterexample re-search.
    fn key(&self, sim: &Sim, quota: u64, budgets: Budgets, scratch: &mut Vec<u64>) -> u64;

    /// Distinct configurations stored.
    fn len(&self) -> u64;

    /// End-of-run occupancy (also the peak — the set only grows).
    fn stats(&self) -> VisitedStats;
}

/// Concrete incremental keys ([`Symmetry::Off`]).
struct Concrete(ShardedSet);

/// Canonical symmetry-quotient keys ([`Symmetry::Quotient`]).
struct Quotient(ShardedSet);

/// From-scratch SipHash oracle keys ([`Symmetry::FullRehash`]).
struct Oracle(ShardedSet);

macro_rules! impl_visited_storage {
    ($ty:ty, $keyfn:path) => {
        impl Visited for $ty {
            fn insert(&self, sim: &Sim, quota: u64, budgets: Budgets, _: &mut Vec<u64>) -> bool {
                self.0.insert($keyfn(sim, quota, budgets))
            }
            fn key(&self, sim: &Sim, quota: u64, budgets: Budgets, _: &mut Vec<u64>) -> u64 {
                $keyfn(sim, quota, budgets)
            }
            fn len(&self) -> u64 {
                self.0.len()
            }
            fn stats(&self) -> VisitedStats {
                self.0.stats()
            }
        }
    };
}

impl_visited_storage!(Concrete, state_key_concrete);
impl_visited_storage!(Quotient, state_key_canonical);
impl_visited_storage!(Oracle, state_key_full);

// ---------------------------------------------------------------------------
// LDD set store
// ---------------------------------------------------------------------------

/// Terminal: the empty set.
const LDD_FALSE: u32 = 0;
/// Terminal: the set containing (only) the empty vector — reachable
/// exactly at the end of a stored vector.
const LDD_TRUE: u32 = 1;

/// One LDD node: "vectors starting with `value` continue in `down`;
/// vectors starting with a *larger* first word are in `right`".
/// Right-chains are sorted by `value`, which (with hash-consing) makes
/// the representation canonical: node id equality ⇔ set equality.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
struct Node {
    value: u64,
    down: u32,
    right: u32,
}

/// Entries in the direct-mapped computed table per shard (the classic
/// bounded BDD/LDD op cache: exact keys, overwrite on index collision —
/// a lost entry costs a recomputation, never soundness).
const OP_CACHE_SLOTS: usize = 1 << 8;

/// Free slot marker in [`UniqueIndex`].
const UNIQUE_EMPTY: u32 = u32::MAX;

/// Open-addressed hash-consing index: a power-of-two table of arena ids
/// probed linearly. The arena itself holds the node keys, so a slot is
/// 4 bytes instead of the ~28 a `HashMap<Node, u32>` entry costs — the
/// unique table is the second-largest resident structure after the
/// arena, and the whole point of the LDD backend is resident bytes.
struct UniqueIndex {
    slots: Vec<u32>,
    len: usize,
}

impl UniqueIndex {
    fn new() -> Self {
        UniqueIndex {
            slots: vec![UNIQUE_EMPTY; 16],
            len: 0,
        }
    }

    fn hash(node: &Node) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(node.value);
        h.write_u32(node.down);
        h.write_u32(node.right);
        h.finish()
    }

    /// Return `node`'s arena id, appending it to `nodes` if absent.
    fn find_or_insert(&mut self, nodes: &mut Vec<Node>, node: Node) -> u32 {
        if (self.len + 1) * 4 >= self.slots.len() * 3 {
            self.resize(nodes, self.slots.len() * 2);
        }
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(&node) as usize & mask;
        loop {
            match self.slots[i] {
                UNIQUE_EMPTY => {
                    let id = nodes.len() as u32;
                    nodes.push(node);
                    self.slots[i] = id;
                    self.len += 1;
                    return id;
                }
                id if nodes[id as usize] == node => return id,
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Re-key every non-terminal arena node into a table of `capacity`
    /// slots (compaction remaps ids; growth re-spreads them).
    fn resize(&mut self, nodes: &[Node], capacity: usize) {
        let capacity = capacity.max(16).next_power_of_two();
        self.slots.clear();
        self.slots.resize(capacity, UNIQUE_EMPTY);
        self.len = nodes.len().saturating_sub(2);
        let mask = capacity - 1;
        for (id, node) in nodes.iter().enumerate().skip(2) {
            let mut i = Self::hash(node) as usize & mask;
            while self.slots[i] != UNIQUE_EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = id as u32;
        }
    }

    fn resident_bytes(&self) -> u64 {
        self.slots.len() as u64 * 4
    }
}

/// An (a ∪ b) → result memo slot; `a == u32::MAX` marks an empty slot.
#[derive(Copy, Clone)]
struct OpSlot {
    a: u32,
    b: u32,
    result: u32,
}

const EMPTY_SLOT: OpSlot = OpSlot {
    a: u32::MAX,
    b: u32::MAX,
    result: LDD_FALSE,
};

/// One shard of the LDD visited store: a unified append-only node arena
/// with a hash-consing unique table, the shard's current set root, and
/// the memoized-union computed table.
struct LddShard {
    /// Indices 0/1 are the [`LDD_FALSE`]/[`LDD_TRUE`] terminal dummies,
    /// so node ids are plain arena indices. Construction is bottom-up
    /// (`mk` runs after its children exist), so every node's `down` and
    /// `right` are strictly smaller than its own id — the invariant the
    /// mark-compact pass relies on.
    nodes: Vec<Node>,
    /// Hash-consing: one arena id per distinct `(value, down, right)`.
    unique: UniqueIndex,
    cache: Vec<OpSlot>,
    root: u32,
    entries: u64,
    hits: u64,
    misses: u64,
    /// Run a mark-compact pass when the arena reaches this length
    /// (insert-as-union on an immutable store strands the rebuilt
    /// right-chain spines; compaction keeps resident bytes proportional
    /// to *live* nodes).
    compact_at: usize,
}

impl LddShard {
    fn new() -> Self {
        let dummy = Node {
            value: 0,
            down: LDD_FALSE,
            right: LDD_FALSE,
        };
        LddShard {
            nodes: vec![dummy; 2],
            unique: UniqueIndex::new(),
            cache: vec![EMPTY_SLOT; OP_CACHE_SLOTS],
            root: LDD_FALSE,
            entries: 0,
            hits: 0,
            misses: 0,
            compact_at: 4096,
        }
    }

    /// Hash-cons a node.
    fn mk(&mut self, value: u64, down: u32, right: u32) -> u32 {
        let node = Node { value, down, right };
        debug_assert!(down != LDD_FALSE, "a node's down-set is never empty");
        self.unique.find_or_insert(&mut self.nodes, node)
    }

    /// The hash-consed singleton chain for `vec` (suffixes shared with
    /// every previously stored vector via the unique table).
    fn chain(&mut self, vec: &[u64]) -> u32 {
        let mut node = LDD_TRUE;
        for &v in vec.iter().rev() {
            node = self.mk(v, node, LDD_FALSE);
        }
        node
    }

    fn cache_index(a: u32, b: u32) -> usize {
        let mut h = FxHasher::default();
        h.write_u32(a);
        h.write_u32(b);
        h.finish() as usize & (OP_CACHE_SLOTS - 1)
    }

    /// `a ∪ b` where `b` is a singleton chain (every `right` is
    /// [`LDD_FALSE`]). Recursion is on `down` only — depth is the vector
    /// length — while right-chains are walked iteratively with the
    /// chain-prefix spine collected in `spine` (caller-owned scratch,
    /// truncated to its entry length on return).
    fn union1(&mut self, a: u32, b: u32, spine: &mut Vec<u32>) -> u32 {
        if a == b {
            return a;
        }
        if a == LDD_FALSE {
            return b;
        }
        if b == LDD_FALSE {
            return a;
        }
        if a == LDD_TRUE || b == LDD_TRUE {
            // One vector is a proper prefix of another. The canonical
            // serialization is a prefix code, so this can only mean the
            // world shape changed mid-run — a caller bug.
            panic!("LDD visited store: state vectors are not prefix-free");
        }
        let idx = Self::cache_index(a, b);
        let slot = self.cache[idx];
        if slot.a == a && slot.b == b {
            self.hits += 1;
            return slot.result;
        }
        self.misses += 1;
        let bn = self.nodes[b as usize];
        debug_assert_eq!(bn.right, LDD_FALSE, "b must be a singleton chain");
        let mark = spine.len();
        let mut cur = a;
        let tail = loop {
            if cur == LDD_FALSE {
                // b's value is larger than everything in the chain.
                break b;
            }
            let n = self.nodes[cur as usize];
            if n.value < bn.value {
                spine.push(cur);
                cur = n.right;
            } else if n.value == bn.value {
                let down = self.union1(n.down, bn.down, spine);
                break if down == n.down {
                    cur // already present below here: reuse the subtree
                } else {
                    self.mk(n.value, down, n.right)
                };
            } else {
                break self.mk(bn.value, bn.down, cur);
            }
        };
        let mut result = tail;
        for i in (mark..spine.len()).rev() {
            let n = self.nodes[spine[i] as usize];
            result = if n.right == result {
                spine[i] // unchanged suffix: the whole prefix is reusable
            } else {
                self.mk(n.value, n.down, result)
            };
        }
        spine.truncate(mark);
        self.cache[idx] = OpSlot { a, b, result };
        result
    }

    /// Insert `vec`, returning true if it was new. Hash-consing makes
    /// node id equality set equality, so "the union changed the root" is
    /// exactly "the vector was new".
    fn insert_vec(&mut self, vec: &[u64], spine: &mut Vec<u32>) -> bool {
        let chain = self.chain(vec);
        let new_root = self.union1(self.root, chain, spine);
        let inserted = new_root != self.root;
        self.root = new_root;
        self.entries += inserted as u64;
        if self.nodes.len() >= self.compact_at {
            self.compact();
        }
        inserted
    }

    /// Mark-compact the arena: drop nodes unreachable from the root
    /// (stranded spines of superseded right-chains), rebuild the unique
    /// table, and invalidate the computed table (its entries hold old
    /// ids). Children precede parents in the arena, so one descending
    /// mark scan and one ascending rebuild scan suffice.
    fn compact(&mut self) {
        const DEAD: u32 = u32::MAX;
        let mut remap = vec![DEAD; self.nodes.len()];
        remap[LDD_FALSE as usize] = LDD_FALSE;
        remap[LDD_TRUE as usize] = LDD_TRUE;
        remap[self.root as usize] = 0; // provisional mark
        for id in (2..self.nodes.len()).rev() {
            if remap[id] != DEAD || id as u32 == self.root {
                let n = self.nodes[id];
                remap[n.down as usize] = 0;
                remap[n.right as usize] = 0;
                remap[id] = 0;
            }
        }
        remap[LDD_FALSE as usize] = LDD_FALSE;
        remap[LDD_TRUE as usize] = LDD_TRUE;
        let mut live = Vec::with_capacity(self.nodes.len() / 2);
        live.extend_from_slice(&self.nodes[..2]);
        for id in 2..self.nodes.len() {
            if remap[id] == DEAD {
                continue;
            }
            let n = self.nodes[id];
            let node = Node {
                value: n.value,
                down: remap[n.down as usize],
                right: remap[n.right as usize],
            };
            let new_id = live.len() as u32;
            live.push(node);
            remap[id] = new_id;
        }
        self.root = remap[self.root as usize];
        self.nodes = live;
        self.unique.resize(&self.nodes, self.nodes.len() * 2);
        self.cache.fill(EMPTY_SLOT);
        self.compact_at = (self.nodes.len() * 4).max(4096);
    }

    /// Final GC before reporting: resident bytes must describe the live
    /// set structure, not transient union garbage or growth slack.
    fn compact_and_shrink(&mut self) {
        self.compact();
        self.nodes.shrink_to_fit();
    }

    fn resident_bytes(&self) -> u64 {
        // Arena nodes are 16 bytes; unique-index slots are 4-byte arena
        // ids; memo slots are 12 bytes.
        self.nodes.capacity() as u64 * 16
            + self.unique.resident_bytes()
            + self.cache.len() as u64 * 12
    }
}

/// The LDD-backed visited set: 64 shards selected by the top bits of the
/// vector's hash, exactly like [`ShardedSet`]. The key discipline
/// (concrete vs orbit) is chosen by the annotation the serialization is
/// given — see [`LddVisited::annotate`].
pub(crate) struct LddVisited {
    shards: Vec<Mutex<LddShard>>,
    /// [`Symmetry::Quotient`]: serialize orbits (index-free annotations,
    /// sorted member bundles). Off: pin every process to its slot.
    quotient: bool,
}

impl LddVisited {
    fn new(quotient: bool) -> Self {
        LddVisited {
            shards: (0..SHARDS).map(|_| Mutex::new(LddShard::new())).collect(),
            quotient,
        }
    }

    /// Serialize the configuration into `scratch` (cleared first) under
    /// this backend's key discipline, appending the remaining adversary
    /// budgets. The annotation word carries each process's exploration
    /// semantics — capped passage count and in-flight abort flag — and,
    /// in concrete mode, the process index itself, which re-pins class
    /// members to their slots (the sorted bundles then differ whenever
    /// the slots differ, exactly the concrete partition).
    fn serialize(&self, sim: &Sim, quota: u64, budgets: Budgets, scratch: &mut Vec<u64>) {
        scratch.clear();
        let quotient = self.quotient;
        let annot = |p: ProcId| {
            let base = (sim.stats(p).passages.min(quota) << 1) | sim.is_aborting(p) as u64;
            debug_assert!(base < 1 << 40, "passage quota overflows the annotation");
            if quotient {
                base
            } else {
                ((p.0 as u64 + 1) << 40) | base
            }
        };
        sim.canonical_vec_annotated(annot, scratch);
        scratch.push(budgets.crashes as u64);
        scratch.push(budgets.crash_alls as u64);
        scratch.push(budgets.aborts as u64);
    }

    /// Full-avalanche hash of the serialized vector: shard selector and
    /// the `key()` digest for the BFS re-search.
    fn hash_vec(scratch: &[u64]) -> u64 {
        let mut h = FxHasher::default();
        for &w in scratch {
            h.write_u64(w);
        }
        h.finish()
    }
}

impl Visited for LddVisited {
    fn insert(&self, sim: &Sim, quota: u64, budgets: Budgets, scratch: &mut Vec<u64>) -> bool {
        self.serialize(sim, quota, budgets, scratch);
        let hash = Self::hash_vec(scratch);
        let shard = (hash >> 58) as usize & (SHARDS - 1);
        let mut spine: Vec<u32> = Vec::with_capacity(16);
        self.shards[shard]
            .lock()
            .unwrap()
            .insert_vec(scratch, &mut spine)
    }

    fn key(&self, sim: &Sim, quota: u64, budgets: Budgets, scratch: &mut Vec<u64>) -> u64 {
        self.serialize(sim, quota, budgets, scratch);
        Self::hash_vec(scratch)
    }

    fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().unwrap().entries).sum()
    }

    fn stats(&self) -> VisitedStats {
        let mut stats = VisitedStats::default();
        let mut occupancies = [0u64; SHARDS];
        for (i, s) in self.shards.iter().enumerate() {
            let mut shard = s.lock().unwrap();
            shard.compact_and_shrink();
            occupancies[i] = shard.entries;
            stats.entries += shard.entries;
            stats.resident_bytes += shard.resident_bytes();
            stats.nodes += (shard.nodes.len() - 2) as u64;
            stats.op_cache_hits += shard.hits;
            stats.op_cache_misses += shard.misses;
        }
        shard_balance(&mut stats, occupancies.iter().copied());
        stats
    }
}

/// Construct the backend for a ([`Symmetry`], [`VisitedBackend`]) pair.
///
/// # Panics
/// Panics on [`Symmetry::FullRehash`] × [`VisitedBackend::Ldd`]: the
/// full-rehash mode *is* a hash-walk oracle — it has no vector form, and
/// silently storing hashes in the "set-based" backend would corrupt A/B
/// comparisons.
pub(crate) fn backend(symmetry: Symmetry, store: VisitedBackend) -> Box<dyn Visited> {
    match (store, symmetry) {
        (VisitedBackend::Hash, Symmetry::Off) => Box::new(Concrete(ShardedSet::new())),
        (VisitedBackend::Hash, Symmetry::Quotient) => Box::new(Quotient(ShardedSet::new())),
        (VisitedBackend::Hash, Symmetry::FullRehash) => Box::new(Oracle(ShardedSet::new())),
        (VisitedBackend::Ldd, Symmetry::Off) => Box::new(LddVisited::new(false)),
        (VisitedBackend::Ldd, Symmetry::Quotient) => Box::new(LddVisited::new(true)),
        (VisitedBackend::Ldd, Symmetry::FullRehash) => panic!(
            "VisitedBackend::Ldd requires a vector key discipline; \
             Symmetry::FullRehash is a hash-walk oracle (use Hash)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert(shard: &mut LddShard, vec: &[u64]) -> bool {
        let mut spine = Vec::new();
        shard.insert_vec(vec, &mut spine)
    }

    #[test]
    fn ldd_shard_set_semantics() {
        let mut s = LddShard::new();
        assert!(insert(&mut s, &[1, 2, 3]));
        assert!(!insert(&mut s, &[1, 2, 3]), "duplicate rejected");
        assert!(insert(&mut s, &[1, 2, 4]));
        assert!(insert(&mut s, &[0, 2, 3]));
        assert!(insert(&mut s, &[9, 9, 9]));
        assert!(!insert(&mut s, &[0, 2, 3]));
        assert_eq!(s.entries, 4);
    }

    #[test]
    fn ldd_shares_prefixes_and_suffixes() {
        // 16 vectors differing only in one middle word: the store should
        // hold far fewer than 16 full chains' worth of nodes.
        let mut s = LddShard::new();
        for i in 0..16u64 {
            let mut v = vec![7u64; 10];
            v[5] = i;
            assert!(insert(&mut s, &v));
        }
        assert_eq!(s.entries, 16);
        // Superseded right-chain spines are garbage until compaction, so
        // measure the *live* structure.
        s.compact();
        let nodes = s.nodes.len() - 2;
        // A naive trie of 16 such vectors holds 5 shared prefix nodes +
        // 16 * 5 tail nodes = 85; suffix sharing collapses the 16
        // identical tails to 4 nodes (plus the 16-way branch level).
        assert!(nodes <= 5 + 16 + 4, "nodes = {nodes}");
    }

    #[test]
    fn ldd_insert_order_is_irrelevant_to_the_set() {
        // Hash-consing + ordered chains give canonical roots: any insert
        // order of the same vectors ends at the same root id *count*
        // (ids differ across stores; set equality is tested via
        // membership).
        let vecs: Vec<Vec<u64>> = vec![vec![3, 1], vec![1, 3], vec![2, 2], vec![3, 3], vec![1, 1]];
        let mut fwd = LddShard::new();
        for v in &vecs {
            insert(&mut fwd, v);
        }
        let mut rev = LddShard::new();
        for v in vecs.iter().rev() {
            insert(&mut rev, v);
        }
        assert_eq!(fwd.entries, rev.entries);
        for v in &vecs {
            assert!(!insert(&mut fwd, v));
            assert!(!insert(&mut rev, v));
        }
    }

    #[test]
    fn ldd_compaction_preserves_the_set() {
        let mut s = LddShard::new();
        let mut vecs = Vec::new();
        for i in 0..200u64 {
            let v = vec![i % 7, i % 13, i, i % 3];
            insert(&mut s, &v);
            vecs.push(v);
        }
        let entries_before = s.entries;
        s.compact();
        assert_eq!(s.entries, entries_before);
        for v in &vecs {
            assert!(!insert(&mut s, v), "compaction lost {v:?}");
        }
        // Fresh vectors still insert cleanly post-compaction.
        assert!(insert(&mut s, &[99, 99, 99, 99]));
    }

    #[test]
    fn ldd_compaction_drops_stranded_spines() {
        let mut s = LddShard::new();
        for i in 0..500u64 {
            insert(&mut s, &[i % 5, i % 11, i, 42]);
        }
        let before = s.nodes.len();
        s.compact();
        assert!(
            s.nodes.len() < before,
            "compaction must reclaim superseded chain spines \
             ({before} -> {})",
            s.nodes.len()
        );
    }

    #[test]
    #[should_panic(expected = "prefix-free")]
    fn ldd_rejects_prefix_vectors() {
        let mut s = LddShard::new();
        insert(&mut s, &[1, 2, 3]);
        insert(&mut s, &[1, 2]);
    }

    #[test]
    fn op_cache_reports_traffic() {
        // Two distinct vectors so the root is a real branch (a singleton
        // set's root *is* the hash-consed chain, and `union1(x, x)`
        // short-circuits before touching the memo table).
        let mut s = LddShard::new();
        insert(&mut s, &[1, 9]);
        insert(&mut s, &[5, 9]);
        // First duplicate union runs and is memoized; duplicates leave
        // the root unchanged, so the second one hits the same key.
        insert(&mut s, &[5, 9]);
        assert!(s.misses > 0, "unions ran");
        insert(&mut s, &[5, 9]);
        assert!(s.hits > 0, "duplicate unions must hit the memo table");
    }
}
