//! The Lemma-2 scheduling order for a batch of expanding steps.
//!
//! Lemma 2 proves that any set of pending expanding steps can be ordered
//! so the maximum knowledge `M` grows by at most a factor of 3:
//!
//! 1. **reads first** (any order) — each reader's awareness grows to at
//!    most `AW ∪ F(v) ≤ 2M`, and no familiarity set changes;
//! 2. **then writes** (any order) — each written variable's familiarity
//!    *becomes* the writer's awareness (`≤ M`);
//! 3. **then CAS steps, grouped by variable** — per variable, the first
//!    CAS succeeds (extending `F(v)` to at most `2M`) and makes every
//!    subsequent same-variable CAS in the batch trivial, so later CAS
//!    steps only gain awareness (`≤ 3M`).
//!
//! [`order_batch`] produces exactly that order; the Theorem-5 adversary
//! releases each iteration's parked steps through it.

use ccsim::{Op, OpKind, ProcId};
use std::collections::BTreeMap;

/// Order a batch of pending `(process, operation)` steps per Lemma 2:
/// reads, then writes, then read-modify-writes grouped by variable
/// (deterministically, by variable id).
///
/// The relative order *within* the read and write classes follows the
/// input order (the lemma allows any).
pub fn order_batch(pending: &[(ProcId, Op)]) -> Vec<ProcId> {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    let mut rmw_by_var: BTreeMap<usize, Vec<ProcId>> = BTreeMap::new();
    for (p, op) in pending {
        match OpKind::from(op) {
            OpKind::Read => reads.push(*p),
            OpKind::Write => writes.push(*p),
            OpKind::Cas | OpKind::Faa => rmw_by_var.entry(op.var().0).or_default().push(*p),
        }
    }
    reads
        .into_iter()
        .chain(writes)
        .chain(rmw_by_var.into_values().flatten())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::{Value, VarId};

    fn p(i: usize) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn reads_before_writes_before_rmw() {
        let v = VarId(0);
        let batch = vec![
            (p(0), Op::cas(v, 0, 1)),
            (p(1), Op::write(v, 2)),
            (p(2), Op::Read(v)),
            (p(3), Op::Faa { var: v, delta: 1 }),
            (p(4), Op::Read(v)),
        ];
        let order = order_batch(&batch);
        assert_eq!(order, vec![p(2), p(4), p(1), p(0), p(3)]);
    }

    #[test]
    fn rmw_grouped_by_variable() {
        let (a, b) = (VarId(0), VarId(1));
        let batch = vec![
            (p(0), Op::cas(b, 0, 1)),
            (p(1), Op::cas(a, 0, 1)),
            (p(2), Op::cas(b, 0, 2)),
            (p(3), Op::cas(a, 0, 2)),
        ];
        let order = order_batch(&batch);
        // Variable a's CAS steps come first (lower id), consecutively.
        assert_eq!(order, vec![p(1), p(3), p(0), p(2)]);
    }

    #[test]
    fn empty_batch() {
        assert!(order_batch(&[]).is_empty());
    }

    #[test]
    fn all_processes_appear_exactly_once() {
        let batch: Vec<(ProcId, Op)> = (0..10)
            .map(|i| {
                let v = VarId(i % 3);
                let op = match i % 4 {
                    0 => Op::Read(v),
                    1 => Op::write(v, i as i64),
                    2 => Op::cas(v, 0, 1),
                    _ => Op::Write(v, Value::Nil),
                };
                (p(i), op)
            })
            .collect();
        let mut order = order_batch(&batch);
        order.sort();
        assert_eq!(order, (0..10).map(p).collect::<Vec<_>>());
    }
}
