//! Parallel state-space exploration: a work-sharing frontier of schedule
//! prefixes feeding N scoped worker threads.
//!
//! ## Architecture
//!
//! The unit of work is a **batched frame** ([`Job`]): a configuration
//! (an owned [`Sim`]), the schedule prefix that reaches it, and a batch
//! of candidate entries still to branch on from there. Workers run the
//! same arena-based DFS as the sequential explorer over their job; when
//! the shared queue runs low, a worker *donates* the bottom-most
//! unexplored slice of its own stack as a fresh job (the stack-slicing
//! scheme of parallel SPIN) — subtree-sized work units, handed out from
//! the root end where they are biggest.
//!
//! Deduplication goes through a [`crate::visited::Visited`] backend —
//! 64 mutex-striped shards selected by the top bits of the state key
//! (or of the state vector's hash), so concurrent inserts rarely
//! contend. The key discipline is chosen by
//! [`crate::CheckConfig::symmetry`] — concrete O(1) incremental keys,
//! symmetry-quotient canonical keys, or the full-rehash SipHash
//! baseline the perf suite measures against — and the storage by
//! [`crate::CheckConfig::backend`]: hashed digests or canonical state
//! vectors in the LDD set store.
//!
//! ## Determinism
//!
//! On a **complete** run every configuration is inserted into the
//! visited set exactly once (shard insertion is atomic), hence expanded
//! exactly once, so `states_explored` / `transitions` /
//! `crash_transitions` / `terminal_states` are identical to the
//! sequential explorer's — for any worker count — even though the visit
//! *order* is scheduler-dependent. (`max_depth_seen` is an
//! order-dependent diagnostic; see [`crate::CheckReport::counts`].)
//!
//! A violation is different: whichever worker trips it first wins the
//! race, so the *discovering* schedule is nondeterministic. Workers
//! therefore only raise a cancellation flag; the coordinator then
//! re-finds the counterexample with a sequential breadth-first,
//! entry-ordered search from the root, which returns the **lowest**
//! violating schedule — shortest, and lexicographically least in entry
//! order among the shortest — independent of worker count or timing.
//! Shrink/replay artifacts built from it are therefore reproducible.

use crate::visited::{self, Visited};
use crate::{push_entries, Budgets, CheckConfig, CheckError, CheckReport, SchedEntry, Symmetry};
use ccsim::{FxBuildHasher, Sim};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Iterations a worker waits after a failed donation attempt before
/// rescanning its stack (the scan is O(depth); failure means the stack
/// had nothing spare, which a few pushes can change).
const DONATE_COOLDOWN: u32 = 32;

/// A batched frame: one configuration plus the branch entries a worker
/// should explore from it.
struct Job {
    sim: Sim,
    /// Schedule from the root to `sim` (for depth accounting and for
    /// labelling donations; violations never use it — see module docs).
    prefix: Vec<SchedEntry>,
    entries: Vec<SchedEntry>,
    budgets: Budgets,
}

/// Per-worker counters, summed by the coordinator after the join.
#[derive(Default)]
struct Partial {
    states: u64,
    transitions: u64,
    crash_transitions: u64,
    terminal: u64,
    max_depth: usize,
}

/// State shared by the coordinator and all workers.
struct Shared<'a> {
    cfg: &'a CheckConfig,
    quota: u64,
    workers: usize,
    /// The visited-set backend for [`CheckConfig::symmetry`].
    visited: &'a dyn Visited,
    /// `cfg.symmetry == Symmetry::FullRehash`, cached: the baseline also
    /// disables the world-recycling pool.
    full: bool,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    /// Jobs queued or currently being processed. Strictly positive while
    /// any work can still be produced (a worker only pushes jobs while
    /// processing one), so `pending == 0` under the queue lock is a safe
    /// global-termination signal.
    pending: AtomicUsize,
    /// Approximate queue length, read without the lock to decide whether
    /// to donate.
    qlen: AtomicUsize,
    /// Global distinct-state counter (root included) for the
    /// `max_states` cap.
    states: AtomicU64,
    stop: AtomicBool,
    violated: AtomicBool,
    capped: AtomicBool,
}

impl Shared<'_> {
    /// Enqueue a job. Callers are either the coordinator (before workers
    /// start) or a worker mid-job, whose own pending count keeps the
    /// termination invariant safe across the increment-then-push window.
    fn push_job(&self, job: Job) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let mut q = self.queue.lock().unwrap();
        q.push_back(job);
        self.qlen.fetch_add(1, Ordering::Relaxed);
        drop(q);
        self.ready.notify_one();
    }

    /// Blocking pop: returns `None` when exploration is over (violation
    /// raised, or no queued or in-flight work remains).
    fn next_job(&self) -> Option<Job> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(job) = q.pop_front() {
                self.qlen.fetch_sub(1, Ordering::Relaxed);
                return Some(job);
            }
            if self.pending.load(Ordering::Acquire) == 0 {
                return None;
            }
            q = self.ready.wait(q).unwrap();
        }
    }

    /// Mark the worker's current job finished; wake everyone on global
    /// termination so blocked `next_job` calls can observe `pending == 0`.
    fn job_done(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.queue.lock().unwrap();
            self.ready.notify_all();
        }
    }

    /// First-violation-wins cancellation: raise the flags and wake every
    /// parked worker so the whole fleet drains promptly.
    fn flag_violation(&self) {
        self.violated.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        let _guard = self.queue.lock().unwrap();
        self.ready.notify_all();
    }
}

/// A worker-local DFS frame; identical discipline to the sequential
/// explorer (entries live in a shared arena, truncated on pop).
struct WFrame {
    sim: Sim,
    estart: usize,
    next: usize,
    eend: usize,
    chosen: Option<SchedEntry>,
    budgets: Budgets,
}

/// Donate the bottom-most unexplored slice of the stack as a job, if
/// any. Bottom frames hold the largest subtrees, so one donation moves a
/// big chunk of work; the donor keeps one entry when the only spare work
/// is on its top frame. Returns false if nothing was donatable.
fn donate(
    sh: &Shared<'_>,
    prefix: &[SchedEntry],
    stack: &mut [WFrame],
    arena: &[SchedEntry],
) -> bool {
    let Some(i) = stack.iter().position(|f| f.next < f.eend) else {
        return false;
    };
    let is_top = i == stack.len() - 1;
    let dstart = if is_top {
        if stack[i].eend - stack[i].next < 2 {
            return false; // a lone entry on the top frame: keep it
        }
        stack[i].next + 1
    } else {
        stack[i].next
    };
    let dend = stack[i].eend;
    let mut jp = Vec::with_capacity(prefix.len() + i);
    jp.extend_from_slice(prefix);
    jp.extend(stack[1..=i].iter().map(|f| {
        f.chosen
            .expect("non-root frames always record their producing entry")
    }));
    let job = Job {
        sim: stack[i].sim.clone_world(),
        prefix: jp,
        entries: arena[dstart..dend].to_vec(),
        budgets: stack[i].budgets,
    };
    stack[i].eend = dstart; // the donated range is no longer ours
    sh.push_job(job);
    true
}

/// Run one job to exhaustion (or cancellation) with the sequential
/// explorer's arena DFS, donating spare subtrees while the queue is
/// hungry.
fn run_job(
    sh: &Shared<'_>,
    job: Job,
    arena: &mut Vec<SchedEntry>,
    pool: &mut Vec<Sim>,
    vscratch: &mut Vec<u64>,
    invariant: &(dyn Fn(&Sim) -> Result<(), String> + Sync),
    part: &mut Partial,
) {
    let Job {
        sim,
        prefix,
        entries,
        budgets,
    } = job;
    arena.clear();
    arena.extend_from_slice(&entries);
    let mut stack = vec![WFrame {
        sim,
        estart: 0,
        next: 0,
        eend: arena.len(),
        chosen: None,
        budgets,
    }];
    let mut cooldown = 0u32;

    while !stack.is_empty() {
        if sh.stop.load(Ordering::Relaxed) {
            return;
        }
        if cooldown > 0 {
            cooldown -= 1;
        } else if sh.qlen.load(Ordering::Relaxed) < sh.workers
            && !donate(sh, &prefix, &mut stack, arena)
        {
            cooldown = DONATE_COOLDOWN;
        }

        let top = stack.last_mut().expect("loop precondition");
        if top.next >= top.eend {
            arena.truncate(top.estart);
            if let Some(frame) = stack.pop() {
                if !sh.full {
                    pool.push(frame.sim);
                }
            }
            continue;
        }
        let entry = arena[top.next];
        top.next += 1;
        let budgets = top.budgets.after(entry);

        // Recycle worlds through the worker-local pool: in steady state
        // branching a configuration is an in-place copy, not a fresh
        // allocation (see `Sim::clone_world_into`). In the
        // `Symmetry::FullRehash` baseline the pool stays empty (nothing
        // is ever recycled into it), preserving the pre-optimization
        // allocation-per-transition behaviour the bench measures against.
        let mut child = match pool.pop() {
            Some(mut spare) => {
                top.sim.clone_world_into(&mut spare);
                spare
            }
            None => top.sim.clone_world(),
        };
        entry.apply(&mut child);
        part.transitions += 1;
        part.crash_transitions += entry.is_crash() as u64;

        if child.check_mutual_exclusion().is_err() || invariant(&child).is_err() {
            // Don't report from here: the race winner is timing-dependent.
            // Flag and let the coordinator re-find the lowest schedule.
            sh.flag_violation();
            return;
        }

        if !sh.visited.insert(&child, sh.quota, budgets, vscratch) {
            if !sh.full {
                pool.push(child);
            }
            continue; // rejoined a known configuration
        }
        part.states += 1;
        let depth = prefix.len() + stack.len();
        part.max_depth = part.max_depth.max(depth);

        let total = sh.states.fetch_add(1, Ordering::Relaxed) + 1;
        if total >= sh.cfg.max_states || depth >= sh.cfg.max_depth {
            sh.capped.store(true, Ordering::Relaxed);
            if !sh.full {
                pool.push(child);
            }
            continue; // stop deepening; keep scanning siblings
        }

        let estart = arena.len();
        push_entries(&child, sh.quota, budgets, sh.cfg.crash_in_cs, arena);
        if arena.len() == estart {
            part.terminal += 1;
            if !sh.full {
                pool.push(child);
            }
            continue;
        }
        stack.push(WFrame {
            sim: child,
            estart,
            next: estart,
            eend: arena.len(),
            chosen: Some(entry),
            budgets,
        });
    }
}

/// Worker main loop: drain jobs until global termination.
fn worker(sh: &Shared<'_>, invariant: &(dyn Fn(&Sim) -> Result<(), String> + Sync)) -> Partial {
    let mut part = Partial::default();
    let mut arena: Vec<SchedEntry> = Vec::new();
    let mut pool: Vec<Sim> = Vec::new();
    let mut vscratch: Vec<u64> = Vec::new();
    while let Some(job) = sh.next_job() {
        run_job(
            sh,
            job,
            &mut arena,
            &mut pool,
            &mut vscratch,
            invariant,
            &mut part,
        );
        sh.job_done();
    }
    part
}

/// Deterministic counterexample recovery: a sequential breadth-first
/// search from the root, visiting each level's configurations in
/// creation order and each configuration's entries in canonical order
/// (steps by pid, then crashes by pid — the [`push_entries`] order).
/// The first violating transition found this way is the shortest
/// violating schedule, ties broken lexicographically by entry order —
/// a property of the *state graph*, independent of how many workers
/// stumbled on which violation first.
///
/// Called only after a worker has actually observed a violation, so the
/// search is guaranteed to find one (any violating transition's source
/// is reachable, and breadth-first dedup never closes the frontier
/// before exhausting reachable depths).
fn min_violation(
    factory: &impl Fn() -> Sim,
    cfg: &CheckConfig,
    invariant: &(dyn Fn(&Sim) -> Result<(), String> + Sync),
) -> CheckError {
    let quota = cfg.passages_per_proc;
    let root = factory();
    let root_budgets = Budgets::of(cfg);
    // BFS-local dedup, but through the *configured* key function: under
    // Symmetry::Quotient each orbit is expanded once here too, and the
    // breadth-first level structure still yields a shortest violating
    // schedule on concrete states (a violation at concrete depth d has
    // its orbit reached at quotient depth <= d, because class
    // permutations map offered entries to offered entries).
    let keys = visited::backend(cfg.symmetry, cfg.backend);
    let mut vscratch: Vec<u64> = Vec::new();
    let mut visited: HashSet<u64, FxBuildHasher> = HashSet::default();
    visited.insert(keys.key(&root, quota, root_budgets, &mut vscratch));
    let mut level: Vec<(Sim, Vec<SchedEntry>, Budgets)> = vec![(root, Vec::new(), root_budgets)];
    let mut entries: Vec<SchedEntry> = Vec::new();

    while !level.is_empty() {
        let mut next_level = Vec::new();
        for (sim, prefix, budgets) in &level {
            entries.clear();
            push_entries(sim, quota, *budgets, cfg.crash_in_cs, &mut entries);
            for &entry in &entries {
                let nb = budgets.after(entry);
                let mut child = sim.clone_world();
                entry.apply(&mut child);
                let mut sched = Vec::with_capacity(prefix.len() + 1);
                sched.extend_from_slice(prefix);
                sched.push(entry);
                if let Err(violation) = child.check_mutual_exclusion() {
                    return CheckError::MutualExclusion {
                        schedule: sched,
                        violation,
                        fingerprint: child.fingerprint(),
                    };
                }
                if let Err(message) = invariant(&child) {
                    return CheckError::Invariant {
                        schedule: sched,
                        message,
                        fingerprint: child.fingerprint(),
                    };
                }
                if visited.insert(keys.key(&child, quota, nb, &mut vscratch))
                    && sched.len() < cfg.max_depth
                {
                    next_level.push((child, sched, nb));
                }
            }
        }
        level = next_level;
    }
    unreachable!(
        "a worker observed a violation but the breadth-first re-search \
         exhausted the reachable space without one"
    )
}

/// Parallel [`crate::explore`]: explore every interleaving with `workers`
/// threads (0 = one per available core), checking Mutual Exclusion in
/// every reachable configuration.
///
/// On a complete run the report's [`CheckReport::counts`] are identical
/// to the sequential explorer's for any worker count. A violation is
/// reported as the deterministic lowest schedule (see the module docs).
///
/// # Errors
/// Returns the violating schedule if any reachable configuration breaks
/// Mutual Exclusion.
pub fn explore_par(
    factory: impl Fn() -> Sim,
    cfg: &CheckConfig,
    workers: usize,
) -> Result<CheckReport, CheckError> {
    explore_par_with(factory, cfg, workers, |_| Ok(()))
}

/// Like [`explore_par`], additionally checking `invariant` in every
/// reachable configuration. The invariant is called concurrently from
/// worker threads, hence the `Sync` bound; it must be a pure function of
/// the configuration (the same contract the deterministic-counterexample
/// re-search relies on).
///
/// # Errors
/// Returns the lowest violating schedule on a Mutual Exclusion or
/// invariant failure.
pub fn explore_par_with(
    factory: impl Fn() -> Sim,
    cfg: &CheckConfig,
    workers: usize,
    invariant: impl Fn(&Sim) -> Result<(), String> + Sync,
) -> Result<CheckReport, CheckError> {
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        workers
    };

    let root = factory();
    let quota = cfg.passages_per_proc;
    let root_budgets = Budgets::of(cfg);
    let backend = visited::backend(cfg.symmetry, cfg.backend);
    let sh = Shared {
        cfg,
        quota,
        workers,
        visited: &*backend,
        full: cfg.symmetry == Symmetry::FullRehash,
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        pending: AtomicUsize::new(0),
        qlen: AtomicUsize::new(0),
        states: AtomicU64::new(1), // the root
        stop: AtomicBool::new(false),
        violated: AtomicBool::new(false),
        capped: AtomicBool::new(false),
    };
    let mut root_scratch: Vec<u64> = Vec::new();
    sh.visited
        .insert(&root, quota, root_budgets, &mut root_scratch);

    let mut root_entries = Vec::new();
    push_entries(
        &root,
        quota,
        root_budgets,
        cfg.crash_in_cs,
        &mut root_entries,
    );
    if root_entries.is_empty() {
        return Ok(CheckReport {
            states_explored: 1,
            transitions: 0,
            crash_transitions: 0,
            max_depth_seen: 0,
            terminal_states: 1,
            complete: true,
            visited: sh.visited.stats(),
        });
    }
    sh.push_job(Job {
        sim: root,
        prefix: Vec::new(),
        entries: root_entries,
        budgets: root_budgets,
    });

    let partials: Vec<Partial> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| scope.spawn(|| worker(&sh, &invariant)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    if sh.violated.load(Ordering::Relaxed) {
        return Err(min_violation(&factory, cfg, &invariant));
    }

    let mut report = CheckReport {
        states_explored: 1,
        transitions: 0,
        crash_transitions: 0,
        max_depth_seen: 0,
        terminal_states: 0,
        complete: !sh.capped.load(Ordering::Relaxed),
        visited: sh.visited.stats(),
    };
    for p in &partials {
        report.states_explored += p.states;
        report.transitions += p.transitions;
        report.crash_transitions += p.crash_transitions;
        report.terminal_states += p.terminal;
        report.max_depth_seen = report.max_depth_seen.max(p.max_depth);
    }
    debug_assert_eq!(
        report.states_explored,
        sh.visited.len(),
        "every visited-set insert must be counted exactly once"
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore;
    use ccsim::Protocol;

    fn cfg(passages: u64, crash_budget: u32) -> CheckConfig {
        CheckConfig {
            passages_per_proc: passages,
            crash_budget,
            ..Default::default()
        }
    }

    #[test]
    fn matches_sequential_counts_on_tournament() {
        for crash_budget in [0u32, 1] {
            let c = cfg(1, crash_budget);
            let seq = explore(|| wmutex::mutex_world(2, Protocol::WriteBack), &c).unwrap();
            for workers in [1usize, 2, 4] {
                let par = explore_par(|| wmutex::mutex_world(2, Protocol::WriteBack), &c, workers)
                    .unwrap();
                assert_eq!(
                    par.counts(),
                    seq.counts(),
                    "workers={workers} crash_budget={crash_budget}"
                );
            }
        }
    }

    #[test]
    fn quiescent_root_reports_single_terminal_state() {
        let c = CheckConfig {
            passages_per_proc: 0, // nobody may even start a passage
            ..Default::default()
        };
        let par = explore_par(|| wmutex::mutex_world(2, Protocol::WriteBack), &c, 4).unwrap();
        assert_eq!(par.states_explored, 1);
        assert_eq!(par.terminal_states, 1);
        assert!(par.complete);
    }

    #[test]
    fn caps_mark_report_incomplete() {
        let c = CheckConfig {
            passages_per_proc: 2,
            max_states: 50,
            ..Default::default()
        };
        let par = explore_par(|| wmutex::mutex_world(3, Protocol::WriteBack), &c, 2).unwrap();
        assert!(!par.complete);
        assert!(par.states_explored >= 50);
    }

    #[test]
    fn zero_workers_means_auto() {
        let c = cfg(1, 0);
        let report = explore_par(|| wmutex::mutex_world(2, Protocol::WriteBack), &c, 0).unwrap();
        assert!(report.complete);
    }

    #[test]
    fn violation_schedule_is_worker_count_independent_and_minimal() {
        // An invariant violated once anyone reaches the CS: the lowest
        // schedule drives exactly one process straight there.
        let check = |sim: &Sim| -> Result<(), String> {
            if sim.procs_in_cs().is_empty() {
                Ok(())
            } else {
                Err("occupied".into())
            }
        };
        let c = cfg(1, 0);
        let mut schedules = Vec::new();
        for workers in [1usize, 2, 8] {
            let err = explore_par_with(
                || wmutex::mutex_world(2, Protocol::WriteBack),
                &c,
                workers,
                check,
            )
            .unwrap_err();
            schedules.push(err.schedule().to_vec());
        }
        assert_eq!(schedules[0], schedules[1]);
        assert_eq!(schedules[1], schedules[2]);
        // Breadth-first lowest schedule: no shorter one can exist, and
        // replaying it must reproduce the violation.
        let sim = crate::replay(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &schedules[0],
        );
        assert!(!sim.procs_in_cs().is_empty());
        for shorter in 0..schedules[0].len().saturating_sub(1) {
            let sim = crate::replay(
                || wmutex::mutex_world(2, Protocol::WriteBack),
                &schedules[0][..=shorter],
            );
            assert!(
                sim.procs_in_cs().is_empty(),
                "a shorter prefix already violates — not minimal"
            );
        }
    }
}
