//! Oracle tests for the incrementally-maintained configuration
//! fingerprint (PR 3): after *every* transition — steps, failed steps,
//! and crashes, under all three coherence protocols — the O(1) Zobrist
//! fingerprint must equal the from-scratch [`Sim::fingerprint_full`]
//! recompute. Debug builds assert this inside `fingerprint()` itself;
//! this suite makes the contract explicit (and keeps it checked in
//! release, where those debug asserts compile out).

use rwlock_repro::*;

fn seed_offset() -> u64 {
    ccsim::env::read_strict_uint("RANDOMIZED_SEED", true).unwrap_or(0)
}

/// Drive `sim` through `steps` random scheduler choices, occasionally
/// crashing a process that is mid-passage, asserting the maintained
/// fingerprint against the full recompute after every transition.
fn walk_and_check(mut sim: Sim, steps: usize, rng: &mut Prng, label: &str) {
    let n = sim.n_procs();
    for i in 0..steps {
        let p = ProcId(rng.below(n));
        // Roughly 1-in-16 transitions is a crash, when permitted: the RME
        // model only crashes processes outside their remainder section.
        if rng.below(16) == 0 && sim.phase(p) != Phase::Remainder {
            sim.crash(p);
        } else {
            sim.step(p);
        }
        assert_eq!(
            sim.fingerprint(),
            sim.fingerprint_full(),
            "{label}: maintained fingerprint diverged after transition {i} \
             (process {p})"
        );
    }
    // A forked world carries the maintained signatures with it.
    let fork = sim.clone_world();
    assert_eq!(fork.fingerprint(), sim.fingerprint());
    assert_eq!(fork.fingerprint(), fork.fingerprint_full());
}

#[test]
fn af_walks_keep_incremental_fingerprint_exact_under_all_protocols() {
    let mut gen = Prng::new(0x0f19_e4af + seed_offset());
    for protocol in [Protocol::WriteThrough, Protocol::WriteBack, Protocol::Dsm] {
        for _case in 0..8 {
            let cfg = AfConfig {
                readers: 1 + gen.below(4),
                writers: 1 + gen.below(2),
                policy: [FPolicy::One, FPolicy::LogN, FPolicy::Linear][gen.below(3)],
            };
            let world = af_world(cfg, protocol);
            let mut rng = Prng::new(gen.next_u64());
            walk_and_check(
                world.sim,
                600,
                &mut rng,
                &format!("A_f {cfg:?} under {protocol:?}"),
            );
        }
    }
}

#[test]
fn tournament_walks_keep_incremental_fingerprint_exact_under_all_protocols() {
    let mut gen = Prng::new(0x0f19_e907 + seed_offset());
    for protocol in [Protocol::WriteThrough, Protocol::WriteBack, Protocol::Dsm] {
        for m in [2usize, 3, 5] {
            let sim = wmutex::mutex_world(m, protocol);
            let mut rng = Prng::new(gen.next_u64());
            walk_and_check(
                sim,
                800,
                &mut rng,
                &format!("tournament m={m} under {protocol:?}"),
            );
        }
    }
}

/// The fingerprint is a pure function of the schedule: replaying the
/// identical entry sequence from a fresh world reproduces it exactly.
#[test]
fn fingerprint_is_deterministic_across_replays() {
    let factory = || af_world(AfConfig::new(2, 1), Protocol::WriteBack).sim;
    let mut sim = factory();
    let mut rng = Prng::new(0x0f19_ede7 + seed_offset());
    let mut schedule = Vec::new();
    for _ in 0..300 {
        let p = ProcId(rng.below(sim.n_procs()));
        let entry = if rng.below(16) == 0 && sim.phase(p) != Phase::Remainder {
            SchedEntry::Crash(p)
        } else {
            SchedEntry::Step(p)
        };
        entry.apply(&mut sim);
        schedule.push(entry);
    }
    let replayed = replay(factory, &schedule);
    assert_eq!(replayed.fingerprint(), sim.fingerprint());
    assert_eq!(replayed.fingerprint(), replayed.fingerprint_full());
}
