//! Flat per-variable coherence directory.
//!
//! Real CC hardware avoids broadcast invalidation by keeping, per cache
//! line, a *directory* of which caches hold a copy. This module is the
//! simulator's equivalent: for every variable, a dense bitset of holder
//! processes plus one exclusive-owner slot. Compared to the map-based
//! per-process caches it replaced (kept as [`crate::reference`] for
//! differential testing), every cache query is an O(1) bit test and an
//! invalidation is a word-wise bitset clear — O(n_procs/64) words instead
//! of `n_procs` hash-map removals.

/// Sentinel for "no exclusive owner" in [`Directory::owner`].
const NO_OWNER: u32 = u32::MAX;

/// Per-variable holder bitsets and exclusive-owner slots.
///
/// Invariants maintained by [`crate::Memory`]'s protocol logic:
///
/// * the owner of a variable, when present, is also a holder;
/// * under write-back, an exclusively-owned variable has exactly one
///   holder (the owner); write-through never sets an owner.
#[derive(Clone, Debug)]
pub(crate) struct Directory {
    n_procs: usize,
    n_vars: usize,
    /// Words per variable: `ceil(n_procs / 64)`.
    words_per_var: usize,
    /// Holder bitsets, `n_vars * words_per_var` words; variable `v` owns
    /// words `v*words_per_var .. (v+1)*words_per_var`, process `p` is bit
    /// `p % 64` of word `p / 64` within that span.
    holders: Vec<u64>,
    /// Exclusive owner per variable ([`NO_OWNER`] = none).
    owner: Vec<u32>,
}

impl Directory {
    /// A directory with all caches cold.
    pub(crate) fn new(n_vars: usize, n_procs: usize) -> Self {
        assert!(
            n_procs < NO_OWNER as usize,
            "process count exceeds directory owner encoding"
        );
        let words_per_var = n_procs.div_ceil(64).max(1);
        Directory {
            n_procs,
            n_vars,
            words_per_var,
            holders: vec![0; n_vars * words_per_var],
            owner: vec![NO_OWNER; n_vars],
        }
    }

    /// Overwrite `self` with `src`, reusing the bitset and owner buffers
    /// (no allocation when the shapes match, as they do when the model
    /// checker recycles a popped world).
    pub(crate) fn assign_from(&mut self, src: &Directory) {
        self.n_procs = src.n_procs;
        self.n_vars = src.n_vars;
        self.words_per_var = src.words_per_var;
        self.holders.clone_from(&src.holders);
        self.owner.clone_from(&src.owner);
    }

    #[inline]
    fn word(&self, v: usize, p: usize) -> usize {
        v * self.words_per_var + p / 64
    }

    /// Does process `p` hold any copy of variable `v`?
    #[inline]
    pub(crate) fn holds(&self, p: usize, v: usize) -> bool {
        self.holders[self.word(v, p)] >> (p % 64) & 1 == 1
    }

    /// Does process `p` hold variable `v` exclusively?
    #[inline]
    pub(crate) fn holds_exclusive(&self, p: usize, v: usize) -> bool {
        self.owner[v] == p as u32
    }

    /// The exclusive owner of `v`, if any.
    #[cfg(test)]
    pub(crate) fn owner(&self, v: usize) -> Option<usize> {
        let o = self.owner[v];
        (o != NO_OWNER).then_some(o as usize)
    }

    /// Install a shared copy for `p` (no owner change).
    #[inline]
    pub(crate) fn set_shared(&mut self, p: usize, v: usize) {
        let w = self.word(v, p);
        self.holders[w] |= 1 << (p % 64);
    }

    /// Install (or upgrade to) an exclusive copy for `p`.
    #[inline]
    pub(crate) fn set_exclusive(&mut self, p: usize, v: usize) {
        self.set_shared(p, v);
        self.owner[v] = p as u32;
    }

    /// Downgrade the exclusive owner of `v` (if any) to a shared holder.
    /// O(1): the ex-owner's holder bit stays set.
    #[inline]
    pub(crate) fn downgrade_owner(&mut self, v: usize) {
        self.owner[v] = NO_OWNER;
    }

    /// Drop every copy of `v` except `p`'s: a word-wise bitset clear.
    /// `p`'s own holder bit and ownership (if it is the owner) survive.
    pub(crate) fn invalidate_others(&mut self, p: usize, v: usize) {
        let base = v * self.words_per_var;
        let keep_word = base + p / 64;
        let keep = self.holders[keep_word] & (1 << (p % 64));
        for w in &mut self.holders[base..base + self.words_per_var] {
            *w = 0;
        }
        self.holders[keep_word] = keep;
        if self.owner[v] != p as u32 {
            self.owner[v] = NO_OWNER;
        }
    }

    /// Drop every copy held by process `p` (its cache went away — a crash).
    /// O(n_vars): one bit clear per variable, plus an owner-slot clear
    /// where `p` was the exclusive owner.
    pub(crate) fn purge_proc(&mut self, p: usize) {
        let mask = !(1u64 << (p % 64));
        for v in 0..self.n_vars {
            self.holders[v * self.words_per_var + p / 64] &= mask;
            if self.owner[v] == p as u32 {
                self.owner[v] = NO_OWNER;
            }
        }
    }

    /// Number of processes holding a copy of `v`.
    pub(crate) fn holder_count(&self, v: usize) -> usize {
        let base = v * self.words_per_var;
        self.holders[base..base + self.words_per_var]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of variables process `p` holds a copy of. O(n_vars); used
    /// only by the test-facing [`crate::CacheView`].
    pub(crate) fn lines_held_by(&self, p: usize) -> usize {
        (0..self.n_vars).filter(|&v| self.holds(p, v)).count()
    }

    /// Number of processes this directory was sized for.
    pub(crate) fn n_procs(&self) -> usize {
        self.n_procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_directory_holds_nothing() {
        let d = Directory::new(3, 130);
        assert_eq!(d.n_procs(), 130);
        for p in [0usize, 63, 64, 129] {
            for v in 0..3 {
                assert!(!d.holds(p, v));
                assert!(!d.holds_exclusive(p, v));
            }
        }
        assert_eq!(d.owner(0), None);
    }

    #[test]
    fn shared_and_exclusive_round_trip_across_word_boundaries() {
        let mut d = Directory::new(2, 130);
        d.set_shared(63, 1);
        d.set_shared(64, 1);
        d.set_exclusive(129, 0);
        assert!(d.holds(63, 1) && d.holds(64, 1));
        assert!(!d.holds(63, 0));
        assert!(d.holds(129, 0) && d.holds_exclusive(129, 0));
        assert_eq!(d.owner(0), Some(129));
        assert_eq!(d.holder_count(1), 2);
        assert_eq!(d.holder_count(0), 1);
    }

    #[test]
    fn invalidate_others_preserves_only_p() {
        let mut d = Directory::new(1, 200);
        for p in 0..200 {
            d.set_shared(p, 0);
        }
        d.set_exclusive(7, 0);
        d.invalidate_others(70, 0);
        assert_eq!(d.holder_count(0), 1);
        assert!(d.holds(70, 0));
        assert!(!d.holds(7, 0));
        assert_eq!(d.owner(0), None, "other-owned line loses its owner");
    }

    #[test]
    fn invalidate_others_keeps_own_exclusivity() {
        let mut d = Directory::new(1, 80);
        d.set_exclusive(65, 0);
        d.invalidate_others(65, 0);
        assert!(d.holds_exclusive(65, 0));
        assert_eq!(d.holder_count(0), 1);
    }

    #[test]
    fn downgrade_owner_keeps_holder_bit() {
        let mut d = Directory::new(1, 4);
        d.set_exclusive(2, 0);
        d.downgrade_owner(0);
        assert!(d.holds(2, 0));
        assert!(!d.holds_exclusive(2, 0));
        assert_eq!(d.owner(0), None);
    }

    #[test]
    fn lines_held_by_counts_per_process() {
        let mut d = Directory::new(5, 3);
        d.set_shared(1, 0);
        d.set_shared(1, 3);
        d.set_exclusive(1, 4);
        assert_eq!(d.lines_held_by(1), 3);
        assert_eq!(d.lines_held_by(0), 0);
    }
}
