//! # wmutex — the writer-side mutual-exclusion substrate
//!
//! The `A_f` reader-writer locks of Hendler (PODC 2016) serialize writers
//! with `WL`, an m-process starvation-free read/write mutex with
//! logarithmic RMR complexity and Bounded Exit (the paper cites
//! Yang–Anderson \[21\]). This crate provides that substrate as a Peterson
//! tournament tree — the same `Θ(log m)` RMR complexity in the CC model,
//! from reads and writes only — in two forms:
//!
//! * [`TournamentLock`] — real atomics, used by the production lock;
//! * [`SimTournament`] / [`EnterMachine`] / [`ExitMachine`] /
//!   [`MutexClient`] — `ccsim` step machines for RMR measurement and
//!   model checking.
//!
//! [`ClhLock`] and [`TicketLock`] are queue-lock baselines for the
//! throughput benches.
//!
//! ```
//! use wmutex::{IdMutex, TournamentLock};
//! let wl = TournamentLock::new(8);
//! wl.lock(3);
//! // ... critical section ...
//! wl.unlock(3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod real;
mod sim;

pub use real::{ClhLock, IdMutex, TicketLock, TournamentLock};
pub use sim::{mutex_world, EnterMachine, ExitMachine, MutexClient, SimTournament};
