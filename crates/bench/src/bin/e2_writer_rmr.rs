//! E2 — Lemma 17 (writer side): writer passages incur `Θ(f(n))` RMRs.
//!
//! Measures complete writer passages in the simulator under both coherence
//! protocols: solo from cold caches, and after all `n` readers have
//! passed (counters resident in reader caches). The `RMR / f` column
//! should stay near a constant per policy as `n` grows.
//!
//! Each `(n, policy, protocol)` config is an independent simulation, so
//! the sweep fans out across cores via [`bench::par::par_map`]; the table
//! is printed from in-order results and is byte-identical to a
//! sequential run.

use bench::par::par_map;
use bench::{measure_af, standard_sweep, Table};
use ccsim::Protocol;
use rwcore::AfConfig;

fn main() {
    // CI smoke mode: one small config per protocol instead of the full
    // sweep, so the workflow exercises the whole measurement path in
    // seconds.
    let sweep = if std::env::var_os("BENCH_E2_SMOKE").is_some() {
        vec![(16usize, rwcore::FPolicy::One)]
    } else {
        standard_sweep()
    };
    let configs: Vec<(Protocol, usize, rwcore::FPolicy)> =
        [Protocol::WriteBack, Protocol::WriteThrough]
            .into_iter()
            .flat_map(|protocol| sweep.iter().map(move |&(n, policy)| (protocol, n, policy)))
            .collect();
    let samples = par_map(&configs, |&(protocol, n, policy)| {
        measure_af(
            AfConfig {
                readers: n,
                writers: 1,
                policy,
            },
            protocol,
        )
    });

    for protocol in [Protocol::WriteBack, Protocol::WriteThrough] {
        let mut table = Table::new([
            "n",
            "f policy",
            "groups f",
            "writer solo RMR",
            "solo/f",
            "writer post-readers RMR",
            "post/f",
        ]);
        for ((p, n, policy), s) in configs.iter().zip(&samples) {
            if *p != protocol {
                continue;
            }
            table.row([
                n.to_string(),
                policy.to_string(),
                s.groups.to_string(),
                s.writer_solo_rmrs.to_string(),
                format!("{:.1}", s.writer_solo_rmrs as f64 / s.groups as f64),
                s.writer_post_reader_rmrs.to_string(),
                format!("{:.1}", s.writer_post_reader_rmrs as f64 / s.groups as f64),
            ]);
        }
        println!("E2 — writer passage RMRs, {protocol:?} protocol\n");
        table.print();
        println!();
    }
    println!(
        "Expected shape: RMR/f is a small constant (the per-group loop body)\n\
         independent of n — writer cost is Θ(f(n)) per Lemma 17."
    );
}
