//! The counterexample pipeline, end to end: a deliberately buggy lock is
//! explored, the violating schedule is shrunk to a locally minimal one,
//! and `replay` reproduces the identical violating configuration —
//! verified by `Sim::fingerprint` — including through the text artifact
//! format and schedules containing crash events.

use ccsim::{Layout, Memory, Op, Phase, ProcId, Program, Protocol, Role, Sim, Step, Value, VarId};
use modelcheck::{explore, replay, shrink, CheckConfig, CheckError, SchedEntry, TraceArtifact};
use std::hash::Hasher;

/// The classic check-then-act bug: read the flag, then set it in a
/// separate step, so two processes can slip past each other.
#[derive(Clone)]
struct FlagLock {
    flag: VarId,
    pc: u8, // 0 remainder, 1 check, 2 set, 3 CS, 4 clear
}

impl Program for FlagLock {
    fn poll(&self) -> Step {
        match self.pc {
            0 => Step::Remainder,
            1 => Step::Op(Op::Read(self.flag)),
            2 => Step::Op(Op::write(self.flag, true)),
            3 => Step::Cs,
            4 => Step::Op(Op::write(self.flag, false)),
            _ => unreachable!(),
        }
    }
    fn resume(&mut self, response: Value) {
        self.pc = match self.pc {
            1 if response.expect_bool() => 1, // taken: spin
            4 => 0,
            pc => pc + 1,
        };
    }
    fn phase(&self) -> Phase {
        match self.pc {
            0 => Phase::Remainder,
            1 | 2 => Phase::Entry,
            3 => Phase::Cs,
            _ => Phase::Exit,
        }
    }
    fn role(&self) -> Role {
        Role::Writer
    }
    fn on_crash(&mut self) {
        self.pc = 0;
    }
    fn fingerprint(&self, h: &mut dyn Hasher) {
        h.write_u8(self.pc);
    }
    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

fn buggy_world() -> Sim {
    let mut layout = Layout::new();
    let flag = layout.var("flag", Value::Bool(false));
    let mem = Memory::new(&layout, 2, Protocol::WriteBack);
    Sim::new(
        mem,
        (0..2)
            .map(|_| Box::new(FlagLock { flag, pc: 0 }) as Box<dyn Program>)
            .collect(),
    )
}

#[test]
fn counterexample_shrinks_and_replays_with_identical_fingerprint() {
    let err = explore(buggy_world, &CheckConfig::default())
        .expect_err("the flag lock must violate mutual exclusion");
    let CheckError::MutualExclusion {
        schedule,
        fingerprint,
        ..
    } = &err
    else {
        panic!("expected an MX violation, got {err}");
    };

    // The raw counterexample replays onto its reported fingerprint.
    let sim = replay(buggy_world, schedule);
    assert!(sim.check_mutual_exclusion().is_err(), "same violation");
    assert_eq!(sim.fingerprint(), *fingerprint, "same configuration");

    // Shrinking keeps the violation and yields a locally minimal
    // schedule: removing any single entry stops it reproducing.
    let violates = |s: &Sim| s.check_mutual_exclusion().is_err();
    let out = shrink(buggy_world, schedule, violates);
    assert!(out.schedule.len() <= schedule.len());
    let sim = replay(buggy_world, &out.schedule);
    assert!(violates(&sim));
    assert_eq!(sim.fingerprint(), out.fingerprint);
    for i in 0..out.schedule.len() {
        let mut cand = out.schedule.clone();
        cand.remove(i);
        assert!(
            !violates(&replay(buggy_world, &cand)),
            "dropping entry {i} still reproduces — not locally minimal"
        );
    }

    // The minimal interleaving for this bug: both processes pass the
    // check before either sets the flag, then both walk into the CS.
    assert_eq!(out.schedule.len(), 6, "check,check,set,set,cs,cs");
}

#[test]
fn counterexample_survives_the_artifact_text_format() {
    let err = explore(buggy_world, &CheckConfig::default()).unwrap_err();
    let violates = |s: &Sim| s.check_mutual_exclusion().is_err();
    let out = shrink(buggy_world, err.schedule(), violates);

    let artifact = TraceArtifact {
        world: "flaglock n=2 writeback".into(),
        violation: err.describe(),
        fingerprint: out.fingerprint,
        schedule: out.schedule,
    };
    let parsed = TraceArtifact::parse(&artifact.render()).expect("round trip");
    assert_eq!(parsed, artifact);
    let sim = replay(buggy_world, &parsed.schedule);
    assert!(violates(&sim));
    assert_eq!(sim.fingerprint(), parsed.fingerprint);
}

#[test]
fn schedules_with_crash_entries_replay_deterministically() {
    // A schedule that crashes p0 mid-entry (after its check) and lets p1
    // run a full passage: replay must be bit-for-bit deterministic, and
    // equal to driving a Sim by hand.
    let schedule = [
        SchedEntry::Step(ProcId(0)),  // p0 passes the check
        SchedEntry::Crash(ProcId(0)), // ...and crashes before setting
        SchedEntry::Step(ProcId(1)),
        SchedEntry::Step(ProcId(1)),
        SchedEntry::Step(ProcId(1)), // p1 sets the flag, reaches CS
    ];
    let a = replay(buggy_world, &schedule);
    let b = replay(buggy_world, &schedule);
    assert_eq!(a.fingerprint(), b.fingerprint());

    let mut manual = buggy_world();
    manual.step(ProcId(0));
    manual.crash(ProcId(0));
    for _ in 0..3 {
        manual.step(ProcId(1));
    }
    assert_eq!(manual.fingerprint(), a.fingerprint());
    assert_eq!(manual.stats(ProcId(0)).crashes, 1);
    assert_eq!(manual.phase(ProcId(1)), Phase::Cs);
}

#[test]
fn schedules_with_crash_all_and_abort_entries_replay_deterministically() {
    // The fault-tolerance tokens: walk both tournament contenders into
    // their entry sections, wipe everyone with a system-wide crash, then
    // abort p1 mid-entry. Replay must be bit-for-bit deterministic, equal
    // to driving a Sim by hand, and must survive the artifact format.
    let factory = || wmutex::mutex_world(2, Protocol::WriteBack);
    let schedule = [
        SchedEntry::Step(ProcId(0)),
        SchedEntry::Step(ProcId(0)),
        SchedEntry::Step(ProcId(1)),
        SchedEntry::CrashAll,
        SchedEntry::Step(ProcId(1)),
        SchedEntry::Step(ProcId(1)),
        SchedEntry::Abort(ProcId(1)),
    ];
    let a = replay(factory, &schedule);
    let b = replay(factory, &schedule);
    assert_eq!(a.fingerprint(), b.fingerprint());

    let mut manual = factory();
    manual.step(ProcId(0));
    manual.step(ProcId(0));
    manual.step(ProcId(1));
    manual.crash_all();
    manual.step(ProcId(1));
    manual.step(ProcId(1));
    manual.abort(ProcId(1));
    assert_eq!(manual.fingerprint(), a.fingerprint());
    assert_eq!(manual.stats(ProcId(0)).crashes, 1, "crash-all hits p0");
    assert_eq!(manual.stats(ProcId(1)).crashes, 1, "crash-all hits p1");

    // The same schedule round-trips through the artifact text format and
    // still replays onto the identical configuration.
    let artifact = TraceArtifact {
        world: "wmutex m=2 writeback".into(),
        violation: "none (determinism check)".into(),
        fingerprint: a.fingerprint(),
        schedule: schedule.to_vec(),
    };
    let parsed = TraceArtifact::parse(&artifact.render()).expect("round trip");
    assert_eq!(parsed, artifact);
    assert_eq!(
        replay(factory, &parsed.schedule).fingerprint(),
        parsed.fingerprint
    );
}
