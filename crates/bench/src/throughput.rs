//! Real-hardware throughput harness (experiment E8).
//!
//! Measures wall-clock passages/second of the real-atomics locks under
//! mixed read/write workloads, with per-thread roles fixed up front (the
//! `A_f` model has distinct reader and writer processes). The external
//! baseline is `std::sync::RwLock` only: the workspace builds offline
//! with zero external dependencies, so the `parking_lot` contender was
//! dropped.

use rwcore::{AfConfig, CentralizedRwLock, FaaRwLock, MutexRwLock, RawAfLock, RawRwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// A lock adapter measured by the harness: one full passage per call,
/// with a tiny critical section touching shared data.
pub trait BenchLock: Send + Sync {
    /// One reader passage by reader process `id`.
    fn read_pass(&self, id: usize);
    /// One writer passage by writer process `id`.
    fn write_pass(&self, id: usize);
    /// Implementation name for tables.
    fn label(&self) -> String;
}

/// Wraps any [`RawRwLock`] (our locks) with a tiny shared-counter CS.
#[derive(Debug)]
pub struct RawAdapter<L> {
    lock: L,
    shared: AtomicU64,
}

impl<L: RawRwLock> RawAdapter<L> {
    /// Wrap a raw lock.
    pub fn new(lock: L) -> Self {
        RawAdapter {
            lock,
            shared: AtomicU64::new(0),
        }
    }
}

impl<L: RawRwLock> BenchLock for RawAdapter<L> {
    fn read_pass(&self, id: usize) {
        self.lock.reader_lock(id);
        std::hint::black_box(self.shared.load(Ordering::Relaxed));
        self.lock.reader_unlock(id);
    }
    fn write_pass(&self, id: usize) {
        self.lock.writer_lock(id);
        let v = self.shared.load(Ordering::Relaxed);
        self.shared.store(v + 1, Ordering::Relaxed);
        self.lock.writer_unlock(id);
    }
    fn label(&self) -> String {
        self.lock.name().to_string()
    }
}

/// `std::sync::RwLock` adapter.
#[derive(Debug, Default)]
pub struct StdAdapter {
    lock: std::sync::RwLock<u64>,
}

impl BenchLock for StdAdapter {
    fn read_pass(&self, _id: usize) {
        std::hint::black_box(*self.lock.read().unwrap());
    }
    fn write_pass(&self, _id: usize) {
        *self.lock.write().unwrap() += 1;
    }
    fn label(&self) -> String {
        "std::RwLock".into()
    }
}

/// Workload shape: how many reader and writer threads, and how many
/// passages each performs.
#[derive(Copy, Clone, Debug)]
pub struct Workload {
    /// Reader thread count.
    pub readers: usize,
    /// Writer thread count.
    pub writers: usize,
    /// Passages per reader thread.
    pub reads_per_reader: u64,
    /// Passages per writer thread.
    pub writes_per_writer: u64,
}

impl Workload {
    /// A read-heavy workload sized to `threads` total.
    pub fn read_heavy(threads: usize) -> Self {
        let writers = 1.max(threads / 8);
        Workload {
            readers: threads.saturating_sub(writers).max(1),
            writers,
            reads_per_reader: 20_000,
            writes_per_writer: 2_000,
        }
    }

    /// A balanced workload.
    pub fn mixed(threads: usize) -> Self {
        let writers = 1.max(threads / 2);
        Workload {
            readers: threads.saturating_sub(writers).max(1),
            writers,
            reads_per_reader: 10_000,
            writes_per_writer: 10_000,
        }
    }

    /// Total passages.
    pub fn total_passages(&self) -> u64 {
        self.readers as u64 * self.reads_per_reader + self.writers as u64 * self.writes_per_writer
    }
}

/// Result of one throughput run.
#[derive(Clone, Debug)]
pub struct ThroughputSample {
    /// Lock label.
    pub lock: String,
    /// The workload run.
    pub workload: Workload,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Total passages / second.
    pub passages_per_sec: f64,
}

/// Run `workload` against `lock` once and report throughput.
pub fn run_throughput(lock: Arc<dyn BenchLock>, workload: Workload) -> ThroughputSample {
    let barrier = Arc::new(Barrier::new(workload.readers + workload.writers + 1));
    let mut handles = Vec::new();
    for r in 0..workload.readers {
        let lock = Arc::clone(&lock);
        let barrier = Arc::clone(&barrier);
        let reads = workload.reads_per_reader;
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..reads {
                lock.read_pass(r);
            }
        }));
    }
    for w in 0..workload.writers {
        let lock = Arc::clone(&lock);
        let barrier = Arc::clone(&barrier);
        let writes = workload.writes_per_writer;
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..writes {
                lock.write_pass(w);
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    let elapsed = start.elapsed();
    ThroughputSample {
        lock: lock.label(),
        workload,
        elapsed,
        passages_per_sec: workload.total_passages() as f64 / elapsed.as_secs_f64(),
    }
}

/// The standard contender set for a given `(readers, writers)` shape.
pub fn contenders(readers: usize, writers: usize) -> Vec<Arc<dyn BenchLock>> {
    vec![
        Arc::new(RawAdapter::new(RawAfLock::new(AfConfig::new(
            readers, writers,
        )))),
        Arc::new(RawAdapter::new(CentralizedRwLock::new())),
        Arc::new(RawAdapter::new(FaaRwLock::new(writers))),
        Arc::new(RawAdapter::new(MutexRwLock::new(readers, writers))),
        Arc::new(StdAdapter::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contenders_complete_a_small_workload() {
        let wl = Workload {
            readers: 2,
            writers: 1,
            reads_per_reader: 500,
            writes_per_writer: 100,
        };
        for lock in contenders(2, 1) {
            let sample = run_throughput(lock, wl);
            assert!(sample.passages_per_sec > 0.0, "{}", sample.lock);
        }
    }

    #[test]
    fn workload_shapes() {
        let rh = Workload::read_heavy(8);
        assert!(rh.readers > rh.writers);
        assert!(rh.total_passages() > 0);
        let mx = Workload::mixed(8);
        assert_eq!(mx.readers + mx.writers, 8);
    }
}
