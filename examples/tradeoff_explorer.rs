//! Explore the writer/reader RMR tradeoff frontier interactively: for a
//! chosen `n`, sweep the family parameter `f` and print both sides' RMR
//! costs measured in the cache-coherent simulator.
//!
//! ```sh
//! cargo run --release --example tradeoff_explorer [n]
//! ```
//!
//! This is Corollary 6 made tangible: every row is a correct lock; the
//! product of the two columns can't be beaten — pick the row matching
//! your workload's read/write ratio.

use rwlock_repro::{af_world, run_solo, AfConfig, FPolicy, Phase, Protocol};

/// One solo passage's RMRs for the given process.
fn solo_rmrs(world: &mut rwlock_repro::AfWorld, pid: rwlock_repro::ProcId) -> u64 {
    world.sim.reset_stats();
    run_solo(&mut world.sim, pid, 10_000_000, |s| {
        s.stats(pid).passages >= 1
    })
    .expect("solo passage completes");
    let st = world.sim.stats(pid);
    st.rmrs_in(Phase::Entry) + st.rmrs_in(Phase::Cs) + st.rmrs_in(Phase::Exit)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);

    println!("A_f tradeoff frontier at n = {n} (write-back CC, solo passages)\n");
    println!(
        "{:>8} {:>8} {:>16} {:>16}  guidance",
        "f", "K=n/f", "writer RMRs", "reader RMRs"
    );

    let mut f = 1usize;
    let mut printed_full_width = false;
    while f <= n {
        printed_full_width |= f == n;
        let cfg = AfConfig {
            readers: n,
            writers: 1,
            policy: FPolicy::Groups(f),
        };

        let mut world = af_world(cfg, Protocol::WriteBack);
        let w = world.pids.writer(0);
        let writer = solo_rmrs(&mut world, w);

        let mut world = af_world(cfg, Protocol::WriteBack);
        let r = world.pids.reader(0);
        let reader = solo_rmrs(&mut world, r);

        let guidance = match f {
            1 => "read-heavy: cheapest writers",
            _ if f == n => "write-heavy: cheapest readers",
            _ if f <= (n as f64).sqrt() as usize + 1 => "balanced",
            _ => "writer pays for reader speed",
        };
        println!(
            "{:>8} {:>8} {:>16} {:>16}  {}",
            cfg.occupied_groups(),
            cfg.group_size(),
            writer,
            reader,
            guidance
        );
        f *= 4;
    }
    if n > 1 && !printed_full_width {
        let cfg = AfConfig {
            readers: n,
            writers: 1,
            policy: FPolicy::Linear,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let w = world.pids.writer(0);
        let writer = solo_rmrs(&mut world, w);
        let mut world = af_world(cfg, Protocol::WriteBack);
        let r = world.pids.reader(0);
        let reader = solo_rmrs(&mut world, r);
        println!(
            "{:>8} {:>8} {:>16} {:>16}  write-heavy: cheapest readers",
            n, 1, writer, reader
        );
    }

    println!(
        "\nCorollary 6: max(writer, reader) = Ω(log n) on every row — the\n\
         frontier can be traversed but never beaten with read/write/CAS."
    );
}
