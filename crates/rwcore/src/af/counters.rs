//! Pluggable group counters for the simulated `A_f` machines.
//!
//! The paper builds `C[i]`/`W[i]` from Jayanti's f-array specifically to
//! get *bounded* (`O(log K)`-step) `add` operations — a CAS retry loop
//! would be linearizable too, but its step count is unbounded under
//! contention, which breaks Bounded Exit and lets the Theorem-5 adversary
//! charge readers `Θ(K)` RMRs. This module makes the counter choice a
//! parameter so experiment E13 can measure exactly that ablation.

use ccsim::{Layout, Memory, Op, SubMachine, SubStep, Value, VarId};
use fcounter::{AddMachine, ReadMachine, SimCounter, SimCounterHandle};
use std::hash::{Hash, Hasher};

/// Which counter implementation backs the group counters.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum CounterKind {
    /// The paper's choice: f-array, `O(log K)`-step wait-free `add`.
    #[default]
    FArray,
    /// Ablation: a single word updated by a CAS retry loop. Linearizable
    /// (so the lock stays *safe*), but `add` is unbounded under
    /// contention — Bounded Exit and the `Θ(log(n/f))` reader bound fail.
    CasLoop,
}

/// A group counter of either kind (shared descriptor).
#[derive(Clone, Debug)]
pub enum GroupCounter {
    /// Tree counter.
    FArray(SimCounter),
    /// Single-word counter.
    CasLoop(VarId),
}

impl GroupCounter {
    /// Allocate a counter of `kind` for `k` processes.
    pub fn allocate(layout: &mut Layout, name: &str, k: usize, kind: CounterKind) -> Self {
        match kind {
            CounterKind::FArray => GroupCounter::FArray(SimCounter::allocate(layout, name, k)),
            CounterKind::CasLoop => {
                GroupCounter::CasLoop(layout.var(name.to_string(), Value::Int(0)))
            }
        }
    }

    /// Number of registered processes (f-array) or `usize::MAX`
    /// (single-word counters have no process limit).
    pub fn processes(&self) -> usize {
        match self {
            GroupCounter::FArray(c) => c.processes(),
            GroupCounter::CasLoop(_) => usize::MAX,
        }
    }

    /// A per-process handle for leaf `leaf`.
    pub fn handle(&self, leaf: usize) -> GroupHandle {
        match self {
            GroupCounter::FArray(c) => GroupHandle::FArray(c.handle(leaf)),
            GroupCounter::CasLoop(v) => GroupHandle::CasLoop(*v),
        }
    }

    /// Start a read operation.
    pub fn read(&self) -> GroupReadMachine {
        match self {
            GroupCounter::FArray(c) => GroupReadMachine::FArray(c.read()),
            GroupCounter::CasLoop(v) => GroupReadMachine::CasLoop {
                var: *v,
                done: None,
            },
        }
    }

    /// Inspect the current value without simulating steps.
    pub fn peek(&self, mem: &Memory) -> i64 {
        match self {
            GroupCounter::FArray(c) => c.peek(mem),
            GroupCounter::CasLoop(v) => mem.peek(*v).expect_int(),
        }
    }

    /// The heap variable registered process `leaf` writes through
    /// (f-array), or `None` — single-word counters have no per-process
    /// slots. Used to declare per-reader *owned* variables for symmetry
    /// classes.
    pub fn leaf_var(&self, leaf: usize) -> Option<VarId> {
        match self {
            GroupCounter::FArray(c) => Some(c.leaf_var(leaf)),
            GroupCounter::CasLoop(_) => None,
        }
    }

    /// Whether two registered processes' leaves share a parent in the
    /// counter tree (always false for single-word counters, which have
    /// no tree). Sibling leaves are the unit of f-array reader symmetry:
    /// a refresh at their common parent reads its *own* side first, so
    /// swapping the two leaf values (together with their owners) is a
    /// transition automorphism — which no wider leaf permutation is.
    pub fn leaves_are_siblings(&self, a: usize, b: usize) -> bool {
        match self {
            GroupCounter::FArray(c) => c.leaves_are_siblings(a, b),
            GroupCounter::CasLoop(_) => false,
        }
    }
}

/// A per-process handle on a [`GroupCounter`].
#[derive(Clone, Debug)]
pub enum GroupHandle {
    /// Handle on a tree counter (owns the leaf mirror).
    FArray(SimCounterHandle),
    /// Handle on a single-word counter (stateless).
    CasLoop(VarId),
}

impl GroupHandle {
    /// Start an `add(delta)` operation.
    pub fn add(&mut self, delta: i64) -> GroupAddMachine {
        match self {
            GroupHandle::FArray(h) => GroupAddMachine::FArray(h.add(delta)),
            GroupHandle::CasLoop(v) => GroupAddMachine::CasLoop {
                var: *v,
                delta,
                pc: CasAddPc::Read,
            },
        }
    }

    /// This handle's current leaf contribution (f-array) or 0 (the
    /// single-word counter keeps no per-process state).
    pub fn mirror(&self) -> i64 {
        match self {
            GroupHandle::FArray(h) => h.mirror(),
            GroupHandle::CasLoop(_) => 0,
        }
    }

    /// Whether the handle carries no per-process state, i.e. whether a
    /// fresh handle behaves identically to one that has issued `add`s.
    /// F-array handles are *not* stateless (the leaf mirror accumulates);
    /// single-word handles are. Compositions that hand a lock passage
    /// from one process to another (e.g. the sharded batch slot) require
    /// stateless handles.
    pub fn is_stateless(&self) -> bool {
        matches!(self, GroupHandle::CasLoop(_))
    }
}

/// Retry-loop program counter of the CAS-loop add.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CasAddPc {
    /// Read the current value.
    Read,
    /// CAS `seen -> seen + delta`; on failure, back to `Read`.
    Cas {
        seen: i64,
    },
    Done,
}

/// Step machine for one `add` on either counter kind.
#[derive(Clone, Debug)]
pub enum GroupAddMachine {
    /// The wait-free tree walk.
    FArray(AddMachine),
    /// The unbounded retry loop.
    CasLoop {
        /// The counter word.
        var: VarId,
        /// The increment.
        delta: i64,
        /// Retry-loop program counter.
        pc: CasAddPc,
    },
}

impl SubMachine for GroupAddMachine {
    fn poll(&self) -> SubStep {
        match self {
            GroupAddMachine::FArray(m) => m.poll(),
            GroupAddMachine::CasLoop { var, delta, pc } => match pc {
                CasAddPc::Read => SubStep::Op(Op::Read(*var)),
                CasAddPc::Cas { seen } => SubStep::Op(Op::cas(*var, *seen, *seen + *delta)),
                CasAddPc::Done => SubStep::Done(Value::Nil),
            },
        }
    }

    fn resume(&mut self, response: Value) {
        match self {
            GroupAddMachine::FArray(m) => m.resume(response),
            GroupAddMachine::CasLoop { pc, .. } => {
                *pc = match *pc {
                    CasAddPc::Read => CasAddPc::Cas {
                        seen: response.expect_int(),
                    },
                    CasAddPc::Cas { seen } => {
                        if response.expect_int() == seen {
                            CasAddPc::Done
                        } else {
                            CasAddPc::Read // contention: retry (unbounded!)
                        }
                    }
                    CasAddPc::Done => panic!("GroupAddMachine resumed after completion"),
                };
            }
        }
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        match self {
            GroupAddMachine::FArray(m) => {
                0u8.hash(&mut h);
                m.fingerprint(h);
            }
            GroupAddMachine::CasLoop { pc, delta, .. } => {
                1u8.hash(&mut h);
                pc.hash(&mut h);
                delta.hash(&mut h);
            }
        }
    }
}

/// Step machine for one `read` on either counter kind (1 step each).
#[derive(Clone, Debug)]
pub enum GroupReadMachine {
    /// Tree root read.
    FArray(ReadMachine),
    /// Single-word read.
    CasLoop {
        /// The counter word.
        var: VarId,
        /// The value, once read.
        done: Option<i64>,
    },
}

impl SubMachine for GroupReadMachine {
    fn poll(&self) -> SubStep {
        match self {
            GroupReadMachine::FArray(m) => m.poll(),
            GroupReadMachine::CasLoop { var, done } => match done {
                None => SubStep::Op(Op::Read(*var)),
                Some(v) => SubStep::Done(Value::Int(*v)),
            },
        }
    }

    fn resume(&mut self, response: Value) {
        match self {
            GroupReadMachine::FArray(m) => m.resume(response),
            GroupReadMachine::CasLoop { done, .. } => {
                assert!(done.is_none(), "GroupReadMachine resumed after completion");
                *done = Some(response.expect_int());
            }
        }
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        match self {
            GroupReadMachine::FArray(m) => {
                0u8.hash(&mut h);
                m.fingerprint(h);
            }
            GroupReadMachine::CasLoop { done, .. } => {
                1u8.hash(&mut h);
                done.hash(&mut h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::{ProcId, Protocol};

    fn drive(mem: &mut Memory, p: ProcId, m: &mut dyn SubMachine) -> (Value, u64) {
        let mut steps = 0;
        loop {
            match m.poll() {
                SubStep::Done(v) => return (v, steps),
                SubStep::Op(op) => {
                    let out = mem.apply(p, &op);
                    steps += 1;
                    m.resume(out.response);
                }
            }
        }
    }

    #[test]
    fn both_kinds_count_identically_solo() {
        for kind in [CounterKind::FArray, CounterKind::CasLoop] {
            let mut layout = Layout::new();
            let c = GroupCounter::allocate(&mut layout, "C", 4, kind);
            let mut mem = Memory::new(&layout, 4, Protocol::WriteBack);
            let mut h = c.handle(0);
            drive(&mut mem, ProcId(0), &mut h.add(3));
            drive(&mut mem, ProcId(0), &mut h.add(-1));
            let (v, steps) = drive(&mut mem, ProcId(0), &mut c.read());
            assert_eq!(v, Value::Int(2), "{kind:?}");
            assert_eq!(steps, 1, "{kind:?}: read is one step");
            assert_eq!(c.peek(&mem), 2);
        }
    }

    #[test]
    fn cas_loop_add_is_two_steps_uncontended() {
        let mut layout = Layout::new();
        let c = GroupCounter::allocate(&mut layout, "C", 8, CounterKind::CasLoop);
        let mut mem = Memory::new(&layout, 8, Protocol::WriteBack);
        let mut h = c.handle(5);
        let (_, steps) = drive(&mut mem, ProcId(5), &mut h.add(1));
        assert_eq!(steps, 2, "read + successful CAS");
    }

    #[test]
    fn cas_loop_retries_under_interference() {
        let mut layout = Layout::new();
        let c = GroupCounter::allocate(&mut layout, "C", 2, CounterKind::CasLoop);
        let mut mem = Memory::new(&layout, 2, Protocol::WriteBack);
        let mut h0 = c.handle(0);
        let mut m = h0.add(1);
        // p0 reads 0...
        if let SubStep::Op(op) = m.poll() {
            let out = mem.apply(ProcId(0), &op);
            m.resume(out.response);
        }
        // ...p1 sneaks a full add in...
        let mut h1 = c.handle(1);
        drive(&mut mem, ProcId(1), &mut h1.add(1));
        // ...so p0's CAS fails and it must retry (2 more steps minimum).
        let (_, remaining) = drive(&mut mem, ProcId(0), &mut m);
        assert!(remaining >= 3, "CAS fail + re-read + CAS, got {remaining}");
        assert_eq!(c.peek(&mem), 2);
    }

    #[test]
    fn farray_mirror_tracks_and_casloop_does_not() {
        let mut layout = Layout::new();
        let fa = GroupCounter::allocate(&mut layout, "A", 2, CounterKind::FArray);
        let cl = GroupCounter::allocate(&mut layout, "B", 2, CounterKind::CasLoop);
        let mut mem = Memory::new(&layout, 2, Protocol::WriteBack);
        let mut hf = fa.handle(0);
        let mut hc = cl.handle(0);
        drive(&mut mem, ProcId(0), &mut hf.add(2));
        drive(&mut mem, ProcId(0), &mut hc.add(2));
        assert_eq!(hf.mirror(), 2);
        assert_eq!(hc.mirror(), 0, "single-word handle is stateless");
    }
}
