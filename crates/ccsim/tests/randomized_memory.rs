//! Randomized tests on the memory model: protocol-independence of values,
//! RMR accounting consistency, and coherence invariants.
//!
//! These are the former proptest suites ported to plain `#[test]`s driven
//! by the in-tree [`Prng`] over fixed seeds, so the workspace tests run
//! with zero external dependencies.

use ccsim::{Layout, Memory, Op, Prng, ProcId, Protocol, Value, VarId};

/// A random `(process, operation)` over `n_procs` processes and `n_vars`
/// variables — the same distribution the proptest strategy generated.
fn random_op(rng: &mut Prng, n_procs: usize, n_vars: usize) -> (ProcId, Op) {
    let p = ProcId(rng.below(n_procs));
    let var = VarId(rng.below(n_vars));
    let val = rng.int_in(-3, 4);
    let op = match rng.below(4) {
        0 => Op::Read(var),
        1 => Op::write(var, val),
        2 => Op::cas(var, val, val + 1),
        _ => Op::Faa { var, delta: val },
    };
    (p, op)
}

fn world(protocol: Protocol, n_procs: usize, n_vars: usize) -> Memory {
    let mut layout = Layout::new();
    for i in 0..n_vars {
        // Give half the variables DSM homes so the DSM runs are varied.
        if i % 2 == 0 {
            layout.var_at(format!("v{i}"), Value::Int(0), i % n_procs);
        } else {
            layout.var(format!("v{i}"), Value::Int(0));
        }
    }
    Memory::new(&layout, n_procs, protocol)
}

/// The protocol affects RMR accounting only: responses, values and
/// triviality are identical across WT, WB and DSM for any schedule.
#[test]
fn protocols_agree_on_values() {
    for seed in 0..128 {
        let mut rng = Prng::new(seed);
        let mut wt = world(Protocol::WriteThrough, 3, 4);
        let mut wb = world(Protocol::WriteBack, 3, 4);
        let mut dsm = world(Protocol::Dsm, 3, 4);
        for _ in 0..120 {
            let (p, op) = random_op(&mut rng, 3, 4);
            let a = wt.apply(p, &op);
            let b = wb.apply(p, &op);
            let c = dsm.apply(p, &op);
            assert_eq!(a.response, b.response, "seed {seed} op {op}");
            assert_eq!(b.response, c.response, "seed {seed} op {op}");
            assert_eq!(a.new, b.new);
            assert_eq!(b.new, c.new);
            assert_eq!(a.trivial, b.trivial);
            assert_eq!(b.trivial, c.trivial);
        }
        assert_eq!(wt.snapshot(), wb.snapshot());
        assert_eq!(wb.snapshot(), dsm.snapshot());
    }
}

/// `would_rmr` always predicts `apply`'s RMR outcome exactly, under
/// every protocol.
#[test]
fn would_rmr_is_exact() {
    for seed in 0..128 {
        let mut rng = Prng::new(seed);
        let protocol = [Protocol::WriteThrough, Protocol::WriteBack, Protocol::Dsm][rng.below(3)];
        let mut mem = world(protocol, 3, 4);
        for _ in 0..120 {
            let (p, op) = random_op(&mut rng, 3, 4);
            let predicted = mem.would_rmr(p, &op);
            let actual = mem.apply(p, &op).rmr;
            assert_eq!(predicted, actual, "seed {seed} {protocol:?} {op:?}");
        }
    }
}

/// Write-back coherence: immediately after any step, re-reading the
/// same variable by the same process is free, and at most one process
/// holds a variable exclusively.
#[test]
fn write_back_coherence_invariants() {
    for seed in 0..128 {
        let mut rng = Prng::new(seed);
        let mut mem = world(Protocol::WriteBack, 4, 3);
        for _ in 0..150 {
            let (p, op) = random_op(&mut rng, 4, 3);
            let v = op.var();
            mem.apply(p, &op);
            // Re-read is always a hit right after any access.
            assert!(
                !mem.would_rmr(p, &Op::Read(v)),
                "re-read after access must hit"
            );
            // Single-writer invariant across caches.
            for var_idx in 0..mem.n_vars() {
                let var = VarId(var_idx);
                let exclusive_holders = (0..mem.n_procs())
                    .filter(|&q| mem.cache(ProcId(q)).holds_exclusive(var))
                    .count();
                assert!(exclusive_holders <= 1, "two exclusive holders of {var}");
                if exclusive_holders == 1 {
                    let shared_elsewhere = (0..mem.n_procs()).any(|q| {
                        let c = mem.cache(ProcId(q));
                        c.holds(var) && !c.holds_exclusive(var)
                    });
                    assert!(!shared_elsewhere, "exclusive + shared copies of {var}");
                }
            }
        }
    }
}

/// DSM RMR accounting is schedule-independent: whether an access is
/// remote depends only on (process, variable).
#[test]
fn dsm_rmr_is_static() {
    for seed in 0..128 {
        let mut rng = Prng::new(seed);
        let mut mem = world(Protocol::Dsm, 3, 4);
        // Record the locality of the first access per (proc, var) pair
        // and demand every later access agrees.
        let mut seen = std::collections::HashMap::new();
        for _ in 0..100 {
            let (p, op) = random_op(&mut rng, 3, 4);
            let rmr = mem.apply(p, &op).rmr;
            let key = (p, op.var());
            if let Some(prev) = seen.insert(key, rmr) {
                assert_eq!(prev, rmr, "DSM locality changed for {key:?}");
            }
        }
    }
}

/// Sequential consistency sanity: a read always returns the value of
/// the latest preceding write/CAS/FAA to that variable.
#[test]
fn reads_return_latest_value() {
    for seed in 0..128 {
        let mut rng = Prng::new(seed);
        let mut mem = world(Protocol::WriteBack, 3, 2);
        let mut shadow = [Value::Int(0); 2];
        for _ in 0..150 {
            let (p, op) = random_op(&mut rng, 3, 2);
            let out = mem.apply(p, &op);
            let v = op.var().0;
            match op {
                Op::Read(_) => assert_eq!(out.response, shadow[v]),
                Op::Write(_, val) => shadow[v] = val,
                Op::Cas { expected, new, .. } => {
                    assert_eq!(out.response, shadow[v]);
                    if shadow[v] == expected {
                        shadow[v] = new;
                    }
                }
                Op::Faa { delta, .. } => {
                    assert_eq!(out.response, shadow[v]);
                    shadow[v] = Value::Int(shadow[v].expect_int() + delta);
                }
            }
        }
    }
}
