//! # modelcheck — exhaustive interleaving exploration for `ccsim` worlds
//!
//! The paper proves the `A_f` family satisfies Mutual Exclusion, Bounded
//! Exit, Deadlock Freedom and Concurrent Entering by hand (Lemmas 8–16).
//! This crate validates those proofs mechanically on small instances: it
//! enumerates **every** reachable interleaving of a simulated world (up to
//! a per-process passage quota), pruning states already visited via
//! configuration fingerprints, and checks safety properties in every
//! reachable configuration.
//!
//! Because simulated algorithms take exactly one shared-memory step per
//! transition, the explored graph is precisely the set of executions the
//! paper's model admits (with CS dwell and passage starts also scheduled
//! nondeterministically).
//!
//! ```
//! use ccsim::Protocol;
//! use modelcheck::{explore, CheckConfig};
//! use wmutex::mutex_world;
//!
//! let report = explore(
//!     || mutex_world(2, Protocol::WriteBack),
//!     &CheckConfig { passages_per_proc: 1, ..Default::default() },
//! ).expect("2-process tournament is safe");
//! assert!(report.complete);
//! assert!(report.states_explored > 50);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use ccsim::{MutualExclusionViolation, ProcId, Sim, Step};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Exploration limits and quotas.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Passages each process performs before becoming permanently idle.
    pub passages_per_proc: u64,
    /// Stop (incomplete) after visiting this many distinct states.
    pub max_states: u64,
    /// Stop (incomplete) past this schedule depth.
    pub max_depth: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            passages_per_proc: 1,
            max_states: 5_000_000,
            max_depth: 100_000,
        }
    }
}

/// A property violation found by the explorer, with the schedule (sequence
/// of process ids) that reproduces it from the initial configuration.
#[derive(Clone, Debug)]
pub enum CheckError {
    /// Mutual Exclusion failed.
    MutualExclusion {
        /// The offending schedule, replayable via [`replay`].
        schedule: Vec<ProcId>,
        /// The occupant list at the violating configuration.
        violation: MutualExclusionViolation,
    },
    /// A user-supplied invariant failed.
    Invariant {
        /// The offending schedule.
        schedule: Vec<ProcId>,
        /// The invariant's message.
        message: String,
    },
}

impl CheckError {
    /// The schedule that reproduces the violation.
    pub fn schedule(&self) -> &[ProcId] {
        match self {
            CheckError::MutualExclusion { schedule, .. } => schedule,
            CheckError::Invariant { schedule, .. } => schedule,
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::MutualExclusion {
                schedule,
                violation,
            } => {
                write!(f, "{violation} (schedule length {})", schedule.len())
            }
            CheckError::Invariant { schedule, message } => {
                write!(
                    f,
                    "invariant failed: {message} (schedule length {})",
                    schedule.len()
                )
            }
        }
    }
}

impl Error for CheckError {}

/// Statistics from a completed exploration.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Distinct configurations visited.
    pub states_explored: u64,
    /// Transitions executed (≥ states, because different schedules rejoin).
    pub transitions: u64,
    /// Deepest schedule examined.
    pub max_depth_seen: usize,
    /// Configurations with no enabled process (all quotas met).
    pub terminal_states: u64,
    /// Whether the whole state space was exhausted (no cap was hit).
    pub complete: bool,
}

/// Quota-aware enabled set: a process may step if it is mid-passage, in
/// the CS, or idle with passages remaining.
fn enabled(sim: &Sim, quota: u64) -> Vec<ProcId> {
    sim.proc_ids()
        .filter(|&p| match sim.poll(p) {
            Step::Op(_) | Step::Cs => true,
            Step::Remainder => sim.stats(p).passages < quota,
        })
        .collect()
}

/// Fingerprint a configuration *including* per-process passage counts
/// (two identical memory/pc states differ for exploration purposes if the
/// remaining quotas differ).
fn state_key(sim: &Sim, quota: u64) -> u64 {
    let mut h = DefaultHasher::new();
    sim.fingerprint().hash(&mut h);
    for p in sim.proc_ids() {
        sim.stats(p).passages.min(quota).hash(&mut h);
    }
    h.finish()
}

/// Exhaustively explore every interleaving of the world produced by
/// `factory`, checking Mutual Exclusion in every reachable configuration.
///
/// # Errors
/// Returns the violating schedule if any reachable configuration breaks
/// Mutual Exclusion.
pub fn explore(factory: impl Fn() -> Sim, cfg: &CheckConfig) -> Result<CheckReport, CheckError> {
    explore_with(factory, cfg, |_| Ok(()))
}

/// Like [`explore`], additionally checking `invariant` in every reachable
/// configuration.
///
/// # Errors
/// Returns the violating schedule on a Mutual Exclusion or invariant
/// failure.
pub fn explore_with(
    factory: impl Fn() -> Sim,
    cfg: &CheckConfig,
    invariant: impl Fn(&Sim) -> Result<(), String>,
) -> Result<CheckReport, CheckError> {
    struct Frame {
        sim: Sim,
        enabled: Vec<ProcId>,
        next: usize,
        /// The pid whose step produced this frame's configuration
        /// (`None` for the root) — used to reconstruct schedules.
        chosen: Option<ProcId>,
    }

    fn schedule_of(stack: &[Frame], last: ProcId) -> Vec<ProcId> {
        stack
            .iter()
            .filter_map(|f| f.chosen)
            .chain(std::iter::once(last))
            .collect()
    }

    let root = factory();
    let quota = cfg.passages_per_proc;
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(state_key(&root, quota));

    let mut report = CheckReport {
        states_explored: 1,
        transitions: 0,
        max_depth_seen: 0,
        terminal_states: 0,
        complete: true,
    };

    let root_enabled = enabled(&root, quota);
    if root_enabled.is_empty() {
        report.terminal_states = 1;
        return Ok(report);
    }
    let mut stack = vec![Frame {
        sim: root,
        enabled: root_enabled,
        next: 0,
        chosen: None,
    }];

    while let Some(top) = stack.last_mut() {
        if top.next >= top.enabled.len() {
            stack.pop();
            continue;
        }
        let p = top.enabled[top.next];
        top.next += 1;

        let mut child = top.sim.clone_world();
        child.step(p);
        report.transitions += 1;

        if let Err(violation) = child.check_mutual_exclusion() {
            return Err(CheckError::MutualExclusion {
                schedule: schedule_of(&stack, p),
                violation,
            });
        }
        if let Err(message) = invariant(&child) {
            return Err(CheckError::Invariant {
                schedule: schedule_of(&stack, p),
                message,
            });
        }

        if !visited.insert(state_key(&child, quota)) {
            continue; // rejoined a known configuration
        }
        report.states_explored += 1;
        report.max_depth_seen = report.max_depth_seen.max(stack.len());

        if report.states_explored >= cfg.max_states || stack.len() >= cfg.max_depth {
            report.complete = false;
            continue; // stop deepening; keep scanning siblings
        }

        let child_enabled = enabled(&child, quota);
        if child_enabled.is_empty() {
            report.terminal_states += 1;
            continue;
        }
        stack.push(Frame {
            sim: child,
            enabled: child_enabled,
            next: 0,
            chosen: Some(p),
        });
    }

    Ok(report)
}

/// Replay a schedule (e.g. from a [`CheckError`]) against a fresh world,
/// returning the final configuration for inspection.
pub fn replay(factory: impl Fn() -> Sim, schedule: &[ProcId]) -> Sim {
    let mut sim = factory();
    for &p in schedule {
        sim.step(p);
    }
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::{Layout, Memory, Op, Phase, Program, Protocol, Role, Value, VarId};

    /// A deliberately broken "lock": processes enter the CS with no
    /// synchronisation at all.
    #[derive(Clone)]
    struct NoLock {
        v: VarId,
        role: Role,
        pc: u8,
    }

    impl Program for NoLock {
        fn poll(&self) -> Step {
            match self.pc {
                0 => Step::Remainder,
                1 => Step::Op(Op::Read(self.v)),
                2 => Step::Cs,
                3 => Step::Op(Op::Read(self.v)),
                _ => unreachable!(),
            }
        }
        fn resume(&mut self, _: Value) {
            self.pc = (self.pc + 1) % 4;
        }
        fn phase(&self) -> Phase {
            [Phase::Remainder, Phase::Entry, Phase::Cs, Phase::Exit][self.pc as usize]
        }
        fn role(&self) -> Role {
            self.role
        }
        fn fingerprint(&self, h: &mut dyn Hasher) {
            h.write_u8(self.pc);
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn broken_world() -> Sim {
        let mut l = Layout::new();
        let v = l.var("x", Value::Int(0));
        let mem = Memory::new(&l, 2, Protocol::WriteBack);
        Sim::new(
            mem,
            vec![
                Box::new(NoLock {
                    v,
                    role: Role::Writer,
                    pc: 0,
                }),
                Box::new(NoLock {
                    v,
                    role: Role::Reader,
                    pc: 0,
                }),
            ],
        )
    }

    #[test]
    fn finds_mutual_exclusion_violation_in_broken_lock() {
        let err = explore(broken_world, &CheckConfig::default()).unwrap_err();
        match &err {
            CheckError::MutualExclusion {
                schedule,
                violation,
            } => {
                assert_eq!(violation.occupants.len(), 2);
                // The schedule must actually reproduce the violation.
                let sim = replay(broken_world, schedule);
                assert!(sim.check_mutual_exclusion().is_err());
            }
            other => panic!("expected MX violation, got {other}"),
        }
    }

    #[test]
    fn tournament_mutex_is_safe_exhaustively() {
        for m in [2usize, 3] {
            let report = explore(
                || wmutex::mutex_world(m, Protocol::WriteBack),
                &CheckConfig {
                    passages_per_proc: 1,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("m={m}: {e}"));
            assert!(report.complete, "m={m}");
            assert!(report.terminal_states > 0, "m={m}");
        }
    }

    #[test]
    fn tournament_mutex_two_passages() {
        let report = explore(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig {
                passages_per_proc: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.complete);
        assert!(report.states_explored > 200);
    }

    #[test]
    fn invariant_hook_fires() {
        // An invariant that rejects any configuration with someone in CS.
        let err = explore_with(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig::default(),
            |sim| {
                if sim.procs_in_cs().is_empty() {
                    Ok(())
                } else {
                    Err("someone entered the CS".into())
                }
            },
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::Invariant { .. }));
        assert!(!err.schedule().is_empty());
    }

    #[test]
    fn caps_mark_report_incomplete() {
        let report = explore(
            || wmutex::mutex_world(3, Protocol::WriteBack),
            &CheckConfig {
                passages_per_proc: 2,
                max_states: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!report.complete);
        assert!(report.states_explored >= 50);
    }

    #[test]
    fn terminal_states_are_quiescent() {
        let report = explore(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig {
                passages_per_proc: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // Terminal configurations exist and are few: the memory residue
        // (e.g. the last `turn` writer) may differ across schedules, but
        // every process is quiescent in each of them.
        assert!(report.terminal_states >= 1);
        assert!(
            report.terminal_states <= 8,
            "got {}",
            report.terminal_states
        );
    }
}
