//! The simulated tournament mutex: the same Peterson-tree algorithm as
//! [`crate::TournamentLock`], expressed as `ccsim` step machines.

use ccsim::{sub, Layout, Op, Phase, Program, Role, Step, SubMachine, SubStep, Value, VarId};
use std::hash::{Hash, Hasher};

/// Shared-memory descriptor of one Peterson node.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
struct SimNode {
    flag: [VarId; 2],
    turn: VarId,
}

/// Shared-memory descriptor of a simulated m-process tournament mutex.
/// Cheap to clone; every competing process holds a clone inside its
/// machines.
#[derive(Debug)]
pub struct SimTournament {
    m: usize,
    width: usize,
    /// Internal nodes, heap indices `1..width` (slot 0 is a dummy).
    nodes: Vec<SimNode>,
}

/// Manual `Clone` so `clone_from` reuses the node `Vec`'s allocation —
/// every [`MutexClient`] carries a copy, and the model checker's
/// recycling pool (see [`ccsim::Sim::clone_world_into`]) overwrites it
/// millions of times per exploration.
impl Clone for SimTournament {
    fn clone(&self) -> Self {
        SimTournament {
            m: self.m,
            width: self.width,
            nodes: self.nodes.clone(),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.m = src.m;
        self.width = src.width;
        self.nodes.clone_from(&src.nodes);
    }
}

impl SimTournament {
    /// Allocate the mutex's variables: per node two `Bool(false)` flags
    /// and an `Int(0)` turn word.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn allocate(layout: &mut Layout, name: &str, m: usize) -> Self {
        assert!(m > 0, "a mutex needs at least one process");
        let width = m.next_power_of_two();
        let nodes = (0..width)
            .map(|x| SimNode {
                flag: [
                    layout.var(format!("{name}.n[{x}].flag0"), Value::Bool(false)),
                    layout.var(format!("{name}.n[{x}].flag1"), Value::Bool(false)),
                ],
                turn: layout.var(format!("{name}.n[{x}].turn"), Value::Int(0)),
            })
            .collect();
        SimTournament { m, width, nodes }
    }

    /// Number of registered processes.
    pub fn processes(&self) -> usize {
        self.m
    }

    /// Tree depth: competitions per passage.
    pub fn levels(&self) -> usize {
        self.width.trailing_zeros() as usize
    }

    /// The `(node, side)` pairs process `p` competes at, bottom-up.
    fn path(&self, p: usize) -> Vec<(SimNode, usize)> {
        assert!(p < self.m, "process id {p} out of range");
        let leaf = self.width + p;
        (0..self.levels())
            .map(|level| (self.nodes[leaf >> (level + 1)], (leaf >> level) & 1))
            .collect()
    }

    /// Start an acquisition for process `p`.
    pub fn enter(&self, p: usize) -> EnterMachine {
        let path = self.path(p);
        EnterMachine {
            pc: if path.is_empty() {
                EnterPc::Done
            } else {
                EnterPc::WriteFlag { lvl: 0 }
            },
            path,
        }
    }

    /// Start a release for process `p` (who must hold the lock).
    pub fn exit(&self, p: usize) -> ExitMachine {
        let mut path = self.path(p);
        path.reverse(); // release top-down
        ExitMachine {
            pc: if path.is_empty() {
                ExitPc::Done
            } else {
                ExitPc::Clear { idx: 0 }
            },
            path,
        }
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum EnterPc {
    WriteFlag { lvl: usize },
    WriteTurn { lvl: usize },
    ReadRival { lvl: usize },
    ReadTurn { lvl: usize },
    Done,
}

/// Step machine for lock acquisition: Peterson entry at each level,
/// bottom-up. Spins locally on `(rival flag, turn)` re-reads.
#[derive(Clone, Debug)]
pub struct EnterMachine {
    path: Vec<(SimNode, usize)>,
    pc: EnterPc,
}

impl EnterMachine {
    fn next_level(&self, lvl: usize) -> EnterPc {
        if lvl + 1 >= self.path.len() {
            EnterPc::Done
        } else {
            EnterPc::WriteFlag { lvl: lvl + 1 }
        }
    }

    /// Withdraw from the tournament: an [`ExitMachine`] that clears
    /// exactly the flags this acquisition has already set, highest level
    /// first. Bounded (one write per set level) and wakeup-safe: a rival
    /// parked at this node re-reads our flag on every spin iteration, so
    /// clearing it unparks the rival exactly as a normal release would.
    /// Aborting before the first flag write yields an already-done
    /// machine.
    pub fn abort(&self) -> ExitMachine {
        // Levels with our flag set: everything below the current pc, plus
        // the current level once its WriteFlag has executed.
        let set = match self.pc {
            EnterPc::WriteFlag { lvl } => lvl,
            EnterPc::WriteTurn { lvl } | EnterPc::ReadRival { lvl } | EnterPc::ReadTurn { lvl } => {
                lvl + 1
            }
            EnterPc::Done => self.path.len(),
        };
        let mut path: Vec<(SimNode, usize)> = self.path[..set].to_vec();
        path.reverse(); // clear top-down, like a normal release
        ExitMachine {
            pc: if path.is_empty() {
                ExitPc::Done
            } else {
                ExitPc::Clear { idx: 0 }
            },
            path,
        }
    }

    /// Injective word encoding of the pc — the dynamic state is one of
    /// five variants plus a level index (< 64 for any conceivable `m`).
    fn pc_code(&self) -> u64 {
        match self.pc {
            EnterPc::WriteFlag { lvl } => (lvl as u64) << 3,
            EnterPc::WriteTurn { lvl } => 1 | ((lvl as u64) << 3),
            EnterPc::ReadRival { lvl } => 2 | ((lvl as u64) << 3),
            EnterPc::ReadTurn { lvl } => 3 | ((lvl as u64) << 3),
            EnterPc::Done => 4,
        }
    }
}

impl SubMachine for EnterMachine {
    fn poll(&self) -> SubStep {
        match self.pc {
            EnterPc::WriteFlag { lvl } => {
                let (node, side) = self.path[lvl];
                SubStep::Op(Op::write(node.flag[side], true))
            }
            EnterPc::WriteTurn { lvl } => {
                let (node, side) = self.path[lvl];
                SubStep::Op(Op::write(node.turn, side as i64))
            }
            EnterPc::ReadRival { lvl } => {
                let (node, side) = self.path[lvl];
                SubStep::Op(Op::Read(node.flag[1 - side]))
            }
            EnterPc::ReadTurn { lvl } => {
                let (node, _) = self.path[lvl];
                SubStep::Op(Op::Read(node.turn))
            }
            EnterPc::Done => SubStep::Done(Value::Nil),
        }
    }

    fn resume(&mut self, response: Value) {
        self.pc = match self.pc {
            EnterPc::WriteFlag { lvl } => EnterPc::WriteTurn { lvl },
            EnterPc::WriteTurn { lvl } => EnterPc::ReadRival { lvl },
            EnterPc::ReadRival { lvl } => {
                if response.expect_bool() {
                    EnterPc::ReadTurn { lvl }
                } else {
                    self.next_level(lvl)
                }
            }
            EnterPc::ReadTurn { lvl } => {
                let (_, side) = self.path[lvl];
                if response.expect_int() == side as i64 {
                    EnterPc::ReadRival { lvl } // still our turn to wait: spin
                } else {
                    self.next_level(lvl)
                }
            }
            EnterPc::Done => panic!("EnterMachine resumed after completion"),
        };
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        self.pc.hash(&mut h);
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum ExitPc {
    Clear { idx: usize },
    Done,
}

/// Step machine for lock release: clear our flag at each level, top-down.
/// Bounded: exactly `levels()` writes.
#[derive(Clone, Debug)]
pub struct ExitMachine {
    /// Path in release (top-down) order.
    path: Vec<(SimNode, usize)>,
    pc: ExitPc,
}

impl ExitMachine {
    /// Injective word encoding of the pc (see [`EnterMachine::pc_code`]).
    fn pc_code(&self) -> u64 {
        match self.pc {
            ExitPc::Clear { idx } => (idx as u64) << 1,
            ExitPc::Done => 1,
        }
    }
}

impl SubMachine for ExitMachine {
    fn poll(&self) -> SubStep {
        match self.pc {
            ExitPc::Clear { idx } => {
                let (node, side) = self.path[idx];
                SubStep::Op(Op::write(node.flag[side], false))
            }
            ExitPc::Done => SubStep::Done(Value::Nil),
        }
    }

    fn resume(&mut self, _response: Value) {
        self.pc = match self.pc {
            ExitPc::Clear { idx } if idx + 1 < self.path.len() => ExitPc::Clear { idx: idx + 1 },
            ExitPc::Clear { .. } => ExitPc::Done,
            ExitPc::Done => panic!("ExitMachine resumed after completion"),
        };
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        self.pc.hash(&mut h);
    }
}

/// A complete simulated mutex client: repeatedly acquires the tournament
/// lock, occupies the CS, and releases. Used to measure the `O(log m)`
/// writer-side RMR bound (experiment E6) and to model-check the mutex.
#[derive(Debug)]
pub struct MutexClient {
    mutex: SimTournament,
    id: usize,
    role: Role,
    state: ClientState,
}

/// Manual `Clone` forwarding `clone_from` to [`SimTournament`]'s
/// allocation-reusing one (the recycling-pool hot path).
impl Clone for MutexClient {
    fn clone(&self) -> Self {
        MutexClient {
            mutex: self.mutex.clone(),
            id: self.id,
            role: self.role,
            state: self.state.clone(),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.mutex.clone_from(&src.mutex);
        self.id = src.id;
        self.role = src.role;
        self.state.clone_from(&src.state);
    }
}

#[derive(Debug)]
enum ClientState {
    Remainder,
    Entering(EnterMachine),
    Cs,
    Exiting(ExitMachine),
    /// Withdrawing from a not-yet-won tournament (see
    /// [`EnterMachine::abort`]): clearing the flags already set, after
    /// which the client returns to the remainder *without* a passage.
    Aborting(ExitMachine),
}

/// Manual `Clone` so same-variant `clone_from` reuses the contained
/// machine's path `Vec` (processes spend most explored configurations
/// mid-entry or mid-exit, so this is the common case in the recycling
/// pool).
impl Clone for ClientState {
    fn clone(&self) -> Self {
        match self {
            ClientState::Remainder => ClientState::Remainder,
            ClientState::Entering(m) => ClientState::Entering(m.clone()),
            ClientState::Cs => ClientState::Cs,
            ClientState::Exiting(m) => ClientState::Exiting(m.clone()),
            ClientState::Aborting(m) => ClientState::Aborting(m.clone()),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        match (self, src) {
            (ClientState::Entering(dst), ClientState::Entering(s)) => {
                dst.path.clone_from(&s.path);
                dst.pc = s.pc;
            }
            (ClientState::Exiting(dst), ClientState::Exiting(s))
            | (ClientState::Aborting(dst), ClientState::Aborting(s)) => {
                dst.path.clone_from(&s.path);
                dst.pc = s.pc;
            }
            (slot, s) => *slot = s.clone(),
        }
    }
}

impl MutexClient {
    /// A client for process `id` of `mutex` (reported as a writer, since a
    /// mutex passage is always exclusive).
    pub fn new(mutex: SimTournament, id: usize) -> Self {
        Self::with_role(mutex, id, Role::Writer)
    }

    /// A client reporting the given role — used when a plain mutex stands
    /// in as a (degenerate) reader-writer lock, where "reader" clients
    /// still take the lock exclusively.
    pub fn with_role(mutex: SimTournament, id: usize, role: Role) -> Self {
        MutexClient {
            mutex,
            id,
            role,
            state: ClientState::Remainder,
        }
    }
}

impl Program for MutexClient {
    ccsim::impl_program_in_place_clone!();

    fn poll(&self) -> Step {
        match &self.state {
            ClientState::Remainder => Step::Remainder,
            ClientState::Entering(m) => Step::Op(sub::poll_op(m)),
            ClientState::Cs => Step::Cs,
            ClientState::Exiting(m) => Step::Op(sub::poll_op(m)),
            ClientState::Aborting(m) => Step::Op(sub::poll_op(m)),
        }
    }

    fn resume(&mut self, response: Value) {
        self.state = match std::mem::replace(&mut self.state, ClientState::Remainder) {
            ClientState::Remainder => {
                let enter = self.mutex.enter(self.id);
                if matches!(enter.poll(), SubStep::Done(_)) {
                    ClientState::Cs // m = 1: empty tournament
                } else {
                    ClientState::Entering(enter)
                }
            }
            ClientState::Entering(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => ClientState::Cs,
                sub::Drive::Running => ClientState::Entering(m),
            },
            ClientState::Cs => {
                let exit = self.mutex.exit(self.id);
                if matches!(exit.poll(), SubStep::Done(_)) {
                    ClientState::Remainder
                } else {
                    ClientState::Exiting(exit)
                }
            }
            ClientState::Exiting(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => ClientState::Remainder,
                sub::Drive::Running => ClientState::Exiting(m),
            },
            ClientState::Aborting(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => ClientState::Remainder,
                sub::Drive::Running => ClientState::Aborting(m),
            },
        };
    }

    fn phase(&self) -> Phase {
        match self.state {
            ClientState::Remainder => Phase::Remainder,
            ClientState::Entering(_) => Phase::Entry,
            ClientState::Cs => Phase::Cs,
            ClientState::Exiting(_) => Phase::Exit,
            // Withdrawal is still part of the (failed) entry attempt: the
            // client has never reached the CS, so it is not "exiting".
            ClientState::Aborting(_) => Phase::Entry,
        }
    }

    fn role(&self) -> Role {
        self.role
    }

    fn on_crash(&mut self) {
        // A crash while holding (or contending for) the tournament leaves
        // its flags in shared memory; the client restarts from the
        // remainder section.
        self.state = ClientState::Remainder;
    }

    fn can_abort(&self) -> bool {
        // Withdrawal is only meaningful while still competing for the
        // lock; once the tournament is won the passage is committed.
        matches!(self.state, ClientState::Entering(_))
    }

    fn on_abort(&mut self) {
        let ClientState::Entering(m) = &self.state else {
            unreachable!("on_abort called without can_abort");
        };
        let exit = m.abort();
        self.state = if matches!(exit.poll(), SubStep::Done(_)) {
            ClientState::Remainder // nothing set yet: instant withdrawal
        } else {
            ClientState::Aborting(exit)
        };
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        match &self.state {
            ClientState::Remainder => 0u8.hash(&mut h),
            ClientState::Entering(m) => {
                1u8.hash(&mut h);
                m.fingerprint(h);
            }
            ClientState::Cs => 2u8.hash(&mut h),
            ClientState::Exiting(m) => {
                3u8.hash(&mut h);
                m.fingerprint(h);
            }
            ClientState::Aborting(m) => {
                4u8.hash(&mut h);
                m.fingerprint(h);
            }
        }
    }

    /// Fast path for the simulator's incremental configuration
    /// fingerprint: the whole dynamic state (state tag + nested machine
    /// pc) packs injectively into one word, so skip the hasher walk
    /// entirely. Covers exactly the state [`Program::fingerprint`] hashes
    /// (`mutex`/`id`/`role` are construction-time constants).
    fn fingerprint64(&self) -> u64 {
        let code = match &self.state {
            ClientState::Remainder => 0,
            ClientState::Entering(m) => 1 | (m.pc_code() << 2),
            ClientState::Cs => 2,
            ClientState::Exiting(m) => 3 | (m.pc_code() << 2),
            // ≡ 4 (mod 8): disjoint from 0, 2, the ≡1 (mod 4) Entering
            // codes and the ≡3 (mod 4) Exiting codes.
            ClientState::Aborting(m) => 4 | (m.pc_code() << 3),
        };
        ccsim::mix64(code)
    }
}

/// Build a ready-to-run world of `m` mutex clients sharing one tournament
/// lock, under the given protocol.
pub fn mutex_world(m: usize, protocol: ccsim::Protocol) -> ccsim::Sim {
    let mut layout = Layout::new();
    let mutex = SimTournament::allocate(&mut layout, "WL", m);
    let mem = ccsim::Memory::new(&layout, m, protocol);
    let procs: Vec<Box<dyn Program>> = (0..m)
        .map(|i| Box::new(MutexClient::new(mutex.clone(), i)) as Box<dyn Program>)
        .collect();
    ccsim::Sim::new(mem, procs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::{run_random, run_round_robin, Prng, ProcId, Protocol, RunConfig};

    #[test]
    fn round_robin_passages_complete_for_various_m() {
        for m in [1usize, 2, 3, 4, 5, 8] {
            let mut sim = mutex_world(m, Protocol::WriteBack);
            let cfg = RunConfig {
                passages_per_proc: 3,
                ..Default::default()
            };
            let report = run_round_robin(&mut sim, &cfg).unwrap_or_else(|e| panic!("m={m}: {e}"));
            assert!(report.completed.iter().all(|&c| c == 3), "m={m}");
        }
    }

    #[test]
    fn random_schedules_preserve_mutual_exclusion() {
        for seed in 0..20 {
            let mut sim = mutex_world(4, Protocol::WriteBack);
            let mut rng = Prng::new(seed);
            let cfg = RunConfig {
                passages_per_proc: 5,
                ..Default::default()
            };
            run_random(&mut sim, &mut rng, &cfg).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn solo_passage_rmrs_are_logarithmic() {
        for m in [2usize, 4, 16, 64, 256] {
            let mut sim = mutex_world(m, Protocol::WriteBack);
            let p = ProcId(0);
            // One uncontended passage.
            let cfg = RunConfig {
                passages_per_proc: 1,
                ..Default::default()
            };
            // Drive only process 0 by using run_solo.
            ccsim::run_solo(&mut sim, p, 10_000, |s| s.stats(p).passages == 1).unwrap();
            let _ = cfg;
            let rmrs = sim.stats(p).rmrs();
            let levels = (m.next_power_of_two().trailing_zeros()) as u64;
            // Peterson entry: 2 writes + 1-2 reads per level; exit: 1 write.
            assert!(rmrs >= 3 * levels, "m={m}: rmrs={rmrs}");
            assert!(rmrs <= 6 * levels + 2, "m={m}: rmrs={rmrs}");
        }
    }

    #[test]
    fn write_through_also_completes() {
        let mut sim = mutex_world(3, Protocol::WriteThrough);
        let cfg = RunConfig {
            passages_per_proc: 2,
            ..Default::default()
        };
        run_round_robin(&mut sim, &cfg).unwrap();
    }

    #[test]
    fn fast_fingerprint64_never_aliases_states_the_hash_walk_separates() {
        // The hand-rolled `fingerprint64` must be a function of exactly
        // the state `fingerprint` hashes: associate each fast digest with
        // the full hasher-walk digest and demand the mapping stays 1:1
        // across a long random execution (including crashes and aborts).
        use std::collections::HashMap;
        let mut seen: HashMap<u64, u64> = HashMap::new();
        let mut sim = mutex_world(3, Protocol::WriteBack);
        let mut rng = Prng::new(0xfa57_f1e1);
        let mut distinct = 0usize;
        for i in 0..6000 {
            let p = ProcId(rng.below(3));
            if i % 97 == 96 {
                sim.crash(p);
            } else if i % 53 == 52 {
                sim.abort(p); // tolerated no-op unless mid-entry
            } else {
                sim.step(p);
            }
            for q in 0..3 {
                let prog = sim.program(ProcId(q));
                let mut h = ccsim::FxHasher::default();
                prog.fingerprint(&mut h);
                let walk = h.finish();
                match seen.insert(prog.fingerprint64(), walk) {
                    None => distinct += 1,
                    Some(prev) => assert_eq!(
                        prev, walk,
                        "fingerprint64 aliased two states the walk separates"
                    ),
                }
            }
        }
        assert!(distinct > 10, "execution explored too few distinct states");
    }

    /// Drive `p` alone until it reaches the remainder section, returning
    /// the number of steps taken. Panics after `limit` steps.
    fn drive_to_remainder(sim: &mut ccsim::Sim, p: ProcId, limit: u64) -> u64 {
        ccsim::run_solo(sim, p, limit, |s| s.phase(p) == Phase::Remainder)
            .unwrap_or_else(|| panic!("{p} did not return to remainder within {limit} steps"))
    }

    #[test]
    fn abort_mid_entry_is_bounded_and_counts_as_abort() {
        let mut sim = mutex_world(4, Protocol::WriteBack);
        let p = ProcId(0);
        // Step into the entry section (past the first flag write).
        for _ in 0..4 {
            sim.step(p);
        }
        assert_eq!(sim.phase(p), Phase::Entry);
        assert!(sim.abort(p).is_some(), "entry section must be abortable");
        let levels = 2; // m = 4
        let steps = drive_to_remainder(&mut sim, p, 2 * levels + 2);
        assert!(
            steps <= levels + 1,
            "withdrawal must clear at most one flag per set level, took {steps}"
        );
        assert_eq!(sim.stats(p).aborts, 1);
        assert_eq!(sim.stats(p).passages, 0, "an abort is not a passage");
    }

    #[test]
    fn abort_releases_a_parked_rival_without_losing_wakeups() {
        // p0 owns the lock; p1 parks in the tree behind it; p1 aborts.
        // p0 must then complete a *second* passage, and p1 a fresh one —
        // the withdrawal left no stale flag that blocks anyone.
        let mut sim = mutex_world(2, Protocol::WriteBack);
        let (p0, p1) = (ProcId(0), ProcId(1));
        ccsim::run_solo(&mut sim, p0, 1_000, |s| s.phase(p0) == Phase::Cs).unwrap();
        // p1 sets its flag and starts spinning on the rival's.
        for _ in 0..8 {
            sim.step(p1);
        }
        assert_eq!(sim.phase(p1), Phase::Entry);
        assert!(sim.abort(p1).is_some());
        drive_to_remainder(&mut sim, p1, 16);
        assert_eq!(sim.stats(p1).aborts, 1);
        // Both processes still make progress after the withdrawal.
        ccsim::run_solo(&mut sim, p0, 1_000, |s| s.stats(p0).passages == 2).unwrap();
        ccsim::run_solo(&mut sim, p1, 1_000, |s| s.stats(p1).passages == 1).unwrap();
    }

    #[test]
    fn abort_is_refused_outside_the_entry_section() {
        let mut sim = mutex_world(2, Protocol::WriteBack);
        let p = ProcId(0);
        assert!(sim.abort(p).is_none(), "remainder is not abortable");
        ccsim::run_solo(&mut sim, p, 1_000, |s| s.phase(p) == Phase::Cs).unwrap();
        assert!(sim.abort(p).is_none(), "the CS is committed");
        sim.step(p); // start exiting
        assert_eq!(sim.phase(p), Phase::Exit);
        assert!(sim.abort(p).is_none(), "the exit section is committed");
        drive_to_remainder(&mut sim, p, 16);
        assert_eq!(sim.stats(p).passages, 1);
        assert_eq!(sim.stats(p).aborts, 0);
    }

    #[test]
    fn abort_before_first_flag_write_is_instant() {
        let mut sim = mutex_world(4, Protocol::WriteBack);
        let p = ProcId(2);
        sim.step(p); // Remainder -> Entering, first flag write still pending
        assert_eq!(sim.phase(p), Phase::Entry);
        assert!(sim.abort(p).is_some());
        assert_eq!(sim.phase(p), Phase::Remainder, "nothing set: instant");
        assert_eq!(sim.stats(p).aborts, 1);
    }

    #[test]
    fn enter_machine_for_single_process_is_instant() {
        let mut layout = Layout::new();
        let t = SimTournament::allocate(&mut layout, "WL", 1);
        assert!(matches!(t.enter(0).poll(), SubStep::Done(_)));
        assert!(matches!(t.exit(0).poll(), SubStep::Done(_)));
    }
}
