//! The unified experiment driver: runs registered experiments (see
//! [`bench::experiments`]), renders structured reports, and gates them
//! against the goldens under `results/`.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- --list
//! cargo run --release -p bench --bin experiments -- --check
//! cargo run --release -p bench --bin experiments -- --smoke --check
//! cargo run --release -p bench --bin experiments -- --filter e2,e15 --bless
//! ```

fn main() {
    let opts = match bench::exp::parse_args(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", bench::exp::USAGE);
            std::process::exit(if msg.is_empty() { 0 } else { 2 });
        }
    };
    std::process::exit(bench::exp::cli_main(&opts));
}
