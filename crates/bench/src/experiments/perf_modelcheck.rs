//! perf_modelcheck — states/sec of the exhaustive explorer across its
//! operating points: the pre-PR-3 `Symmetry::FullRehash` SipHash
//! baseline, the O(1) incremental Zobrist keys (sequential), the
//! parallel explorer, and the `Symmetry::Quotient` symmetry-reduced
//! visited set on the CAS-loop `A_f` world (the lock family that
//! declares reader symmetry classes). Concrete-key runs must report
//! byte-identical state counts (two independent hash families agreeing
//! is the aliasing oracle); the quotient run must land inside the
//! orbit-counting bounds and hold the ≥ 1.8× reduction floor.
//!
//! Two PR-10 lanes cover the set-based visited store:
//!
//! * **LDD A/B** (both modes): the same quotient workload explored
//!   under `VisitedBackend::Hash` and `VisitedBackend::Ldd`, reporting
//!   both resident-byte footprints side by side. The gated floor is
//!   the LDD's **compression vs explicit vector storage**
//!   (`states × vector_words × 8` bytes ÷ LDD resident bytes) — ≥ 4×
//!   on the full workload (CAS-loop n=3 crash_budget=2, ~1.59M
//!   orbits), ≥ 1.25× on the smaller smoke workload (n=2
//!   crash_budget=1, ~21k orbits). The lossy 8-byte-fingerprint hash
//!   rows are reported, not gated: no lossless store can beat ~10–16
//!   B/state on bytes — the LDD buys *exactness* (see DESIGN.md
//!   "Set-based visited store").
//! * **Newly feasible** (full mode): CAS-loop n=4 crash_budget=2 —
//!   19.6M quotient orbits, past the 50M-concrete-state horizon
//!   without symmetry — exhausted under a wall-clock *and* resident-
//!   byte ceiling.
//!
//! Full mode times everything, closes with the headline instances —
//! the historical two-crash f-array space (past the checker's default
//! 5M-state cap before PR 3), the n=3 A/B workload above, and the n=4
//! space — asserts the perf floors, and writes `BENCH_modelcheck.json`
//! (override: `BENCH_MODELCHECK_OUT`); its wall-clock content makes
//! the report non-byte-stable, so [`Experiment::deterministic`] is
//! false there. Smoke mode runs the crash-free spaces once per
//! operating point plus the A/B lane *sequentially* (final LDD/hash
//! stats are worker-count-independent, but sequential exploration
//! removes even that variable) and reports only deterministic columns
//! (state counts, resident bytes after the store's final
//! compact-and-shrink, node counts), so the compression floor gates in
//! smoke too.
//!
//! `BENCH_MODELCHECK_SYMMETRY` overrides the symmetry of the n=4
//! newly-feasible lane (default `quotient`) for manual A/B runs;
//! malformed values abort loudly, mirroring `BENCH_THREADS`. The
//! lane's gates assume the default: without the quotient the n=4
//! space blows the 50M-state cap.

use super::prelude::*;
use crate::par;
use modelcheck::{explore, explore_par, CheckConfig, CheckReport, Symmetry, VisitedBackend};
use rwcore::{af_world, af_world_custom, CounterKind, HelpOrder};
use std::str::FromStr;
use std::time::Instant;

const SAMPLES: usize = 5;

/// The symmetry-reduction floor the quotient must hold on the
/// one-class two-reader worlds (2! = 2 is the ceiling).
const REDUCTION_FLOOR: f64 = 1.8;

/// LDD compression floor (explicit vector bytes ÷ LDD resident bytes)
/// on the full A/B workload: measured 4.67× at CAS-loop n=3
/// crash_budget=2.
const LDD_FLOOR_FULL: f64 = 4.0;

/// LDD compression floor on the smoke A/B workload: measured 1.71× at
/// CAS-loop n=2 crash_budget=1 (smaller sets share less structure).
const LDD_FLOOR_SMOKE: f64 = 1.25;

/// State floor for the n=4 newly-feasible lane (measured 19,603,283
/// orbits).
const NEWLY_FEASIBLE_STATE_FLOOR: u64 = 10_000_000;

/// Wall-clock ceiling for the n=4 lane (measured ~116s on a single
/// core; the ceiling leaves headroom for slower hosts, not for
/// regressions of kind).
const NEWLY_FEASIBLE_WALL_CEILING_SECS: f64 = 600.0;

/// Resident-byte ceiling for the n=4 lane's visited store (measured
/// 264,241,152 B = 13.5 B/orbit under quotient × hash).
const NEWLY_FEASIBLE_RESIDENT_CEILING: u64 = 384 * 1024 * 1024;

fn af_factory(crash_budget: u32) -> (impl Fn() -> ccsim::Sim + Sync, CheckConfig) {
    let cfg = AfConfig {
        readers: 2,
        writers: 1,
        policy: FPolicy::One,
    };
    let check = CheckConfig {
        passages_per_proc: 1,
        crash_budget,
        max_states: 50_000_000,
        ..Default::default()
    };
    (move || af_world(cfg, Protocol::WriteBack).sim, check)
}

/// The CAS-loop `A_f` world: single-CAS-word group counters, so the
/// world declares one reader symmetry class per group (see
/// `rwcore::reader_symmetry_classes`) and the quotient backend has
/// orbits to merge.
fn casloop_factory(
    readers: usize,
    crash_budget: u32,
) -> (impl Fn() -> ccsim::Sim + Sync, CheckConfig) {
    let cfg = AfConfig {
        readers,
        writers: 1,
        policy: FPolicy::One,
    };
    let check = CheckConfig {
        passages_per_proc: 1,
        crash_budget,
        max_states: 50_000_000,
        ..Default::default()
    };
    (
        move || {
            af_world_custom(
                cfg,
                Protocol::WriteBack,
                HelpOrder::WaitersFirst,
                CounterKind::CasLoop,
            )
            .sim
        },
        check,
    )
}

/// Parse a `BENCH_MODELCHECK_SYMMETRY` setting (the symmetry override
/// for the newly-feasible instance lane).
///
/// `None` (the variable is unset) means "use the default
/// [`Symmetry::Quotient`]" and returns `Ok(None)`. Anything else must
/// be an exact [`Symmetry`] token (`off`, `quotient`, `full_rehash`);
/// malformed values are errors so a typo'd override fails loudly
/// instead of silently benchmarking the wrong backend — which would
/// quietly void the A/B comparison the variable exists for.
pub(crate) fn parse_bench_symmetry(raw: Option<&str>) -> Result<Option<Symmetry>, String> {
    crate::env::parse_strict("BENCH_MODELCHECK_SYMMETRY", raw, Symmetry::from_str)
}

/// The symmetry for the newly-feasible lane:
/// `BENCH_MODELCHECK_SYMMETRY` if set, [`Symmetry::Quotient`]
/// otherwise.
///
/// # Panics
/// Panics with a clear message on a malformed override (see
/// [`parse_bench_symmetry`]).
fn headline_symmetry() -> Symmetry {
    let raw = crate::env::raw_var("BENCH_MODELCHECK_SYMMETRY");
    match parse_bench_symmetry(raw.as_deref()) {
        Ok(Some(s)) => s,
        Ok(None) => Symmetry::Quotient,
        Err(msg) => panic!("{msg}"),
    }
}

/// One timed run of an exploration mode.
fn timed(mut run: impl FnMut() -> CheckReport) -> (f64, CheckReport) {
    let start = Instant::now();
    let report = run();
    (start.elapsed().as_secs_f64(), report)
}

/// Registry entry for the model-checker throughput benchmark.
pub(crate) struct PerfModelcheck;

impl Experiment for PerfModelcheck {
    fn id(&self) -> &'static str {
        "perf_modelcheck"
    }

    fn title(&self) -> &'static str {
        "explorer states/sec: full-rehash vs incremental vs parallel vs quotient, hash vs LDD"
    }

    fn claim(&self) -> &'static str {
        "PR-3 perf floors (incremental >= 2x full-rehash, parallel >= 3x with >= 4 workers, identical counts), the symmetry quotient (>= 1.8x reduction, the n=3 two-crash space exhausted), and the LDD visited store: identical counts to the hash backend and >= 4x compression vs explicit vector storage at the fixed A/B workload, with the n=4 two-crash space (19.6M orbits) exhausted under wall-clock and resident-byte ceilings"
    }

    fn deterministic(&self, mode: Mode) -> bool {
        // Full mode renders wall-clock states/sec; smoke renders only
        // the deterministic state counts and store footprints.
        mode == Mode::Smoke
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let workers = par::worker_count(usize::MAX);
        // Validate the symmetry override up front: a typo'd
        // BENCH_MODELCHECK_SYMMETRY must abort before the minutes of
        // timed runs that precede its only consumer (the full-mode
        // newly-feasible lane).
        let new_symmetry = headline_symmetry();
        // Smoke explores the crash-free spaces (a fraction of the
        // crash_budget=1 spaces) once per mode, counts only.
        let crash_budget = if ctx.smoke() { 0 } else { 1 };
        let samples = if ctx.smoke() { 1 } else { SAMPLES };
        let (factory, check) = af_factory(crash_budget);
        let full_cfg = CheckConfig {
            symmetry: Symmetry::FullRehash,
            ..check.clone()
        };
        let (sym_factory, sym_check) = casloop_factory(2, crash_budget);
        let quo_cfg = CheckConfig {
            symmetry: Symmetry::Quotient,
            ..sym_check.clone()
        };

        // Best-of-samples per mode, with the modes *interleaved*
        // round-robin: a noisy-neighbor phase on a shared host then
        // penalises every mode equally instead of skewing whichever one
        // it happened to overlap.
        let (mut full_secs, mut inc_secs, mut par_secs) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let (mut full_report, mut inc_report, mut par_report) = (None, None, None);
        let (mut off_secs, mut quo_secs) = (f64::INFINITY, f64::INFINITY);
        let (mut off_report, mut quo_report) = (None, None);
        for _ in 0..samples {
            let (s, r) = timed(|| explore(&factory, &full_cfg).expect("A_f crash space is safe"));
            full_secs = full_secs.min(s);
            full_report = Some(r);
            let (s, r) = timed(|| explore(&factory, &check).expect("A_f crash space is safe"));
            inc_secs = inc_secs.min(s);
            inc_report = Some(r);
            let (s, r) =
                timed(|| explore_par(&factory, &check, workers).expect("A_f crash space is safe"));
            par_secs = par_secs.min(s);
            par_report = Some(r);
            let (s, r) =
                timed(|| explore(&sym_factory, &sym_check).expect("CAS-loop crash space is safe"));
            off_secs = off_secs.min(s);
            off_report = Some(r);
            let (s, r) =
                timed(|| explore(&sym_factory, &quo_cfg).expect("CAS-loop crash space is safe"));
            quo_secs = quo_secs.min(s);
            quo_report = Some(r);
        }
        let (full_report, inc_report, par_report) = (
            full_report.expect("samples >= 1"),
            inc_report.expect("samples >= 1"),
            par_report.expect("samples >= 1"),
        );
        let (off_report, quo_report) = (
            off_report.expect("samples >= 1"),
            quo_report.expect("samples >= 1"),
        );

        let all_complete = full_report.complete
            && inc_report.complete
            && par_report.complete
            && off_report.complete
            && quo_report.complete;
        let counts_agree = full_report.counts() == inc_report.counts()
            && inc_report.counts() == par_report.counts();

        let states = inc_report.states_explored as f64;
        let full_sps = states / full_secs;
        let inc_sps = states / inc_secs;
        let par_sps = states / par_secs;
        let inc_speedup = inc_sps / full_sps;
        let par_speedup = par_sps / full_sps;

        let off_states = off_report.states_explored;
        let quo_states = quo_report.states_explored;
        let reduction = off_states as f64 / quo_states as f64;
        // One class of two readers: orbits hold 1 or 2 concrete states,
        // so any reduction outside (1, 2] is a quotient-key bug.
        let bounds_hold = quo_states <= off_states && off_states <= quo_states * 2;
        let off_sps = off_states as f64 / off_secs;
        let quo_sps = quo_states as f64 / quo_secs;

        let workload = format!("A_f n=2 m=1 passages=1 crash_budget={crash_budget} writeback");
        let sym_workload =
            format!("A_f(CasLoop) n=2 m=1 passages=1 crash_budget={crash_budget} writeback");
        let mut report = Report::new(self, ctx);
        let mut table = if ctx.smoke() {
            Table::new(["mode", "states", "visited", "complete"])
        } else {
            Table::new([
                "mode",
                "states",
                "states/s",
                "speedup",
                "visited",
                "resident_bytes",
            ])
        };
        let par_label = format!("parallel({workers})");
        let rows: [(&str, &CheckReport, f64, f64); 3] = [
            ("full-rehash", &full_report, full_sps, 1.0),
            ("incremental", &inc_report, inc_sps, inc_speedup),
            (&par_label, &par_report, par_sps, par_speedup),
        ];
        for (label, r, sps, speedup) in rows {
            if ctx.smoke() {
                table.row([
                    label.to_string(),
                    r.states_explored.to_string(),
                    r.visited.entries.to_string(),
                    r.complete.to_string(),
                ]);
            } else {
                table.row([
                    label.to_string(),
                    r.states_explored.to_string(),
                    format!("{sps:.0}"),
                    format!("{speedup:.2}x"),
                    r.visited.entries.to_string(),
                    r.visited.resident_bytes.to_string(),
                ]);
            }
        }
        report.section(workload.clone(), table);

        // The symmetry A/B on the class-declaring world: same backend
        // storage, concrete vs canonical keys.
        let mut sym_table = if ctx.smoke() {
            Table::new(["backend", "states", "visited", "complete"])
        } else {
            Table::new(["backend", "states", "states/s", "visited", "resident_bytes"])
        };
        let sym_rows: [(&str, &CheckReport, f64); 2] = [
            ("off (concrete)", &off_report, off_sps),
            ("quotient", &quo_report, quo_sps),
        ];
        for (label, r, sps) in sym_rows {
            if ctx.smoke() {
                sym_table.row([
                    label.to_string(),
                    r.states_explored.to_string(),
                    r.visited.entries.to_string(),
                    r.complete.to_string(),
                ]);
            } else {
                sym_table.row([
                    label.to_string(),
                    r.states_explored.to_string(),
                    format!("{sps:.0}"),
                    r.visited.entries.to_string(),
                    r.visited.resident_bytes.to_string(),
                ]);
            }
        }
        report.section(sym_workload.clone(), sym_table);

        // The hash-vs-LDD A/B on a fixed quotient workload. Smoke runs
        // the ~21k-orbit n=2 one-crash space sequentially (every
        // reported column is deterministic); full runs the ~1.59M-orbit
        // n=3 two-crash space with the parallel explorer. The gated
        // floor is compression vs *explicit* vector storage — the hash
        // rows are the lossy baseline the LDD is deliberately not
        // measured against on bytes (DESIGN.md "Set-based visited
        // store" has the information-theoretic argument).
        let (ab_readers, ab_crash, ldd_floor) = if ctx.smoke() {
            (2usize, 1u32, LDD_FLOOR_SMOKE)
        } else {
            (3, 2, LDD_FLOOR_FULL)
        };
        let (ab_factory, ab_check) = casloop_factory(ab_readers, ab_crash);
        let ab_hash_cfg = CheckConfig {
            symmetry: Symmetry::Quotient,
            ..ab_check.clone()
        };
        let ab_ldd_cfg = CheckConfig {
            symmetry: Symmetry::Quotient,
            backend: VisitedBackend::Ldd,
            ..ab_check
        };
        // The canonical vector length is fixed per world; + 3 for the
        // crash/abort/passage budget words the visited key appends.
        let vector_words = {
            let mut v = Vec::new();
            ab_factory().canonical_vec(&mut v);
            v.len() as u64 + 3
        };
        let ab_expect = "CAS-loop A/B space is safe";
        let (ab_hash_secs, ab_hash) = if ctx.smoke() {
            timed(|| explore(&ab_factory, &ab_hash_cfg).expect(ab_expect))
        } else {
            timed(|| explore_par(&ab_factory, &ab_hash_cfg, workers).expect(ab_expect))
        };
        let (ab_ldd_secs, ab_ldd) = if ctx.smoke() {
            timed(|| explore(&ab_factory, &ab_ldd_cfg).expect(ab_expect))
        } else {
            timed(|| explore_par(&ab_factory, &ab_ldd_cfg, workers).expect(ab_expect))
        };
        let explicit_bytes = ab_ldd.visited.entries * vector_words * 8;
        let compression = explicit_bytes as f64 / ab_ldd.visited.resident_bytes.max(1) as f64;
        let ab_counts_agree = ab_hash.counts() == ab_ldd.counts();
        let ab_complete = ab_hash.complete && ab_ldd.complete;
        let ab_workload = format!(
            "A_f(CasLoop) n={ab_readers} m=1 passages=1 crash_budget={ab_crash} writeback quotient"
        );

        let mut ab_table = if ctx.smoke() {
            Table::new([
                "backend",
                "states",
                "resident_bytes",
                "ldd nodes",
                "complete",
            ])
        } else {
            Table::new([
                "backend",
                "states",
                "seconds",
                "states/s",
                "resident_bytes",
                "ldd nodes",
                "op-cache hit",
            ])
        };
        let hit_cell = |r: &CheckReport| match r.visited.op_cache_hit_rate() {
            Some(rate) => format!("{:.1}%", rate * 100.0),
            None => "-".to_string(),
        };
        let ab_rows: [(&str, &CheckReport, f64); 2] = [
            ("hash", &ab_hash, ab_hash_secs),
            ("ldd", &ab_ldd, ab_ldd_secs),
        ];
        for (label, r, secs) in ab_rows {
            if ctx.smoke() {
                ab_table.row([
                    label.to_string(),
                    r.states_explored.to_string(),
                    r.visited.resident_bytes.to_string(),
                    r.visited.nodes.to_string(),
                    r.complete.to_string(),
                ]);
            } else {
                ab_table.row([
                    label.to_string(),
                    r.states_explored.to_string(),
                    format!("{secs:.1}"),
                    format!("{:.0}", r.states_explored as f64 / secs),
                    r.visited.resident_bytes.to_string(),
                    r.visited.nodes.to_string(),
                    hit_cell(r),
                ]);
            }
        }
        report.section(
            format!("hash vs LDD visited store: {ab_workload}"),
            ab_table,
        );

        report
            .check(Check::new(
                "all exploration modes exhaust their spaces",
                "complete = true in every mode",
                if all_complete {
                    "complete"
                } else {
                    "INCOMPLETE"
                },
                all_complete,
            ))
            .check(Check::new(
                "incremental Zobrist keys and the SipHash walk partition the space identically",
                "state counts equal across concrete-key modes",
                if counts_agree { "equal" } else { "DIVERGED" },
                counts_agree,
            ))
            .check(Check::new(
                "quotient orbit counts sit inside the 2-reader orbit bounds",
                "quotient <= concrete <= 2 x quotient",
                format!("{quo_states} orbits vs {off_states} states"),
                bounds_hold,
            ))
            .check(Check::new(
                "symmetry quotient holds the reduction floor on the CAS-loop world",
                format!(">= {REDUCTION_FLOOR:.2}x fewer stored states"),
                format!("{reduction:.2}x"),
                reduction >= REDUCTION_FLOOR,
            ))
            .check(Check::new(
                "hash and LDD visited stores partition the A/B space identically",
                "complete, state counts equal across backends",
                if ab_complete && ab_counts_agree {
                    "complete, equal"
                } else if !ab_complete {
                    "INCOMPLETE"
                } else {
                    "DIVERGED"
                },
                ab_complete && ab_counts_agree,
            ))
            .check(Check::new(
                "LDD store holds the compression floor vs explicit vector storage",
                format!(
                    ">= {ldd_floor:.2}x ({} states x {vector_words} words x 8 B explicit)",
                    ab_ldd.visited.entries
                ),
                format!(
                    "{compression:.2}x ({} B resident, {} nodes)",
                    ab_ldd.visited.resident_bytes, ab_ldd.visited.nodes
                ),
                compression >= ldd_floor,
            ));

        if !ctx.smoke() {
            report.check(Check::new(
                "incremental fingerprints hold the 2x floor over full-rehash",
                ">= 2.00x",
                format!("{inc_speedup:.2}x"),
                inc_speedup >= 2.0,
            ));
            // The parallel floor only binds where there is parallelism
            // to win.
            if workers >= 4 {
                report.check(Check::new(
                    "parallel explorer holds the 3x floor over full-rehash",
                    ">= 3.00x (with >= 4 workers)",
                    format!("{par_speedup:.2}x at {workers} workers"),
                    par_speedup >= 3.0,
                ));
            }

            // The historical previously-infeasible instance, once, with
            // the full pool.
            let (big_factory, big_check) = af_factory(2);
            let start = Instant::now();
            let big = explore_par(&big_factory, &big_check, workers)
                .expect("A_f two-crash space is safe");
            let big_secs = start.elapsed().as_secs_f64();
            let big_sps = big.states_explored as f64 / big_secs;

            // The *newly* feasible instance: four readers, two crashes,
            // CAS-loop counters — 19.6M quotient orbits, far past the
            // 50M-concrete-state horizon without symmetry — exhausted
            // under wall-clock and resident-byte ceilings.
            // `BENCH_MODELCHECK_SYMMETRY` swaps the symmetry for manual
            // runs (the gates assume the default quotient).
            let (new_factory, new_check) = casloop_factory(4, 2);
            let new_cfg = CheckConfig {
                symmetry: new_symmetry,
                ..new_check
            };
            let start = Instant::now();
            let new = explore_par(&new_factory, &new_cfg, workers)
                .expect("CAS-loop n=4 two-crash space is safe");
            let new_secs = start.elapsed().as_secs_f64();
            let new_sps = new.states_explored as f64 / new_secs;
            let new_workload =
                "A_f(CasLoop) n=4 m=1 passages=1 crash_budget=2 writeback".to_string();

            let mut big_table = Table::new([
                "workload",
                "symmetry",
                "states",
                "seconds",
                "states/s",
                "resident_bytes",
            ]);
            big_table.row([
                "A_f n=2 m=1 passages=1 crash_budget=2 writeback".to_string(),
                "off (concrete)".to_string(),
                big.states_explored.to_string(),
                format!("{big_secs:.1}"),
                format!("{big_sps:.0}"),
                big.visited.resident_bytes.to_string(),
            ]);
            big_table.row([
                new_workload.clone(),
                new_symmetry.to_string(),
                new.states_explored.to_string(),
                format!("{new_secs:.1}"),
                format!("{new_sps:.0}"),
                new.visited.resident_bytes.to_string(),
            ]);
            report.section("previously / newly infeasible instances", big_table);
            // Historically 8.75M states (past the default 5M cap); the
            // recoverable A_f recovery paths prune the wedged branches,
            // so the same instance now closes at ~3.7M states. The floor
            // pins it staying a multi-million-state exhaustive close.
            report.check(Check::new(
                "the two-crash space is exhausted at multi-million-state scale",
                "complete, > 2,000,000 states",
                format!(
                    "{}, {} states",
                    if big.complete {
                        "complete"
                    } else {
                        "INCOMPLETE"
                    },
                    big.states_explored
                ),
                big.complete && big.states_explored > 2_000_000,
            ));
            report.check(Check::new(
                "the n=4 two-crash CAS-loop space is exhausted (newly feasible)",
                format!("complete, > {NEWLY_FEASIBLE_STATE_FLOOR} states"),
                format!(
                    "{}, {} states under {new_symmetry}",
                    if new.complete {
                        "complete"
                    } else {
                        "INCOMPLETE"
                    },
                    new.states_explored
                ),
                new.complete && new.states_explored > NEWLY_FEASIBLE_STATE_FLOOR,
            ));
            report.check(Check::new(
                "the n=4 exhaustion stays under the wall-clock ceiling",
                format!("<= {NEWLY_FEASIBLE_WALL_CEILING_SECS:.0}s"),
                format!("{new_secs:.1}s"),
                new_secs <= NEWLY_FEASIBLE_WALL_CEILING_SECS,
            ));
            report.check(Check::new(
                "the n=4 visited store stays under the resident-byte ceiling",
                format!("<= {NEWLY_FEASIBLE_RESIDENT_CEILING} B"),
                format!("{} B", new.visited.resident_bytes),
                new.visited.resident_bytes <= NEWLY_FEASIBLE_RESIDENT_CEILING,
            ));

            // Preserve the historical side artifact for trend tracking.
            let unix_secs = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            let ab_hit_rate = ab_ldd.visited.op_cache_hit_rate().unwrap_or(0.0);
            let json = format!(
                "{{\n  \"experiment\": \"perf_modelcheck\",\n  \"unix_timestamp\": {unix_secs},\n  \
                 \"workers\": {workers},\n  \"samples\": {samples},\n  \"workload\": \
                 \"{workload}\",\n  \"states\": {},\n  \
                 \"full_rehash_states_per_sec\": {full_sps:.0},\n  \
                 \"incremental_states_per_sec\": {inc_sps:.0},\n  \
                 \"parallel_states_per_sec\": {par_sps:.0},\n  \
                 \"incremental_speedup\": {inc_speedup:.2},\n  \
                 \"parallel_speedup\": {par_speedup:.2},\n  \
                 \"symmetry_workload\": \"{sym_workload}\",\n  \
                 \"concrete_states\": {off_states},\n  \
                 \"quotient_states\": {quo_states},\n  \
                 \"symmetry_reduction\": {reduction:.2},\n  \
                 \"concrete_states_per_sec\": {off_sps:.0},\n  \
                 \"quotient_states_per_sec\": {quo_sps:.0},\n  \
                 \"concrete_resident_bytes\": {},\n  \
                 \"quotient_resident_bytes\": {},\n  \"ldd_ab\": {{\n    \
                 \"workload\": \"{ab_workload}\",\n    \
                 \"states\": {},\n    \"vector_words\": {vector_words},\n    \
                 \"hash_resident_bytes\": {},\n    \
                 \"ldd_resident_bytes\": {},\n    \
                 \"explicit_vector_bytes\": {explicit_bytes},\n    \
                 \"ldd_nodes\": {},\n    \
                 \"op_cache_hit_rate\": {ab_hit_rate:.4},\n    \
                 \"hash_seconds\": {ab_hash_secs:.1},\n    \
                 \"ldd_seconds\": {ab_ldd_secs:.1},\n    \
                 \"compression_vs_explicit\": {compression:.2},\n    \
                 \"compression_floor\": {ldd_floor:.2}\n  }},\n  \"infeasible_instance\": {{\n    \
                 \"workload\": \"A_f n=2 m=1 passages=1 crash_budget=2 writeback\",\n    \
                 \"states\": {},\n    \"seconds\": {big_secs:.1},\n    \
                 \"states_per_sec\": {big_sps:.0},\n    \"complete\": {}\n  }},\n  \
                 \"newly_feasible_instance\": {{\n    \
                 \"workload\": \"{new_workload}\",\n    \
                 \"symmetry\": \"{new_symmetry}\",\n    \
                 \"backend\": \"hash\",\n    \
                 \"states\": {},\n    \"visited_entries\": {},\n    \
                 \"resident_bytes\": {},\n    \
                 \"resident_ceiling_bytes\": {NEWLY_FEASIBLE_RESIDENT_CEILING},\n    \
                 \"seconds\": {new_secs:.1},\n    \
                 \"wall_ceiling_seconds\": {NEWLY_FEASIBLE_WALL_CEILING_SECS:.0},\n    \
                 \"states_per_sec\": {new_sps:.0},\n    \"complete\": {}\n  }}\n}}\n",
                inc_report.states_explored,
                off_report.visited.resident_bytes,
                quo_report.visited.resident_bytes,
                ab_ldd.states_explored,
                ab_hash.visited.resident_bytes,
                ab_ldd.visited.resident_bytes,
                ab_ldd.visited.nodes,
                big.states_explored,
                big.complete,
                new.states_explored,
                new.visited.entries,
                new.visited.resident_bytes,
                new.complete
            );
            let path = crate::env::read_nonempty("BENCH_MODELCHECK_OUT", "BENCH_modelcheck.json");
            match std::fs::write(&path, &json) {
                Ok(()) => report.notes(format!("Side artifact: {path}")),
                Err(e) => report.notes(format!("Side artifact write failed ({path}): {e}")),
            };
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_symmetry_unset_uses_default() {
        assert_eq!(parse_bench_symmetry(None), Ok(None));
    }

    #[test]
    fn bench_symmetry_accepts_exact_tokens() {
        assert_eq!(parse_bench_symmetry(Some("off")), Ok(Some(Symmetry::Off)));
        assert_eq!(
            parse_bench_symmetry(Some("quotient")),
            Ok(Some(Symmetry::Quotient))
        );
        assert_eq!(
            parse_bench_symmetry(Some("full_rehash")),
            Ok(Some(Symmetry::FullRehash))
        );
    }

    #[test]
    fn bench_symmetry_rejects_malformed_values() {
        for bad in [
            "",
            "Off",
            "OFF",
            " off",
            "off ",
            "Quotient",
            "QUOTIENT",
            "full-rehash",
            "fullrehash",
            "FullRehash",
            "on",
            "true",
            "false",
            "0",
            "1",
            "sym",
            "none",
        ] {
            let err =
                parse_bench_symmetry(Some(bad)).expect_err(&format!("{bad:?} should be rejected"));
            assert!(err.contains("BENCH_MODELCHECK_SYMMETRY"), "{bad:?}: {err}");
            assert!(err.contains("bad symmetry mode"), "{bad:?}: {err}");
        }
    }
}
