//! E11 (extension) — why the paper's results are CC-specific: the same
//! algorithms under a distributed-shared-memory (DSM) cost model.
//!
//! In the CC model spinning is free after the first read; in DSM every
//! read of a variable homed elsewhere is an RMR, so busy-wait loops
//! accumulate unbounded cost (§6 cites Danek–Hadzilacos's Ω(n) DSM
//! lower bound).

use super::prelude::*;
use ccsim::{run_round_robin, Phase, ProcId, RunConfig};
use rwcore::af_world;

fn contended_mutex_rmrs(m: usize, protocol: Protocol) -> u64 {
    let mut sim = wmutex::mutex_world(m, protocol);
    let rc = RunConfig {
        passages_per_proc: 3,
        ..Default::default()
    };
    run_round_robin(&mut sim, &rc).expect("mutex run");
    (0..m)
        .map(|i| {
            let p = ProcId(i);
            sim.stats(p).rmrs() / sim.stats(p).passages.max(1)
        })
        .max()
        .unwrap_or(0)
}

fn contended_reader_rmrs(n: usize, protocol: Protocol) -> u64 {
    let cfg = AfConfig {
        readers: n,
        writers: 1,
        policy: FPolicy::One,
    };
    let mut world = af_world(cfg, protocol);
    let rc = RunConfig {
        passages_per_proc: 2,
        ..Default::default()
    };
    run_round_robin(&mut world.sim, &rc).expect("af run");
    (0..n)
        .map(|r| {
            let p = world.pids.reader(r);
            let st = world.sim.stats(p);
            (st.rmrs_in(Phase::Entry) + st.rmrs_in(Phase::Exit)) / st.passages.max(1)
        })
        .max()
        .unwrap_or(0)
}

/// Registry entry for the CC-vs-DSM cost comparison.
pub(crate) struct E11;

impl Experiment for E11 {
    fn id(&self) -> &'static str {
        "e11_dsm"
    }

    fn title(&self) -> &'static str {
        "CC vs DSM cost of the same algorithms"
    }

    fn claim(&self) -> &'static str {
        "§6 / Danek–Hadzilacos: local-spin structure is CC-optimal only; under DSM the same locks pay strictly more"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let (ms, ns): (&[usize], &[usize]) = if ctx.smoke() {
            (&[2, 8], &[4, 8])
        } else {
            (&[2, 4, 8, 16, 32], &[4, 8, 16, 32])
        };
        // (label, size-prefix, size, cc, dsm) rows, mutexes first.
        enum World {
            Mutex(usize),
            Readers(usize),
        }
        let worlds: Vec<World> = ms
            .iter()
            .map(|&m| World::Mutex(m))
            .chain(ns.iter().map(|&n| World::Readers(n)))
            .collect();
        let pairs = par_map(&worlds, |w| match *w {
            World::Mutex(m) => (
                contended_mutex_rmrs(m, Protocol::WriteBack),
                contended_mutex_rmrs(m, Protocol::Dsm),
            ),
            World::Readers(n) => (
                contended_reader_rmrs(n, Protocol::WriteBack),
                contended_reader_rmrs(n, Protocol::Dsm),
            ),
        });

        let mut table = Table::new([
            "world",
            "size",
            "CC (write-back) RMR/passage",
            "DSM RMR/passage",
            "DSM / CC",
        ]);
        let mut dsm_dearer = 0usize;
        for (w, &(cc, dsm)) in worlds.iter().zip(&pairs) {
            let (label, size) = match *w {
                World::Mutex(m) => ("tournament mutex", format!("m={m}")),
                World::Readers(n) => ("A_f readers (f=1)", format!("n={n}")),
            };
            dsm_dearer += usize::from(dsm > cc);
            table.row([
                label.to_string(),
                size,
                cc.to_string(),
                dsm.to_string(),
                format!("{:.1}x", dsm as f64 / cc.max(1) as f64),
            ]);
        }

        let mut report = Report::new(self, ctx);
        report
            .section("contended round-robin RMR/passage", table)
            .check(Check::all(
                "DSM strictly dearer than CC in every row",
                dsm_dearer,
                worlds.len(),
            ))
            .notes(
                "Expected shape: CC per-passage RMRs stay near Θ(log) as size\n\
                 grows; DSM RMRs grow much faster because every spin re-read and\n\
                 every access to an un-homed variable is charged. This is why the\n\
                 paper's tradeoff (and this library's optimality) is a CC-model\n\
                 result; DSM-optimal locks need per-process spin queues instead.",
            );
        report
    }
}
