//! E12 (extension) — quantifying §6's acknowledged fairness gap: "Writers
//! ... may starve if there are always readers performing passages."
//!
//! Under a uniformly random scheduler where `a` readers cycle passages
//! non-stop, we measure how many scheduler steps the writer needs to
//! reach the CS. `A_f` has no writer preference (its PREENTRY handshake
//! needs a moment with `C[i] = 0`), so its writer latency grows steeply
//! with reader churn; the FAA read-indicator lock blocks new readers the
//! moment its flag rises, so its writer latency stays flat; the
//! centralized CAS lock needs the whole word to hit 0 and starves worst.

use bench::Table;
use ccsim::{Phase, Prng, ProcId, Protocol, Sim, Step};
use rwcore::{af_world, centralized_world, faa_world, AfConfig, FPolicy, PidMap};

/// Steps until the writer enters the CS while `active` readers churn.
/// `None` = still locked out after `budget` scheduler steps.
fn writer_latency(
    sim: &mut Sim,
    pids: &PidMap,
    active: usize,
    seed: u64,
    budget: u64,
) -> Option<u64> {
    let mut rng = Prng::new(seed);
    let readers: Vec<ProcId> = pids.reader_pids().take(active).collect();
    let writer = pids.writer(0);
    let participants: Vec<ProcId> = readers
        .iter()
        .copied()
        .chain(std::iter::once(writer))
        .collect();
    for t in 0..budget {
        if sim.phase(writer) == Phase::Cs {
            return Some(t);
        }
        let p = participants[rng.below(participants.len())];
        // Readers cycle forever; the writer keeps trying its one passage.
        match sim.poll(p) {
            Step::Remainder if p == writer && sim.stats(writer).passages > 0 => continue,
            _ => {
                sim.step(p);
            }
        }
        sim.check_mutual_exclusion().expect("MX holds throughout");
    }
    None
}

fn median(mut xs: Vec<Option<u64>>) -> String {
    xs.sort();
    match xs[xs.len() / 2] {
        Some(v) => v.to_string(),
        None => "STARVED".to_string(),
    }
}

fn main() {
    let n = 16usize;
    let budget = 2_000_000u64;
    let seeds = 9u64;
    let mut table = Table::new(["lock", "active readers", "median steps to writer CS"]);

    for active in [0usize, 1, 2, 4, 8, 16] {
        let samples: Vec<Option<u64>> = (0..seeds)
            .map(|seed| {
                let cfg = AfConfig {
                    readers: n,
                    writers: 1,
                    policy: FPolicy::One,
                };
                let mut world = af_world(cfg, Protocol::WriteBack);
                writer_latency(&mut world.sim, &world.pids, active, seed, budget)
            })
            .collect();
        table.row(["A_f (f=1)".to_string(), active.to_string(), median(samples)]);

        let samples: Vec<Option<u64>> = (0..seeds)
            .map(|seed| {
                let mut world = faa_world(n, 1, Protocol::WriteBack);
                writer_latency(&mut world.sim, &world.pids, active, seed, budget)
            })
            .collect();
        table.row([
            "faa-indicator".to_string(),
            active.to_string(),
            median(samples),
        ]);

        let samples: Vec<Option<u64>> = (0..seeds)
            .map(|seed| {
                let mut world = centralized_world(n, 1, Protocol::WriteBack);
                writer_latency(&mut world.sim, &world.pids, active, seed, budget)
            })
            .collect();
        table.row([
            "centralized-cas".to_string(),
            active.to_string(),
            median(samples),
        ]);
    }

    println!("E12 — writer time-to-CS under reader churn (n = {n}, budget {budget})\n");
    table.print();
    println!(
        "\nExpected shape: every lock's writer latency grows with churn (no\n\
         contender here is writer-fair). A_f grows steadily — its writer\n\
         needs a moment with C[i] = 0 per group, but once past PREENTRY\n\
         the WAIT flag holds arrivals back, so medians stay moderate. The\n\
         FAA lock's flag gives similar protection after the drain begins.\n\
         The centralized lock is heavy-tailed: its writer needs an instant\n\
         with a zero word AND must win the CAS race outright, so medians\n\
         jump around and individual runs starve. A variant of A_f with\n\
         writer fairness at the same tradeoff is the paper's open problem."
    );
}
