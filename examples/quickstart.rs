//! Quickstart: protect shared data with the `A_f` reader-writer lock.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The lock is configured for a *fixed* process set — `n` readers and `m`
//! writers — because the paper's RMR bounds are functions of `n` and `m`.
//! Each thread claims a handle for its process id, then uses RAII guards
//! exactly like `std::sync::RwLock`.

use rwlock_repro::{AfConfig, AfRwLock, FPolicy};
use std::collections::HashMap;

fn main() {
    // 4 reader processes, 2 writer processes. The policy picks the
    // tradeoff point: LogN balances reader and writer RMR costs.
    let cfg = AfConfig {
        readers: 4,
        writers: 2,
        policy: FPolicy::LogN,
    };
    let lock = AfRwLock::new(cfg, HashMap::<String, u64>::new());

    std::thread::scope(|scope| {
        // Writers populate the map.
        for w in 0..cfg.writers {
            let lock = &lock;
            scope.spawn(move || {
                let mut handle = lock.writer(w).expect("writer id is free");
                for i in 0..100u64 {
                    let mut map = handle.write();
                    map.insert(format!("key-{w}-{i}"), i * i);
                }
            });
        }
        // Readers poll for their keys; concurrent readers share the CS.
        for r in 0..cfg.readers {
            let lock = &lock;
            scope.spawn(move || {
                let mut handle = lock.reader(r).expect("reader id is free");
                let mut seen = 0usize;
                while seen < 200 {
                    let map = handle.read();
                    seen = map.len();
                }
            });
        }
    });

    let map = lock.into_inner();
    assert_eq!(map.len(), 200);
    println!(
        "quickstart: 2 writers filled {} entries while 4 readers polled",
        map.len()
    );
    println!(
        "lock family: A_f with f = log n ({} groups of {} readers)",
        cfg.groups(),
        cfg.group_size()
    );
}
