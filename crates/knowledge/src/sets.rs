//! Dense bitsets over process ids, used for awareness/familiarity sets.

use ccsim::ProcId;
use std::fmt;

/// A set of processes, stored as a bitmap over `0..capacity`.
///
/// Awareness and familiarity sets (Definitions 1–2) are unioned on every
/// reading step of an analysed fragment, so the representation is a flat
/// `u64` bitmap: union is a word-wise OR.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct ProcSet {
    words: Vec<u64>,
}

impl ProcSet {
    /// An empty set with room for processes `0..capacity`.
    pub fn empty(capacity: usize) -> Self {
        ProcSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// The singleton `{p}` (Definition 2's base case `AW(p) = {p}`).
    pub fn singleton(capacity: usize, p: ProcId) -> Self {
        let mut s = Self::empty(capacity);
        s.insert(p);
        s
    }

    /// Insert a process. Returns whether the set changed.
    ///
    /// # Panics
    /// Panics if `p` exceeds the set's capacity.
    pub fn insert(&mut self, p: ProcId) -> bool {
        let (w, b) = (p.0 / 64, p.0 % 64);
        assert!(w < self.words.len(), "process {p} exceeds set capacity");
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Membership test.
    pub fn contains(&self, p: ProcId) -> bool {
        let (w, b) = (p.0 / 64, p.0 % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Union `other` into `self`. Returns whether `self` changed.
    pub fn union_with(&mut self, other: &ProcSet) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len(), "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let merged = *a | *b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// Is `self ⊆ other`?
    pub fn is_subset_of(&self, other: &ProcSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of processes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no process is in the set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate the members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(ProcId(wi * 64 + b))
                } else {
                    None
                }
            })
        })
    }

    /// How many members of `self` are missing from `other`
    /// (`|self \ other|`) — nonzero iff reading a variable with this
    /// familiarity set would expand `other`.
    pub fn count_missing_from(&self, other: &ProcSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }
}

impl fmt::Display for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ProcId> for ProcSet {
    /// Collect into a set sized by the largest member.
    fn from_iter<T: IntoIterator<Item = ProcId>>(iter: T) -> Self {
        let ids: Vec<ProcId> = iter.into_iter().collect();
        let cap = ids.iter().map(|p| p.0 + 1).max().unwrap_or(0);
        let mut s = ProcSet::empty(cap.max(1));
        for p in ids {
            s.insert(p);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = ProcSet::empty(130);
        assert!(s.insert(ProcId(0)));
        assert!(s.insert(ProcId(64)));
        assert!(s.insert(ProcId(129)));
        assert!(!s.insert(ProcId(64)), "re-insert reports no change");
        assert!(s.contains(ProcId(129)));
        assert!(!s.contains(ProcId(1)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn union_and_subset() {
        let mut a = ProcSet::empty(10);
        a.insert(ProcId(1));
        let mut b = ProcSet::empty(10);
        b.insert(ProcId(1));
        b.insert(ProcId(5));
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert_eq!(b.count_missing_from(&a), 1);
        assert!(a.union_with(&b), "union grows a");
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(b.is_subset_of(&a));
    }

    #[test]
    fn singleton_base_case() {
        let s = ProcSet::singleton(8, ProcId(3));
        assert_eq!(s.len(), 1);
        assert!(s.contains(ProcId(3)));
    }

    #[test]
    fn iteration_order() {
        let s: ProcSet = [ProcId(7), ProcId(2), ProcId(65)].into_iter().collect();
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![ProcId(2), ProcId(7), ProcId(65)]
        );
    }

    #[test]
    fn display() {
        let s: ProcSet = [ProcId(1), ProcId(3)].into_iter().collect();
        assert_eq!(s.to_string(), "{p1,p3}");
        assert_eq!(ProcSet::empty(4).to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "exceeds set capacity")]
    fn capacity_is_enforced() {
        ProcSet::empty(4).insert(ProcId(64));
    }
}
