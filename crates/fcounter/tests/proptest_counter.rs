//! Property tests: the f-array is exact and wait-free-bounded under
//! arbitrary interleavings, in both its simulated and real forms.

use ccsim::{Layout, Memory, ProcId, Protocol, SubMachine, SubStep};
use fcounter::{FArray, SimCounter, SimCounterHandle, TreeShape};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drive a batch of per-process operation lists to completion under a
/// seeded random interleaving; return the final counter value and the
/// worst per-operation step count observed.
fn run_sim_batch(k: usize, deltas_per_proc: &[Vec<i64>], seed: u64) -> (i64, u64) {
    let mut layout = Layout::new();
    let counter = SimCounter::allocate(&mut layout, "C", k);
    let mut mem = Memory::new(&layout, k, Protocol::WriteBack);
    let mut handles: Vec<SimCounterHandle> = (0..k).map(|i| counter.handle(i)).collect();
    let mut queues: Vec<std::collections::VecDeque<i64>> = deltas_per_proc
        .iter()
        .map(|v| v.iter().copied().collect())
        .collect();
    let mut current: Vec<Option<fcounter::AddMachine>> = (0..k).map(|_| None).collect();
    let mut op_steps: Vec<u64> = vec![0; k];
    let mut max_op_steps = 0u64;
    let mut rng = StdRng::seed_from_u64(seed);

    loop {
        // Processes with work: either a live machine or a queued delta.
        let live: Vec<usize> = (0..k)
            .filter(|&i| current[i].is_some() || !queues[i].is_empty())
            .collect();
        if live.is_empty() {
            break;
        }
        let i = live[rng.gen_range(0..live.len())];
        if current[i].is_none() {
            let delta = queues[i].pop_front().unwrap();
            current[i] = Some(handles[i].add(delta));
            op_steps[i] = 0;
        }
        let m = current[i].as_mut().unwrap();
        match m.poll() {
            SubStep::Op(op) => {
                let out = mem.apply(ProcId(i), &op);
                m.resume(out.response);
                op_steps[i] += 1;
                max_op_steps = max_op_steps.max(op_steps[i]);
            }
            SubStep::Done(_) => {
                current[i] = None;
            }
        }
    }
    (counter.peek(&mem), max_op_steps)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any interleaving of any batch of adds yields the exact sum, and no
    /// single add ever exceeds the wait-free bound 1 + 8 * depth steps.
    #[test]
    fn sim_adds_exact_and_bounded(
        k in 1usize..7,
        seed in any::<u64>(),
        raw in proptest::collection::vec(proptest::collection::vec(-5i64..6, 0..5), 1..7),
    ) {
        let deltas: Vec<Vec<i64>> = (0..k)
            .map(|i| raw.get(i).cloned().unwrap_or_default())
            .collect();
        let expected: i64 = deltas.iter().flatten().sum();
        let (got, max_steps) = run_sim_batch(k, &deltas, seed);
        prop_assert_eq!(got, expected);
        let bound = 1 + 8 * TreeShape::new(k).depth() as u64;
        prop_assert!(
            max_steps <= bound,
            "an add took {max_steps} steps, wait-free bound is {bound} (k={k})"
        );
    }

    /// The real f-array agrees with a sequential shadow under per-thread
    /// operation lists (run on real threads).
    #[test]
    fn real_adds_exact(
        k in 1usize..5,
        raw in proptest::collection::vec(proptest::collection::vec(-4i64..5, 0..30), 1..5),
    ) {
        let deltas: Vec<Vec<i64>> = (0..k)
            .map(|i| raw.get(i).cloned().unwrap_or_default())
            .collect();
        let expected: i64 = deltas.iter().flatten().sum();
        let counter = FArray::new(k);
        std::thread::scope(|s| {
            for (id, list) in deltas.iter().enumerate() {
                let counter = &counter;
                s.spawn(move || {
                    for &d in list {
                        counter.add(id, d);
                    }
                });
            }
        });
        prop_assert_eq!(counter.read(), expected);
    }

    /// Reads during quiescent moments between batches are exact.
    #[test]
    fn sim_sequential_batches(seq in proptest::collection::vec(-3i64..4, 1..20)) {
        let mut layout = Layout::new();
        let counter = SimCounter::allocate(&mut layout, "C", 2);
        let mut mem = Memory::new(&layout, 2, Protocol::WriteBack);
        let mut handle = counter.handle(0);
        let mut running = 0i64;
        for d in seq {
            let mut m = handle.add(d);
            while let SubStep::Op(op) = m.poll() {
                let out = mem.apply(ProcId(0), &op);
                m.resume(out.response);
            }
            running += d;
            prop_assert_eq!(counter.peek(&mem), running);
        }
    }
}
