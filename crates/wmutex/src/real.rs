//! Real-atomics mutual-exclusion locks.
//!
//! [`TournamentLock`] is the paper's `WL` substrate: an m-process
//! starvation-free mutex from reads and writes only, with `Θ(log m)` RMRs
//! per passage in the CC model — a tournament tree of two-process Peterson
//! competitions. (The paper cites Yang–Anderson \[21\]; a Peterson
//! tournament has the same CC-model RMR complexity and the same
//! starvation-freedom/Bounded-Exit properties, which is all `WL` must
//! provide. Yang–Anderson additionally achieves the bound in the DSM
//! model, which none of the paper's results measure.)
//!
//! [`ClhLock`] and [`TicketLock`] are practical queue locks included as
//! baselines for the throughput benches (both rely on atomic RMW
//! operations stronger than the read/write requirement on `WL`).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// A mutual-exclusion lock shared by a fixed set of registered processes,
/// addressed by dense ids `0..processes()`.
///
/// Each id must be used by at most one thread at a time; [`IdMutex::unlock`]
/// must only be called by the id currently holding the lock.
pub trait IdMutex: Send + Sync {
    /// Acquire the lock on behalf of process `id` (blocking, local-spin).
    fn lock(&self, id: usize);
    /// Release the lock held by process `id`.
    fn unlock(&self, id: usize);
    /// Number of registered processes.
    fn processes(&self) -> usize;
    /// Short implementation name for bench tables.
    fn name(&self) -> &'static str;
}

/// One two-process Peterson competition node.
#[derive(Debug)]
struct Node {
    /// `flag[side]`: side wants (or holds) the node.
    flag: [AtomicBool; 2],
    /// Tie-breaker: the side that wrote `turn` last waits.
    turn: AtomicUsize,
}

impl Node {
    fn new() -> Self {
        Node {
            flag: [AtomicBool::new(false), AtomicBool::new(false)],
            turn: AtomicUsize::new(0),
        }
    }

    fn acquire(&self, side: usize) {
        self.flag[side].store(true, Ordering::SeqCst);
        self.turn.store(side, Ordering::SeqCst);
        while self.flag[1 - side].load(Ordering::SeqCst) && self.turn.load(Ordering::SeqCst) == side
        {
            std::hint::spin_loop();
        }
    }

    /// Like [`Node::acquire`], but give up after `spins` failed re-reads
    /// of the rival's `(flag, turn)` pair. On timeout our flag is cleared
    /// again (so the rival — who re-reads it on every spin iteration —
    /// proceeds exactly as after a normal release) and `false` is
    /// returned; the caller must not treat the node as held.
    fn try_acquire(&self, side: usize, spins: u64) -> bool {
        self.flag[side].store(true, Ordering::SeqCst);
        self.turn.store(side, Ordering::SeqCst);
        for _ in 0..spins {
            if !(self.flag[1 - side].load(Ordering::SeqCst)
                && self.turn.load(Ordering::SeqCst) == side)
            {
                return true;
            }
            std::hint::spin_loop();
        }
        self.flag[side].store(false, Ordering::SeqCst);
        false
    }

    fn release(&self, side: usize) {
        self.flag[side].store(false, Ordering::SeqCst);
    }
}

/// An m-process tournament mutex from reads and writes only: `Θ(log m)`
/// RMRs per passage in the CC model, starvation-free, bounded exit.
///
/// Every process owns a leaf of a complete binary tree and acquires the
/// lock by winning the Peterson competition at each internal node on its
/// leaf-to-root path bottom-up; release is top-down, so a successor from
/// the same subtree can never reach a node before its current holder has
/// released it.
///
/// # Examples
/// ```
/// use wmutex::{IdMutex, TournamentLock};
/// let m = TournamentLock::new(4);
/// m.lock(2);
/// m.unlock(2);
/// ```
#[derive(Debug)]
pub struct TournamentLock {
    m: usize,
    width: usize,
    /// Internal nodes, heap indices `1..width` (slot 0 unused).
    nodes: Vec<Node>,
}

impl TournamentLock {
    /// Create a tournament lock for `m` processes.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "a mutex needs at least one process");
        let width = m.next_power_of_two();
        TournamentLock {
            m,
            width,
            nodes: (0..width).map(|_| Node::new()).collect(),
        }
    }

    /// Tree depth (`⌈log2 m⌉`): the number of competitions per passage.
    pub fn levels(&self) -> usize {
        self.width.trailing_zeros() as usize
    }

    /// The internal node and side process `p` uses at climb level `level`
    /// (level 0 is adjacent to the leaves).
    fn arena(&self, p: usize, level: usize) -> (usize, usize) {
        let leaf = self.width + p;
        (leaf >> (level + 1), (leaf >> level) & 1)
    }

    /// Bounded acquisition: climb the tree as in [`IdMutex::lock`], but
    /// spend at most `spins` re-reads waiting at any one node. On timeout,
    /// withdraw — release every node already won, top-down — and return
    /// `false` with no residue in shared memory. The abort path is bounded:
    /// one flag-clear write per level won plus the timed-out node's own.
    ///
    /// # Panics
    /// Panics if `id >= processes()`.
    pub fn try_lock(&self, id: usize, spins: u64) -> bool {
        assert!(id < self.m, "process id {id} out of range");
        for level in 0..self.levels() {
            let (node, side) = self.arena(id, level);
            if !self.nodes[node].try_acquire(side, spins) {
                // `try_acquire` already cleared the timed-out node; release
                // the won levels below it in top-down order.
                for lower in (0..level).rev() {
                    let (n, s) = self.arena(id, lower);
                    self.nodes[n].release(s);
                }
                return false;
            }
        }
        true
    }
}

impl IdMutex for TournamentLock {
    fn lock(&self, id: usize) {
        assert!(id < self.m, "process id {id} out of range");
        for level in 0..self.levels() {
            let (node, side) = self.arena(id, level);
            self.nodes[node].acquire(side);
        }
    }

    fn unlock(&self, id: usize) {
        // Top-down: release each node before any node below it, so no
        // successor from our subtree can reach a node we still hold.
        for level in (0..self.levels()).rev() {
            let (node, side) = self.arena(id, level);
            self.nodes[node].release(side);
        }
    }

    fn processes(&self) -> usize {
        self.m
    }

    fn name(&self) -> &'static str {
        "tournament"
    }
}

/// A CLH queue lock: each process spins on its predecessor's node.
/// `O(1)` RMRs per passage in the CC model, but requires atomic `swap`.
#[derive(Debug)]
pub struct ClhLock {
    m: usize,
    /// Index (into `flags`) of the current tail node.
    tail: AtomicUsize,
    /// `true` while the owning node's holder is in or awaiting the CS.
    flags: Vec<AtomicBool>,
    /// Per-process: the node I spun my request on (slot index).
    mine: Vec<UnsafeCell<usize>>,
    /// Per-process: my spare node slot for the next acquisition.
    spare: Vec<UnsafeCell<usize>>,
}

// SAFETY: `mine`/`spare` slots are only accessed by the thread currently
// using that process id (the `IdMutex` contract).
unsafe impl Send for ClhLock {}
unsafe impl Sync for ClhLock {}

impl ClhLock {
    /// Create a queue lock for `m` processes.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "a mutex needs at least one process");
        // m + 1 node slots: one per process plus the initial (released) tail.
        let flags: Vec<AtomicBool> = (0..m + 1).map(|_| AtomicBool::new(false)).collect();
        ClhLock {
            m,
            tail: AtomicUsize::new(m), // slot m starts as the released sentinel
            flags,
            mine: (0..m).map(UnsafeCell::new).collect(),
            spare: (0..m).map(UnsafeCell::new).collect(),
        }
    }
}

impl IdMutex for ClhLock {
    fn lock(&self, id: usize) {
        assert!(id < self.m, "process id {id} out of range");
        // SAFETY: only the thread using `id` touches these cells.
        let my_slot = unsafe { *self.spare[id].get() };
        self.flags[my_slot].store(true, Ordering::SeqCst);
        let pred = self.tail.swap(my_slot, Ordering::SeqCst);
        while self.flags[pred].load(Ordering::SeqCst) {
            std::hint::spin_loop();
        }
        unsafe {
            *self.mine[id].get() = my_slot;
            // Recycle the predecessor's node as our next spare (classic CLH).
            *self.spare[id].get() = pred;
        }
    }

    fn unlock(&self, id: usize) {
        let my_slot = unsafe { *self.mine[id].get() };
        self.flags[my_slot].store(false, Ordering::SeqCst);
    }

    fn processes(&self) -> usize {
        self.m
    }

    fn name(&self) -> &'static str {
        "clh"
    }
}

/// A ticket lock: FAA on a ticket counter, global spin on the grant word.
/// Simple and fair, but spins on a shared location (not RMR-optimal).
#[derive(Debug)]
pub struct TicketLock {
    m: usize,
    next: AtomicU64,
    grant: AtomicU64,
}

impl TicketLock {
    /// Create a ticket lock for `m` processes.
    pub fn new(m: usize) -> Self {
        TicketLock {
            m,
            next: AtomicU64::new(0),
            grant: AtomicU64::new(0),
        }
    }
}

impl IdMutex for TicketLock {
    fn lock(&self, _id: usize) {
        let my = self.next.fetch_add(1, Ordering::SeqCst);
        while self.grant.load(Ordering::SeqCst) != my {
            std::hint::spin_loop();
        }
    }

    fn unlock(&self, _id: usize) {
        self.grant.fetch_add(1, Ordering::SeqCst);
    }

    fn processes(&self) -> usize {
        self.m
    }

    fn name(&self) -> &'static str {
        "ticket"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn hammer(lock: Arc<dyn IdMutex>, threads: usize, iters: u64) {
        struct SendCell(UnsafeCell<u64>);
        unsafe impl Send for SendCell {}
        unsafe impl Sync for SendCell {}
        let counter = Arc::new(SendCell(UnsafeCell::new(0)));

        let mut handles = Vec::new();
        for id in 0..threads {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..iters {
                    lock.lock(id);
                    // Unsynchronized increment: only correct under mutual
                    // exclusion, so violations surface as lost updates.
                    unsafe {
                        *counter.0.get() += 1;
                    }
                    lock.unlock(id);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            unsafe { *counter.0.get() },
            threads as u64 * iters,
            "{} lost updates",
            lock.name()
        );
    }

    #[test]
    fn tournament_mutual_exclusion() {
        for threads in [1usize, 2, 3, 4, 7] {
            hammer(Arc::new(TournamentLock::new(threads)), threads, 2_000);
        }
    }

    #[test]
    fn clh_mutual_exclusion() {
        for threads in [1usize, 2, 4, 8] {
            hammer(Arc::new(ClhLock::new(threads)), threads, 5_000);
        }
    }

    #[test]
    fn ticket_mutual_exclusion() {
        hammer(Arc::new(TicketLock::new(4)), 4, 5_000);
    }

    #[test]
    fn try_lock_times_out_against_a_holder_and_leaves_no_residue() {
        let m = Arc::new(TournamentLock::new(4));
        m.lock(0);
        // p3 sits in the other subtree: it wins its level-0 node and times
        // out at the root, so the withdrawal must unwind a won level too.
        assert!(!m.try_lock(3, 1_000), "holder present: must time out");
        m.unlock(0);
        // No stale flag left behind: every process can still pass.
        for id in 0..4 {
            assert!(m.try_lock(id, 1_000), "uncontended try_lock must win");
            m.unlock(id);
        }
    }

    #[test]
    fn try_lock_withdrawal_unparks_a_blocked_rival() {
        // p1 holds; p0 times out; p1's release then lets p0 through — and
        // a thread blocked *behind* p0's aborted attempt is not stranded.
        let m = Arc::new(TournamentLock::new(2));
        m.lock(1);
        assert!(!m.try_lock(0, 100));
        let contender = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                m.lock(0);
                m.unlock(0);
            })
        };
        m.unlock(1);
        contender.join().unwrap();
    }

    #[test]
    fn try_lock_excludes_like_lock_under_contention() {
        struct SendCell(UnsafeCell<u64>);
        unsafe impl Send for SendCell {}
        unsafe impl Sync for SendCell {}
        let lock = Arc::new(TournamentLock::new(4));
        let counter = Arc::new(SendCell(UnsafeCell::new(0)));
        let mut handles = Vec::new();
        for id in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut acquired = 0u64;
                while acquired < 500 {
                    if lock.try_lock(id, 50) {
                        unsafe {
                            *counter.0.get() += 1;
                        }
                        lock.unlock(id);
                        acquired += 1;
                    }
                }
                acquired
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(unsafe { *counter.0.get() }, total, "lost updates");
        assert_eq!(total, 4 * 500);
    }

    #[test]
    fn tournament_single_process_is_free() {
        let m = TournamentLock::new(1);
        assert_eq!(m.levels(), 0, "m=1: no competitions");
        m.lock(0);
        m.unlock(0);
    }

    #[test]
    fn arena_assignment_pairs_siblings() {
        let m = TournamentLock::new(4);
        // Leaves 4..8; level 0 nodes: p0,p1 -> node 2; p2,p3 -> node 3.
        assert_eq!(m.arena(0, 0), (2, 0));
        assert_eq!(m.arena(1, 0), (2, 1));
        assert_eq!(m.arena(2, 0), (3, 0));
        assert_eq!(m.arena(3, 0), (3, 1));
        // Level 1: everyone meets at the root.
        assert_eq!(m.arena(0, 1).0, 1);
        assert_eq!(m.arena(3, 1).0, 1);
        assert_ne!(
            m.arena(1, 1).1,
            m.arena(2, 1).1,
            "subtrees take opposite sides"
        );
    }

    #[test]
    fn levels_is_ceil_log2() {
        assert_eq!(TournamentLock::new(2).levels(), 1);
        assert_eq!(TournamentLock::new(3).levels(), 2);
        assert_eq!(TournamentLock::new(8).levels(), 3);
        assert_eq!(TournamentLock::new(9).levels(), 4);
    }

    #[test]
    fn reacquisition_by_same_process() {
        let m = TournamentLock::new(3);
        for _ in 0..100 {
            m.lock(1);
            m.unlock(1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        TournamentLock::new(2).lock(2);
    }
}
