//! Incremental awareness/familiarity tracking (Definitions 1–3).
//!
//! A [`KnowledgeTracker`] follows an execution *fragment* `C ↪ E` step by
//! step and maintains, for every process `p`, the awareness set
//! `AW(p, C↪E)` and, for every variable `v`, the familiarity set
//! `F(v, C↪E)`. The paper's key generalisation is that these are defined
//! over fragments (not whole executions), so the tracker is created at the
//! fragment's start configuration with every process knowing only itself
//! and every variable's familiarity empty.

use crate::sets::ProcSet;
use ccsim::{Op, OpKind, ProcId, VarId};
use std::collections::HashMap;

/// Incremental Definitions 1–3 over a live execution fragment.
#[derive(Clone, Debug)]
pub struct KnowledgeTracker {
    n_procs: usize,
    /// `AW(p)`, indexed by process id; base case `{p}` (Definition 2.1).
    aw: Vec<ProcSet>,
    /// `F(v)` for variables that have received non-trivial steps; absent
    /// means ∅ (Definition 1).
    fam: HashMap<VarId, ProcSet>,
    /// Steps recorded so far.
    steps: u64,
    /// Expanding steps recorded so far (Definition 3).
    expanding_steps: u64,
}

impl KnowledgeTracker {
    /// Start tracking a fragment in a system of `n_procs` processes.
    pub fn new(n_procs: usize) -> Self {
        KnowledgeTracker {
            n_procs,
            aw: (0..n_procs)
                .map(|p| ProcSet::singleton(n_procs, ProcId(p)))
                .collect(),
            fam: HashMap::new(),
            steps: 0,
            expanding_steps: 0,
        }
    }

    /// The awareness set of `p` after the fragment so far.
    pub fn awareness(&self, p: ProcId) -> &ProcSet {
        &self.aw[p.0]
    }

    /// The familiarity set of `v` after the fragment so far (∅ if no
    /// non-trivial step has touched `v`).
    pub fn familiarity(&self, v: VarId) -> ProcSet {
        self.fam
            .get(&v)
            .cloned()
            .unwrap_or_else(|| ProcSet::empty(self.n_procs))
    }

    /// `M(C↪E)`: the largest awareness or familiarity set size — the
    /// quantity Lemma 2 bounds by a factor 3 per adversary iteration.
    pub fn max_knowledge(&self) -> usize {
        let aw_max = self.aw.iter().map(ProcSet::len).max().unwrap_or(0);
        let f_max = self.fam.values().map(ProcSet::len).max().unwrap_or(0);
        aw_max.max(f_max)
    }

    /// Total steps recorded.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Expanding steps recorded (every one of which incurs an RMR,
    /// Lemma 1).
    pub fn expanding_steps(&self) -> u64 {
        self.expanding_steps
    }

    /// Would `p` executing `op` *now* be an expanding step (Definition 3)?
    /// Only reading steps can expand, and only when the variable's
    /// familiarity holds processes `p` is not yet aware of.
    pub fn would_expand(&self, p: ProcId, op: &Op) -> bool {
        if !op.is_reading() {
            return false;
        }
        match self.fam.get(&op.var()) {
            None => false, // F(v) = ∅
            Some(f) => f.count_missing_from(&self.aw[p.0]) > 0,
        }
    }

    /// Record an executed step by `p`: `op`, and whether the memory
    /// reported it trivial. Returns whether the step was expanding.
    ///
    /// Update rules (pre-step values on the right-hand sides):
    /// * read: `AW(p) ∪= F(v)` (Definition 2.2)
    /// * non-trivial write: `F(v) := AW(p)` (Definition 1.1)
    /// * CAS: `AW(p) ∪= F(v)`; if non-trivial, `F(v) ∪= AW(p)`
    ///   (Definitions 1.2 and 2.2 — a CAS is both reading and writing)
    /// * FAA (model extension): treated like CAS.
    /// * trivial writing steps leave familiarity unchanged (Definition 1
    ///   only considers non-trivial steps).
    pub fn record(&mut self, p: ProcId, op: &Op, trivial: bool) -> bool {
        self.steps += 1;
        let v = op.var();
        let expanding = self.would_expand(p, op);
        if expanding {
            self.expanding_steps += 1;
        }
        match OpKind::from(op) {
            OpKind::Read => {
                if let Some(f) = self.fam.get(&v) {
                    // Split borrow: clone F(v) before touching AW(p).
                    let f = f.clone();
                    self.aw[p.0].union_with(&f);
                }
            }
            OpKind::Write => {
                if !trivial {
                    self.fam.insert(v, self.aw[p.0].clone());
                }
            }
            OpKind::Cas | OpKind::Faa => {
                let aw_pre = self.aw[p.0].clone();
                if let Some(f) = self.fam.get(&v) {
                    let f_pre = f.clone();
                    self.aw[p.0].union_with(&f_pre);
                }
                if !trivial {
                    self.fam
                        .entry(v)
                        .or_insert_with(|| ProcSet::empty(self.n_procs))
                        .union_with(&aw_pre);
                }
            }
        }
        expanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::Op;

    const P0: ProcId = ProcId(0);
    const P1: ProcId = ProcId(1);
    const P2: ProcId = ProcId(2);
    const X: VarId = VarId(0);
    const Y: VarId = VarId(1);

    #[test]
    fn base_case_awareness_is_self() {
        let t = KnowledgeTracker::new(3);
        for p in 0..3 {
            assert_eq!(t.awareness(ProcId(p)).len(), 1);
            assert!(t.awareness(ProcId(p)).contains(ProcId(p)));
        }
        assert!(t.familiarity(X).is_empty());
        assert_eq!(t.max_knowledge(), 1);
    }

    #[test]
    fn write_then_read_transfers_awareness() {
        let mut t = KnowledgeTracker::new(3);
        // p0 writes x: F(x) = AW(p0) = {p0}.
        t.record(P0, &Op::write(X, 1), false);
        assert_eq!(t.familiarity(X).len(), 1);
        // p1 reads x: AW(p1) ∪= F(x) — now {p0, p1}. This is expanding.
        assert!(t.would_expand(P1, &Op::Read(X)));
        assert!(t.record(P1, &Op::Read(X), true));
        assert!(t.awareness(P1).contains(P0));
        assert_eq!(t.awareness(P1).len(), 2);
        // Re-reading is no longer expanding.
        assert!(!t.would_expand(P1, &Op::Read(X)));
        assert!(!t.record(P1, &Op::Read(X), true));
    }

    #[test]
    fn overwrite_replaces_familiarity() {
        let mut t = KnowledgeTracker::new(3);
        t.record(P0, &Op::write(X, 1), false);
        // p2 (aware only of itself) overwrites x: F(x) = {p2}, p0 forgotten.
        t.record(P2, &Op::write(X, 2), false);
        let f = t.familiarity(X);
        assert!(f.contains(P2));
        assert!(!f.contains(P0), "a write *replaces* familiarity (Def 1.1)");
    }

    #[test]
    fn cas_extends_familiarity() {
        let mut t = KnowledgeTracker::new(3);
        t.record(P0, &Op::write(X, 1), false); // F(x) = {p0}
                                               // p2 successful CAS: F(x) = {p0} ∪ {p2}; AW(p2) gains p0.
        t.record(P2, &Op::cas(X, 1, 5), false);
        let f = t.familiarity(X);
        assert!(
            f.contains(P0) && f.contains(P2),
            "CAS *extends* familiarity (Def 1.2)"
        );
        assert!(t.awareness(P2).contains(P0), "CAS is also a reading step");
    }

    #[test]
    fn failed_cas_reads_but_does_not_extend() {
        let mut t = KnowledgeTracker::new(3);
        t.record(P0, &Op::write(X, 1), false);
        // p1's CAS fails (trivial): gains awareness, F unchanged.
        t.record(P1, &Op::cas(X, 99, 100), true);
        assert!(t.awareness(P1).contains(P0));
        assert!(!t.familiarity(X).contains(P1));
    }

    #[test]
    fn trivial_write_leaves_familiarity() {
        let mut t = KnowledgeTracker::new(3);
        t.record(P0, &Op::write(X, 1), false);
        t.record(P1, &Op::write(X, 1), true); // writes current value
        assert!(
            t.familiarity(X).contains(P0),
            "trivial steps don't redefine F"
        );
        assert!(!t.familiarity(X).contains(P1));
    }

    #[test]
    fn awareness_chains_through_variables() {
        let mut t = KnowledgeTracker::new(4);
        t.record(P0, &Op::write(X, 1), false); // F(x) = {p0}
        t.record(P1, &Op::Read(X), true); // AW(p1) = {p0, p1}
        t.record(P1, &Op::write(Y, 1), false); // F(y) = {p0, p1}
        t.record(P2, &Op::Read(Y), true); // AW(p2) = {p0, p1, p2}
        assert_eq!(t.awareness(P2).len(), 3);
        assert_eq!(t.max_knowledge(), 3);
    }

    #[test]
    fn writes_never_expand() {
        let mut t = KnowledgeTracker::new(2);
        t.record(P0, &Op::write(X, 1), false);
        assert!(
            !t.would_expand(P1, &Op::write(X, 2)),
            "only reading steps expand"
        );
    }

    #[test]
    fn expanding_step_counter() {
        let mut t = KnowledgeTracker::new(3);
        t.record(P0, &Op::write(X, 1), false);
        t.record(P1, &Op::Read(X), true);
        t.record(P1, &Op::Read(X), true);
        assert_eq!(t.expanding_steps(), 1);
        assert_eq!(t.steps(), 3);
    }

    #[test]
    fn faa_behaves_like_cas() {
        let mut t = KnowledgeTracker::new(3);
        t.record(P0, &Op::write(X, 1), false);
        t.record(P2, &Op::Faa { var: X, delta: 1 }, false);
        assert!(t.awareness(P2).contains(P0));
        assert!(t.familiarity(X).contains(P2));
        assert!(t.familiarity(X).contains(P0));
    }
}
