//! Assembling complete simulated worlds of `A_f` readers and writers.

use crate::af::counters::CounterKind;
use crate::af::shared::{AfShared, HelpOrder};
use crate::af::sim::{AfReaderSim, AfWriterSim};
use crate::config::AfConfig;
use ccsim::{Layout, Memory, ProcId, Program, Protocol, Sim, SymmetryClass};
use std::sync::Arc;

/// Process-id convention for lock worlds: readers first, then writers.
///
/// The paper's process set is `{R_1..R_n, W_1..W_m}`; we map reader `r` to
/// `ProcId(r)` and writer `w` to `ProcId(n + w)`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PidMap {
    /// Number of readers `n`.
    pub readers: usize,
    /// Number of writers `m`.
    pub writers: usize,
}

impl PidMap {
    /// The process id of reader `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn reader(&self, r: usize) -> ProcId {
        assert!(r < self.readers, "reader {r} out of range");
        ProcId(r)
    }

    /// The process id of writer `w`.
    ///
    /// # Panics
    /// Panics if `w` is out of range.
    pub fn writer(&self, w: usize) -> ProcId {
        assert!(w < self.writers, "writer {w} out of range");
        ProcId(self.readers + w)
    }

    /// All reader process ids.
    pub fn reader_pids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.readers).map(ProcId)
    }

    /// All writer process ids.
    pub fn writer_pids(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.writers).map(|w| ProcId(self.readers + w))
    }

    /// Total process count.
    pub fn total(&self) -> usize {
        self.readers + self.writers
    }
}

impl From<AfConfig> for PidMap {
    fn from(cfg: AfConfig) -> Self {
        PidMap {
            readers: cfg.readers,
            writers: cfg.writers,
        }
    }
}

/// A fully wired simulated `A_f` world.
#[derive(Debug)]
pub struct AfWorld {
    /// The simulation (readers are `ProcId(0..n)`, writers
    /// `ProcId(n..n+m)`).
    pub sim: Sim,
    /// The lock instance's shared-variable descriptor.
    pub shared: Arc<AfShared>,
    /// The id convention.
    pub pids: PidMap,
}

/// Build a simulated world running `A_f` under `cfg` and `protocol`.
///
/// # Examples
/// ```
/// use ccsim::{run_round_robin, Protocol, RunConfig};
/// use rwcore::{af_world, AfConfig};
///
/// let mut world = af_world(AfConfig::new(4, 2), Protocol::WriteBack);
/// let report = run_round_robin(
///     &mut world.sim,
///     &RunConfig { passages_per_proc: 2, ..Default::default() },
/// )?;
/// assert!(report.completed.iter().all(|&c| c == 2));
/// # Ok::<(), ccsim::RunError>(())
/// ```
pub fn af_world(cfg: AfConfig, protocol: Protocol) -> AfWorld {
    af_world_with_order(cfg, protocol, HelpOrder::WaitersFirst)
}

/// [`af_world`] with an explicit `HelpWCS` counter read order (see
/// [`HelpOrder`]); used by the regression test that reproduces the
/// paper-literal ordering's mutual-exclusion counterexample.
pub fn af_world_with_order(cfg: AfConfig, protocol: Protocol, order: HelpOrder) -> AfWorld {
    af_world_custom(cfg, protocol, order, CounterKind::FArray)
}

/// Fully parameterised world: `HelpWCS` read order and group-counter
/// implementation (the E13 ablation runs `CounterKind::CasLoop`).
///
/// `CasLoop` worlds additionally declare one [`SymmetryClass`] per reader
/// group with at least two members (see [`reader_symmetry_classes`]), so
/// the model checker's `Symmetry::Quotient` mode collapses reader
/// permutations. `FArray` worlds declare none: a tree counter's refresh
/// machine reads its *absolute* left/right heap children in program
/// order, so swapping two leaf values mid-refresh changes which partial
/// sum the machine has already latched — reader swaps are not transition
/// automorphisms there, and merging those states would be unsound.
pub fn af_world_custom(
    cfg: AfConfig,
    protocol: Protocol,
    order: HelpOrder,
    counters: CounterKind,
) -> AfWorld {
    let mut layout = Layout::new();
    let shared = AfShared::allocate_custom(&mut layout, cfg, order, counters);
    let pids = PidMap::from(cfg);
    let mem = Memory::new(&layout, pids.total(), protocol);
    let mut procs: Vec<Box<dyn Program>> = Vec::with_capacity(pids.total());
    for r in 0..cfg.readers {
        procs.push(Box::new(AfReaderSim::new(Arc::clone(&shared), r)));
    }
    for w in 0..cfg.writers {
        procs.push(Box::new(AfWriterSim::new(Arc::clone(&shared), w)));
    }
    let mut sim = Sim::new(mem, procs);
    sim.declare_symmetry(reader_symmetry_classes(cfg, counters));
    AfWorld { sim, shared, pids }
}

/// The interchangeable-reader classes of an `A_f` world: one class per
/// reader group of size ≥ 2, `CasLoop` counters only.
///
/// Within a group, `CasLoop` readers are *identical* machines — the
/// group's `C`/`W` counters are single CAS words shared by the whole
/// group (the per-reader leaf slot is ignored, see
/// [`crate::af::counters::GroupHandle::CasLoop`]), reader code never
/// writes a process id to shared memory, and
/// [`AfReaderSim`]'s fingerprint is index-free. Swapping two same-group
/// readers therefore maps every configuration to one with an identical
/// successor structure, which is exactly the soundness obligation of
/// [`ccsim::SymmetryClass`]. Readers in *different* groups touch
/// different counters and are not interchangeable. Writers are never
/// symmetric: the tournament-mutex entry protocol stores writer ids in
/// its tree nodes.
pub fn reader_symmetry_classes(cfg: AfConfig, counters: CounterKind) -> Vec<SymmetryClass> {
    if counters != CounterKind::CasLoop {
        return Vec::new();
    }
    let groups = cfg.groups();
    let mut members: Vec<Vec<ProcId>> = vec![Vec::new(); groups];
    for r in 0..cfg.readers {
        members[cfg.group_of(r).group].push(ProcId(r));
    }
    members
        .into_iter()
        .filter(|m| m.len() >= 2)
        .map(SymmetryClass::new)
        .collect()
}

/// [`af_world`] with the writers' crash-recovery epoch burn disabled —
/// recovery re-enters with the *same* `WSEQ` the crashed passage used
/// (see [`AfWriterSim::new_with_seq_reuse_bug`]). Deliberately broken:
/// exists so the model checker's catch-tests can prove the crash-all and
/// crash-augmented exploration actually detects the resulting
/// mutual-exclusion hole.
#[doc(hidden)]
pub fn af_world_seq_reuse_bug(cfg: AfConfig, protocol: Protocol) -> AfWorld {
    let mut layout = Layout::new();
    let shared = AfShared::allocate_custom(
        &mut layout,
        cfg,
        HelpOrder::WaitersFirst,
        CounterKind::FArray,
    );
    let pids = PidMap::from(cfg);
    let mem = Memory::new(&layout, pids.total(), protocol);
    let mut procs: Vec<Box<dyn Program>> = Vec::with_capacity(pids.total());
    for r in 0..cfg.readers {
        procs.push(Box::new(AfReaderSim::new(Arc::clone(&shared), r)));
    }
    for w in 0..cfg.writers {
        procs.push(Box::new(AfWriterSim::new_with_seq_reuse_bug(
            Arc::clone(&shared),
            w,
        )));
    }
    AfWorld {
        sim: Sim::new(mem, procs),
        shared,
        pids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FPolicy;
    use ccsim::{run_random, run_round_robin, run_solo, Phase, Prng, RunConfig};

    #[test]
    fn round_robin_all_policies_and_protocols() {
        for policy in FPolicy::NAMED {
            for protocol in [Protocol::WriteBack, Protocol::WriteThrough] {
                let cfg = AfConfig {
                    readers: 4,
                    writers: 2,
                    policy,
                };
                let mut world = af_world(cfg, protocol);
                let rc = RunConfig {
                    passages_per_proc: 3,
                    ..Default::default()
                };
                let report = run_round_robin(&mut world.sim, &rc)
                    .unwrap_or_else(|e| panic!("{policy} {protocol:?}: {e}"));
                assert!(report.completed.iter().all(|&c| c == 3), "{policy}");
            }
        }
    }

    #[test]
    fn random_schedules_many_seeds() {
        for seed in 0..30 {
            let cfg = AfConfig {
                readers: 3,
                writers: 2,
                policy: FPolicy::Groups(2),
            };
            let mut world = af_world(cfg, Protocol::WriteBack);
            let mut rng = Prng::new(seed);
            let rc = RunConfig {
                passages_per_proc: 4,
                ..Default::default()
            };
            run_random(&mut world.sim, &mut rng, &rc)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn solo_reader_enters_quickly_when_quiescent() {
        // Concurrent Entering: with all writers in the remainder section, a
        // reader reaches the CS in a bounded number of its own steps.
        let cfg = AfConfig {
            readers: 8,
            writers: 1,
            policy: FPolicy::LogN,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let r0 = world.pids.reader(0);
        let steps = run_solo(&mut world.sim, r0, 1_000, |s| s.phase(r0) == Phase::Cs)
            .expect("reader must enter CS in bounded steps");
        // add(1) is O(log K) plus one RSIG read plus transitions.
        assert!(steps < 60, "entry took {steps} steps");
    }

    #[test]
    fn solo_writer_passage_completes() {
        let cfg = AfConfig {
            readers: 8,
            writers: 2,
            policy: FPolicy::SqrtN,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let w0 = world.pids.writer(0);
        run_solo(&mut world.sim, w0, 10_000, |s| s.stats(w0).passages == 1)
            .expect("solo writer passage must complete");
        assert!(world.sim.check_mutual_exclusion().is_ok());
    }

    #[test]
    fn writer_blocks_while_reader_in_cs() {
        let cfg = AfConfig::new(2, 1);
        let mut world = af_world(cfg, Protocol::WriteBack);
        let (r0, w0) = (world.pids.reader(0), world.pids.writer(0));
        // Reader 0 enters the CS and parks there.
        run_solo(&mut world.sim, r0, 1_000, |s| s.phase(r0) == Phase::Cs).unwrap();
        // The writer runs solo for a long time and must NOT reach the CS.
        let reached = run_solo(&mut world.sim, w0, 5_000, |s| s.phase(w0) == Phase::Cs);
        assert_eq!(reached, None, "writer entered CS while a reader held it");
        assert!(world.sim.check_mutual_exclusion().is_ok());
        // Once the reader leaves, the writer gets in.
        run_solo(&mut world.sim, r0, 1_000, |s| {
            s.phase(r0) == Phase::Remainder
        })
        .unwrap();
        run_solo(&mut world.sim, w0, 5_000, |s| s.phase(w0) == Phase::Cs)
            .expect("writer must enter after reader exits");
    }

    #[test]
    fn reader_blocks_while_writer_in_cs() {
        let cfg = AfConfig::new(2, 1);
        let mut world = af_world(cfg, Protocol::WriteBack);
        let (r1, w0) = (world.pids.reader(1), world.pids.writer(0));
        run_solo(&mut world.sim, w0, 5_000, |s| s.phase(w0) == Phase::Cs).unwrap();
        let reached = run_solo(&mut world.sim, r1, 5_000, |s| s.phase(r1) == Phase::Cs);
        assert_eq!(reached, None, "reader entered CS while the writer held it");
        // Writer leaves; the waiting reader proceeds.
        run_solo(&mut world.sim, w0, 1_000, |s| {
            s.phase(w0) == Phase::Remainder
        })
        .unwrap();
        run_solo(&mut world.sim, r1, 5_000, |s| s.phase(r1) == Phase::Cs)
            .expect("reader must enter after writer exits");
    }

    #[test]
    fn readers_share_the_cs() {
        let cfg = AfConfig {
            readers: 4,
            writers: 1,
            policy: FPolicy::Groups(2),
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        for r in 0..4 {
            let pid = world.pids.reader(r);
            run_solo(&mut world.sim, pid, 1_000, |s| s.phase(pid) == Phase::Cs).unwrap();
        }
        assert_eq!(
            world.sim.procs_in_cs().len(),
            4,
            "all readers in CS together"
        );
        assert!(world.sim.check_mutual_exclusion().is_ok());
    }

    #[test]
    fn casloop_worlds_declare_reader_symmetry_farray_worlds_do_not() {
        // f=1 over 3 readers: one class holding all readers.
        let cfg = AfConfig {
            readers: 3,
            writers: 1,
            policy: FPolicy::One,
        };
        let world = af_world_custom(
            cfg,
            Protocol::WriteBack,
            HelpOrder::WaitersFirst,
            CounterKind::CasLoop,
        );
        let classes = world.sim.symmetry_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].members(), [ProcId(0), ProcId(1), ProcId(2)]);

        // The same config with f-array counters must declare nothing:
        // tree-counter refresh is not permutation-invariant.
        let farray = af_world(cfg, Protocol::WriteBack);
        assert!(farray.sim.symmetry_classes().is_empty());

        // Two groups of two: two classes, disjoint, group-aligned.
        let cfg4 = AfConfig {
            readers: 4,
            writers: 1,
            policy: FPolicy::Groups(2),
        };
        let world4 = af_world_custom(
            cfg4,
            Protocol::WriteBack,
            HelpOrder::WaitersFirst,
            CounterKind::CasLoop,
        );
        let classes4 = world4.sim.symmetry_classes();
        assert_eq!(classes4.len(), 2);
        assert_eq!(classes4[0].members(), [ProcId(0), ProcId(1)]);
        assert_eq!(classes4[1].members(), [ProcId(2), ProcId(3)]);

        // Singleton trailing groups are dropped (3 readers, groups of 2).
        let cfg3 = AfConfig {
            readers: 3,
            writers: 1,
            policy: FPolicy::Groups(2),
        };
        assert_eq!(reader_symmetry_classes(cfg3, CounterKind::CasLoop).len(), 1);
    }

    #[test]
    fn pid_map_convention() {
        let pids = PidMap {
            readers: 3,
            writers: 2,
        };
        assert_eq!(pids.reader(2), ProcId(2));
        assert_eq!(pids.writer(0), ProcId(3));
        assert_eq!(pids.total(), 5);
        assert_eq!(pids.writer_pids().count(), 2);
    }
}
