//! Real-hardware throughput harness (experiment E8 and the contended
//! lock lab).
//!
//! Measures wall-clock passages/second of the real-atomics locks under
//! mixed read/write workloads, with per-thread roles fixed up front (the
//! `A_f` model has distinct reader and writer processes). Contender sets
//! come from [`rwcore::LockRegistry`] — a lock registered there appears
//! here with no harness edits — and contended workload shapes come from
//! the [`Scenario`] DSL, the same strings the model-check suite consumes.
//!
//! The lock adapter trait is [`rwcore::RealLock`] (formerly
//! `BenchLock` in this module; re-exported under the old name for one
//! release — see the CHANGELOG migration note). The external baseline is
//! `std::sync::RwLock` only: the workspace builds offline with zero
//! external dependencies, so the `parking_lot` contender was dropped.

use crate::hist::Histogram;
use ccsim::Prng;
use rwcore::{LockRegistry, RealShape, Scenario};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

pub use rwcore::{RawAdapter, RealLock, StdAdapter};

/// Deprecated alias for [`RealLock`] (the trait moved to `rwcore` so the
/// registry can build contenders without depending on the harness).
#[deprecated(note = "renamed to `rwcore::RealLock`; see the CHANGELOG migration note")]
pub use rwcore::RealLock as BenchLock;

/// Workload shape: how many reader and writer threads, and how many
/// passages each performs.
#[derive(Copy, Clone, Debug)]
pub struct Workload {
    /// Reader thread count.
    pub readers: usize,
    /// Writer thread count.
    pub writers: usize,
    /// Passages per reader thread.
    pub reads_per_reader: u64,
    /// Passages per writer thread.
    pub writes_per_writer: u64,
}

impl Workload {
    /// A read-heavy workload sized to `threads` total.
    pub fn read_heavy(threads: usize) -> Self {
        let writers = 1.max(threads / 8);
        Workload {
            readers: threads.saturating_sub(writers).max(1),
            writers,
            reads_per_reader: 20_000,
            writes_per_writer: 2_000,
        }
    }

    /// A balanced workload.
    pub fn mixed(threads: usize) -> Self {
        let writers = 1.max(threads / 2);
        Workload {
            readers: threads.saturating_sub(writers).max(1),
            writers,
            reads_per_reader: 10_000,
            writes_per_writer: 10_000,
        }
    }

    /// Total passages.
    pub fn total_passages(&self) -> u64 {
        self.readers as u64 * self.reads_per_reader + self.writers as u64 * self.writes_per_writer
    }
}

/// Result of one throughput run.
#[derive(Clone, Debug)]
pub struct ThroughputSample {
    /// Lock label.
    pub lock: String,
    /// The workload run.
    pub workload: Workload,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Total passages / second.
    pub passages_per_sec: f64,
}

/// Run `workload` against `lock` once and report throughput.
pub fn run_throughput(lock: Arc<dyn RealLock>, workload: Workload) -> ThroughputSample {
    let barrier = Arc::new(Barrier::new(workload.readers + workload.writers + 1));
    let mut handles = Vec::new();
    for r in 0..workload.readers {
        let lock = Arc::clone(&lock);
        let barrier = Arc::clone(&barrier);
        let reads = workload.reads_per_reader;
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..reads {
                lock.read_pass(r);
            }
        }));
    }
    for w in 0..workload.writers {
        let lock = Arc::clone(&lock);
        let barrier = Arc::clone(&barrier);
        let writes = workload.writes_per_writer;
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..writes {
                lock.write_pass(w);
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    let elapsed = start.elapsed();
    ThroughputSample {
        lock: lock.label(),
        workload,
        elapsed,
        passages_per_sec: workload.total_passages() as f64 / elapsed.as_secs_f64(),
    }
}

/// The standard contender set for a given `(readers, writers)` shape:
/// every real-capable lock in [`LockRegistry::builtin`], freshly built.
pub fn contenders(readers: usize, writers: usize) -> Vec<Arc<dyn RealLock>> {
    LockRegistry::builtin().real_locks(RealShape::new(readers, writers))
}

/// How long a contended run lasts.
#[derive(Copy, Clone, Debug)]
pub enum OpBudget {
    /// Run until the wall clock expires (measurement mode).
    Duration(Duration),
    /// Run a fixed per-thread op count (deterministic smoke mode: with a
    /// fixed seed, every thread's read/write sequence — and therefore
    /// the total read/write counts — is reproducible).
    PerThreadOps(u64),
}

/// A symmetric contended workload driven by a [`Scenario`]: `threads`
/// identical threads, each deriving every per-op decision — the
/// read/write mix coin, burst repetition, churn yields, think-time spins
/// — from the scenario via a seeded per-thread [`Prng`]. Thread `t` acts
/// as reader id `t` *and* writer id `t` of the lock under test (sized
/// for `threads` readers and writers).
#[derive(Copy, Clone, Debug)]
pub struct MixedWorkload {
    /// OS thread count (after scenario oversubscription when built via
    /// [`MixedWorkload::from_scenario`]).
    pub threads: usize,
    /// The scenario the per-op decisions derive from.
    pub scenario: Scenario,
    /// Run length.
    pub budget: OpBudget,
    /// Pin thread `t` to CPU `t % ncpu` (best-effort; see [`crate::pin`]).
    pub pin: bool,
    /// Per-run RNG seed (thread `t` derives its stream from `seed + t`).
    pub seed: u64,
}

impl MixedWorkload {
    /// The real-harness derivation of a scenario: `base_threads` slots
    /// scaled by the scenario's oversubscription factor, everything else
    /// carried in the scenario itself. This is the bench-side half of
    /// the sim/real parity contract — the model-check suite derives its
    /// side from the *same* [`Scenario`] accessors.
    pub fn from_scenario(
        scenario: Scenario,
        base_threads: usize,
        budget: OpBudget,
        pin: bool,
        seed: u64,
    ) -> Self {
        MixedWorkload {
            threads: scenario.thread_count(base_threads),
            scenario,
            budget,
            pin,
            seed,
        }
    }
}

/// Result of one contended run: totals plus merged per-thread latency
/// histograms (nanoseconds per op, lock passage + tiny CS).
#[derive(Clone, Debug)]
pub struct ContendedSample {
    /// Lock label.
    pub lock: String,
    /// Thread count.
    pub threads: usize,
    /// Total read passages completed.
    pub reads: u64,
    /// Total write passages completed.
    pub writes: u64,
    /// Wall-clock duration of the measured region.
    pub elapsed: Duration,
    /// Read-op latency histogram (merged across threads).
    pub read_hist: Histogram,
    /// Write-op latency histogram (merged across threads).
    pub write_hist: Histogram,
    /// Whether every thread was successfully pinned.
    pub pinned: bool,
    /// The shard count the lock actually ran with ([`RealLock::effective_shards`]).
    pub shards: Option<usize>,
}

impl ContendedSample {
    /// Total passages / second.
    pub fn ops_per_sec(&self) -> f64 {
        (self.reads + self.writes) as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Read and write histograms merged (every cell has at least one op,
    /// so quantiles over this merged view always exist).
    pub fn merged_hist(&self) -> Histogram {
        let mut h = self.read_hist.clone();
        h.merge(&self.write_hist);
        h
    }
}

/// What one bench thread brings home.
struct ThreadTake {
    reads: u64,
    writes: u64,
    read_hist: Histogram,
    write_hist: Histogram,
    pinned: bool,
}

/// Run `wl` against `lock` once: all threads start together behind a
/// barrier, record per-op latencies into thread-local histograms, and
/// stop on the budget (a stop flag for [`OpBudget::Duration`], a local
/// countdown for [`OpBudget::PerThreadOps`]).
pub fn run_contended(lock: Arc<dyn RealLock>, wl: &MixedWorkload) -> ContendedSample {
    assert!(wl.threads > 0, "need at least one thread");
    let barrier = Arc::new(Barrier::new(wl.threads + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let ncpu = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut handles = Vec::with_capacity(wl.threads);
    for t in 0..wl.threads {
        let lock = Arc::clone(&lock);
        let barrier = Arc::clone(&barrier);
        let stop = Arc::clone(&stop);
        let wl = *wl;
        handles.push(std::thread::spawn(move || {
            let pinned = if wl.pin {
                crate::pin::pin_to_cpu(t % ncpu).is_ok()
            } else {
                false
            };
            let mut rng = Prng::new(wl.seed.wrapping_add(t as u64));
            let mut take = ThreadTake {
                reads: 0,
                writes: 0,
                read_hist: Histogram::new(),
                write_hist: Histogram::new(),
                pinned,
            };
            barrier.wait();
            let quota = match wl.budget {
                OpBudget::PerThreadOps(n) => n,
                OpBudget::Duration(_) => u64::MAX,
            };
            let scenario = wl.scenario;
            let mut prev_read = None;
            while take.reads + take.writes < quota {
                if matches!(wl.budget, OpBudget::Duration(_)) && stop.load(Ordering::Relaxed) {
                    break;
                }
                // Burstiness first: with probability `burst`, repeat the
                // previous op's kind instead of drawing a fresh mix coin.
                let is_read = match prev_read {
                    Some(prev) if scenario.burst.fires(&mut rng) => prev,
                    _ => scenario.draw_read(&mut rng),
                };
                prev_read = Some(is_read);
                let t0 = Instant::now();
                if is_read {
                    lock.read_pass(t);
                } else {
                    lock.write_pass(t);
                }
                let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                if is_read {
                    take.read_hist.record(ns);
                    take.reads += 1;
                } else {
                    take.write_hist.record(ns);
                    take.writes += 1;
                }
                for _ in 0..scenario.think {
                    std::hint::spin_loop();
                }
                if scenario.churn.fires(&mut rng) {
                    std::thread::yield_now();
                }
            }
            take
        }));
    }

    barrier.wait();
    let start = Instant::now();
    if let OpBudget::Duration(d) = wl.budget {
        std::thread::sleep(d);
        stop.store(true, Ordering::Relaxed);
    }
    let mut sample = ContendedSample {
        lock: lock.label(),
        threads: wl.threads,
        reads: 0,
        writes: 0,
        elapsed: Duration::ZERO,
        read_hist: Histogram::new(),
        write_hist: Histogram::new(),
        pinned: wl.pin,
        shards: lock.effective_shards(),
    };
    for h in handles {
        let take = h.join().expect("bench thread panicked");
        sample.reads += take.reads;
        sample.writes += take.writes;
        sample.read_hist.merge(&take.read_hist);
        sample.write_hist.merge(&take.write_hist);
        sample.pinned &= take.pinned;
    }
    sample.elapsed = start.elapsed();
    sample
}

/// The contended-lab contender set for `threads` symmetric threads with
/// an explicit shard request: every real-capable lock in
/// [`LockRegistry::builtin`] at the symmetric shape. The sharded variant
/// may cap the request (see [`RealLock::effective_shards`]); the
/// per-sample `shards` field reports what it actually ran with.
pub fn contended_contenders(threads: usize, shards: usize) -> Vec<Arc<dyn RealLock>> {
    LockRegistry::builtin().real_locks(RealShape::symmetric(threads).with_shards(shards))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_wl(scenario: &str, threads: usize, budget: OpBudget, seed: u64) -> MixedWorkload {
        MixedWorkload {
            threads,
            scenario: scenario.parse().unwrap(),
            budget,
            pin: false,
            seed,
        }
    }

    #[test]
    fn all_contenders_complete_a_small_workload() {
        let wl = Workload {
            readers: 2,
            writers: 1,
            reads_per_reader: 500,
            writes_per_writer: 100,
        };
        for lock in contenders(2, 1) {
            let sample = run_throughput(lock, wl);
            assert!(sample.passages_per_sec > 0.0, "{}", sample.lock);
        }
    }

    #[test]
    fn workload_shapes() {
        let rh = Workload::read_heavy(8);
        assert!(rh.readers > rh.writers);
        assert!(rh.total_passages() > 0);
        let mx = Workload::mixed(8);
        assert_eq!(mx.readers + mx.writers, 8);
    }

    #[test]
    fn contended_run_completes_for_all_locks() {
        let wl = mixed_wl("r9:1", 2, OpBudget::PerThreadOps(200), 7);
        for lock in contended_contenders(2, 2) {
            let label = lock.label();
            let s = run_contended(lock, &wl);
            assert_eq!(s.reads + s.writes, 400, "{label}");
            assert_eq!(s.read_hist.count(), s.reads, "{label}");
            assert_eq!(s.write_hist.count(), s.writes, "{label}");
            assert!(s.merged_hist().quantile(0.99).is_some(), "{label}");
            assert!(!s.pinned, "{label}: pinning was not requested");
            if label == "a_f-sharded" {
                assert_eq!(s.shards, Some(2), "{label}: effective shards surface");
            } else {
                assert_eq!(s.shards, None, "{label}");
            }
        }
    }

    #[test]
    fn contended_op_mix_is_seed_deterministic() {
        let wl = mixed_wl("r99:1,churn=0.125", 3, OpBudget::PerThreadOps(300), 42);
        let a = run_contended(Arc::new(StdAdapter::default()), &wl);
        let b = run_contended(Arc::new(StdAdapter::default()), &wl);
        assert_eq!((a.reads, a.writes), (b.reads, b.writes));
        assert_eq!(a.reads + a.writes, 900);
    }

    #[test]
    fn contended_duration_budget_stops() {
        let wl = mixed_wl("r9:1", 2, OpBudget::Duration(Duration::from_millis(20)), 1);
        let s = run_contended(Arc::new(StdAdapter::default()), &wl);
        assert!(s.reads + s.writes > 0);
        assert!(s.elapsed >= Duration::from_millis(20));
    }

    #[test]
    fn burst_and_think_scenarios_complete() {
        let wl = mixed_wl("r3:1,burst=0.9,think=50", 2, OpBudget::PerThreadOps(200), 5);
        let s = run_contended(Arc::new(StdAdapter::default()), &wl);
        assert_eq!(s.reads + s.writes, 400);
        assert!(s.reads > 0 && s.writes > 0, "bursts keep the overall mix");
    }

    #[test]
    fn from_scenario_applies_oversubscription() {
        let wl = MixedWorkload::from_scenario(
            "r9:1,oversub=4".parse().unwrap(),
            2,
            OpBudget::PerThreadOps(10),
            false,
            3,
        );
        assert_eq!(wl.threads, 8);
        let plain = MixedWorkload::from_scenario(
            "r9:1".parse().unwrap(),
            2,
            OpBudget::PerThreadOps(10),
            false,
            3,
        );
        assert_eq!(plain.threads, 2);
    }
}
