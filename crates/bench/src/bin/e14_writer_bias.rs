//! E14 (extension) — the writer-biased `A_f` variant vs plain `A_f`:
//! does gating new readers during a writer passage fix E12's starvation?
//!
//! Same methodology as E12: `a` readers cycle non-stop under a uniform
//! random scheduler; measure scheduler steps until the writer's first CS
//! entry. The gated variant holds arrivals at a gate the moment a writer
//! commits, so the writer's group drains instead of churning — at the
//! documented price of losing Lemma 16 (readers may now starve behind
//! back-to-back writers).

use bench::Table;
use ccsim::{Phase, Prng, ProcId, Protocol, Sim, Step};
use rwcore::{af_world, gated_af_world, AfConfig, FPolicy, PidMap};

fn writer_latency(
    sim: &mut Sim,
    pids: &PidMap,
    active: usize,
    seed: u64,
    budget: u64,
) -> Option<u64> {
    let mut rng = Prng::new(seed);
    let readers: Vec<ProcId> = pids.reader_pids().take(active).collect();
    let writer = pids.writer(0);
    let participants: Vec<ProcId> = readers
        .iter()
        .copied()
        .chain(std::iter::once(writer))
        .collect();
    for t in 0..budget {
        if sim.phase(writer) == Phase::Cs {
            return Some(t);
        }
        let p = participants[rng.below(participants.len())];
        match sim.poll(p) {
            Step::Remainder if p == writer && sim.stats(writer).passages > 0 => continue,
            _ => {
                sim.step(p);
            }
        }
        sim.check_mutual_exclusion().expect("MX holds throughout");
    }
    None
}

fn stats(samples: &mut [Option<u64>]) -> (String, String) {
    samples.sort();
    let median = match samples[samples.len() / 2] {
        Some(v) => v.to_string(),
        None => "STARVED".into(),
    };
    let worst = match samples.last().unwrap() {
        Some(v) => v.to_string(),
        None => "STARVED".into(),
    };
    (median, worst)
}

fn main() {
    let n = 16usize;
    let budget = 2_000_000u64;
    let seeds = 11u64;
    let cfg = AfConfig {
        readers: n,
        writers: 1,
        policy: FPolicy::One,
    };
    let mut table = Table::new([
        "active readers",
        "A_f median",
        "A_f worst",
        "gated median",
        "gated worst",
    ]);

    for active in [0usize, 2, 4, 8, 16] {
        let mut plain: Vec<Option<u64>> = (0..seeds)
            .map(|seed| {
                let mut world = af_world(cfg, Protocol::WriteBack);
                writer_latency(&mut world.sim, &world.pids, active, seed, budget)
            })
            .collect();
        let mut gated: Vec<Option<u64>> = (0..seeds)
            .map(|seed| {
                let mut world = gated_af_world(cfg, Protocol::WriteBack);
                writer_latency(&mut world.sim, &world.pids, active, seed, budget)
            })
            .collect();
        let (pm, pw) = stats(&mut plain);
        let (gm, gw) = stats(&mut gated);
        table.row([active.to_string(), pm, pw, gm, gw]);
    }

    println!(
        "E14 — writer time-to-CS: plain A_f vs the writer-biased (gated)\n\
         variant (n = {n}, f = 1, budget {budget})\n"
    );
    table.print();
    println!(
        "\nExpected shape: medians are a touch higher for the gated variant\n\
         (the gate costs a read per passage and two writes per writer\n\
         passage), but the starvation *tail* shrinks at moderate churn —\n\
         once the gate is up no new reader can join the drain. At extreme\n\
         churn (every reader always active) the residual tail comes from\n\
         readers already admitted when the gate rises; eliminating it\n\
         needs phase-fair machinery, which is exactly the open problem\n\
         the paper leaves. The price (not shown): gated readers can\n\
         starve behind back-to-back writers, so Lemma 16 no longer holds\n\
         for the variant. Safety is preserved and exhaustively\n\
         model-checked."
    );
}
