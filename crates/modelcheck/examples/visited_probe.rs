//! Ad-hoc sizing probe for visited-store experiments.
//!
//! `cargo run --release -p modelcheck --example visited_probe -- \
//!      <casloop|farray> <readers> <writers> <crash_budget> <symmetry> <backend> [workers]`
//!
//! Prints states / visited entries / LDD node counts / resident bytes /
//! op-cache traffic / wall-clock so bench floors can be chosen from
//! measurements instead of guesses.

use ccsim::Protocol;
use modelcheck::{explore_par, CheckConfig, Symmetry, VisitedBackend};
use rwcore::{af_world_custom, AfConfig, CounterKind, FPolicy, HelpOrder};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = match args[0].as_str() {
        "casloop" => CounterKind::CasLoop,
        "farray" => CounterKind::FArray,
        other => panic!("unknown kind {other}"),
    };
    let readers: usize = args[1].parse().unwrap();
    let writers: usize = args[2].parse().unwrap();
    let crash_budget: u32 = args[3].parse().unwrap();
    let symmetry: Symmetry = args[4].parse().unwrap();
    let backend: VisitedBackend = args[5].parse().unwrap();
    let workers: usize = args.get(6).map(|w| w.parse().unwrap()).unwrap_or(8);

    let cfg = AfConfig {
        readers,
        writers,
        policy: FPolicy::One,
    };
    let check = CheckConfig {
        passages_per_proc: 1,
        crash_budget,
        max_states: 200_000_000,
        symmetry,
        backend,
        ..Default::default()
    };
    let factory =
        move || af_world_custom(cfg, Protocol::WriteBack, HelpOrder::WaitersFirst, kind).sim;
    let mut vec0 = Vec::new();
    factory().canonical_vec(&mut vec0);
    let words = vec0.len() + 3; // + the three budget words
    let start = Instant::now();
    let report = explore_par(factory, &check, workers).expect("safe space");
    let secs = start.elapsed().as_secs_f64();
    let v = report.visited;
    println!(
        "kind={} n={readers} m={writers} crash={crash_budget} sym={symmetry} backend={backend} \
         workers={workers}",
        args[0]
    );
    println!(
        "complete={} states={} entries={} secs={secs:.1} states/s={:.0}",
        report.complete,
        report.states_explored,
        v.entries,
        report.states_explored as f64 / secs
    );
    println!(
        "resident_bytes={} bytes/state={:.2} nodes={} hits={} misses={} hit_rate={:?} skew={:?}",
        v.resident_bytes,
        v.resident_bytes as f64 / v.entries.max(1) as f64,
        v.nodes,
        v.op_cache_hits,
        v.op_cache_misses,
        v.op_cache_hit_rate(),
        v.shard_skew()
    );
    println!(
        "vector_words={words} explicit_bytes={} compression_vs_explicit={:.2}",
        v.entries * words as u64 * 8,
        (v.entries * words as u64 * 8) as f64 / v.resident_bytes as f64
    );
}
