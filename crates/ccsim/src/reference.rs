//! The original map-based coherence core, preserved verbatim.
//!
//! [`crate::Memory`] was rewritten as a flat per-variable directory (see
//! `directory.rs`); this module keeps the previous implementation — one
//! `HashMap<VarId, Mode>` cache per process, O(n_procs) sweeps on every
//! invalidation — so that:
//!
//! * the randomized differential test (`tests/differential_memory.rs`)
//!   can assert the rewrite preserves [`StepOutcome`] semantics exactly,
//!   operation by operation, under all three protocols; and
//! * the `perf_smoke` bench binary can measure the before/after
//!   steps-per-second ratio on the same workload.
//!
//! Nothing else should depend on this module: it is not part of the
//! simulator's supported API and exists only as a verification oracle.

use crate::cache::{Cache, Mode, Protocol};
use crate::layout::Layout;
use crate::memory::StepOutcome;
use crate::op::Op;
use crate::value::{ProcId, Value, VarId};

/// The pre-directory [`crate::Memory`]: per-process hash-map caches.
///
/// Semantics are identical to [`crate::Memory`] by construction (this is
/// the code the rewrite replaced); only the cache representation — and
/// therefore the cost per step — differs.
#[derive(Clone, Debug)]
pub struct RefMemory {
    protocol: Protocol,
    values: Vec<Value>,
    caches: Vec<Cache>,
    homes: Vec<Option<usize>>,
}

impl RefMemory {
    /// Create a memory with the variables of `layout` (at their initial
    /// values) and `n_procs` cold caches.
    pub fn new(layout: &Layout, n_procs: usize, protocol: Protocol) -> Self {
        RefMemory {
            protocol,
            values: layout.initial_values(),
            caches: (0..n_procs).map(|_| Cache::new()).collect(),
            homes: layout.home_assignments(),
        }
    }

    /// Would `p` incur an RMR if it executed `op` now?
    pub fn would_rmr(&self, p: ProcId, op: &Op) -> bool {
        let v = op.var();
        let cache = &self.caches[p.0];
        match (self.protocol, op) {
            (Protocol::WriteThrough, Op::Read(_)) => !cache.holds(v),
            (Protocol::WriteThrough, _) => true,
            (Protocol::WriteBack, Op::Read(_)) => !cache.holds(v),
            (Protocol::WriteBack, _) => !cache.holds_exclusive(v),
            (Protocol::Dsm, _) => self.homes[v.0] != Some(p.0),
        }
    }

    /// Apply one operation by process `p`; see [`crate::Memory::apply`].
    ///
    /// # Panics
    /// Panics if `p` or the accessed variable is out of range.
    pub fn apply(&mut self, p: ProcId, op: &Op) -> StepOutcome {
        let v = op.var();
        assert!(p.0 < self.caches.len(), "process {p} out of range");
        assert!(v.0 < self.values.len(), "variable {v} out of range");
        let old = self.values[v.0];
        let rmr = self.would_rmr(p, op);

        let (response, new) = match *op {
            Op::Read(_) => (old, old),
            Op::Write(_, val) => (Value::Nil, val),
            Op::Cas { expected, new, .. } => {
                if old == expected {
                    (old, new)
                } else {
                    (old, old)
                }
            }
            Op::Faa { delta, .. } => (old, Value::Int(old.expect_int() + delta)),
        };
        self.values[v.0] = new;

        if self.protocol == Protocol::Dsm {
            return StepOutcome {
                response,
                rmr,
                trivial: old == new,
                old,
                new,
            };
        }
        match (self.protocol, op.is_writing()) {
            (Protocol::WriteThrough, false) => {
                self.caches[p.0].insert(v, Mode::Shared);
            }
            (Protocol::WriteThrough, true) => {
                self.invalidate_others(p, v);
                self.caches[p.0].insert(v, Mode::Shared);
            }
            (Protocol::WriteBack, false) => {
                if !self.caches[p.0].holds(v) {
                    for (i, c) in self.caches.iter_mut().enumerate() {
                        if i != p.0 {
                            c.downgrade(v);
                        }
                    }
                    self.caches[p.0].insert(v, Mode::Shared);
                }
            }
            (Protocol::WriteBack, true) => {
                if !self.caches[p.0].holds_exclusive(v) {
                    self.invalidate_others(p, v);
                }
                self.caches[p.0].insert(v, Mode::Exclusive);
            }
            (Protocol::Dsm, _) => unreachable!("handled by the early return above"),
        }

        StepOutcome {
            response,
            rmr,
            trivial: old == new,
            old,
            new,
        }
    }

    fn invalidate_others(&mut self, p: ProcId, v: VarId) {
        for (i, c) in self.caches.iter_mut().enumerate() {
            if i != p.0 {
                c.invalidate(v);
            }
        }
    }

    /// The cache of process `p` (for differential assertions).
    pub fn cache(&self, p: ProcId) -> &Cache {
        &self.caches[p.0]
    }

    /// A snapshot of all variable values, in variable order.
    pub fn snapshot(&self) -> Vec<Value> {
        self.values.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_core_basic_coherence() {
        let mut l = Layout::new();
        let x = l.var("x", Value::Int(0));
        let mut m = RefMemory::new(&l, 3, Protocol::WriteBack);
        assert!(m.apply(ProcId(0), &Op::Read(x)).rmr);
        assert!(!m.apply(ProcId(0), &Op::Read(x)).rmr);
        m.apply(ProcId(1), &Op::write(x, 3));
        assert!(m.cache(ProcId(1)).holds_exclusive(x));
        assert!(m.apply(ProcId(0), &Op::Read(x)).rmr);
        assert!(
            !m.cache(ProcId(1)).holds_exclusive(x),
            "reader downgrades the exclusive holder"
        );
    }
}
