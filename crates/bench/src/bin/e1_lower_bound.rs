//! E1 — Theorem 5 / Figure 1: the lower-bound adversary against `A_f`.
//!
//! Reproduces the paper's central construction: all readers enter the CS,
//! exit under knowledge-throttled scheduling, then one writer enters. For
//! each `(n, f)` the table reports the iteration count `r` against the
//! predicted `log₃(n/f)`, the Lemma-2 growth bound, the worst per-reader
//! expanding-step count, and the Lemma-4 awareness check.

use bench::{log3, Table};
use ccsim::Protocol;
use knowledge::{run_lower_bound, AdversarySetup};
use rwcore::{af_world, AfConfig, FPolicy};

fn main() {
    let mut table = Table::new([
        "n",
        "f policy",
        "groups",
        "r (iters)",
        "log3(n/f)",
        "max expand/reader",
        "reader exit RMR",
        "writer entry RMR",
        "M<=3^j",
        "Lemma 4",
    ]);

    for n in [8usize, 16, 32, 64, 128, 256, 512, 1024] {
        for policy in [FPolicy::One, FPolicy::LogN, FPolicy::SqrtN] {
            let cfg = AfConfig {
                readers: n,
                writers: 1,
                policy,
            };
            let mut world = af_world(cfg, Protocol::WriteBack);
            let setup =
                AdversarySetup::new(world.pids.reader_pids().collect(), world.pids.writer(0));
            let report = run_lower_bound(&mut world.sim, &setup)
                .unwrap_or_else(|e| panic!("n={n} {policy}: {e}"));
            let predicted = log3(n as f64 / cfg.occupied_groups() as f64);
            table.row([
                n.to_string(),
                policy.to_string(),
                cfg.occupied_groups().to_string(),
                report.iterations.to_string(),
                format!("{predicted:.2}"),
                report.max_reader_expanding.to_string(),
                report.max_reader_exit_rmrs.to_string(),
                report.writer_entry_rmrs.to_string(),
                if report.lemma2_bound_held {
                    "ok"
                } else {
                    "VIOLATED"
                }
                .to_string(),
                if report.writer_aware_of_all {
                    "ok"
                } else {
                    "VIOLATED"
                }
                .to_string(),
            ]);
        }
    }

    println!("E1 — Theorem 5 lower-bound construction against A_f (write-back CC)\n");
    table.print();
    println!(
        "\nExpected shape: r grows with log3(n/f) at matching slope; every\n\
         expanding step costs an RMR (exit RMR >= max expand); M_j <= 3^j\n\
         (Lemma 2) and the writer ends aware of all n readers (Lemma 4)."
    );
}
