//! # rwcore — RMR-optimal reader-writer locks (`A_f`)
//!
//! The primary contribution of *"On the Complexity of Reader-Writer
//! Locks"* (Hendler, PODC 2016): the family `A_f` of reader-writer lock
//! algorithms from read, write and CAS, parameterised on the writer's RMR
//! budget `f(n)`. Per Theorem 18 every member guarantees Mutual
//! Exclusion, Bounded Exit, Deadlock Freedom, Concurrent Entering and
//! freedom from reader starvation, with writer passages in `Θ(f(n))` RMRs
//! and reader passages in `Θ(log(n/f(n)))` RMRs — matching the paper's
//! Theorem-5 lower-bound tradeoff at every point.
//!
//! The lock comes in two interchangeable forms:
//!
//! * **Production** — [`AfRwLock<T>`] (typed, RAII guards) over
//!   [`RawAfLock`] (raw entry/exit sections), built on real atomics.
//! * **Simulated** — [`AfReaderSim`]/[`AfWriterSim`] step machines over a
//!   [`ccsim`] world ([`af_world`]), used to *measure* RMR complexity and
//!   to model-check the safety claims.
//!
//! Baselines for the paper's §6 comparisons live in [`baselines`].
//!
//! ```
//! use rwcore::{AfConfig, AfRwLock, FPolicy};
//!
//! let cfg = AfConfig { readers: 8, writers: 2, policy: FPolicy::SqrtN };
//! let lock = AfRwLock::new(cfg, String::from("shared"));
//! let mut r = lock.reader(3)?;
//! assert_eq!(&*r.read(), "shared");
//! # Ok::<(), rwcore::HandleError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod af;
pub mod baselines;
mod busy_forbidden;
mod config;
pub mod lock;
pub mod registry;
pub mod scenario;
mod sig;
mod world;

pub use af::counters::{CounterKind, GroupAddMachine, GroupCounter, GroupHandle, GroupReadMachine};
pub use af::gated::{gated_af_world, GatedAfLock, GatedReaderSim, GatedWorld, GatedWriterSim};
pub use af::real::RawAfLock;
pub use af::sharded::ShardedAfRwLock;
pub use af::sharded_sim::{
    sharded_af_world, ShardedReaderSim, ShardedSimShared, ShardedWorld, ShardedWriterSim,
};
pub use af::shared::{AfShared, HelpOrder};
pub use af::sim::{AfReaderSim, AfWriterSim, HelpWcsMachine};
pub use af::typed::{AfRwLock, HandleError, ReadGuard, ReaderHandle, WriteGuard, WriterHandle};
pub use baselines::real::{CentralizedRwLock, FaaRwLock, MutexRwLock, RawRwLock};
pub use baselines::sim::{centralized_world, faa_world, mutex_rw_world, BaselineWorld};
pub use busy_forbidden::BusyForbiddenLock;
pub use config::{AfConfig, FPolicy, GroupSlot};
pub use lock::{
    FaultSupport, RawAdapter, RealLock, RealLockFactory, RealShape, SimInstance, SimLock,
    StdAdapter,
};
pub use registry::{LockEntry, LockRegistry};
pub use scenario::{NamedScenario, Rate, Scenario};
pub use sig::{Opcode, Signal};
pub use world::{
    af_world, af_world_custom, af_world_seq_reuse_bug, af_world_with_order,
    reader_symmetry_classes, AfWorld, PidMap,
};
