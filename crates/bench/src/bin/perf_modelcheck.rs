//! Perf smoke test for the model checker (PR 3): states/sec of the
//! exhaustive explorer across its three operating points —
//!
//! 1. **`full_rehash` baseline** — the pre-PR-3 state keys: a SipHash
//!    walk over every shared variable and every process's local state,
//!    per state.
//! 2. **Incremental fingerprints** — the O(1) Zobrist keys maintained by
//!    [`ccsim::Sim`] per transition, sequential explorer.
//! 3. **Parallel explorer** — [`modelcheck::explore_par`] with the host's
//!    worker pool over the same incremental keys.
//!
//! All three runs must report byte-identical state counts (two
//! independent hash families agreeing is the aliasing oracle; the
//! parallel explorer is exactly-once by construction). Results go to
//! `BENCH_modelcheck.json` (override with `BENCH_MODELCHECK_OUT`); the
//! worker pool respects `BENCH_THREADS`.
//!
//! The run closes with the *previously infeasible* instance: the
//! two-crash adversary against `A_f` n=2 m=1 — 8.75M states, past the
//! checker's default 5M cap and far past what the allocation-heavy
//! full-rehash explorer finished in reasonable time — exhausted to
//! completion.
//!
//! Floors (release builds): incremental keys ≥ 2× the full-rehash
//! baseline at workers = 1, and the parallel explorer ≥ 3× the
//! full-rehash baseline when the pool has ≥ 4 workers.

use bench::par;
use ccsim::Protocol;
use modelcheck::{explore, explore_par, CheckConfig, CheckReport};
use rwcore::{af_world, AfConfig, FPolicy};
use std::time::Instant;

const SAMPLES: usize = 5;

fn af_factory(crash_budget: u32) -> (impl Fn() -> ccsim::Sim + Sync, CheckConfig) {
    let cfg = AfConfig {
        readers: 2,
        writers: 1,
        policy: FPolicy::One,
    };
    let check = CheckConfig {
        passages_per_proc: 1,
        crash_budget,
        max_states: 50_000_000,
        ..Default::default()
    };
    (move || af_world(cfg, Protocol::WriteBack).sim, check)
}

/// One timed run of an exploration mode.
fn timed(mut run: impl FnMut() -> CheckReport) -> (f64, CheckReport) {
    let start = Instant::now();
    let report = run();
    (start.elapsed().as_secs_f64(), report)
}

fn main() {
    let workers = par::worker_count(usize::MAX);
    let (factory, check) = af_factory(1);

    // Best-of-SAMPLES per mode, with the modes *interleaved* round-robin:
    // a noisy-neighbor phase on a shared host then penalises every mode
    // equally instead of skewing whichever one it happened to overlap.
    let full_cfg = CheckConfig {
        full_rehash: true,
        ..check.clone()
    };
    let (mut full_secs, mut inc_secs, mut par_secs) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let (mut full_report, mut inc_report, mut par_report) = (None, None, None);
    for _ in 0..SAMPLES {
        // 1. Baseline: SipHash full-walk keys, sequential.
        let (s, r) = timed(|| explore(&factory, &full_cfg).expect("A_f crash space is safe"));
        full_secs = full_secs.min(s);
        full_report = Some(r);
        // 2. Incremental Zobrist keys, sequential.
        let (s, r) = timed(|| explore(&factory, &check).expect("A_f crash space is safe"));
        inc_secs = inc_secs.min(s);
        inc_report = Some(r);
        // 3. Incremental keys, parallel explorer.
        let (s, r) =
            timed(|| explore_par(&factory, &check, workers).expect("A_f crash space is safe"));
        par_secs = par_secs.min(s);
        par_report = Some(r);
    }
    let (full_report, inc_report, par_report) = (
        full_report.expect("SAMPLES >= 1"),
        inc_report.expect("SAMPLES >= 1"),
        par_report.expect("SAMPLES >= 1"),
    );

    assert!(full_report.complete && inc_report.complete && par_report.complete);
    assert_eq!(
        full_report.counts(),
        inc_report.counts(),
        "incremental keys and the SipHash walk partition the space differently"
    );
    assert_eq!(inc_report.counts(), par_report.counts());

    let states = inc_report.states_explored as f64;
    let full_sps = states / full_secs;
    let inc_sps = states / inc_secs;
    let par_sps = states / par_secs;
    let inc_speedup = inc_sps / full_sps;
    let par_speedup = par_sps / full_sps;
    println!(
        "A_f n=2 m=1 crash_budget=1 ({} states)\n\
         full-rehash  {full_sps:>12.0} states/s\n\
         incremental  {inc_sps:>12.0} states/s   {inc_speedup:>6.2}x\n\
         parallel({workers:>2}) {par_sps:>12.0} states/s   {par_speedup:>6.2}x",
        inc_report.states_explored,
    );

    // 4. The previously infeasible instance, once, with the full pool.
    let (big_factory, big_check) = af_factory(2);
    let start = Instant::now();
    let big = explore_par(&big_factory, &big_check, workers).expect("A_f two-crash space is safe");
    let big_secs = start.elapsed().as_secs_f64();
    assert!(big.complete, "the two-crash space must be exhausted");
    assert!(
        big.states_explored > 5_000_000,
        "the instance must exceed the checker's default state cap"
    );
    let big_sps = big.states_explored as f64 / big_secs;
    println!(
        "A_f n=2 m=1 crash_budget=2 ({} states, previously infeasible): \
         exhausted in {big_secs:.1}s, {big_sps:.0} states/s",
        big.states_explored
    );

    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = format!(
        "{{\n  \"experiment\": \"perf_modelcheck\",\n  \"unix_timestamp\": {unix_secs},\n  \
         \"workers\": {workers},\n  \"samples\": {SAMPLES},\n  \"workload\": \
         \"A_f n=2 m=1 passages=1 crash_budget=1 writeback\",\n  \"states\": {},\n  \
         \"full_rehash_states_per_sec\": {full_sps:.0},\n  \
         \"incremental_states_per_sec\": {inc_sps:.0},\n  \
         \"parallel_states_per_sec\": {par_sps:.0},\n  \
         \"incremental_speedup\": {inc_speedup:.2},\n  \
         \"parallel_speedup\": {par_speedup:.2},\n  \"infeasible_instance\": {{\n    \
         \"workload\": \"A_f n=2 m=1 passages=1 crash_budget=2 writeback\",\n    \
         \"states\": {},\n    \"seconds\": {big_secs:.1},\n    \
         \"states_per_sec\": {big_sps:.0},\n    \"complete\": {}\n  }}\n}}\n",
        inc_report.states_explored, big.states_explored, big.complete
    );
    let path = std::env::var("BENCH_MODELCHECK_OUT")
        .unwrap_or_else(|_| "BENCH_modelcheck.json".to_string());
    std::fs::write(&path, &json).expect("write benchmark results");
    println!("\nwrote {path}");

    assert!(
        inc_speedup >= 2.0,
        "incremental fingerprints regressed below 2x the full-rehash baseline: {inc_speedup:.2}x"
    );
    // The parallel floor only binds where there is parallelism to win.
    if workers >= 4 {
        assert!(
            par_speedup >= 3.0,
            "parallel explorer below 3x the baseline with {workers} workers: {par_speedup:.2}x"
        );
    }
}
