//! perf_modelcheck — states/sec of the exhaustive explorer across its
//! three operating points: the pre-PR-3 `full_rehash` SipHash baseline,
//! the O(1) incremental Zobrist keys (sequential), and the parallel
//! explorer. All runs must report byte-identical state counts (two
//! independent hash families agreeing is the aliasing oracle).
//!
//! Full mode times everything, closes with the previously infeasible
//! two-crash `A_f` instance (historically 8.75M states, ~3.7M since the
//! recoverable recovery paths prune the wedged branches),
//! asserts the PR-3 speedup floors, and writes `BENCH_modelcheck.json`
//! (override: `BENCH_MODELCHECK_OUT`); its wall-clock content makes the
//! report non-byte-stable, so [`Experiment::deterministic`] is false
//! there. Smoke mode runs the crash-free space once per operating point
//! and reports only the deterministic state counts.

use super::prelude::*;
use crate::par;
use modelcheck::{explore, explore_par, CheckConfig, CheckReport};
use rwcore::af_world;
use std::time::Instant;

const SAMPLES: usize = 5;

fn af_factory(crash_budget: u32) -> (impl Fn() -> ccsim::Sim + Sync, CheckConfig) {
    let cfg = AfConfig {
        readers: 2,
        writers: 1,
        policy: FPolicy::One,
    };
    let check = CheckConfig {
        passages_per_proc: 1,
        crash_budget,
        max_states: 50_000_000,
        ..Default::default()
    };
    (move || af_world(cfg, Protocol::WriteBack).sim, check)
}

/// One timed run of an exploration mode.
fn timed(mut run: impl FnMut() -> CheckReport) -> (f64, CheckReport) {
    let start = Instant::now();
    let report = run();
    (start.elapsed().as_secs_f64(), report)
}

/// Registry entry for the model-checker throughput benchmark.
pub(crate) struct PerfModelcheck;

impl Experiment for PerfModelcheck {
    fn id(&self) -> &'static str {
        "perf_modelcheck"
    }

    fn title(&self) -> &'static str {
        "explorer states/sec: full-rehash vs incremental vs parallel"
    }

    fn claim(&self) -> &'static str {
        "PR-3 perf floors: incremental fingerprints >= 2x the full-rehash baseline; parallel >= 3x with >= 4 workers; all modes count identical states"
    }

    fn deterministic(&self, mode: Mode) -> bool {
        // Full mode renders wall-clock states/sec; smoke renders only
        // the deterministic state counts.
        mode == Mode::Smoke
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let workers = par::worker_count(usize::MAX);
        // Smoke explores the crash-free space (a fraction of the
        // crash_budget=1 space) once per mode, counts only.
        let crash_budget = if ctx.smoke() { 0 } else { 1 };
        let samples = if ctx.smoke() { 1 } else { SAMPLES };
        let (factory, check) = af_factory(crash_budget);
        let full_cfg = CheckConfig {
            full_rehash: true,
            ..check.clone()
        };

        // Best-of-samples per mode, with the modes *interleaved*
        // round-robin: a noisy-neighbor phase on a shared host then
        // penalises every mode equally instead of skewing whichever one
        // it happened to overlap.
        let (mut full_secs, mut inc_secs, mut par_secs) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let (mut full_report, mut inc_report, mut par_report) = (None, None, None);
        for _ in 0..samples {
            let (s, r) = timed(|| explore(&factory, &full_cfg).expect("A_f crash space is safe"));
            full_secs = full_secs.min(s);
            full_report = Some(r);
            let (s, r) = timed(|| explore(&factory, &check).expect("A_f crash space is safe"));
            inc_secs = inc_secs.min(s);
            inc_report = Some(r);
            let (s, r) =
                timed(|| explore_par(&factory, &check, workers).expect("A_f crash space is safe"));
            par_secs = par_secs.min(s);
            par_report = Some(r);
        }
        let (full_report, inc_report, par_report) = (
            full_report.expect("samples >= 1"),
            inc_report.expect("samples >= 1"),
            par_report.expect("samples >= 1"),
        );

        let all_complete = full_report.complete && inc_report.complete && par_report.complete;
        let counts_agree = full_report.counts() == inc_report.counts()
            && inc_report.counts() == par_report.counts();

        let states = inc_report.states_explored as f64;
        let full_sps = states / full_secs;
        let inc_sps = states / inc_secs;
        let par_sps = states / par_secs;
        let inc_speedup = inc_sps / full_sps;
        let par_speedup = par_sps / full_sps;

        let workload = format!("A_f n=2 m=1 passages=1 crash_budget={crash_budget} writeback");
        let mut report = Report::new(self, ctx);
        let mut table = if ctx.smoke() {
            Table::new(["mode", "states", "complete"])
        } else {
            Table::new(["mode", "states", "states/s", "speedup"])
        };
        let par_label = format!("parallel({workers})");
        let rows: [(&str, &CheckReport, f64, f64); 3] = [
            ("full-rehash", &full_report, full_sps, 1.0),
            ("incremental", &inc_report, inc_sps, inc_speedup),
            (&par_label, &par_report, par_sps, par_speedup),
        ];
        for (label, r, sps, speedup) in rows {
            if ctx.smoke() {
                table.row([
                    label.to_string(),
                    r.states_explored.to_string(),
                    r.complete.to_string(),
                ]);
            } else {
                table.row([
                    label.to_string(),
                    r.states_explored.to_string(),
                    format!("{sps:.0}"),
                    format!("{speedup:.2}x"),
                ]);
            }
        }
        report.section(workload.clone(), table);
        report
            .check(Check::new(
                "all exploration modes exhaust the space",
                "complete = true in every mode",
                if all_complete {
                    "complete"
                } else {
                    "INCOMPLETE"
                },
                all_complete,
            ))
            .check(Check::new(
                "incremental Zobrist keys and the SipHash walk partition the space identically",
                "state counts equal across modes",
                if counts_agree { "equal" } else { "DIVERGED" },
                counts_agree,
            ));

        if !ctx.smoke() {
            report.check(Check::new(
                "incremental fingerprints hold the 2x floor over full-rehash",
                ">= 2.00x",
                format!("{inc_speedup:.2}x"),
                inc_speedup >= 2.0,
            ));
            // The parallel floor only binds where there is parallelism
            // to win.
            if workers >= 4 {
                report.check(Check::new(
                    "parallel explorer holds the 3x floor over full-rehash",
                    ">= 3.00x (with >= 4 workers)",
                    format!("{par_speedup:.2}x at {workers} workers"),
                    par_speedup >= 3.0,
                ));
            }

            // The previously infeasible instance, once, with the full
            // pool.
            let (big_factory, big_check) = af_factory(2);
            let start = Instant::now();
            let big = explore_par(&big_factory, &big_check, workers)
                .expect("A_f two-crash space is safe");
            let big_secs = start.elapsed().as_secs_f64();
            let big_sps = big.states_explored as f64 / big_secs;
            let mut big_table = Table::new(["workload", "states", "seconds", "states/s"]);
            big_table.row([
                "A_f n=2 m=1 passages=1 crash_budget=2 writeback".to_string(),
                big.states_explored.to_string(),
                format!("{big_secs:.1}"),
                format!("{big_sps:.0}"),
            ]);
            report.section("previously infeasible instance", big_table);
            // Historically 8.75M states (past the default 5M cap); the
            // recoverable A_f recovery paths prune the wedged branches,
            // so the same instance now closes at ~3.7M states. The floor
            // pins it staying a multi-million-state exhaustive close.
            report.check(Check::new(
                "the two-crash space is exhausted at multi-million-state scale",
                "complete, > 2,000,000 states",
                format!(
                    "{}, {} states",
                    if big.complete {
                        "complete"
                    } else {
                        "INCOMPLETE"
                    },
                    big.states_explored
                ),
                big.complete && big.states_explored > 2_000_000,
            ));

            // Preserve the historical side artifact for trend tracking.
            let unix_secs = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            let json = format!(
                "{{\n  \"experiment\": \"perf_modelcheck\",\n  \"unix_timestamp\": {unix_secs},\n  \
                 \"workers\": {workers},\n  \"samples\": {samples},\n  \"workload\": \
                 \"{workload}\",\n  \"states\": {},\n  \
                 \"full_rehash_states_per_sec\": {full_sps:.0},\n  \
                 \"incremental_states_per_sec\": {inc_sps:.0},\n  \
                 \"parallel_states_per_sec\": {par_sps:.0},\n  \
                 \"incremental_speedup\": {inc_speedup:.2},\n  \
                 \"parallel_speedup\": {par_speedup:.2},\n  \"infeasible_instance\": {{\n    \
                 \"workload\": \"A_f n=2 m=1 passages=1 crash_budget=2 writeback\",\n    \
                 \"states\": {},\n    \"seconds\": {big_secs:.1},\n    \
                 \"states_per_sec\": {big_sps:.0},\n    \"complete\": {}\n  }}\n}}\n",
                inc_report.states_explored, big.states_explored, big.complete
            );
            let path = std::env::var("BENCH_MODELCHECK_OUT")
                .unwrap_or_else(|_| "BENCH_modelcheck.json".to_string());
            match std::fs::write(&path, &json) {
                Ok(()) => report.notes(format!("Side artifact: {path}")),
                Err(e) => report.notes(format!("Side artifact write failed ({path}): {e}")),
            };
        }
        report
    }
}
