//! Shared-memory layout of a simulated `A_f` lock instance.

use crate::af::counters::{CounterKind, GroupCounter};
use crate::config::AfConfig;
use crate::sig::{Opcode, Signal};
use ccsim::{Layout, Memory, Value, VarId};
use std::sync::Arc;
use wmutex::SimTournament;

/// The order in which `HelpWCS` reads the two group counters.
///
/// The paper's line 51 reads `C[i]` then `W[i]` ([`HelpOrder::PaperLiteral`]).
/// The model checker found a mutual-exclusion counterexample for that
/// ordering (see DESIGN.md, "Reproduction findings"); the default
/// [`HelpOrder::WaitersFirst`] reads `W[i]` first, which is sound because
/// `W` is non-decreasing while `WSIG[i] = <seq, WAIT>` and `C ≥ W` always.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum HelpOrder {
    /// Read `W[i]`, then `C[i]` (safe; the default).
    #[default]
    WaitersFirst,
    /// Read `C[i]`, then `W[i]` (the extended abstract's literal line 51;
    /// admits a mutual-exclusion violation — kept for the regression test
    /// that reproduces it).
    PaperLiteral,
}

/// The shared variables of one simulated `A_f` lock (Algorithm 1, lines
/// 1–4): group counters `C[i]`/`W[i]`, the writer mutex `WL`, the passage
/// sequence `WSEQ`, and the signal words `WSIG[i]`/`RSIG`.
///
/// Shared via `Arc` by every reader/writer machine of the instance.
#[derive(Debug)]
pub struct AfShared {
    /// The lock configuration.
    pub cfg: AfConfig,
    /// Number of non-empty reader groups.
    pub groups: usize,
    /// `C[i]`: in-passage counts, one `K_i`-process counter per group.
    pub c: Vec<GroupCounter>,
    /// `W[i]`: waiting counts.
    pub w: Vec<GroupCounter>,
    /// `WL`: the m-writer tournament mutex.
    pub wl: SimTournament,
    /// `WSEQ`: writer-passage sequence number, init 0.
    pub wseq: VarId,
    /// `WSIG[i]`: group→writer signals, init `<0, ⊥>`.
    pub wsig: Vec<VarId>,
    /// `RSIG`: writer→readers signal, init `<0, NOP>`.
    pub rsig: VarId,
    /// Counter read order inside `HelpWCS`.
    pub help_order: HelpOrder,
}

impl AfShared {
    /// Allocate all shared variables for `cfg` from `layout`.
    ///
    /// # Panics
    /// Panics if the configuration has zero readers or writers.
    pub fn allocate(layout: &mut Layout, cfg: AfConfig) -> Arc<Self> {
        Self::allocate_custom(layout, cfg, HelpOrder::WaitersFirst, CounterKind::FArray)
    }

    /// [`AfShared::allocate`] with an explicit `HelpWCS` read order (used
    /// by the regression test demonstrating the paper-literal ordering's
    /// mutual-exclusion counterexample).
    ///
    /// # Panics
    /// Panics if the configuration has zero readers or writers.
    pub fn allocate_with_order(
        layout: &mut Layout,
        cfg: AfConfig,
        help_order: HelpOrder,
    ) -> Arc<Self> {
        Self::allocate_custom(layout, cfg, help_order, CounterKind::FArray)
    }

    /// Fully parameterised allocation: `HelpWCS` read order *and* the
    /// group-counter implementation (the E13 ablation replaces the
    /// f-array with a CAS retry loop).
    ///
    /// # Panics
    /// Panics if the configuration has zero readers or writers.
    pub fn allocate_custom(
        layout: &mut Layout,
        cfg: AfConfig,
        help_order: HelpOrder,
        counters: CounterKind,
    ) -> Arc<Self> {
        cfg.validate();
        let groups = cfg.occupied_groups();
        let c = (0..groups)
            .map(|g| {
                GroupCounter::allocate(
                    layout,
                    &format!("C[{g}]"),
                    cfg.group_population(g),
                    counters,
                )
            })
            .collect();
        let w = (0..groups)
            .map(|g| {
                GroupCounter::allocate(
                    layout,
                    &format!("W[{g}]"),
                    cfg.group_population(g),
                    counters,
                )
            })
            .collect();
        let wl = SimTournament::allocate(layout, "WL", cfg.writers);
        let wseq = layout.var("WSEQ", Value::Int(0));
        let wsig = (0..groups)
            .map(|g| {
                let init = Signal::new(0, Opcode::Bot).to_pair();
                layout.var(format!("WSIG[{g}]"), Value::Pair(init.0, init.1))
            })
            .collect();
        let rsig = {
            let init = Signal::new(0, Opcode::Nop).to_pair();
            layout.var("RSIG", Value::Pair(init.0, init.1))
        };
        Arc::new(AfShared {
            cfg,
            groups,
            c,
            w,
            wl,
            wseq,
            wsig,
            rsig,
            help_order,
        })
    }

    /// The signal currently stored in `RSIG` (harness inspection only).
    pub fn peek_rsig(&self, mem: &Memory) -> Signal {
        Signal::from_pair(mem.peek(self.rsig).expect_pair())
    }

    /// The signal currently stored in `WSIG[i]` (harness inspection only).
    pub fn peek_wsig(&self, mem: &Memory, i: usize) -> Signal {
        Signal::from_pair(mem.peek(self.wsig[i]).expect_pair())
    }

    /// Current value of group i's in-passage counter (harness inspection).
    pub fn peek_c(&self, mem: &Memory, i: usize) -> i64 {
        self.c[i].peek(mem)
    }

    /// Current value of group i's waiting counter (harness inspection).
    pub fn peek_w(&self, mem: &Memory, i: usize) -> i64 {
        self.w[i].peek(mem)
    }

    /// Helper: a signal as a simulator value.
    pub fn sig_value(seq: i64, op: Opcode) -> Value {
        Value::Pair(seq, op.as_i64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::Protocol;

    #[test]
    fn allocation_shapes_follow_config() {
        let mut layout = Layout::new();
        let cfg = AfConfig {
            readers: 10,
            writers: 3,
            policy: crate::FPolicy::SqrtN,
        };
        let shared = AfShared::allocate(&mut layout, cfg);
        // sqrt(10) -> 4 groups of K=3: ceil(10/4)=3 -> occupied = ceil(10/3) = 4.
        assert_eq!(shared.groups, 4);
        assert_eq!(shared.c.len(), 4);
        assert_eq!(shared.w.len(), 4);
        assert_eq!(shared.wsig.len(), 4);
        assert_eq!(shared.c[0].processes(), 3);
        assert_eq!(shared.c[3].processes(), 1, "last group holds the remainder");
    }

    #[test]
    fn initial_signal_values() {
        let mut layout = Layout::new();
        let cfg = AfConfig::new(4, 1);
        let shared = AfShared::allocate(&mut layout, cfg);
        let mem = Memory::new(&layout, 5, Protocol::WriteBack);
        assert_eq!(shared.peek_rsig(&mem), Signal::new(0, Opcode::Nop));
        for i in 0..shared.groups {
            assert_eq!(shared.peek_wsig(&mem, i), Signal::new(0, Opcode::Bot));
            assert_eq!(shared.peek_c(&mem, i), 0);
            assert_eq!(shared.peek_w(&mem, i), 0);
        }
        assert_eq!(mem.peek(shared.wseq), Value::Int(0));
    }
}
