//! Sequentially-consistent shared memory with exact RMR accounting.

use crate::cache::{Mode, Protocol};
use crate::directory::Directory;
use crate::fxhash::{mix64, FxHasher};
use crate::layout::Layout;
use crate::op::Op;
use crate::value::{ProcId, Value, VarId};
use std::hash::{Hash, Hasher};

/// Salt for per-variable Zobrist signatures, so a variable-slot signature
/// can never collide with a process-slot signature built in `sim.rs`.
const VAR_SALT: u64 = 0x5eed_0000_0000_0001;

/// The Zobrist signature of "variable `v` currently holds `val`": a
/// full-avalanche hash of the (slot, value) pair. The memory's value
/// fingerprint is the XOR of one signature per variable, so changing one
/// variable updates the fingerprint in O(1): XOR out the old signature,
/// XOR in the new one.
#[inline]
fn slot_sig(v: usize, val: &Value) -> u64 {
    let mut h = FxHasher::with_seed(VAR_SALT ^ mix64(v as u64));
    val.hash(&mut h);
    h.finish()
}

/// The result of applying one shared-memory operation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct StepOutcome {
    /// The value returned to the process: the read value for reads, the
    /// prior value for CAS, [`Value::Nil`] for writes.
    pub response: Value,
    /// Whether the step incurred a remote memory reference under the
    /// configured coherence protocol.
    pub rmr: bool,
    /// Whether the step was *trivial* (did not change the value of the
    /// variable it accessed, §2). Failed CAS steps and writes of the
    /// current value are trivial.
    pub trivial: bool,
    /// The variable's value before the step.
    pub old: Value,
    /// The variable's value after the step.
    pub new: Value,
}

/// Simulated shared memory: authoritative variable values plus a flat
/// per-variable coherence [`Directory`], implementing the write-through
/// or write-back CC protocol as quoted in §2 of the paper.
///
/// The memory is sequentially consistent: steps are applied one at a time in
/// the order the scheduler chooses, and reads always return the latest
/// written value. RMRs are charged per the protocol rules:
///
/// * **Write-through** — a read hits iff the process holds a valid copy
///   (else RMR + install copy); a write always RMRs, invalidates all other
///   copies, and leaves the writer with a valid copy.
/// * **Write-back** — a read hits iff the process holds a copy in either
///   mode (else RMR, downgrading any Exclusive holder to Shared); a write
///   hits iff the process holds the line Exclusive (else RMR, invalidating
///   all other copies and installing Exclusive).
///
/// A CAS is treated as a *write* by the coherence protocol regardless of
/// whether it succeeds (real hardware issues a read-for-ownership), and as
/// both a reading and a writing step by the knowledge formalism.
///
/// Cache state is stored directory-style — per variable, a holders bitset
/// and an exclusive-owner slot — so `holds`/`holds_exclusive` queries are
/// O(1) bit tests and invalidating all other copies is an O(n_procs/64)
/// word-wise clear, never an O(n_procs) sweep over per-process maps. The
/// per-process view is still available through [`Memory::cache`]. The
/// pre-rewrite map-based core is preserved in [`crate::reference`] and a
/// randomized differential test asserts step-for-step equivalence.
#[derive(Clone, Debug)]
pub struct Memory {
    protocol: Protocol,
    values: Vec<Value>,
    dir: Directory,
    /// DSM home segments (unused by the CC protocols).
    homes: Vec<Option<usize>>,
    /// Maintained XOR of [`slot_sig`] over all variables — the value part
    /// of the model checker's incremental configuration fingerprint,
    /// patched in O(1) by [`Memory::apply`] whenever a value changes.
    vals_fp: u64,
}

impl Memory {
    /// Create a memory with the variables of `layout` (at their initial
    /// values) and `n_procs` cold caches.
    pub fn new(layout: &Layout, n_procs: usize, protocol: Protocol) -> Self {
        let values = layout.initial_values();
        let vals_fp = values
            .iter()
            .enumerate()
            .fold(0u64, |acc, (v, val)| acc ^ slot_sig(v, val));
        Memory {
            protocol,
            dir: Directory::new(values.len(), n_procs),
            values,
            homes: layout.home_assignments(),
            vals_fp,
        }
    }

    /// Overwrite `self` with `src`, reusing the value and directory
    /// buffers instead of allocating fresh ones. Used by
    /// [`crate::Sim::clone_world_into`] when the model checker recycles a
    /// popped configuration.
    pub fn assign_from(&mut self, src: &Memory) {
        self.protocol = src.protocol;
        self.values.clone_from(&src.values);
        self.dir.assign_from(&src.dir);
        self.homes.clone_from(&src.homes);
        self.vals_fp = src.vals_fp;
    }

    /// The coherence protocol in force.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Number of processes (caches).
    pub fn n_procs(&self) -> usize {
        self.dir.n_procs()
    }

    /// Number of shared variables.
    pub fn n_vars(&self) -> usize {
        self.values.len()
    }

    /// Inspect a variable's current value without simulating a step (no
    /// cache effects, no RMR). For harness assertions only.
    pub fn peek(&self, v: VarId) -> Value {
        self.values[v.0]
    }

    /// A read-only view of process `p`'s cache (for tests and metrics):
    /// which variables it holds, and in which mode.
    pub fn cache(&self, p: ProcId) -> CacheView<'_> {
        CacheView {
            dir: &self.dir,
            p: p.0,
        }
    }

    /// Number of processes currently holding a cached copy of `v` (always
    /// 0 under [`Protocol::Dsm`]). A popcount over the directory's holder
    /// bitset; useful for sharing metrics in experiments.
    pub fn holder_count(&self, v: VarId) -> usize {
        self.dir.holder_count(v.0)
    }

    /// Would `p` incur an RMR if it executed `op` now? Pure query used by
    /// adversarial schedulers; does not mutate anything.
    pub fn would_rmr(&self, p: ProcId, op: &Op) -> bool {
        let v = op.var().0;
        match (self.protocol, op) {
            (Protocol::WriteThrough, Op::Read(_)) => !self.dir.holds(p.0, v),
            // Write-through writes (and CAS, which needs ownership) always
            // go to main memory.
            (Protocol::WriteThrough, _) => true,
            (Protocol::WriteBack, Op::Read(_)) => !self.dir.holds(p.0, v),
            (Protocol::WriteBack, _) => !self.dir.holds_exclusive(p.0, v),
            // DSM: locality is static — an access is remote unless the
            // variable is homed at the accessing process.
            (Protocol::Dsm, _) => self.homes[v] != Some(p.0),
        }
    }

    /// Apply one operation by process `p`, updating values, the directory
    /// and returning the full outcome.
    ///
    /// # Panics
    /// Panics if `p` or the accessed variable is out of range.
    pub fn apply(&mut self, p: ProcId, op: &Op) -> StepOutcome {
        let v = op.var();
        assert!(p.0 < self.dir.n_procs(), "process {p} out of range");
        assert!(v.0 < self.values.len(), "variable {v} out of range");
        let old = self.values[v.0];
        let rmr = self.would_rmr(p, op);

        let (response, new) = match *op {
            Op::Read(_) => (old, old),
            Op::Write(_, val) => (Value::Nil, val),
            Op::Cas { expected, new, .. } => {
                if old == expected {
                    (old, new)
                } else {
                    (old, old)
                }
            }
            Op::Faa { delta, .. } => (old, Value::Int(old.expect_int() + delta)),
        };
        self.values[v.0] = new;
        if old != new {
            self.vals_fp ^= slot_sig(v.0, &old) ^ slot_sig(v.0, &new);
        }

        // Coherence bookkeeping (no caches in the DSM model).
        if self.protocol == Protocol::Dsm {
            return StepOutcome {
                response,
                rmr,
                trivial: old == new,
                old,
                new,
            };
        }
        match (self.protocol, op.is_writing()) {
            (Protocol::WriteThrough, false) => {
                self.dir.set_shared(p.0, v.0);
            }
            (Protocol::WriteThrough, true) => {
                self.dir.invalidate_others(p.0, v.0);
                self.dir.set_shared(p.0, v.0);
            }
            (Protocol::WriteBack, false) => {
                if !self.dir.holds(p.0, v.0) {
                    // Miss: downgrade the exclusive holder (if any) to
                    // Shared — O(1), the directory just clears the owner
                    // slot — and install a Shared copy.
                    self.dir.downgrade_owner(v.0);
                    self.dir.set_shared(p.0, v.0);
                }
            }
            (Protocol::WriteBack, true) => {
                if !self.dir.holds_exclusive(p.0, v.0) {
                    self.dir.invalidate_others(p.0, v.0);
                }
                self.dir.set_exclusive(p.0, v.0);
            }
            (Protocol::Dsm, _) => unreachable!("handled by the early return above"),
        }

        StepOutcome {
            response,
            rmr,
            trivial: old == new,
            old,
            new,
        }
    }

    /// Process `p`'s cache was lost (a crash): drop every copy it holds
    /// from the coherence directory. Variable values — main memory — are
    /// untouched: under write-through memory is always current, and the
    /// simulator's write-back model keeps the authoritative value in
    /// `values` (an exclusive line only affects *future* RMR accounting),
    /// so losing a dirty line never loses a write that another process
    /// could already have observed.
    pub fn crash_invalidate(&mut self, p: ProcId) {
        assert!(p.0 < self.dir.n_procs(), "process {p} out of range");
        self.dir.purge_proc(p.0);
    }

    /// Hash the variable values (not cache state) into `h`. Used for
    /// model-checking fingerprints: cache state affects only RMR counts,
    /// never the values any step observes, so it is excluded from the
    /// explored state space.
    pub fn hash_values<H: Hasher>(&self, h: &mut H) {
        self.values.hash(h);
    }

    /// The maintained value fingerprint: XOR of a Zobrist signature per
    /// (variable, current value) pair. O(1) — [`Memory::apply`] keeps it
    /// current by patching the changed slot's signature. Crashes never
    /// touch it: [`Memory::crash_invalidate`] only purges the coherence
    /// directory, and cache state is deliberately outside the fingerprint.
    pub fn values_fingerprint(&self) -> u64 {
        self.vals_fp
    }

    /// XOR of the Zobrist slot signatures of the given variables at their
    /// current values. The symmetry-quotient canonical fingerprint uses
    /// this to XOR the *index-salted* contributions of class-owned
    /// variable slices back out of [`Memory::values_fingerprint`], so the
    /// owned values can be re-entered position-keyed inside each member's
    /// sorted-multiset bundle instead (see `Sim::fingerprint_canonical`).
    pub(crate) fn slots_signature(&self, vars: impl Iterator<Item = VarId>) -> u64 {
        vars.fold(0u64, |acc, v| acc ^ slot_sig(v.0, &self.values[v.0]))
    }

    /// Recompute [`Memory::values_fingerprint`] from scratch. Used as the
    /// debug-assert oracle for the maintained hash (and by tests).
    pub fn values_fingerprint_full(&self) -> u64 {
        self.values
            .iter()
            .enumerate()
            .fold(0u64, |acc, (v, val)| acc ^ slot_sig(v, val))
    }

    /// A snapshot of all variable values, in variable order.
    pub fn snapshot(&self) -> Vec<Value> {
        self.values.clone()
    }
}

/// A read-only, per-process view into the coherence [`Directory`],
/// answering the same queries the old per-process `Cache` struct did.
/// Obtained from [`Memory::cache`]; used by tests and metrics.
#[derive(Copy, Clone, Debug)]
pub struct CacheView<'a> {
    dir: &'a Directory,
    p: usize,
}

impl CacheView<'_> {
    /// The mode in which the variable is cached by this process, if at all.
    pub fn mode(&self, v: VarId) -> Option<Mode> {
        if self.dir.holds_exclusive(self.p, v.0) {
            Some(Mode::Exclusive)
        } else if self.dir.holds(self.p, v.0) {
            Some(Mode::Shared)
        } else {
            None
        }
    }

    /// True if this process holds any copy of `v`.
    pub fn holds(&self, v: VarId) -> bool {
        self.dir.holds(self.p, v.0)
    }

    /// True if this process holds `v` in [`Mode::Exclusive`].
    pub fn holds_exclusive(&self, v: VarId) -> bool {
        self.dir.holds_exclusive(self.p, v.0)
    }

    /// Number of lines currently held (O(n_vars) scan; test-facing only).
    pub fn len(&self) -> usize {
        self.dir.lines_held_by(self.p)
    }

    /// True if this process's cache is cold.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(protocol: Protocol) -> (Memory, VarId, VarId) {
        let mut l = Layout::new();
        let x = l.var("x", Value::Int(0));
        let y = l.var("y", Value::Nil);
        (Memory::new(&l, 3, protocol), x, y)
    }

    #[test]
    fn read_returns_value_and_write_updates() {
        let (mut m, x, _) = setup(Protocol::WriteBack);
        let out = m.apply(ProcId(0), &Op::Read(x));
        assert_eq!(out.response, Value::Int(0));
        assert!(out.trivial);
        m.apply(ProcId(0), &Op::write(x, 5));
        assert_eq!(m.peek(x), Value::Int(5));
    }

    #[test]
    fn cas_success_and_failure() {
        let (mut m, x, _) = setup(Protocol::WriteBack);
        let ok = m.apply(ProcId(0), &Op::cas(x, 0, 7));
        assert_eq!(ok.response, Value::Int(0), "CAS returns prior value");
        assert!(!ok.trivial);
        assert_eq!(m.peek(x), Value::Int(7));
        let fail = m.apply(ProcId(1), &Op::cas(x, 0, 9));
        assert_eq!(fail.response, Value::Int(7));
        assert!(fail.trivial, "failed CAS is a trivial step");
        assert_eq!(m.peek(x), Value::Int(7));
    }

    #[test]
    fn trivial_write_detected() {
        let (mut m, x, _) = setup(Protocol::WriteBack);
        let out = m.apply(ProcId(0), &Op::write(x, 0));
        assert!(out.trivial, "writing the current value is trivial");
    }

    #[test]
    fn write_back_read_caching() {
        let (mut m, x, _) = setup(Protocol::WriteBack);
        assert!(m.apply(ProcId(0), &Op::Read(x)).rmr, "cold read misses");
        assert!(!m.apply(ProcId(0), &Op::Read(x)).rmr, "warm read hits");
        // Another process writing invalidates our copy.
        m.apply(ProcId(1), &Op::write(x, 3));
        assert!(
            m.apply(ProcId(0), &Op::Read(x)).rmr,
            "invalidated read misses"
        );
    }

    #[test]
    fn write_back_exclusive_write_is_local() {
        let (mut m, x, _) = setup(Protocol::WriteBack);
        assert!(
            m.apply(ProcId(0), &Op::write(x, 1)).rmr,
            "first write misses"
        );
        assert!(
            !m.apply(ProcId(0), &Op::write(x, 2)).rmr,
            "write on an Exclusive line hits"
        );
        // A read by another process downgrades us to Shared...
        m.apply(ProcId(1), &Op::Read(x));
        assert_eq!(m.cache(ProcId(0)).mode(x), Some(Mode::Shared));
        // ...so our next write must re-acquire exclusivity.
        assert!(m.apply(ProcId(0), &Op::write(x, 3)).rmr);
    }

    #[test]
    fn write_back_spinning_is_local() {
        // The crux of local-spin algorithms: re-reading an unchanged variable
        // costs no RMRs until someone else writes it.
        let (mut m, x, _) = setup(Protocol::WriteBack);
        m.apply(ProcId(0), &Op::Read(x));
        for _ in 0..100 {
            assert!(!m.apply(ProcId(0), &Op::Read(x)).rmr);
        }
        m.apply(ProcId(2), &Op::write(x, 9));
        assert!(m.apply(ProcId(0), &Op::Read(x)).rmr);
    }

    #[test]
    fn write_through_every_write_rmrs() {
        let (mut m, x, _) = setup(Protocol::WriteThrough);
        assert!(m.apply(ProcId(0), &Op::write(x, 1)).rmr);
        assert!(
            m.apply(ProcId(0), &Op::write(x, 2)).rmr,
            "WT writes always RMR"
        );
        // But the writer keeps a valid copy for subsequent reads.
        assert!(!m.apply(ProcId(0), &Op::Read(x)).rmr);
    }

    #[test]
    fn write_through_read_caching() {
        let (mut m, x, _) = setup(Protocol::WriteThrough);
        assert!(m.apply(ProcId(0), &Op::Read(x)).rmr);
        assert!(!m.apply(ProcId(0), &Op::Read(x)).rmr);
        m.apply(ProcId(1), &Op::write(x, 1));
        assert!(
            m.apply(ProcId(0), &Op::Read(x)).rmr,
            "invalidated by writer"
        );
    }

    #[test]
    fn cas_acquires_exclusivity_even_on_failure() {
        let (mut m, x, _) = setup(Protocol::WriteBack);
        m.apply(ProcId(0), &Op::Read(x)); // p0 caches x Shared
        let out = m.apply(ProcId(1), &Op::cas(x, 99, 100)); // fails
        assert!(out.rmr);
        assert!(out.trivial);
        assert!(
            !m.cache(ProcId(0)).holds(x),
            "failed CAS still invalidates other copies"
        );
        assert!(m.cache(ProcId(1)).holds_exclusive(x));
    }

    #[test]
    fn faa_returns_prior_value_and_adds() {
        let (mut m, x, _) = setup(Protocol::WriteBack);
        let out = m.apply(ProcId(0), &Op::Faa { var: x, delta: 5 });
        assert_eq!(out.response, Value::Int(0), "FAA returns prior value");
        assert!(!out.trivial);
        assert!(out.rmr);
        assert_eq!(m.peek(x), Value::Int(5));
        let out = m.apply(ProcId(0), &Op::Faa { var: x, delta: -2 });
        assert!(!out.rmr, "FAA on an Exclusive line is local");
        assert_eq!(m.peek(x), Value::Int(3));
        let out = m.apply(ProcId(1), &Op::Faa { var: x, delta: 0 });
        assert!(out.trivial, "zero-delta FAA is trivial");
    }

    #[test]
    fn dsm_locality_is_static() {
        let mut l = Layout::new();
        let x = l.var_at("x", Value::Int(0), 0); // homed at p0
        let y = l.var("y", Value::Int(0)); // no home: remote to all
        let mut m = Memory::new(&l, 2, Protocol::Dsm);
        assert!(!m.apply(ProcId(0), &Op::Read(x)).rmr, "home read is local");
        assert!(
            !m.apply(ProcId(0), &Op::write(x, 1)).rmr,
            "home write is local"
        );
        assert!(
            m.apply(ProcId(1), &Op::Read(x)).rmr,
            "remote read is an RMR"
        );
        // Spinning on a remote variable costs an RMR per read: no caching.
        assert!(m.apply(ProcId(1), &Op::Read(x)).rmr);
        assert!(m.apply(ProcId(1), &Op::Read(x)).rmr);
        assert!(
            m.apply(ProcId(0), &Op::Read(y)).rmr,
            "homeless vars are remote"
        );
        assert!(m.apply(ProcId(1), &Op::Read(y)).rmr);
    }

    #[test]
    fn dsm_values_agree_with_cc() {
        // The protocol affects RMR accounting only — never values.
        let mut l = Layout::new();
        let x = l.var("x", Value::Int(0));
        let mut cc = Memory::new(&l, 2, Protocol::WriteBack);
        let mut dsm = Memory::new(&l, 2, Protocol::Dsm);
        let script = [
            (ProcId(0), Op::write(x, 3)),
            (ProcId(1), Op::cas(x, 3, 5)),
            (ProcId(0), Op::Faa { var: x, delta: 2 }),
            (ProcId(1), Op::Read(x)),
        ];
        for (p, op) in script {
            let a = cc.apply(p, &op);
            let b = dsm.apply(p, &op);
            assert_eq!(a.response, b.response, "op {op}");
            assert_eq!(a.new, b.new);
            assert_eq!(a.trivial, b.trivial);
        }
    }

    #[test]
    fn would_rmr_matches_apply() {
        let (mut m, x, y) = setup(Protocol::WriteBack);
        for op in [Op::Read(x), Op::write(y, 1), Op::cas(x, 0, 1)] {
            let predicted = m.would_rmr(ProcId(2), &op);
            let actual = m.apply(ProcId(2), &op).rmr;
            assert_eq!(predicted, actual, "op {op}");
        }
    }

    #[test]
    fn snapshot_and_peek_agree() {
        let (mut m, x, y) = setup(Protocol::WriteBack);
        m.apply(ProcId(0), &Op::write(x, 4));
        let snap = m.snapshot();
        assert_eq!(snap[x.0], m.peek(x));
        assert_eq!(snap[y.0], Value::Nil);
    }

    #[test]
    fn cache_view_len_and_modes() {
        let (mut m, x, y) = setup(Protocol::WriteBack);
        assert!(m.cache(ProcId(0)).is_empty());
        m.apply(ProcId(0), &Op::Read(x));
        m.apply(ProcId(0), &Op::write(y, 1));
        let view = m.cache(ProcId(0));
        assert_eq!(view.len(), 2);
        assert_eq!(view.mode(x), Some(Mode::Shared));
        assert_eq!(view.mode(y), Some(Mode::Exclusive));
        assert_eq!(m.cache(ProcId(1)).mode(y), None);
    }

    #[test]
    fn maintained_value_fingerprint_matches_full_recompute() {
        for protocol in [Protocol::WriteThrough, Protocol::WriteBack, Protocol::Dsm] {
            let (mut m, x, y) = setup(protocol);
            assert_eq!(m.values_fingerprint(), m.values_fingerprint_full());
            let script = [
                (ProcId(0), Op::write(x, 3)),
                (ProcId(1), Op::cas(x, 3, 5)),
                (ProcId(2), Op::cas(x, 99, 1)), // fails: no value change
                (ProcId(0), Op::Faa { var: x, delta: 2 }),
                (ProcId(1), Op::Read(y)),
                (ProcId(1), Op::Write(y, Value::Pair(1, 2))),
                (ProcId(0), Op::write(x, 7)), // trivial write (x already 7)
            ];
            for (p, op) in script {
                m.apply(p, &op);
                assert_eq!(
                    m.values_fingerprint(),
                    m.values_fingerprint_full(),
                    "{protocol:?} after {op}"
                );
            }
            // Crashes purge the directory only — the fingerprint is stable.
            let before = m.values_fingerprint();
            m.crash_invalidate(ProcId(1));
            assert_eq!(m.values_fingerprint(), before);
            assert_eq!(m.values_fingerprint(), m.values_fingerprint_full());
        }
    }

    #[test]
    fn value_fingerprint_distinguishes_slot_swaps() {
        // XOR composition must not be fooled by moving a value between
        // variables: signatures are salted per slot.
        let (mut a, x, y) = setup(Protocol::WriteBack);
        let (mut b, _, _) = setup(Protocol::WriteBack);
        a.apply(ProcId(0), &Op::write(x, 9)); // a: x=9, y=Nil
        b.apply(ProcId(0), &Op::Write(y, Value::Int(9)));
        b.apply(ProcId(0), &Op::Write(x, Value::Nil)); // b: x=Nil, y=9
        assert_ne!(a.values_fingerprint(), b.values_fingerprint());
    }

    #[test]
    fn coherence_with_many_procs_across_word_boundaries() {
        // 130 processes exercises multi-word holder bitsets.
        let mut l = Layout::new();
        let x = l.var("x", Value::Int(0));
        let mut m = Memory::new(&l, 130, Protocol::WriteBack);
        for p in 0..130 {
            m.apply(ProcId(p), &Op::Read(x));
        }
        assert_eq!(m.cache(ProcId(129)).mode(x), Some(Mode::Shared));
        // One write invalidates all 129 other copies.
        m.apply(ProcId(64), &Op::write(x, 1));
        for p in 0..130 {
            let holds = m.cache(ProcId(p)).holds(x);
            assert_eq!(holds, p == 64, "p{p}");
        }
        assert!(m.cache(ProcId(64)).holds_exclusive(x));
    }
}
