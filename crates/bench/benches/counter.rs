//! E9 (real-atomics side) — f-array counter operation latency vs the
//! CAS-loop and FAA comparison counters.
//!
//! The f-array's `add` pays `Θ(log K)` uncontended work to buy a
//! *wait-free bound* under contention; the single-word counters are
//! faster uncontended but the CAS loop degrades adversarially. Run with
//! `cargo bench -p bench --bench counter`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fcounter::{CasCounter, FArray, FaaCounter, SharedCounter};

fn bench_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_add");
    for k in [8usize, 64, 512] {
        let fa = FArray::new(k);
        group.bench_with_input(BenchmarkId::new("f-array", k), &k, |b, _| {
            b.iter(|| SharedCounter::add(&fa, 0, 1));
        });
    }
    let cas = CasCounter::new();
    group.bench_function("cas-loop", |b| b.iter(|| cas.add(0, 1)));
    let faa = FaaCounter::new();
    group.bench_function("fetch-add", |b| b.iter(|| faa.add(0, 1)));
    group.finish();
}

fn bench_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_read");
    for k in [8usize, 512] {
        let fa = FArray::new(k);
        fa.add(0, 3);
        group.bench_with_input(BenchmarkId::new("f-array", k), &k, |b, _| {
            b.iter(|| std::hint::black_box(SharedCounter::read(&fa)));
        });
    }
    let faa = FaaCounter::new();
    group.bench_function("fetch-add", |b| {
        b.iter(|| std::hint::black_box(faa.read()))
    });
    group.finish();
}

fn bench_contended_adds(c: &mut Criterion) {
    use std::sync::Arc;
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let per_thread = 2_000u64;
    let mut group = c.benchmark_group(format!("counter_contended/{threads}threads"));
    group.sample_size(10);

    let counters: Vec<Arc<dyn SharedCounter>> = vec![
        Arc::new(FArray::new(threads)),
        Arc::new(CasCounter::new()),
        Arc::new(FaaCounter::new()),
    ];
    for counter in counters {
        let label = counter.name().to_string();
        group.bench_function(&label, |b| {
            b.iter(|| {
                let mut handles = Vec::new();
                for id in 0..threads {
                    let counter = Arc::clone(&counter);
                    handles.push(std::thread::spawn(move || {
                        for _ in 0..per_thread {
                            counter.add(id, 1);
                        }
                    }));
                }
                for h in handles {
                    h.join().unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_add, bench_read, bench_contended_adds);
criterion_main!(benches);
