//! # bench — the experiment harness
//!
//! Every experiment lives behind the registry in [`experiments`] (one
//! module per paper claim, all implementing [`exp::Experiment`]) and is
//! driven by the unified `experiments` binary — `--list`, `--filter`,
//! `--smoke`, `--json`, `--check`, `--bless`; see [`exp`]. The
//! historical per-experiment binaries under `src/bin/` are thin
//! wrappers over the same registry, so documented invocations and the
//! `results/` goldens' provenance keep working. Dependency-free
//! micro-benchmarks live under `benches/` (plain `harness = false`
//! mains timed with [`stopwatch`]).
//!
//! The experiment index (tested against the registry — see
//! `experiments::tests`):
//!
//! | id / binary | claim |
//! |---|---|
//! | `e1_lower_bound` | Theorem 5 / Figure 1: `r = Θ(log₃(n/f))`, Lemma 2 & 4 |
//! | `e2_writer_rmr` | Lemma 17: writer passage `Θ(f(n))` RMRs |
//! | `e3_reader_rmr` | Lemma 17: reader passage `Θ(log(n/f))` RMRs |
//! | `e4_tradeoff` | Corollary 6: the writer×reader RMR frontier |
//! | `e5_properties` | Theorem 18: exhaustive + randomized property checks |
//! | `e6_mutex_rmr` | `WL` substrate: `Θ(log m)` RMRs |
//! | `e7_baselines` | §6: centralized CAS vs `A_f` vs FAA under the adversary |
//! | `e9_counter` | f-array: `add` `Θ(log K)` steps, `read` `O(1)` |
//! | `e10_concurrent_entering` | Concurrent Entering constant `b` |
//! | `e11_dsm` | §6 / Danek–Hadzilacos: the same locks under the DSM cost model |
//! | `e12_writer_starvation` | §6 fairness gap: writer time-to-CS under reader churn |
//! | `e13_counter_ablation` | Bounded Exit ablation: f-array vs CAS-loop counters |
//! | `e14_writer_bias` | extension: plain `A_f` vs the writer-biased (gated) variant |
//! | `e15_crash_robustness` | RME crash model: MX under crashes, recovery RMRs, stall diagnoses |
//! | `e16_abort` | abortable entry: amortized RMRs per withdrawal vs the O(1)-amortized cite |
//! | `e17_system_crash` | crash-all model: exhaustive safety, negative control, recovery-window RMRs |
//! | `perf_smoke` | simulator steps/sec: directory core vs reference core |
//! | `perf_modelcheck` | explorer states/sec: full-rehash vs incremental vs parallel |
//! | `perf_locks` | contended lock lab: sharded `A_f` vs the field, throughput + latency tails |
//!
//! (`e8` is the throughput bench suite: `cargo bench -p bench`.)
//!
//! Sweep-shaped experiments fan their independent configs across cores
//! with [`par::par_map`]; results come back in input order, so rendered
//! reports are byte-identical to a sequential run (`BENCH_THREADS=1`
//! forces one) — the invariant the golden-file gate relies on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod env;
pub mod exp;
pub mod experiments;
pub mod hist;
pub mod par;
pub mod pin;
mod rmr;
pub mod stopwatch;
mod table;
pub mod throughput;

pub use rmr::{
    measure_af, measure_concurrent_entering, measure_mutex, standard_sweep, AfRmrSample,
    MutexRmrSample,
};
pub use table::Table;

/// `log₃(x)` helper used when comparing against the paper's `3^j` bound.
pub fn log3(x: f64) -> f64 {
    x.ln() / 3f64.ln()
}

/// `log₂(x)` helper.
pub fn log2(x: f64) -> f64 {
    x.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_helpers() {
        assert!((log3(27.0) - 3.0).abs() < 1e-9);
        assert!((log2(1024.0) - 10.0).abs() < 1e-9);
    }
}
