//! E8 — real-hardware throughput: `A_f` vs baselines vs `std::RwLock`.
//!
//! Each sample runs a complete multi-threaded workload (threads spawned
//! per run, synchronized on a barrier) and reports time per total
//! workload; divide by `Workload::total_passages()` for per-passage cost.
//! Run with `cargo bench -p bench --bench throughput`.

use bench::stopwatch::bench_workload;
use bench::throughput::{contenders, run_throughput, Workload};

fn thread_budget() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

fn bench_read_heavy() {
    let threads = thread_budget();
    let workload = Workload {
        readers: threads.saturating_sub(1).max(1),
        writers: 1,
        reads_per_reader: 2_000,
        writes_per_writer: 200,
    };
    println!("== read_heavy/{threads}threads ==");
    for lock in contenders(workload.readers, workload.writers) {
        let label = lock.label();
        bench_workload(&label, 5, || {
            run_throughput(lock.clone(), workload);
        });
    }
}

fn bench_mixed() {
    let threads = thread_budget();
    let workload = Workload {
        readers: (threads / 2).max(1),
        writers: (threads / 2).max(1),
        reads_per_reader: 1_000,
        writes_per_writer: 1_000,
    };
    println!("== mixed/{threads}threads ==");
    for lock in contenders(workload.readers, workload.writers) {
        let label = lock.label();
        bench_workload(&label, 5, || {
            run_throughput(lock.clone(), workload);
        });
    }
}

fn main() {
    bench_read_heavy();
    bench_mixed();
}
