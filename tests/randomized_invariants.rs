//! Randomized invariant tests: random configurations × random schedules
//! never violate the paper's properties, and the knowledge formalism's
//! structural invariants hold on arbitrary step sequences. These are the
//! former proptest suites ported to plain `#[test]`s driven by the
//! in-tree `ccsim::Prng` (the workspace builds with zero external
//! dependencies).

use rwlock_repro::*;

/// A small but varied lock configuration.
fn random_config(rng: &mut Prng) -> AfConfig {
    let policy = [
        FPolicy::One,
        FPolicy::LogN,
        FPolicy::SqrtN,
        FPolicy::Half,
        FPolicy::Linear,
    ][rng.below(5)];
    AfConfig {
        readers: 1 + rng.below(6),
        writers: 1 + rng.below(3),
        policy,
    }
}

/// Random schedules of random A_f worlds complete all passages with
/// Mutual Exclusion checked after every step (the runner errors on
/// violation or stall).
#[test]
fn af_random_schedules_safe_and_live() {
    let mut gen = Prng::new(0xaf_5afe);
    for _case in 0..48 {
        let cfg = random_config(&mut gen);
        let seed = gen.next_u64();
        let mut world = af_world(cfg, Protocol::WriteBack);
        let mut rng = Prng::new(seed);
        let rc = RunConfig {
            passages_per_proc: 3,
            ..Default::default()
        };
        run_random(&mut world.sim, &mut rng, &rc)
            .unwrap_or_else(|e| panic!("{cfg:?} seed {seed}: {e}"));
    }
}

/// Same property under the write-through protocol.
#[test]
fn af_random_schedules_safe_write_through() {
    let mut gen = Prng::new(0xaf_5afe + 1);
    for _case in 0..48 {
        let cfg = random_config(&mut gen);
        let seed = gen.next_u64();
        let mut world = af_world(cfg, Protocol::WriteThrough);
        let mut rng = Prng::new(seed);
        let rc = RunConfig {
            passages_per_proc: 2,
            ..Default::default()
        };
        run_random(&mut world.sim, &mut rng, &rc)
            .unwrap_or_else(|e| panic!("{cfg:?} seed {seed}: {e}"));
    }
}

/// Awareness sets are monotone under any step sequence (Observation 1)
/// and familiarity never exceeds the process universe.
#[test]
fn knowledge_monotonicity() {
    let mut gen = Prng::new(0x0b5e_0001);
    for _case in 0..48 {
        let n_procs = 4;
        let n_vars = 3;
        let mut layout = Layout::new();
        let vars: Vec<VarId> = (0..n_vars)
            .map(|i| layout.var(format!("v{i}"), Value::Int(0)))
            .collect();
        let mut mem = Memory::new(&layout, n_procs, Protocol::WriteBack);
        let mut tracker = KnowledgeTracker::new(n_procs);
        let mut prev_sizes = vec![1usize; n_procs];
        for _ in 0..1 + gen.below(79) {
            let p = gen.below(4);
            let v = gen.below(3);
            let val = gen.int_in(0, 4);
            let op = match gen.below(3) {
                0 => Op::Read(vars[v]),
                1 => Op::write(vars[v], val),
                _ => Op::cas(vars[v], val, val + 1),
            };
            let out = mem.apply(ProcId(p), &op);
            tracker.record(ProcId(p), &op, out.trivial);
            for (q, prev) in prev_sizes.iter_mut().enumerate() {
                let size = tracker.awareness(ProcId(q)).len();
                assert!(size >= *prev, "awareness shrank (Observation 1)");
                assert!(size <= n_procs);
                assert!(tracker.awareness(ProcId(q)).contains(ProcId(q)));
                *prev = size;
            }
            for &var in &vars {
                assert!(tracker.familiarity(var).len() <= n_procs);
            }
        }
    }
}

/// Expanding steps always incur RMRs (Lemma 1) on any A_f execution
/// prefix under a random schedule.
#[test]
fn expanding_steps_cost_rmrs() {
    let mut gen = Prng::new(0x1e44a1);
    for _case in 0..48 {
        let seed = gen.next_u64();
        let steps = 50 + gen.below(350);
        let cfg = AfConfig {
            readers: 3,
            writers: 1,
            policy: FPolicy::One,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let mut tracker = KnowledgeTracker::new(world.sim.n_procs());
        let mut rng = Prng::new(seed);
        for _ in 0..steps {
            let p = ProcId(rng.below(world.sim.n_procs()));
            let pending = world.sim.pending_op(p);
            let would_expand = pending
                .as_ref()
                .map(|op| tracker.would_expand(p, op))
                .unwrap_or(false);
            let would_rmr = world.sim.would_rmr(p);
            if would_expand {
                assert!(would_rmr, "expanding step without an RMR (Lemma 1)");
            }
            let record = world.sim.step(p);
            if let StepKind::Op { op, trivial, .. } = record.kind {
                tracker.record(p, &op, trivial);
            }
            assert!(world.sim.check_mutual_exclusion().is_ok());
        }
    }
}

/// The f-array counter is exact under any interleaving of a batch of
/// adds driven to completion in random order.
#[test]
fn fcounter_random_interleavings_exact() {
    let mut gen = Prng::new(0xfc0417e4);
    for _case in 0..48 {
        let k = 1 + gen.below(7);
        let seed = gen.next_u64();
        let mut layout = Layout::new();
        let c = SimCounter::allocate(&mut layout, "C", k);
        let mut mem = Memory::new(&layout, k, Protocol::WriteBack);
        let mut machines: Vec<_> = (0..k)
            .map(|i| {
                let mut h = c.handle(i);
                h.add((i as i64) + 1)
            })
            .collect();
        let mut rng = Prng::new(seed);
        let mut live: Vec<usize> = (0..k).collect();
        while !live.is_empty() {
            let pick = live[rng.below(live.len())];
            match machines[pick].poll() {
                SubStep::Op(op) => {
                    let out = mem.apply(ProcId(pick), &op);
                    machines[pick].resume(out.response);
                }
                SubStep::Done(_) => {
                    live.retain(|&x| x != pick);
                }
            }
        }
        let expected: i64 = (1..=k as i64).sum();
        assert_eq!(c.peek(&mem), expected);
    }
}

/// Signal packing is injective over realistic sequence numbers — an
/// exhaustive check over the opcode space and a sampled sequence space.
#[test]
fn signal_packing_injective_sampled() {
    use std::collections::HashSet;
    let mut seen = HashSet::new();
    for seq in (0u64..1 << 16).step_by(97) {
        for op in [0i64, 1, 2, 3, 4, 5] {
            let sig = Signal::new(seq, rwcore_opcode(op));
            assert!(seen.insert(sig.pack()), "collision at {sig}");
        }
    }
}

fn rwcore_opcode(x: i64) -> rwlock_repro::Opcode {
    rwlock_repro::Opcode::from_i64(x)
}
