//! E2 — Lemma 17 (writer side): writer passages incur `Θ(f(n))` RMRs.
//!
//! Measures complete writer passages in the simulator under both coherence
//! protocols: solo from cold caches, and after all `n` readers have
//! passed (counters resident in reader caches). The `RMR / f` column
//! should stay near a constant per policy as `n` grows.

use bench::{measure_af, Table};
use ccsim::Protocol;
use rwcore::{AfConfig, FPolicy};

fn main() {
    for protocol in [Protocol::WriteBack, Protocol::WriteThrough] {
        let mut table = Table::new([
            "n",
            "f policy",
            "groups f",
            "writer solo RMR",
            "solo/f",
            "writer post-readers RMR",
            "post/f",
        ]);
        for n in [8usize, 16, 32, 64, 128, 256, 512, 1024] {
            for policy in [FPolicy::One, FPolicy::LogN, FPolicy::SqrtN, FPolicy::Linear] {
                let cfg = AfConfig { readers: n, writers: 1, policy };
                let s = measure_af(cfg, protocol);
                table.row([
                    n.to_string(),
                    policy.to_string(),
                    s.groups.to_string(),
                    s.writer_solo_rmrs.to_string(),
                    format!("{:.1}", s.writer_solo_rmrs as f64 / s.groups as f64),
                    s.writer_post_reader_rmrs.to_string(),
                    format!("{:.1}", s.writer_post_reader_rmrs as f64 / s.groups as f64),
                ]);
            }
        }
        println!("E2 — writer passage RMRs, {protocol:?} protocol\n");
        table.print();
        println!();
    }
    println!(
        "Expected shape: RMR/f is a small constant (the per-group loop body)\n\
         independent of n — writer cost is Θ(f(n)) per Lemma 17."
    );
}
