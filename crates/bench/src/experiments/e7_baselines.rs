//! E7 — §6 comparison under the lower-bound adversary: `A_f` (Θ(log n)
//! exit) vs the centralized CAS lock (Θ(n) exit, no Bounded Exit) vs the
//! FAA read-indicator lock (O(1) exit — escapes the bound because FAA is
//! outside the read/write/CAS model).

use super::prelude::*;
use knowledge::{run_lower_bound, AdversarySetup, LowerBoundReport};
use rwcore::{af_world, centralized_world, faa_world, PidMap};

#[derive(Copy, Clone)]
enum Lock {
    Af,
    Centralized,
    Faa,
}

impl Lock {
    fn label(self) -> &'static str {
        match self {
            Lock::Af => "A_f (f=1)",
            Lock::Centralized => "centralized-cas",
            Lock::Faa => "faa-indicator",
        }
    }
}

fn adversary(sim: &mut ccsim::Sim, pids: &PidMap) -> LowerBoundReport {
    let setup = AdversarySetup::new(pids.reader_pids().collect(), pids.writer(0));
    run_lower_bound(sim, &setup).expect("construction must complete")
}

fn run_lock(lock: Lock, n: usize) -> LowerBoundReport {
    match lock {
        Lock::Af => {
            let cfg = AfConfig {
                readers: n,
                writers: 1,
                policy: FPolicy::One,
            };
            let mut world = af_world(cfg, Protocol::WriteBack);
            adversary(&mut world.sim, &world.pids)
        }
        Lock::Centralized => {
            let mut world = centralized_world(n, 1, Protocol::WriteBack);
            adversary(&mut world.sim, &world.pids)
        }
        Lock::Faa => {
            let mut world = faa_world(n, 1, Protocol::WriteBack);
            adversary(&mut world.sim, &world.pids)
        }
    }
}

/// Registry entry for the §6 baseline comparison.
pub(crate) struct E7;

impl Experiment for E7 {
    fn id(&self) -> &'static str {
        "e7_baselines"
    }

    fn title(&self) -> &'static str {
        "baselines under the Theorem-5 adversary"
    }

    fn claim(&self) -> &'static str {
        "§6: centralized CAS pays Θ(n) reader exits, A_f pays Θ(log n), FAA pays O(1) (outside the op model)"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let ns: &[usize] = if ctx.smoke() {
            &[8, 16]
        } else {
            &[8, 16, 32, 64, 128, 256]
        };
        let configs: Vec<(Lock, usize)> = ns
            .iter()
            .flat_map(|&n| [Lock::Af, Lock::Centralized, Lock::Faa].map(|l| (l, n)))
            .collect();
        let reports = par_map(&configs, |&(lock, n)| run_lock(lock, n));

        let mut table = Table::new([
            "lock",
            "n",
            "r (iters)",
            "max reader exit RMR",
            "writer entry RMR",
            "writer aware of all",
        ]);
        let (mut faa_flat, mut centralized_linear, mut af_ok) = (0usize, 0usize, 0usize);
        let (mut faa_total, mut centralized_total, mut af_total) = (0usize, 0usize, 0usize);
        for ((lock, n), lb) in configs.iter().zip(&reports) {
            match lock {
                Lock::Faa => {
                    faa_total += 1;
                    faa_flat += usize::from(lb.max_reader_exit_rmrs == 1);
                }
                Lock::Centralized => {
                    centralized_total += 1;
                    centralized_linear += usize::from(lb.max_reader_exit_rmrs >= *n as u64);
                }
                Lock::Af => {
                    af_total += 1;
                    let bound = 6.0 * log2(*n as f64);
                    af_ok += usize::from((lb.max_reader_exit_rmrs as f64) <= bound);
                }
            }
            table.row([
                lock.label().to_string(),
                n.to_string(),
                lb.iterations.to_string(),
                lb.max_reader_exit_rmrs.to_string(),
                lb.writer_entry_rmrs.to_string(),
                lb.writer_aware_of_all.to_string(),
            ]);
        }

        let mut report = Report::new(self, ctx);
        report
            .section("adversary outcomes (write-back CC)", table)
            .check(Check::all(
                "FAA read-indicator exit stays at exactly 1 RMR",
                faa_flat,
                faa_total,
            ))
            .check(Check::all(
                "centralized CAS worst exit grows linearly (>= n)",
                centralized_linear,
                centralized_total,
            ))
            .check(Check::all(
                "A_f worst exit stays within 6·log2(n)",
                af_ok,
                af_total,
            ))
            .notes(
                "Expected shape: the centralized lock's worst reader exit grows\n\
                 ~linearly with n (its exit CAS loop retries against every other\n\
                 exiting reader — it has no Bounded Exit); A_f grows ~log n; the\n\
                 FAA lock stays at 1 RMR regardless of n, which is only possible\n\
                 because fetch-and-add is outside the paper's operation model.",
            );
        report
    }
}
