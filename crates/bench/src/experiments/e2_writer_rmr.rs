//! E2 — Lemma 17 (writer side): writer passages incur `Θ(f(n))` RMRs.
//!
//! Measures complete writer passages in the simulator under both
//! coherence protocols: solo from cold caches, and after all `n` readers
//! have passed (counters resident in reader caches). The `RMR / f`
//! column stays near a constant per policy as `n` grows.

use super::prelude::*;
use crate::rmr::{measure_registry_solo, LockSoloSample};
use crate::standard_sweep;
use rwcore::LockRegistry;

/// The instance shape of the registry solo-RMR section shared by E2 and
/// E3: every registered sim lock at 16 readers / 1 writer, write-back.
pub(crate) const REGISTRY_SOLO_N: usize = 16;

/// Measure the registry-wide solo sweep (cheap: two cold solo passages
/// per lock, so E2 and E3 each just measure it afresh).
pub(crate) fn registry_solo() -> Vec<LockSoloSample> {
    measure_registry_solo(
        &LockRegistry::builtin(),
        REGISTRY_SOLO_N,
        1,
        Protocol::WriteBack,
    )
}

/// Render one role's column of a [`LockSoloSample`].
pub(crate) fn solo_cell(cell: &Result<u64, String>) -> String {
    match cell {
        Ok(rmrs) => rmrs.to_string(),
        Err(reason) => format!("skipped: {reason}"),
    }
}

/// The sweep shared by E2 and E3 (the [`Ctx`] cache makes the second
/// user free): every `(protocol, n, policy)` of the standard grid, or a
/// two-config smoke slice.
pub(crate) fn af_sweep(ctx: &Ctx) -> Vec<(Protocol, usize, FPolicy)> {
    let sweep = if ctx.smoke() {
        vec![(16usize, FPolicy::One), (16, FPolicy::Linear)]
    } else {
        standard_sweep()
    };
    [Protocol::WriteBack, Protocol::WriteThrough]
        .into_iter()
        .flat_map(|protocol| sweep.iter().map(move |&(n, policy)| (protocol, n, policy)))
        .collect()
}

/// Registry entry for the writer half of Lemma 17.
pub(crate) struct E2;

impl Experiment for E2 {
    fn id(&self) -> &'static str {
        "e2_writer_rmr"
    }

    fn title(&self) -> &'static str {
        "writer passage RMRs across the (n, f) grid"
    }

    fn claim(&self) -> &'static str {
        "Lemma 17: a writer passage incurs Θ(f(n)) RMRs"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let configs = af_sweep(ctx);
        let samples = ctx.measure_af_batch(&configs);

        let mut report = Report::new(self, ctx);
        let mut worst_ratio = 0f64;
        for protocol in [Protocol::WriteBack, Protocol::WriteThrough] {
            let mut table = Table::new([
                "n",
                "f policy",
                "groups f",
                "writer solo RMR",
                "solo/f",
                "writer post-readers RMR",
                "post/f",
            ]);
            for ((p, n, policy), s) in configs.iter().zip(&samples) {
                if *p != protocol {
                    continue;
                }
                let solo_per_f = s.writer_solo_rmrs as f64 / s.groups as f64;
                let post_per_f = s.writer_post_reader_rmrs as f64 / s.groups as f64;
                worst_ratio = worst_ratio.max(solo_per_f).max(post_per_f);
                table.row([
                    n.to_string(),
                    policy.to_string(),
                    s.groups.to_string(),
                    s.writer_solo_rmrs.to_string(),
                    format!("{solo_per_f:.1}"),
                    s.writer_post_reader_rmrs.to_string(),
                    format!("{post_per_f:.1}"),
                ]);
            }
            report.section(format!("{protocol:?} protocol"), table);
        }

        // Every registered sim lock's cold writer passage, for free: a
        // newly registered lock shows up here with no experiment edits.
        let solo = registry_solo();
        let mut reg_table = Table::new(["lock", "writer solo RMR"]);
        let mut af_row_ok = false;
        for s in &solo {
            if s.id == "a_f" {
                af_row_ok = matches!(s.writer_solo_rmrs, Ok(r) if r > 0);
            }
            reg_table.row([s.id.to_string(), solo_cell(&s.writer_solo_rmrs)]);
        }
        report.section(
            format!("registry locks, writer solo passage (n={REGISTRY_SOLO_N}, write-back)"),
            reg_table,
        );
        report
            .check(Check::le_f64(
                "writer RMR/f stays a small constant independent of n",
                worst_ratio,
                9.0,
            ))
            .check(Check::new(
                "the flagship a_f lock has a registry writer row",
                "a_f writer solo passage completes with > 0 RMRs",
                if af_row_ok { "present" } else { "MISSING" },
                af_row_ok,
            ))
            .notes(
                "Expected shape: RMR/f is a small constant (the per-group loop body)\n\
                 independent of n — writer cost is Θ(f(n)) per Lemma 17.",
            );
        report
    }
}
