//! # exp — the registry-driven experiment framework
//!
//! Every experiment in this repo is a module implementing [`Experiment`]:
//! an `id` (the golden-file stem and CLI handle), a `title`, the paper
//! claim it reproduces, and a `run(&Ctx) -> Report`. A [`Report`] carries
//! *typed* content — captioned [`Table`] sections plus structured
//! [`Check`] records (claim, bound, measured, pass) — instead of ad-hoc
//! `println!`s and `assert!`s, so the same run can be rendered as the
//! human-readable text table, serialized as a structured JSON twin, or
//! byte-diffed against the committed goldens in `results/`.
//!
//! The registry lives in [`crate::experiments`]; the single `experiments`
//! binary drives it (`--list`, `--filter`, `--smoke`, `--json`,
//! `--check`, `--bless`). The historical per-experiment binaries
//! (`e1_lower_bound` … `e15_crash_robustness`, `perf_smoke`,
//! `perf_modelcheck`) are thin wrappers over [`run_as_bin`], so
//! documented invocations and `results/` provenance keep working.
//!
//! ## Modes and goldens
//!
//! Each experiment runs in one of two [`Mode`]s: `Full` (the complete
//! sweep behind the committed goldens) or `Smoke` (one small
//! configuration per experiment — seconds, not minutes — used by CI).
//! Goldens live at `results/<id>.txt` + `results/<id>.json` for full
//! mode and `results/smoke/<id>.{txt,json}` for smoke mode. `--check`
//! re-runs the experiment, renders both forms, and byte-diffs them
//! against the goldens, exiting nonzero with a unified diff on any
//! drift; `--bless` regenerates the goldens after an intentional change.
//!
//! Experiments whose *full* report contains wall-clock content (the two
//! `perf_*` experiments) opt out of the byte-diff for that mode via
//! [`Experiment::deterministic`]; `--check` still runs them, requires
//! every [`Check`] to pass, and requires their goldens to exist.

use crate::par;
use crate::Table;
use ccsim::Protocol;
use rwcore::{AfConfig, FPolicy};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Which configuration an experiment runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The complete sweep behind the committed `results/<id>.*` goldens.
    Full,
    /// One small configuration per experiment (CI's smoke budget);
    /// gated against `results/smoke/<id>.*`.
    Smoke,
}

impl Mode {
    /// Stable lowercase tag used in rendered reports and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            Mode::Full => "full",
            Mode::Smoke => "smoke",
        }
    }
}

/// Memoization key for [`Ctx::measure_af_batch`].
type AfKey = (usize, usize, String, String);

/// Shared run context handed to every experiment.
///
/// Besides the [`Mode`], it memoizes [`crate::measure_af`] results so
/// experiments that share a sweep (E2 and E3 both measure the standard
/// `(n, policy, protocol)` grid) pay for each configuration once per
/// `experiments` process instead of once per experiment.
#[derive(Debug)]
pub struct Ctx {
    mode: Mode,
    af_cache: Mutex<HashMap<AfKey, crate::AfRmrSample>>,
}

impl Ctx {
    /// A fresh context (empty measurement cache) for `mode`.
    pub fn new(mode: Mode) -> Self {
        Ctx {
            mode,
            af_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The run mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// True in smoke mode.
    pub fn smoke(&self) -> bool {
        self.mode == Mode::Smoke
    }

    /// [`crate::measure_af`] for every `(protocol, n, policy)` config,
    /// in input order — memoized across experiments and fanned out over
    /// [`par::par_map`] (in-order results keep tables byte-identical to
    /// a sequential run).
    pub fn measure_af_batch(
        &self,
        configs: &[(Protocol, usize, FPolicy)],
    ) -> Vec<crate::AfRmrSample> {
        let key = |&(p, n, policy): &(Protocol, usize, FPolicy)| -> AfKey {
            (n, 1, format!("{policy:?}"), format!("{p:?}"))
        };
        let todo: Vec<(Protocol, usize, FPolicy)> = {
            let cache = self.af_cache.lock().expect("af cache poisoned");
            let mut seen = HashSet::new();
            configs
                .iter()
                .filter(|c| !cache.contains_key(&key(c)) && seen.insert(key(c)))
                .copied()
                .collect()
        };
        let fresh = par::par_map(&todo, |&(protocol, n, policy)| {
            crate::measure_af(
                AfConfig {
                    readers: n,
                    writers: 1,
                    policy,
                },
                protocol,
            )
        });
        let mut cache = self.af_cache.lock().expect("af cache poisoned");
        for (cfg, sample) in todo.iter().zip(fresh) {
            cache.insert(key(cfg), sample);
        }
        configs.iter().map(|c| cache[&key(c)]).collect()
    }
}

/// One structured claim check: the paper claim being gated, the bound it
/// must satisfy, what this run measured, and whether it passed.
#[derive(Clone, Debug)]
pub struct Check {
    /// The claim under test, e.g. `"Lemma 17: writer RMR/f stays bounded"`.
    pub claim: String,
    /// The bound, rendered, e.g. `"<= 8.0"`.
    pub bound: String,
    /// The measured value, rendered, e.g. `"max 5.0"`.
    pub measured: String,
    /// Did the measurement satisfy the bound?
    pub pass: bool,
}

impl Check {
    /// A check from pre-rendered parts.
    pub fn new(
        claim: impl Into<String>,
        bound: impl Into<String>,
        measured: impl Into<String>,
        pass: bool,
    ) -> Self {
        Check {
            claim: claim.into(),
            bound: bound.into(),
            measured: measured.into(),
            pass,
        }
    }

    /// `measured <= limit` on an `f64`, rendered with one decimal.
    pub fn le_f64(claim: impl Into<String>, measured: f64, limit: f64) -> Self {
        Check::new(
            claim,
            format!("<= {limit:.1}"),
            format!("{measured:.1}"),
            measured <= limit,
        )
    }

    /// `measured <= limit` on a `u64`.
    pub fn le_u64(claim: impl Into<String>, measured: u64, limit: u64) -> Self {
        Check::new(
            claim,
            format!("<= {limit}"),
            measured.to_string(),
            measured <= limit,
        )
    }

    /// `measured >= floor` on a `u64`.
    pub fn ge_u64(claim: impl Into<String>, measured: u64, floor: u64) -> Self {
        Check::new(
            claim,
            format!(">= {floor}"),
            measured.to_string(),
            measured >= floor,
        )
    }

    /// All of `ok` out of `total` cases must hold.
    pub fn all(claim: impl Into<String>, ok: usize, total: usize) -> Self {
        Check::new(
            claim,
            format!("{total}/{total} rows"),
            format!("{ok}/{total} rows"),
            ok == total,
        )
    }
}

/// A captioned table inside a report.
#[derive(Clone, Debug)]
pub struct Section {
    /// Caption printed above the table (e.g. `"WriteBack protocol"`).
    pub heading: String,
    /// The data.
    pub table: Table,
}

/// The structured result of one experiment run.
#[derive(Clone, Debug)]
pub struct Report {
    /// The experiment id (golden-file stem), e.g. `"e2_writer_rmr"`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Paper-claim reference.
    pub claim: String,
    /// The mode this report was produced under.
    pub mode: Mode,
    /// Captioned tables, in render order.
    pub sections: Vec<Section>,
    /// Structured claim checks.
    pub checks: Vec<Check>,
    /// Trailing prose ("expected shape" commentary).
    pub notes: String,
}

impl Report {
    /// An empty report carrying `exp`'s identity and `ctx`'s mode.
    pub fn new(exp: &dyn Experiment, ctx: &Ctx) -> Self {
        Report {
            id: exp.id(),
            title: exp.title().to_string(),
            claim: exp.claim().to_string(),
            mode: ctx.mode(),
            sections: Vec::new(),
            checks: Vec::new(),
            notes: String::new(),
        }
    }

    /// Append a captioned table.
    pub fn section(&mut self, heading: impl Into<String>, table: Table) -> &mut Self {
        self.sections.push(Section {
            heading: heading.into(),
            table,
        });
        self
    }

    /// Append a check.
    pub fn check(&mut self, check: Check) -> &mut Self {
        self.checks.push(check);
        self
    }

    /// Set the trailing prose.
    pub fn notes(&mut self, notes: impl Into<String>) -> &mut Self {
        self.notes = notes.into();
        self
    }

    /// True iff every [`Check`] passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Render the human-readable text form (the `.txt` golden).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        let _ = writeln!(out, "claim: {}", self.claim);
        let _ = writeln!(out, "mode: {}", self.mode.tag());
        for s in &self.sections {
            let _ = writeln!(out, "\n[{}]\n", s.heading);
            out.push_str(&s.table.render());
        }
        let _ = writeln!(out, "\n[checks]\n");
        for c in &self.checks {
            let _ = writeln!(
                out,
                "{}  {} | bound: {} | measured: {}",
                if c.pass { "PASS" } else { "FAIL" },
                c.claim,
                c.bound,
                c.measured
            );
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            out.push_str(self.notes.trim_end());
            out.push('\n');
        }
        out
    }

    /// Render the structured JSON twin (the `.json` golden).
    ///
    /// Hand-rolled (the workspace has no serde by policy): objects with
    /// a fixed field order, all scalars as strings except `pass`, so the
    /// output is byte-stable and diffs line up cell-by-cell.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_str(self.id));
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(out, "  \"claim\": {},", json_str(&self.claim));
        let _ = writeln!(out, "  \"mode\": {},", json_str(self.mode.tag()));
        out.push_str("  \"sections\": [");
        for (i, s) in self.sections.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"heading\": {},", json_str(&s.heading));
            let _ = writeln!(
                out,
                "      \"columns\": {},",
                json_str_array(s.table.headers())
            );
            out.push_str("      \"rows\": [");
            for (j, row) in s.table.rows().iter().enumerate() {
                out.push_str(if j == 0 { "\n" } else { ",\n" });
                let _ = write!(out, "        {}", json_str_array(row));
            }
            if !s.table.rows().is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.sections.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"checks\": [");
        for (i, c) in self.checks.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"claim\": {}, \"bound\": {}, \"measured\": {}, \"pass\": {}}}",
                json_str(&c.claim),
                json_str(&c.bound),
                json_str(&c.measured),
                c.pass
            );
        }
        if !self.checks.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        let _ = writeln!(out, "  \"notes\": {}", json_str(self.notes.trim_end()));
        out.push_str("}\n");
        out
    }
}

/// One reproducible experiment behind the registry.
pub trait Experiment: Sync {
    /// Stable id: the CLI handle and the `results/` golden-file stem.
    fn id(&self) -> &'static str;
    /// One-line human title.
    fn title(&self) -> &'static str;
    /// The paper claim this experiment reproduces.
    fn claim(&self) -> &'static str;
    /// Whether the rendered report is byte-stable for `mode` (the
    /// `perf_*` experiments embed wall-clock numbers in full mode and
    /// return `false` there; everything else is exact RMR/state counts).
    fn deterministic(&self, mode: Mode) -> bool {
        let _ = mode;
        true
    }
    /// Run the experiment and produce its report.
    fn run(&self, ctx: &Ctx) -> Report;
}

/// JSON string literal for `s` (quotes, escapes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON array of string literals.
fn json_str_array<S: AsRef<str>>(items: &[S]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s.as_ref())).collect();
    format!("[{}]", cells.join(", "))
}

// ---------------------------------------------------------------------------
// Golden gating
// ---------------------------------------------------------------------------

/// Default goldens directory, relative to the repo root.
pub const RESULTS_DIR: &str = "results";

/// Path of the text golden for `id` under `dir` in `mode`.
pub fn golden_txt_path(dir: &Path, mode: Mode, id: &str) -> PathBuf {
    match mode {
        Mode::Full => dir.join(format!("{id}.txt")),
        Mode::Smoke => dir.join("smoke").join(format!("{id}.txt")),
    }
}

/// Path of the JSON structured twin for `id` under `dir` in `mode`.
pub fn golden_json_path(dir: &Path, mode: Mode, id: &str) -> PathBuf {
    match mode {
        Mode::Full => dir.join(format!("{id}.json")),
        Mode::Smoke => dir.join("smoke").join(format!("{id}.json")),
    }
}

/// Gate one report against its goldens under `dir`.
///
/// Returns one failure message per problem: a failed [`Check`], a
/// missing golden, or (for byte-stable reports) a unified diff of the
/// drift. `deterministic = false` skips the byte-diff but still
/// requires the goldens to exist and every check to pass.
pub fn check_against_goldens(report: &Report, deterministic: bool, dir: &Path) -> Vec<String> {
    let mut failures = Vec::new();
    for c in report.checks.iter().filter(|c| !c.pass) {
        failures.push(format!(
            "{}: CHECK FAILED: {} (bound: {}, measured: {})",
            report.id, c.claim, c.bound, c.measured
        ));
    }
    let renders = [
        (
            report.render_text(),
            golden_txt_path(dir, report.mode, report.id),
        ),
        (
            report.render_json(),
            golden_json_path(dir, report.mode, report.id),
        ),
    ];
    for (rendered, path) in renders {
        match std::fs::read_to_string(&path) {
            Err(_) => failures.push(format!(
                "{}: missing golden {} — run `experiments --bless{} --filter {}` to create it",
                report.id,
                path.display(),
                if report.mode == Mode::Smoke {
                    " --smoke"
                } else {
                    ""
                },
                report.id,
            )),
            Ok(_) if !deterministic => {} // presence is all we can gate
            Ok(golden) => {
                if golden != rendered {
                    failures.push(format!(
                        "{}: drift against {}\n{}",
                        report.id,
                        path.display(),
                        unified_diff(
                            &golden,
                            &rendered,
                            &format!("{} (golden)", path.display()),
                            &format!("{} (rendered)", report.id),
                        )
                    ));
                }
            }
        }
    }
    failures
}

/// Write (or overwrite) the goldens for `report` under `dir`; returns
/// the paths written.
pub fn bless(report: &Report, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let txt = golden_txt_path(dir, report.mode, report.id);
    let json = golden_json_path(dir, report.mode, report.id);
    if let Some(parent) = txt.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&txt, report.render_text())?;
    std::fs::write(&json, report.render_json())?;
    Ok(vec![txt, json])
}

/// Line-based unified diff of `old` vs `new` (3 lines of context).
///
/// Empty string when the inputs are identical. LCS-based, quadratic —
/// goldens are a few hundred lines at most.
pub fn unified_diff(old: &str, new: &str, old_label: &str, new_label: &str) -> String {
    if old == new {
        return String::new();
    }
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    // LCS lengths: lcs[i][j] = LCS of a[i..], b[j..].
    let mut lcs = vec![vec![0u32; b.len() + 1]; a.len() + 1];
    for i in (0..a.len()).rev() {
        for j in (0..b.len()).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    // Edit script as (tag, a_index-or-b_index) with tags ' ', '-', '+'.
    let mut ops: Vec<(char, usize)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] == b[j] {
            ops.push((' ', i));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            ops.push(('-', i));
            i += 1;
        } else {
            ops.push(('+', j));
            j += 1;
        }
    }
    while i < a.len() {
        ops.push(('-', i));
        i += 1;
    }
    while j < b.len() {
        ops.push(('+', j));
        j += 1;
    }

    const CTX: usize = 3;
    // Indices into `ops` that must be shown (changes ± context).
    let mut keep = vec![false; ops.len()];
    for (k, &(tag, _)) in ops.iter().enumerate() {
        if tag != ' ' {
            let lo = k.saturating_sub(CTX);
            let hi = (k + CTX + 1).min(ops.len());
            keep[lo..hi].fill(true);
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "--- {old_label}");
    let _ = writeln!(out, "+++ {new_label}");
    // Walk kept runs as hunks, tracking line numbers in both files.
    let (mut a_line, mut b_line) = (0usize, 0usize); // 0-based next line
    let mut k = 0;
    while k < ops.len() {
        if !keep[k] {
            match ops[k].0 {
                ' ' => {
                    a_line += 1;
                    b_line += 1;
                }
                '-' => a_line += 1,
                '+' => b_line += 1,
                _ => unreachable!(),
            }
            k += 1;
            continue;
        }
        // Start of a hunk.
        let (a_start, b_start) = (a_line, b_line);
        let mut body = String::new();
        let (mut a_len, mut b_len) = (0usize, 0usize);
        while k < ops.len() && keep[k] {
            let (tag, idx) = ops[k];
            match tag {
                ' ' => {
                    let _ = writeln!(body, " {}", a[idx]);
                    a_line += 1;
                    b_line += 1;
                    a_len += 1;
                    b_len += 1;
                }
                '-' => {
                    let _ = writeln!(body, "-{}", a[idx]);
                    a_line += 1;
                    a_len += 1;
                }
                '+' => {
                    let _ = writeln!(body, "+{}", b[idx]);
                    b_line += 1;
                    b_len += 1;
                }
                _ => unreachable!(),
            }
            k += 1;
        }
        let _ = writeln!(
            out,
            "@@ -{},{a_len} +{},{b_len} @@",
            a_start + 1,
            b_start + 1
        );
        out.push_str(&body);
    }
    out
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Run the registry experiment `id` the way its historical standalone
/// binary did: full sweep (or smoke when asked), text report on stdout,
/// process exit nonzero if any structured check failed.
pub fn run_as_bin(id: &str, smoke: bool) -> ! {
    let registry = crate::experiments::registry();
    let exp = registry
        .iter()
        .find(|e| e.id() == id)
        .unwrap_or_else(|| panic!("experiment {id:?} is not registered"));
    let ctx = Ctx::new(if smoke { Mode::Smoke } else { Mode::Full });
    let report = exp.run(&ctx);
    print!("{}", report.render_text());
    if !report.passed() {
        eprintln!("{id}: one or more structured checks FAILED (see [checks] above)");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Parsed options for the unified `experiments` driver binary.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct CliOptions {
    /// `--list`: print the registry and exit.
    pub list: bool,
    /// `--smoke`: run (and gate) the smoke configurations.
    pub smoke: bool,
    /// `--json`: print JSON twins instead of text reports.
    pub json: bool,
    /// `--check`: byte-diff rendered reports against the goldens.
    pub check: bool,
    /// `--bless`: (re)write the goldens from this run.
    pub bless: bool,
    /// `--filter a,b`: restrict to matching experiment ids.
    pub filters: Vec<String>,
    /// `--results-dir DIR`: goldens root (default `results/`).
    pub results_dir: Option<PathBuf>,
}

/// Usage string for the `experiments` driver.
pub const USAGE: &str = "\
usage: experiments [--list] [--filter <ids>] [--smoke] [--json] [--check] [--bless] [--results-dir <dir>]

  --list             list registered experiments (id, title, paper claim),
                     the lock registry, and the named workload scenarios
  --filter <ids>     comma-separated ids or id prefixes (e.g. e2,e15 or e2_writer_rmr)
  --smoke            one small config per experiment (CI budget); gates results/smoke/
  --json             print the structured JSON twin instead of the text report
  --check            byte-diff rendered output against the committed goldens;
                     exit nonzero with a unified diff on any drift or failed check
  --bless            regenerate the goldens (results/<id>.txt + .json) from this run
  --results-dir <d>  goldens root (default: results)";

/// Parse driver arguments (everything after the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliOptions, String> {
    let mut opts = CliOptions::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => opts.list = true,
            "--smoke" => opts.smoke = true,
            "--json" => opts.json = true,
            "--check" => opts.check = true,
            "--bless" => opts.bless = true,
            "--filter" => {
                let v = it
                    .next()
                    .ok_or("--filter needs a value (e.g. --filter e2,e15)")?;
                opts.filters.extend(
                    v.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty()),
                );
            }
            "--results-dir" => {
                let v = it.next().ok_or("--results-dir needs a path")?;
                opts.results_dir = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if opts.check && opts.bless {
        return Err("--check and --bless are mutually exclusive".into());
    }
    Ok(opts)
}

/// Does `id` match a `--filter` token? The exact id, or a prefix ending
/// on a `_` boundary (`e2` and `e2_writer` match `e2_writer_rmr`; `e1`
/// does NOT match `e12_writer_starvation`).
pub fn filter_matches(id: &str, token: &str) -> bool {
    id == token || (id.starts_with(token) && id.as_bytes().get(token.len()) == Some(&b'_'))
}

/// The named scenarios the bench matrix runs: every preset from
/// [`rwcore::Scenario::named`] without fault pressure (real threads
/// cannot crash on cue; the fault presets drive the model-check suite
/// only).
pub fn bench_scenarios() -> Vec<rwcore::NamedScenario> {
    rwcore::Scenario::named()
        .into_iter()
        .filter(|n| !n.sim_only())
        .collect()
}

/// The lock × scenario grid the `perf_locks` lab measures for `reg`:
/// every real-capable lock under every bench scenario, in registry ×
/// preset order. A lock registered once in [`rwcore::LockRegistry`]
/// appears here with no further wiring — the bench surface of the
/// registration contract.
pub fn scenario_matrix(reg: &rwcore::LockRegistry) -> Vec<(String, String)> {
    let scenarios = bench_scenarios();
    reg.entries()
        .iter()
        .filter(|e| e.real.is_some())
        .flat_map(|e| {
            scenarios
                .iter()
                .map(move |s| (e.id.to_string(), s.name.to_string()))
        })
        .collect()
}

/// Render the `--list` catalog: the experiment registry, the lock
/// registry (with which surfaces each lock reaches), and the named
/// scenarios with their DSL specs.
pub fn render_list(registry: &[Box<dyn Experiment>], locks: &rwcore::LockRegistry) -> String {
    let mut out = String::new();
    let mut t = Table::new(["id", "title", "paper claim"]);
    for e in registry {
        t.row([e.id(), e.title(), e.claim()]);
    }
    out.push_str(&t.render());

    out.push_str("\nlocks (rwcore::LockRegistry::builtin):\n");
    let mut t = Table::new(["lock", "real", "sim", "description"]);
    for e in locks.entries() {
        let mark = |b: bool| if b { "yes" } else { "-" };
        t.row([
            e.id,
            mark(e.real.is_some()),
            mark(e.sim.is_some()),
            e.summary,
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nscenarios (rwcore::Scenario DSL):\n");
    let mut t = Table::new(["scenario", "spec", "surfaces"]);
    for n in rwcore::Scenario::named() {
        t.row([
            n.name,
            n.spec,
            if n.sim_only() {
                "model-check suite only"
            } else {
                "perf_locks matrix + model-check suite"
            },
        ]);
    }
    out.push_str(&t.render());
    out
}

/// The unified driver: run experiments per `opts`; returns the process
/// exit code. Progress goes to stderr; reports/diffs go to stdout.
pub fn cli_main(opts: &CliOptions) -> i32 {
    let registry = crate::experiments::registry();
    if opts.list {
        print!(
            "{}",
            render_list(&registry, &rwcore::LockRegistry::builtin())
        );
        return 0;
    }
    let selected: Vec<&Box<dyn Experiment>> = registry
        .iter()
        .filter(|e| {
            opts.filters.is_empty() || opts.filters.iter().any(|f| filter_matches(e.id(), f))
        })
        .collect();
    if selected.is_empty() {
        eprintln!(
            "no experiment matches --filter {}; try --list",
            opts.filters.join(",")
        );
        return 2;
    }
    let mode = if opts.smoke { Mode::Smoke } else { Mode::Full };
    let ctx = Ctx::new(mode);
    let dir = opts
        .results_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from(RESULTS_DIR));
    let mut all_failures: Vec<String> = Vec::new();
    for exp in &selected {
        eprintln!("[experiments] running {} ({} mode)…", exp.id(), mode.tag());
        let t0 = std::time::Instant::now();
        let report = exp.run(&ctx);
        let secs = t0.elapsed().as_secs_f64();
        let deterministic = exp.deterministic(mode);
        if opts.check {
            let failures = check_against_goldens(&report, deterministic, &dir);
            let verdict = if failures.is_empty() {
                if deterministic {
                    "ok (goldens byte-identical, checks pass)"
                } else {
                    "ok (checks pass; byte-diff skipped: wall-clock content)"
                }
            } else {
                "FAILED"
            };
            println!("{:<24} {verdict}  [{secs:.1}s]", exp.id());
            all_failures.extend(failures);
        } else if opts.bless {
            match bless(&report, &dir) {
                Ok(paths) => {
                    for p in paths {
                        println!("blessed {}", p.display());
                    }
                }
                Err(e) => {
                    all_failures.push(format!("{}: bless failed: {e}", exp.id()));
                }
            }
            if !report.passed() {
                all_failures.push(format!(
                    "{}: blessed a report with FAILING checks — fix before committing",
                    exp.id()
                ));
            }
        } else if opts.json {
            print!("{}", report.render_json());
        } else {
            print!("{}", report.render_text());
            println!();
            if !report.passed() {
                all_failures.push(format!("{}: structured checks failed", exp.id()));
            }
        }
    }
    if all_failures.is_empty() {
        if opts.check {
            eprintln!(
                "[experiments] {} experiment(s) checked against {} — all clean",
                selected.len(),
                dir.display()
            );
        }
        return 0;
    }
    let combined = all_failures.join("\n");
    println!("\n{combined}");
    // Persist the diff for CI artifact upload.
    if opts.check {
        let diff_path =
            crate::env::read_nonempty("EXPERIMENTS_DIFF_OUT", "target/experiments-diff.txt");
        let diff_path = PathBuf::from(diff_path);
        if let Some(parent) = diff_path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if std::fs::write(&diff_path, &combined).is_ok() {
            eprintln!(
                "[experiments] failure report written to {}",
                diff_path.display()
            );
        }
    }
    eprintln!("[experiments] {} failure(s)", all_failures.len());
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut table = Table::new(["n", "rmr"]);
        table.row(["8", "12"]).row(["16", "16"]);
        Report {
            id: "toy",
            title: "a toy".into(),
            claim: "Lemma 0".into(),
            mode: Mode::Full,
            sections: vec![Section {
                heading: "only".into(),
                table,
            }],
            checks: vec![Check::le_u64("rmr bounded", 16, 20)],
            notes: "Expected shape: flat.".into(),
        }
    }

    #[test]
    fn text_render_is_stable() {
        let r = sample_report();
        let s = r.render_text();
        assert!(s.starts_with("toy — a toy\nclaim: Lemma 0\nmode: full\n"));
        assert!(s.contains("[only]"));
        assert!(s.contains("PASS  rmr bounded | bound: <= 20 | measured: 16"));
        assert!(s.ends_with("Expected shape: flat.\n"));
    }

    #[test]
    fn json_render_is_valid_enough_and_stable() {
        let r = sample_report();
        let s = r.render_json();
        assert!(s.starts_with("{\n  \"id\": \"toy\",\n"));
        assert!(s.contains("\"columns\": [\"n\", \"rmr\"]"));
        assert!(s.contains("[\"8\", \"12\"]"));
        assert!(s.contains("\"pass\": true"));
        assert!(s.ends_with("}\n"));
        // Same input renders byte-identically.
        assert_eq!(s, r.render_json());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("Θ(log n) — ok"), "\"Θ(log n) — ok\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn unified_diff_empty_on_identical() {
        assert_eq!(unified_diff("a\nb\n", "a\nb\n", "x", "y"), "");
    }

    #[test]
    fn unified_diff_marks_single_cell_change() {
        let old = "h\n-\n1 2\n3 4\n5 6\n7 8\n9 10\n";
        let new = "h\n-\n1 2\n3 4\n5 XX\n7 8\n9 10\n";
        let d = unified_diff(old, new, "golden", "rendered");
        assert!(d.starts_with("--- golden\n+++ rendered\n"));
        assert!(d.contains("-5 6\n"));
        assert!(d.contains("+5 XX\n"));
        assert!(d.contains("@@ -2,6 +2,6 @@"), "{d}");
        // Context lines kept.
        assert!(d.contains(" 3 4\n"));
    }

    #[test]
    fn unified_diff_handles_additions_and_removals() {
        let d = unified_diff("a\n", "a\nb\n", "o", "n");
        assert!(d.contains("+b\n"));
        let d = unified_diff("a\nb\n", "b\n", "o", "n");
        assert!(d.contains("-a\n"));
    }

    #[test]
    fn args_parse_roundtrip() {
        let opts = parse_args(
            [
                "--smoke",
                "--check",
                "--filter",
                "e2,e15",
                "--results-dir",
                "rdir",
            ]
            .map(String::from),
        )
        .unwrap();
        assert!(opts.smoke && opts.check && !opts.bless && !opts.json && !opts.list);
        assert_eq!(opts.filters, ["e2", "e15"]);
        assert_eq!(opts.results_dir.as_deref(), Some(Path::new("rdir")));
        assert!(parse_args(["--bogus".to_string()]).is_err());
        assert!(parse_args(["--check", "--bless"].map(String::from)).is_err());
    }

    #[test]
    fn filter_matching() {
        assert!(filter_matches("e2_writer_rmr", "e2"));
        assert!(filter_matches("e2_writer_rmr", "e2_writer_rmr"));
        assert!(filter_matches("e2_writer_rmr", "e2_writer"));
        assert!(filter_matches("perf_smoke", "perf"));
        assert!(!filter_matches("e2_writer_rmr", "e1"));
        assert!(!filter_matches("e12_writer_starvation", "e1"));
    }

    #[test]
    fn golden_paths_by_mode() {
        let d = Path::new("results");
        assert_eq!(
            golden_txt_path(d, Mode::Full, "e2"),
            Path::new("results/e2.txt")
        );
        assert_eq!(
            golden_json_path(d, Mode::Smoke, "e2"),
            Path::new("results/smoke/e2.json")
        );
    }
}
