//! Plain-text table rendering for experiment binaries.

use std::fmt::Display;

/// A simple ASCII table builder: headers, rows, aligned columns.
///
/// # Examples
/// ```
/// use bench::Table;
/// let mut t = Table::new(["n", "rmr"]);
/// t.row(["8", "12"]);
/// let s = t.render();
/// assert!(s.contains("n"));
/// assert!(s.contains("12"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Display, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Display, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers, in order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order; every row has
    /// [`headers`](Self::headers)`.len()` cells.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// True if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1"]).row(["long-name", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("123456"));
        // All data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(["h"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        // Exactly the header line and its underline, nothing else.
        assert_eq!(t.render(), "h\n-\n");
    }

    #[test]
    fn columns_are_right_aligned() {
        let mut t = Table::new(["col"]);
        t.row(["1"]).row(["1234"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Narrow cells are padded on the left up to the widest cell.
        assert_eq!(lines[0], " col");
        assert_eq!(lines[2], "   1");
        assert_eq!(lines[3], "1234");
    }

    #[test]
    fn accessors_expose_headers_and_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]).row(["3", "4"]);
        assert_eq!(t.headers(), ["a", "b"]);
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[1], ["3", "4"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_too_wide_rows() {
        Table::new(["a"]).row(["1", "2"]);
    }
}
