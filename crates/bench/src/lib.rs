//! # bench — the experiment harness
//!
//! One binary per paper claim (see `src/bin/`, DESIGN.md's per-experiment
//! index, and EXPERIMENTS.md for recorded results), plus dependency-free
//! micro-benchmarks under `benches/` (plain `harness = false` mains timed
//! with [`stopwatch`]).
//!
//! | binary | claim |
//! |---|---|
//! | `e1_lower_bound` | Theorem 5 / Figure 1: `r = Θ(log₃(n/f))`, Lemma 2 & 4 |
//! | `e2_writer_rmr` | Lemma 17: writer passage `Θ(f(n))` RMRs |
//! | `e3_reader_rmr` | Lemma 17: reader passage `Θ(log(n/f))` RMRs |
//! | `e4_tradeoff` | Corollary 6: the writer×reader RMR frontier |
//! | `e5_properties` | Theorem 18: exhaustive + randomized property checks |
//! | `e6_mutex_rmr` | `WL` substrate: `Θ(log m)` RMRs |
//! | `e7_baselines` | §6: centralized CAS vs `A_f` vs FAA under the adversary |
//! | `e9_counter` | f-array: `add` `Θ(log K)` steps, `read` `O(1)` |
//! | `e10_concurrent_entering` | Concurrent Entering constant `b` |
//! | `e15_crash_robustness` | RME crash model: MX under crashes, recovery RMRs, stall diagnoses |
//! | `perf_smoke` | simulator steps/sec: directory core vs reference core |
//!
//! (`e8` is the throughput bench suite: `cargo bench -p bench`.)
//!
//! Sweep-shaped experiments (`e2`, `e3`, `e4`, `e7`, `e15`) fan their
//! independent configs across cores with [`par::par_map`]; results come
//! back in input order, so the printed tables are byte-identical to a
//! sequential run (`BENCH_THREADS=1` forces one).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod par;
mod rmr;
pub mod stopwatch;
mod table;
pub mod throughput;

pub use rmr::{
    measure_af, measure_concurrent_entering, measure_mutex, standard_sweep, AfRmrSample,
    MutexRmrSample,
};
pub use table::Table;

/// `log₃(x)` helper used when comparing against the paper's `3^j` bound.
pub fn log3(x: f64) -> f64 {
    x.ln() / 3f64.ln()
}

/// `log₂(x)` helper.
pub fn log2(x: f64) -> f64 {
    x.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_helpers() {
        assert!((log3(27.0) - 3.0).abs() < 1e-9);
        assert!((log2(1024.0) - 10.0).abs() < 1e-9);
    }
}
