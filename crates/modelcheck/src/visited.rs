//! Pluggable visited-set backends for the explorers.
//!
//! The explorers deduplicate configurations through one [`Visited`]
//! object: the backend chooses both the **key function** (which
//! fingerprint partitions the space) and the **storage** (a 64-way
//! striped hash set shared by all of them). Three backends implement the
//! [`crate::Symmetry`] modes:
//!
//! * [`Symmetry::Off`] — concrete keys from the O(1) incremental
//!   [`ccsim::Sim::fingerprint`]. One entry per reachable configuration.
//! * [`Symmetry::Quotient`] — canonical keys from
//!   [`ccsim::Sim::fingerprint_canonical`]: configurations differing
//!   only by a permutation of a declared
//!   [`ccsim::SymmetryClass`] share a key, so each orbit is stored
//!   (and expanded) once.
//! * [`Symmetry::FullRehash`] — the pre-optimization SipHash walk over
//!   the whole configuration, kept as the independent-hash-family oracle
//!   and the honest perf baseline.
//!
//! The same sharded storage backs the sequential explorer (where the
//! striping is simply uncontended) and the parallel one, so
//! [`Visited::stats`] reports comparable occupancy numbers in either.

use crate::{state_key_canonical, state_key_concrete, state_key_full, Budgets, Symmetry};
use ccsim::{FxBuildHasher, Sim};
use std::collections::HashSet;
use std::sync::Mutex;

/// Shard count for the striped visited set. 64 keeps the per-shard
/// mutexes essentially uncontended for any plausible worker count while
/// the selector stays a single shift.
const SHARDS: usize = 64;

/// Occupancy statistics of a visited-set backend, reported at the end of
/// an exploration in [`crate::CheckReport`]. The set only ever grows, so
/// the end-of-run numbers are also the peak.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct VisitedStats {
    /// Distinct keys stored (equals `states_explored` after a run).
    pub entries: u64,
    /// Approximate resident bytes of the backing tables: allocated
    /// capacity (not occupancy) at 9 bytes per slot — an 8-byte key plus
    /// one control byte, the std hash-table layout.
    pub resident_bytes: u64,
}

/// A visited set striped across [`SHARDS`] mutex-protected shards,
/// selected by the key's top bits (the keys are full-avalanche hashes,
/// so any fixed bit range balances).
struct ShardedSet {
    shards: Vec<Mutex<HashSet<u64, FxBuildHasher>>>,
}

impl ShardedSet {
    fn new() -> Self {
        ShardedSet {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(HashSet::default()))
                .collect(),
        }
    }

    /// Insert `key`, returning true if it was new. The per-shard lock is
    /// held only for the probe itself.
    fn insert(&self, key: u64) -> bool {
        let shard = (key >> 58) as usize & (SHARDS - 1);
        self.shards[shard].lock().unwrap().insert(key)
    }

    fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().len() as u64)
            .sum()
    }

    fn stats(&self) -> VisitedStats {
        let (mut entries, mut resident) = (0u64, 0u64);
        for s in &self.shards {
            let set = s.lock().unwrap();
            entries += set.len() as u64;
            resident += set.capacity() as u64 * 9;
        }
        VisitedStats {
            entries,
            resident_bytes: resident,
        }
    }
}

/// The visited-set abstraction both explorers deduplicate through: the
/// backend pairs a key function (which fingerprint partitions the state
/// space) with shared storage. Exactly-once expansion rests on
/// [`Visited::insert`] being atomic per key, which the striped mutexes
/// provide.
pub(crate) trait Visited: Sync {
    /// The deduplication key of a configuration: its (concrete,
    /// canonical, or full-rehash) fingerprint mixed with the per-process
    /// passage quotas, the remaining adversary budgets, and the in-flight
    /// abort flags.
    fn key(&self, sim: &Sim, quota: u64, budgets: Budgets) -> u64;

    /// Insert a key, returning true if it was new.
    fn insert(&self, key: u64) -> bool;

    /// Distinct keys stored.
    fn len(&self) -> u64;

    /// End-of-run occupancy (also the peak — the set only grows).
    fn stats(&self) -> VisitedStats;
}

/// Concrete incremental keys ([`Symmetry::Off`]).
struct Concrete(ShardedSet);

/// Canonical symmetry-quotient keys ([`Symmetry::Quotient`]).
struct Quotient(ShardedSet);

/// From-scratch SipHash oracle keys ([`Symmetry::FullRehash`]).
struct Oracle(ShardedSet);

macro_rules! impl_visited_storage {
    ($ty:ty, $keyfn:path) => {
        impl Visited for $ty {
            fn key(&self, sim: &Sim, quota: u64, budgets: Budgets) -> u64 {
                $keyfn(sim, quota, budgets)
            }
            fn insert(&self, key: u64) -> bool {
                self.0.insert(key)
            }
            fn len(&self) -> u64 {
                self.0.len()
            }
            fn stats(&self) -> VisitedStats {
                self.0.stats()
            }
        }
    };
}

impl_visited_storage!(Concrete, state_key_concrete);
impl_visited_storage!(Quotient, state_key_canonical);
impl_visited_storage!(Oracle, state_key_full);

/// Construct the backend for a [`Symmetry`] mode.
pub(crate) fn backend(symmetry: Symmetry) -> Box<dyn Visited> {
    match symmetry {
        Symmetry::Off => Box::new(Concrete(ShardedSet::new())),
        Symmetry::Quotient => Box::new(Quotient(ShardedSet::new())),
        Symmetry::FullRehash => Box::new(Oracle(ShardedSet::new())),
    }
}
