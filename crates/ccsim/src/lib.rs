//! # ccsim — a cache-coherent shared-memory simulator with exact RMR accounting
//!
//! This crate implements the abstract machine of *"On the Complexity of
//! Reader-Writer Locks"* (Hendler, PODC 2016), §2: an asynchronous
//! shared-memory system in which each step applies one read, write, or CAS
//! to a shared variable, under either the **write-through** or
//! **write-back** cache-coherence protocol, charging a *remote memory
//! reference* (RMR) exactly when the protocol says one occurs.
//!
//! Algorithms are written as explicit step machines ([`Program`] /
//! [`SubMachine`]) so that schedulers — round-robin and random runners
//! here, an exhaustive model checker in `modelcheck`, and the Theorem-5
//! adversary in `knowledge` — fully control interleaving and can *peek* at
//! each process's pending operation.
//!
//! ## Quick tour
//!
//! ```
//! use ccsim::{Layout, Memory, Op, ProcId, Protocol, Value};
//!
//! // Declare shared variables and build a memory for two processes.
//! let mut layout = Layout::new();
//! let x = layout.var("x", Value::Int(0));
//! let mut mem = Memory::new(&layout, 2, Protocol::WriteBack);
//!
//! // A cold read misses (RMR); re-reading is a local cache hit.
//! assert!(mem.apply(ProcId(0), &Op::Read(x)).rmr);
//! assert!(!mem.apply(ProcId(0), &Op::Read(x)).rmr);
//!
//! // Another process's write invalidates our copy.
//! mem.apply(ProcId(1), &Op::write(x, 7));
//! assert!(mem.apply(ProcId(0), &Op::Read(x)).rmr);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod directory;
pub mod env;
mod fault;
mod fxhash;
mod layout;
mod memory;
mod op;
mod program;
pub mod reference;
mod rng;
mod sched;
mod sim;
mod trace;
mod value;

pub use cache::{Cache, Mode, Protocol};
pub use fault::{CrashPoint, FaultDriver, FaultPlan};
pub use fxhash::{mix64, FxBuildHasher, FxHasher};
pub use layout::Layout;
pub use memory::{CacheView, Memory, StepOutcome};
pub use op::{Op, OpKind};
pub use program::{sub, Phase, Program, Role, Step, SubMachine, SubStep};
pub use rng::Prng;
pub use sched::{
    blocked_spinners, parse_stall_after, run_random, run_random_with_faults, run_round_robin,
    run_round_robin_with_faults, run_solo, RunConfig, RunError, RunReport, STALL_AFTER_ENV,
};
pub use sim::{MutualExclusionViolation, ProcStats, Sim, SymmetryClass};
pub use trace::{StepKind, StepRecord, Trace, TraceSummary};
pub use value::{ProcId, Value, VarId};
