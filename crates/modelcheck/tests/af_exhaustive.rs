//! Exhaustive model checks of the `A_f` lock (Theorem 18's safety
//! claims) — the coverage the auto-generated registry suite
//! (`suite_registry.rs`) does *not* produce: alternate group policies
//! and protocols, exhaustive (uncapped) fault adversaries, and the
//! negative-control counterexamples. Routine Mutual Exclusion /
//! Bounded Exit sweeps over the registered lock variants moved to the
//! generated suite; add a lock to [`rwcore::LockRegistry::builtin`] and
//! it is checked there with no test edits here.
//!
//! Larger configurations (e.g. n=3, m=1, f=1: 48.9M states, all safe) run
//! in the `e5_properties` experiment binary in release mode; these tests
//! keep to sizes that finish quickly in debug builds.

use ccsim::Protocol;
use modelcheck::{
    bounded_abort_invariant, explore, explore_par, explore_par_with,
    post_crash_acquirability_invariant, replay, shrink, CheckConfig, CheckError, TraceArtifact,
};
use rwcore::{af_world, af_world_seq_reuse_bug, af_world_with_order, AfConfig, FPolicy, HelpOrder};

// Mutual Exclusion sweeps over the plain, gated, sharded, and CAS-loop
// registered variants (formerly individual tests here and in
// `sharded_af.rs`) now run through the generated suite — see
// `suite_registry.rs::failure_free_suite_passes_for_every_builtin_sim_twin`.

fn af_factory(n: usize, m: usize, policy: FPolicy, order: HelpOrder) -> impl Fn() -> ccsim::Sim {
    move || {
        af_world_with_order(
            AfConfig {
                readers: n,
                writers: m,
                policy,
            },
            Protocol::WriteBack,
            order,
        )
        .sim
    }
}

#[test]
fn af_groups_of_one_exhaustively_safe() {
    let report = explore(
        af_factory(2, 1, FPolicy::Linear, HelpOrder::WaitersFirst),
        &CheckConfig {
            passages_per_proc: 1,
            ..Default::default()
        },
    )
    .expect("A_f f=n must be safe");
    assert!(report.complete);
}

#[test]
fn af_write_through_exhaustively_safe() {
    let report = explore(
        || af_world(AfConfig::new(2, 1), Protocol::WriteThrough).sim,
        &CheckConfig {
            passages_per_proc: 1,
            ..Default::default()
        },
    )
    .expect("A_f under write-through must be safe");
    assert!(report.complete);
}

/// The reproduction finding: the extended abstract's literal HelpWCS
/// (read `C[i]`, then `W[i]`, line 51) admits a mutual-exclusion
/// violation. The model checker finds a ~71-step counterexample at n=3:
/// a reader's `C` increment lands between the two counter reads, so an
/// exiting reader observes stale-C == fresh-W and signals `<seq, CS>`
/// while another reader is still inside the critical section.
#[test]
fn paper_literal_help_order_violates_mutual_exclusion() {
    let factory = af_factory(3, 1, FPolicy::One, HelpOrder::PaperLiteral);
    let err = explore(
        &factory,
        &CheckConfig {
            passages_per_proc: 1,
            max_states: 50_000_000,
            ..Default::default()
        },
    )
    .expect_err("the literal read order must violate mutual exclusion");
    match &err {
        CheckError::MutualExclusion {
            schedule,
            violation,
            fingerprint,
        } => {
            // A writer shares the CS with a reader.
            assert!(violation
                .occupants
                .iter()
                .any(|(_, role)| *role == ccsim::Role::Writer));
            assert!(violation
                .occupants
                .iter()
                .any(|(_, role)| *role == ccsim::Role::Reader));
            // The counterexample replays deterministically, landing on
            // the reported configuration fingerprint.
            let sim = replay(&factory, schedule);
            assert!(sim.check_mutual_exclusion().is_err());
            assert_eq!(sim.fingerprint(), *fingerprint);
        }
        other => panic!("expected an MX violation, got {other}"),
    }
}

/// Crash robustness: `A_f` is not a recoverable lock, but in the RME
/// individual-crash model a crash *outside* the critical section must
/// cost at most liveness, never Mutual Exclusion — local state and cache
/// lines vanish, shared memory (including the f-array counters, whose
/// kept leaf mirrors only ever over-count) survives. Exhausted here for
/// n=2, m=1 with a one-crash adversary.
#[test]
fn af_crash_augmented_exploration_is_safe() {
    let report = explore_par(
        af_factory(2, 1, FPolicy::One, HelpOrder::WaitersFirst),
        &CheckConfig {
            passages_per_proc: 1,
            crash_budget: 1,
            ..Default::default()
        },
        0,
    )
    .expect("crashes outside the CS must not break A_f's mutual exclusion");
    assert!(report.complete, "crash-augmented space must be exhausted");
    assert!(
        report.crash_transitions > 0,
        "the crash adversary must actually strike"
    );
}

/// System-wide crash robustness: with the recoverable reader (counter
/// drain on re-entry) and the writer's epoch burn, `A_f` survives a
/// `CrashAll` adversary — Mutual Exclusion everywhere, every in-flight
/// abort withdraws in bounded solo steps, and from every post-crash
/// configuration a fair failure-free continuation still completes a
/// passage per process (no permanently lost lock). Exhausted for n=1,
/// m=1 with one system-wide crash and one abort along any schedule.
#[test]
fn af_crash_all_and_abort_exploration_holds_all_invariants() {
    let bounded_abort = bounded_abort_invariant(400);
    let acquirable = post_crash_acquirability_invariant(4_000);
    let report = explore_par_with(
        af_factory(1, 1, FPolicy::One, HelpOrder::WaitersFirst),
        &CheckConfig {
            passages_per_proc: 1,
            crash_all_budget: 1,
            abort_budget: 1,
            ..Default::default()
        },
        0,
        |sim| {
            bounded_abort(sim)?;
            acquirable(sim)
        },
    )
    .expect("recoverable A_f must survive the crash-all + abort adversary");
    assert!(report.complete, "augmented space must be exhausted");
    assert!(
        report.crash_transitions > 0,
        "the crash-all adversary must actually strike"
    );
}

/// The same adversary at n=2, m=1 (MX only — the probe invariants are
/// quadratic in state count and stay on the n=1 instance).
#[test]
fn af_2readers_crash_all_augmented_exploration_is_safe() {
    let report = explore_par(
        af_factory(2, 1, FPolicy::One, HelpOrder::WaitersFirst),
        &CheckConfig {
            passages_per_proc: 1,
            crash_all_budget: 1,
            abort_budget: 1,
            ..Default::default()
        },
        0,
    )
    .expect("system-wide crashes must not break A_f's mutual exclusion");
    assert!(report.complete);
    assert!(report.crash_transitions > 0);
}

/// The catch-test for the fault-tolerance layer: re-enabling `WSEQ`
/// reuse after a crash (skipping the recovery epoch burn) must be caught
/// by crash-all-augmented exploration — a reader's stale helper signal,
/// armed for the crashed passage's epoch, fires into the recovered
/// writer's identically-numbered passage and walks it into an occupied
/// critical section. A two-passage quota is essential: the stale signal
/// needs a *second* reader passage to collide with (one-passage
/// adversaries explore this bug safely — see
/// `af_crash_augmented_exploration_is_safe`). The counterexample shrinks
/// to a locally minimal schedule and survives the trace-artifact text
/// format.
#[test]
fn seq_reuse_bug_is_caught_shrunk_and_replayable() {
    let factory = || af_world_seq_reuse_bug(AfConfig::new(1, 1), Protocol::WriteBack).sim;
    let err = explore(
        factory,
        &CheckConfig {
            passages_per_proc: 2,
            crash_all_budget: 1,
            ..Default::default()
        },
    )
    .expect_err("epoch reuse after a crash-all must violate mutual exclusion");
    let CheckError::MutualExclusion { schedule, .. } = &err else {
        panic!("expected an MX violation, got {err}");
    };
    assert!(
        schedule.iter().any(|e| e.is_crash()),
        "the violation must require a crash"
    );

    let violates = |s: &ccsim::Sim| s.check_mutual_exclusion().is_err();
    let out = shrink(factory, schedule, violates);
    let sim = replay(factory, &out.schedule);
    assert!(violates(&sim), "shrunk schedule still reproduces");
    assert_eq!(sim.fingerprint(), out.fingerprint);

    // The shrunk counterexample round-trips through the artifact format
    // (crash tokens included) and replays onto the same configuration.
    let artifact = TraceArtifact {
        world: "af-seq-reuse-bug n=1 m=1 writeback".into(),
        violation: err.describe(),
        fingerprint: out.fingerprint,
        schedule: out.schedule,
    };
    let parsed = TraceArtifact::parse(&artifact.render()).expect("round trip");
    assert_eq!(parsed, artifact);
    let sim = replay(factory, &parsed.schedule);
    assert!(violates(&sim));
    assert_eq!(sim.fingerprint(), parsed.fingerprint);
}

/// The same configuration with the safe (waiters-first) order never
/// reaches a violation along the literal counterexample's prefix space:
/// spot-check by exploring a capped slice of the n=3 space (the full
/// 48.9M-state proof runs in `e5_properties` / release).
#[test]
fn waiters_first_survives_capped_n3_exploration() {
    let report = explore(
        af_factory(3, 1, FPolicy::One, HelpOrder::WaitersFirst),
        &CheckConfig {
            passages_per_proc: 1,
            max_states: 300_000,
            ..Default::default()
        },
    )
    .expect("no violation within the capped slice");
    assert!(!report.complete, "cap should bind at n=3");
}
