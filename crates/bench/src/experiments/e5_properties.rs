//! E5 — Theorem 18: mechanical validation of the lock's properties.
//!
//! Exhaustively model-checks small `A_f` instances for Mutual Exclusion
//! (every reachable interleaving, via the parallel explorer — counts are
//! worker-count-independent), reproduces the HelpWCS read-order
//! counterexample against the paper-literal variant, and stress-tests
//! larger instances under randomized schedules. Detail cells report
//! state counts only (no wall-clock), so the report is byte-stable.

use super::prelude::*;
use crate::par;
use ccsim::{run_random, Prng, RunConfig};
use modelcheck::{explore, explore_par, CheckConfig};
use rwcore::{af_world, af_world_with_order, HelpOrder};

/// Registry entry for the Theorem-18 property checks.
pub(crate) struct E5;

impl Experiment for E5 {
    fn id(&self) -> &'static str {
        "e5_properties"
    }

    fn title(&self) -> &'static str {
        "exhaustive + randomized property validation of A_f"
    }

    fn claim(&self) -> &'static str {
        "Theorem 18: A_f satisfies MX (exhaustive) and stays live under randomized schedules; paper-literal HelpWCS violates MX"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let mut table = Table::new(["check", "config", "result", "detail"]);
        let workers = par::worker_count(usize::MAX);

        // Exhaustive mutual-exclusion checks.
        let exhaustive: &[(usize, usize, u64, FPolicy)] = if ctx.smoke() {
            &[(2, 1, 1, FPolicy::One)]
        } else {
            &[
                (2, 1, 1, FPolicy::One),
                (2, 1, 1, FPolicy::Linear),
                (2, 2, 1, FPolicy::One),
                (3, 1, 1, FPolicy::One),
                (3, 1, 1, FPolicy::Groups(2)),
                (2, 1, 2, FPolicy::One),
            ]
        };
        let mut exhaustive_safe = 0usize;
        for &(n, m, q, policy) in exhaustive {
            let cfg = AfConfig {
                readers: n,
                writers: m,
                policy,
            };
            match explore_par(
                || af_world(cfg, Protocol::WriteBack).sim,
                &CheckConfig {
                    passages_per_proc: q,
                    max_states: 200_000_000,
                    ..Default::default()
                },
                workers,
            ) {
                Ok(r) => {
                    exhaustive_safe += 1;
                    table.row([
                        "exhaustive MX".to_string(),
                        format!("n={n} m={m} q={q} {policy}"),
                        if r.complete {
                            "SAFE (complete)"
                        } else {
                            "SAFE (capped)"
                        }
                        .to_string(),
                        format!("{} states", r.states_explored),
                    ])
                }
                Err(e) => table.row([
                    "exhaustive MX".to_string(),
                    format!("n={n} m={m} q={q} {policy}"),
                    "VIOLATION".to_string(),
                    e.to_string(),
                ]),
            };
        }

        // The reproduction finding: the paper-literal HelpWCS order
        // violates MX. This row uses the sequential explorer: its DFS
        // counterexample is deterministic and cheap, where the parallel
        // explorer would re-derive a BFS-minimal schedule — minutes of
        // work for a row whose point is just "a violation exists".
        let cfg = AfConfig {
            readers: 3,
            writers: 1,
            policy: FPolicy::One,
        };
        let literal_violates;
        match explore(
            || af_world_with_order(cfg, Protocol::WriteBack, HelpOrder::PaperLiteral).sim,
            &CheckConfig {
                passages_per_proc: 1,
                max_states: 200_000_000,
                ..Default::default()
            },
        ) {
            Err(e) => {
                literal_violates = true;
                table.row([
                    "paper-literal HelpWCS".to_string(),
                    "n=3 m=1 q=1 f=1".to_string(),
                    "VIOLATION FOUND (expected)".to_string(),
                    format!("schedule length {}", e.schedule().len()),
                ])
            }
            Ok(r) => {
                literal_violates = false;
                table.row([
                    "paper-literal HelpWCS".to_string(),
                    "n=3 m=1 q=1 f=1".to_string(),
                    "UNEXPECTEDLY SAFE".to_string(),
                    format!("{} states", r.states_explored),
                ])
            }
        };

        // Randomized stress at larger scales (liveness: stalls would
        // error out of run_random).
        let stress: &[(usize, usize, FPolicy)] = if ctx.smoke() {
            &[(8, 2, FPolicy::LogN)]
        } else {
            &[
                (8, 2, FPolicy::LogN),
                (16, 4, FPolicy::SqrtN),
                (32, 2, FPolicy::One),
            ]
        };
        let seeds: u64 = if ctx.smoke() { 10 } else { 50 };
        let mut stress_clean = 0usize;
        for &(n, m, policy) in stress {
            let cfg = AfConfig {
                readers: n,
                writers: m,
                policy,
            };
            let seed_list: Vec<u64> = (0..seeds).collect();
            let failures: usize = par_map(&seed_list, |&seed| {
                let mut world = af_world(cfg, Protocol::WriteBack);
                let mut rng = Prng::new(seed);
                let rc = RunConfig {
                    passages_per_proc: 5,
                    ..Default::default()
                };
                usize::from(run_random(&mut world.sim, &mut rng, &rc).is_err())
            })
            .into_iter()
            .sum();
            stress_clean += usize::from(failures == 0);
            table.row([
                "random stress".to_string(),
                format!("n={n} m={m} {policy}"),
                if failures == 0 {
                    "SAFE + LIVE"
                } else {
                    "FAILURES"
                }
                .to_string(),
                format!("{seeds} seeds x 5 passages/proc, {failures} failures"),
            ]);
        }

        let mut report = Report::new(self, ctx);
        report
            .section("property checks", table)
            .check(Check::all(
                "exhaustive MX holds on every small A_f instance",
                exhaustive_safe,
                exhaustive.len(),
            ))
            .check(Check::new(
                "paper-literal HelpWCS admits an MX violation (the reproduction finding)",
                "violation found",
                if literal_violates {
                    "violation found"
                } else {
                    "UNEXPECTEDLY SAFE"
                },
                literal_violates,
            ))
            .check(Check::all(
                "randomized stress runs finish safe and live",
                stress_clean,
                stress.len(),
            ))
            .notes(
                "The paper-literal row demonstrates the reproduction finding: the\n\
                 extended abstract's HelpWCS (read C[i] then W[i], line 51) admits\n\
                 a mutual-exclusion violation; this library reads W[i] first (see\n\
                 DESIGN.md, 'Reproduction findings').",
            );
        report
    }
}
