//! Assembling complete simulated worlds of `A_f` readers and writers.

use crate::af::counters::CounterKind;
use crate::af::shared::{AfShared, HelpOrder};
use crate::af::sim::{AfReaderSim, AfWriterSim};
use crate::config::AfConfig;
use ccsim::{Layout, Memory, ProcId, Program, Protocol, Sim, SymmetryClass};
use std::sync::Arc;

/// Process-id convention for lock worlds: readers first, then writers.
///
/// The paper's process set is `{R_1..R_n, W_1..W_m}`; we map reader `r` to
/// `ProcId(r)` and writer `w` to `ProcId(n + w)`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PidMap {
    /// Number of readers `n`.
    pub readers: usize,
    /// Number of writers `m`.
    pub writers: usize,
}

impl PidMap {
    /// The process id of reader `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn reader(&self, r: usize) -> ProcId {
        assert!(r < self.readers, "reader {r} out of range");
        ProcId(r)
    }

    /// The process id of writer `w`.
    ///
    /// # Panics
    /// Panics if `w` is out of range.
    pub fn writer(&self, w: usize) -> ProcId {
        assert!(w < self.writers, "writer {w} out of range");
        ProcId(self.readers + w)
    }

    /// All reader process ids.
    pub fn reader_pids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.readers).map(ProcId)
    }

    /// All writer process ids.
    pub fn writer_pids(&self) -> impl Iterator<Item = ProcId> + '_ {
        (0..self.writers).map(|w| ProcId(self.readers + w))
    }

    /// Total process count.
    pub fn total(&self) -> usize {
        self.readers + self.writers
    }
}

impl From<AfConfig> for PidMap {
    fn from(cfg: AfConfig) -> Self {
        PidMap {
            readers: cfg.readers,
            writers: cfg.writers,
        }
    }
}

/// A fully wired simulated `A_f` world.
#[derive(Debug)]
pub struct AfWorld {
    /// The simulation (readers are `ProcId(0..n)`, writers
    /// `ProcId(n..n+m)`).
    pub sim: Sim,
    /// The lock instance's shared-variable descriptor.
    pub shared: Arc<AfShared>,
    /// The id convention.
    pub pids: PidMap,
}

/// Build a simulated world running `A_f` under `cfg` and `protocol`.
///
/// # Examples
/// ```
/// use ccsim::{run_round_robin, Protocol, RunConfig};
/// use rwcore::{af_world, AfConfig};
///
/// let mut world = af_world(AfConfig::new(4, 2), Protocol::WriteBack);
/// let report = run_round_robin(
///     &mut world.sim,
///     &RunConfig { passages_per_proc: 2, ..Default::default() },
/// )?;
/// assert!(report.completed.iter().all(|&c| c == 2));
/// # Ok::<(), ccsim::RunError>(())
/// ```
pub fn af_world(cfg: AfConfig, protocol: Protocol) -> AfWorld {
    af_world_with_order(cfg, protocol, HelpOrder::WaitersFirst)
}

/// [`af_world`] with an explicit `HelpWCS` counter read order (see
/// [`HelpOrder`]); used by the regression test that reproduces the
/// paper-literal ordering's mutual-exclusion counterexample.
pub fn af_world_with_order(cfg: AfConfig, protocol: Protocol, order: HelpOrder) -> AfWorld {
    af_world_custom(cfg, protocol, order, CounterKind::FArray)
}

/// Fully parameterised world: `HelpWCS` read order and group-counter
/// implementation (the E13 ablation runs `CounterKind::CasLoop`).
///
/// Both counter kinds declare reader [`SymmetryClass`]es (see
/// [`reader_symmetry_classes`]) so the model checker's
/// `Symmetry::Quotient` mode collapses reader permutations: `CasLoop`
/// worlds one class per reader group of size ≥ 2, `FArray` worlds one
/// class per *sibling leaf pair* of the counter trees, each member
/// owning its `C`/`W` leaf slots.
pub fn af_world_custom(
    cfg: AfConfig,
    protocol: Protocol,
    order: HelpOrder,
    counters: CounterKind,
) -> AfWorld {
    let mut layout = Layout::new();
    let shared = AfShared::allocate_custom(&mut layout, cfg, order, counters);
    let pids = PidMap::from(cfg);
    let mem = Memory::new(&layout, pids.total(), protocol);
    let mut procs: Vec<Box<dyn Program>> = Vec::with_capacity(pids.total());
    for r in 0..cfg.readers {
        procs.push(Box::new(AfReaderSim::new(Arc::clone(&shared), r)));
    }
    for w in 0..cfg.writers {
        procs.push(Box::new(AfWriterSim::new(Arc::clone(&shared), w)));
    }
    let mut sim = Sim::new(mem, procs);
    sim.declare_symmetry(reader_symmetry_classes(&shared));
    AfWorld { sim, shared, pids }
}

/// The interchangeable-reader classes of an `A_f` world.
///
/// **CAS-loop counters:** one class per reader group of size ≥ 2. Within
/// a group, `CasLoop` readers are *identical* machines — the group's
/// `C`/`W` counters are single CAS words shared by the whole group (the
/// per-reader leaf slot is ignored, see
/// [`crate::af::counters::GroupHandle::CasLoop`]), reader code never
/// writes a process id to shared memory, and [`AfReaderSim`]'s
/// fingerprint is index-free. Swapping two same-group readers therefore
/// maps every configuration to one with an identical successor
/// structure, which is exactly the soundness obligation of
/// [`ccsim::SymmetryClass`].
///
/// **F-array counters:** one class per *sibling leaf pair* of the
/// counter trees — readers whose leaves share a parent in both the `C`
/// and `W` heaps — each member owning its two leaf variables. Sibling
/// pairs (and nothing wider) are sound because the refresh machine
/// visits its own leaf *first* at the leaf-parent level
/// (`fcounter::AddMachine`; leaf addition is commutative, so the two
/// read orders produce the same parent sum) and its fingerprint is
/// index-free: swapping the two readers together with their leaf values
/// commutes with every transition, including a refresh latched halfway
/// between the two leaf reads. A wider permutation would swap leaves
/// under *different* parents, changing which partial sums an in-flight
/// refresh has already latched — not an automorphism. Unpaired readers
/// (odd group populations; their sibling slot is a constant-zero pad
/// leaf) stay out of any class.
///
/// Readers in *different* groups touch different counters and are never
/// interchangeable; writers never are: the tournament-mutex entry
/// protocol stores writer ids in its tree nodes.
pub fn reader_symmetry_classes(shared: &AfShared) -> Vec<SymmetryClass> {
    let cfg = shared.cfg;
    let mut by_group: Vec<Vec<(usize, ProcId)>> = vec![Vec::new(); shared.groups];
    for r in 0..cfg.readers {
        let slot = cfg.group_of(r);
        by_group[slot.group].push((slot.leaf, ProcId(r)));
    }
    let mut classes = Vec::new();
    for (g, members) in by_group.iter().enumerate() {
        let (c, w) = (&shared.c[g], &shared.w[g]);
        if c.leaf_var(0).is_none() {
            // Single-word counters: the whole group is one class.
            if members.len() >= 2 {
                classes.push(SymmetryClass::new(
                    members.iter().map(|&(_, p)| p).collect(),
                ));
            }
            continue;
        }
        // F-array: leaves are assigned contiguously (`group_of`), so the
        // sibling of leaf 2t is leaf 2t+1 when populated.
        for pair in members.chunks(2) {
            let [(la, pa), (lb, pb)] = pair else { continue };
            if !c.leaves_are_siblings(*la, *lb) {
                continue;
            }
            debug_assert!(w.leaves_are_siblings(*la, *lb), "C/W trees share shape");
            let own = |leaf: usize| -> Vec<_> {
                vec![
                    c.leaf_var(leaf).expect("f-array leaf"),
                    w.leaf_var(leaf).expect("f-array leaf"),
                ]
            };
            classes.push(SymmetryClass::with_owned(
                vec![*pa, *pb],
                vec![own(*la), own(*lb)],
            ));
        }
    }
    classes
}

/// [`af_world`] with the writers' crash-recovery epoch burn disabled —
/// recovery re-enters with the *same* `WSEQ` the crashed passage used
/// (see [`AfWriterSim::new_with_seq_reuse_bug`]). Deliberately broken:
/// exists so the model checker's catch-tests can prove the crash-all and
/// crash-augmented exploration actually detects the resulting
/// mutual-exclusion hole.
#[doc(hidden)]
pub fn af_world_seq_reuse_bug(cfg: AfConfig, protocol: Protocol) -> AfWorld {
    let mut layout = Layout::new();
    let shared = AfShared::allocate_custom(
        &mut layout,
        cfg,
        HelpOrder::WaitersFirst,
        CounterKind::FArray,
    );
    let pids = PidMap::from(cfg);
    let mem = Memory::new(&layout, pids.total(), protocol);
    let mut procs: Vec<Box<dyn Program>> = Vec::with_capacity(pids.total());
    for r in 0..cfg.readers {
        procs.push(Box::new(AfReaderSim::new(Arc::clone(&shared), r)));
    }
    for w in 0..cfg.writers {
        procs.push(Box::new(AfWriterSim::new_with_seq_reuse_bug(
            Arc::clone(&shared),
            w,
        )));
    }
    AfWorld {
        sim: Sim::new(mem, procs),
        shared,
        pids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FPolicy;
    use ccsim::{run_random, run_round_robin, run_solo, Phase, Prng, RunConfig};

    #[test]
    fn round_robin_all_policies_and_protocols() {
        for policy in FPolicy::NAMED {
            for protocol in [Protocol::WriteBack, Protocol::WriteThrough] {
                let cfg = AfConfig {
                    readers: 4,
                    writers: 2,
                    policy,
                };
                let mut world = af_world(cfg, protocol);
                let rc = RunConfig {
                    passages_per_proc: 3,
                    ..Default::default()
                };
                let report = run_round_robin(&mut world.sim, &rc)
                    .unwrap_or_else(|e| panic!("{policy} {protocol:?}: {e}"));
                assert!(report.completed.iter().all(|&c| c == 3), "{policy}");
            }
        }
    }

    #[test]
    fn random_schedules_many_seeds() {
        for seed in 0..30 {
            let cfg = AfConfig {
                readers: 3,
                writers: 2,
                policy: FPolicy::Groups(2),
            };
            let mut world = af_world(cfg, Protocol::WriteBack);
            let mut rng = Prng::new(seed);
            let rc = RunConfig {
                passages_per_proc: 4,
                ..Default::default()
            };
            run_random(&mut world.sim, &mut rng, &rc)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn solo_reader_enters_quickly_when_quiescent() {
        // Concurrent Entering: with all writers in the remainder section, a
        // reader reaches the CS in a bounded number of its own steps.
        let cfg = AfConfig {
            readers: 8,
            writers: 1,
            policy: FPolicy::LogN,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let r0 = world.pids.reader(0);
        let steps = run_solo(&mut world.sim, r0, 1_000, |s| s.phase(r0) == Phase::Cs)
            .expect("reader must enter CS in bounded steps");
        // add(1) is O(log K) plus one RSIG read plus transitions.
        assert!(steps < 60, "entry took {steps} steps");
    }

    #[test]
    fn solo_writer_passage_completes() {
        let cfg = AfConfig {
            readers: 8,
            writers: 2,
            policy: FPolicy::SqrtN,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let w0 = world.pids.writer(0);
        run_solo(&mut world.sim, w0, 10_000, |s| s.stats(w0).passages == 1)
            .expect("solo writer passage must complete");
        assert!(world.sim.check_mutual_exclusion().is_ok());
    }

    #[test]
    fn writer_blocks_while_reader_in_cs() {
        let cfg = AfConfig::new(2, 1);
        let mut world = af_world(cfg, Protocol::WriteBack);
        let (r0, w0) = (world.pids.reader(0), world.pids.writer(0));
        // Reader 0 enters the CS and parks there.
        run_solo(&mut world.sim, r0, 1_000, |s| s.phase(r0) == Phase::Cs).unwrap();
        // The writer runs solo for a long time and must NOT reach the CS.
        let reached = run_solo(&mut world.sim, w0, 5_000, |s| s.phase(w0) == Phase::Cs);
        assert_eq!(reached, None, "writer entered CS while a reader held it");
        assert!(world.sim.check_mutual_exclusion().is_ok());
        // Once the reader leaves, the writer gets in.
        run_solo(&mut world.sim, r0, 1_000, |s| {
            s.phase(r0) == Phase::Remainder
        })
        .unwrap();
        run_solo(&mut world.sim, w0, 5_000, |s| s.phase(w0) == Phase::Cs)
            .expect("writer must enter after reader exits");
    }

    #[test]
    fn reader_blocks_while_writer_in_cs() {
        let cfg = AfConfig::new(2, 1);
        let mut world = af_world(cfg, Protocol::WriteBack);
        let (r1, w0) = (world.pids.reader(1), world.pids.writer(0));
        run_solo(&mut world.sim, w0, 5_000, |s| s.phase(w0) == Phase::Cs).unwrap();
        let reached = run_solo(&mut world.sim, r1, 5_000, |s| s.phase(r1) == Phase::Cs);
        assert_eq!(reached, None, "reader entered CS while the writer held it");
        // Writer leaves; the waiting reader proceeds.
        run_solo(&mut world.sim, w0, 1_000, |s| {
            s.phase(w0) == Phase::Remainder
        })
        .unwrap();
        run_solo(&mut world.sim, r1, 5_000, |s| s.phase(r1) == Phase::Cs)
            .expect("reader must enter after writer exits");
    }

    #[test]
    fn readers_share_the_cs() {
        let cfg = AfConfig {
            readers: 4,
            writers: 1,
            policy: FPolicy::Groups(2),
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        for r in 0..4 {
            let pid = world.pids.reader(r);
            run_solo(&mut world.sim, pid, 1_000, |s| s.phase(pid) == Phase::Cs).unwrap();
        }
        assert_eq!(
            world.sim.procs_in_cs().len(),
            4,
            "all readers in CS together"
        );
        assert!(world.sim.check_mutual_exclusion().is_ok());
    }

    #[test]
    fn casloop_worlds_declare_whole_group_classes() {
        // f=1 over 3 readers: one class holding all readers, no owned
        // variables (the CAS words are common to the whole group).
        let cfg = AfConfig {
            readers: 3,
            writers: 1,
            policy: FPolicy::One,
        };
        let world = af_world_custom(
            cfg,
            Protocol::WriteBack,
            HelpOrder::WaitersFirst,
            CounterKind::CasLoop,
        );
        let classes = world.sim.symmetry_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].members(), [ProcId(0), ProcId(1), ProcId(2)]);
        assert!(classes[0].owned().iter().all(Vec::is_empty));

        // Two groups of two: two classes, disjoint, group-aligned.
        let cfg4 = AfConfig {
            readers: 4,
            writers: 1,
            policy: FPolicy::Groups(2),
        };
        let world4 = af_world_custom(
            cfg4,
            Protocol::WriteBack,
            HelpOrder::WaitersFirst,
            CounterKind::CasLoop,
        );
        let classes4 = world4.sim.symmetry_classes();
        assert_eq!(classes4.len(), 2);
        assert_eq!(classes4[0].members(), [ProcId(0), ProcId(1)]);
        assert_eq!(classes4[1].members(), [ProcId(2), ProcId(3)]);

        // Singleton trailing groups are dropped (3 readers, groups of 2).
        let cfg3 = AfConfig {
            readers: 3,
            writers: 1,
            policy: FPolicy::Groups(2),
        };
        let world3 = af_world_custom(
            cfg3,
            Protocol::WriteBack,
            HelpOrder::WaitersFirst,
            CounterKind::CasLoop,
        );
        assert_eq!(reader_symmetry_classes(&world3.shared).len(), 1);
    }

    #[test]
    fn farray_worlds_declare_sibling_leaf_pair_classes() {
        // f=1 over 3 readers: tree of width 4, leaves (0,1) are siblings
        // and reader 2's sibling slot is the constant pad leaf — one
        // two-member class, each member owning its C and W leaf.
        let cfg = AfConfig {
            readers: 3,
            writers: 1,
            policy: FPolicy::One,
        };
        let world = af_world(cfg, Protocol::WriteBack);
        let classes = world.sim.symmetry_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].members(), [ProcId(0), ProcId(1)]);
        for (j, leaf) in [0usize, 1].into_iter().enumerate() {
            assert_eq!(
                classes[0].owned()[j],
                vec![
                    world.shared.c[0].leaf_var(leaf).unwrap(),
                    world.shared.w[0].leaf_var(leaf).unwrap(),
                ],
                "member {j} owns its own leaf slots"
            );
        }

        // Two groups of two: width-2 trees, both leaves siblings — one
        // pair class per group.
        let cfg4 = AfConfig {
            readers: 4,
            writers: 1,
            policy: FPolicy::Groups(2),
        };
        let world4 = af_world(cfg4, Protocol::WriteBack);
        let classes4 = world4.sim.symmetry_classes();
        assert_eq!(classes4.len(), 2);
        assert_eq!(classes4[0].members(), [ProcId(0), ProcId(1)]);
        assert_eq!(classes4[1].members(), [ProcId(2), ProcId(3)]);
        assert!(classes4.iter().all(|c| c.owned()[0].len() == 2));

        // Four readers in one group: width-4 tree, sibling pairs (0,1)
        // and (2,3) — two classes, never a cross-parent pair.
        let cfg1g = AfConfig {
            readers: 4,
            writers: 1,
            policy: FPolicy::One,
        };
        let world1g = af_world(cfg1g, Protocol::WriteBack);
        let classes1g = world1g.sim.symmetry_classes();
        assert_eq!(classes1g.len(), 2);
        assert_eq!(classes1g[0].members(), [ProcId(0), ProcId(1)]);
        assert_eq!(classes1g[1].members(), [ProcId(2), ProcId(3)]);
    }

    #[test]
    fn pid_map_convention() {
        let pids = PidMap {
            readers: 3,
            writers: 2,
        };
        assert_eq!(pids.reader(2), ProcId(2));
        assert_eq!(pids.writer(0), ProcId(3));
        assert_eq!(pids.total(), 5);
        assert_eq!(pids.writer_pids().count(), 2);
    }
}
