//! # knowledge — awareness, familiarity, and the lower-bound adversary
//!
//! The lower-bound half of *"On the Complexity of Reader-Writer Locks"*
//! (Hendler, PODC 2016) formalises information flow through shared memory:
//!
//! * the **awareness set** `AW(p, C↪E)` — the processes whose
//!   participation in fragment `E` process `p` may have learned of through
//!   its reading steps (Definition 2);
//! * the **familiarity set** `F(v, C↪E)` — the processes whose
//!   participation may be inferred by reading variable `v` (Definition 1);
//! * **expanding steps** — steps that grow some awareness set
//!   (Definition 3); every expanding step incurs an RMR (Lemma 1).
//!
//! [`KnowledgeTracker`] maintains these sets incrementally over a live
//! `ccsim` fragment, and [`run_lower_bound`] drives the full Theorem-5
//! construction (Figure 1) against any simulated lock, measuring the
//! iteration count `r = Ω(log₃(n/f(n)))` and validating the Lemma-2
//! `M_j ≤ 3^j` growth bound and the Lemma-4 "writer becomes aware of every
//! reader" property.
//!
//! ```
//! use ccsim::{Op, ProcId, VarId};
//! use knowledge::KnowledgeTracker;
//!
//! let mut t = KnowledgeTracker::new(2);
//! // p0 writes x, p1 reads it: p1 becomes aware of p0.
//! t.record(ProcId(0), &Op::write(VarId(0), 1), false);
//! t.record(ProcId(1), &Op::Read(VarId(0)), true);
//! assert!(t.awareness(ProcId(1)).contains(ProcId(0)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adversary;
mod lemma2;
mod sets;
mod tracker;

pub use adversary::{run_lower_bound, AdversaryError, AdversarySetup, LowerBoundReport};
pub use lemma2::order_batch;
pub use sets::ProcSet;
pub use tracker::KnowledgeTracker;

use ccsim::{StepKind, Trace};

/// Replay a recorded [`Trace`] through a fresh tracker (offline analysis of
/// an execution fragment).
pub fn analyze_trace(trace: &Trace, n_procs: usize) -> KnowledgeTracker {
    let mut tracker = KnowledgeTracker::new(n_procs);
    for record in trace {
        if let StepKind::Op { op, trivial, .. } = record.kind {
            tracker.record(record.proc, &op, trivial);
        }
    }
    tracker
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::{Layout, Memory, Op, ProcId, Protocol, Value};

    #[test]
    fn analyze_trace_matches_incremental_tracking() {
        // Drive a tiny handwritten interaction through Memory while
        // recording a trace, then check offline analysis agrees with
        // direct tracking.
        let mut layout = Layout::new();
        let x = layout.var("x", Value::Int(0));
        let mut mem = Memory::new(&layout, 3, Protocol::WriteBack);
        let mut trace = Trace::new();
        let mut direct = KnowledgeTracker::new(3);
        let script = [
            (ProcId(0), Op::write(x, 1)),
            (ProcId(1), Op::Read(x)),
            (ProcId(2), Op::cas(x, 1, 2)),
            (ProcId(1), Op::cas(x, 1, 3)), // fails: x is 2
        ];
        for (i, (p, op)) in script.iter().enumerate() {
            let out = mem.apply(*p, op);
            direct.record(*p, op, out.trivial);
            trace.push(ccsim::StepRecord {
                index: i as u64,
                proc: *p,
                role: ccsim::Role::Reader,
                phase: ccsim::Phase::Entry,
                kind: StepKind::Op {
                    op: *op,
                    response: out.response,
                    old: out.old,
                    new: out.new,
                    rmr: out.rmr,
                    trivial: out.trivial,
                },
            });
        }
        let offline = analyze_trace(&trace, 3);
        for p in 0..3 {
            assert_eq!(
                offline.awareness(ProcId(p)).len(),
                direct.awareness(ProcId(p)).len(),
                "p{p}"
            );
        }
        assert_eq!(offline.familiarity(x).len(), direct.familiarity(x).len());
        assert_eq!(offline.expanding_steps(), direct.expanding_steps());
        // p1's failed CAS still made it aware of p2 (which had CAS'd x).
        assert!(offline.awareness(ProcId(1)).contains(ProcId(2)));
    }
}
