//! # experiments — the registry of paper-claim experiments
//!
//! One module per experiment; [`registry`] returns them all in index
//! order. Every module implements [`crate::exp::Experiment`] and renders
//! its sweep as a structured [`crate::exp::Report`] — the text/JSON
//! goldens under `results/` are produced from these modules by the
//! `experiments` binary (see [`crate::exp`] for the `--check`/`--bless`
//! workflow), and the historical `e*`/`perf_*` binaries delegate here.

use crate::exp::Experiment;

mod e10_concurrent_entering;
mod e11_dsm;
mod e12_writer_starvation;
mod e13_counter_ablation;
mod e14_writer_bias;
mod e15_crash_robustness;
mod e16_abort;
mod e17_system_crash;
mod e1_lower_bound;
mod e2_writer_rmr;
mod e3_reader_rmr;
mod e4_tradeoff;
mod e5_properties;
mod e6_mutex_rmr;
mod e7_baselines;
mod e9_counter;
mod perf_locks;
mod perf_modelcheck;
mod perf_smoke;
mod support;

/// Everything an experiment module needs, in one import.
pub(crate) mod prelude {
    pub(crate) use crate::exp::{Check, Ctx, Experiment, Mode, Report};
    pub(crate) use crate::par::par_map;
    pub(crate) use crate::{log2, log3, Table};
    pub(crate) use ccsim::Protocol;
    pub(crate) use rwcore::{AfConfig, FPolicy};
}

/// All registered experiments, in the index order used by `--list`,
/// EXPERIMENTS.md, and the doc table in [`crate`].
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(e1_lower_bound::E1),
        Box::new(e2_writer_rmr::E2),
        Box::new(e3_reader_rmr::E3),
        Box::new(e4_tradeoff::E4),
        Box::new(e5_properties::E5),
        Box::new(e6_mutex_rmr::E6),
        Box::new(e7_baselines::E7),
        Box::new(e9_counter::E9),
        Box::new(e10_concurrent_entering::E10),
        Box::new(e11_dsm::E11),
        Box::new(e12_writer_starvation::E12),
        Box::new(e13_counter_ablation::E13),
        Box::new(e14_writer_bias::E14),
        Box::new(e15_crash_robustness::E15),
        Box::new(e16_abort::E16),
        Box::new(e17_system_crash::E17),
        Box::new(perf_smoke::PerfSmoke),
        Box::new(perf_modelcheck::PerfModelcheck),
        Box::new(perf_locks::PerfLocks),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::Mode;

    #[test]
    fn ids_are_unique_and_match_bin_names() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate experiment id");
        // Every id is a bin target of this crate (thin wrapper), so the
        // documented `cargo run --bin <id>` invocations keep working.
        for id in &ids {
            let path = format!("{}/src/bin/{id}.rs", env!("CARGO_MANIFEST_DIR"));
            assert!(
                std::path::Path::new(&path).exists(),
                "registered id {id:?} has no matching bin wrapper at {path}"
            );
        }
    }

    #[test]
    fn every_registered_id_appears_in_lib_doc_table() {
        // Satellite guarantee: the experiment index table in the crate
        // docs (lib.rs) cannot drift from the registry again.
        let lib_src = include_str!("../lib.rs");
        for exp in registry() {
            let cell = format!("| `{}` |", exp.id());
            assert!(
                lib_src.contains(&cell),
                "experiment {:?} is missing from the doc table in bench/src/lib.rs",
                exp.id()
            );
        }
    }

    #[test]
    fn titles_and_claims_are_nonempty() {
        for exp in registry() {
            assert!(!exp.title().is_empty(), "{}: empty title", exp.id());
            assert!(!exp.claim().is_empty(), "{}: empty claim", exp.id());
        }
    }

    #[test]
    fn perf_experiments_are_nondeterministic_in_full_mode_only() {
        for exp in registry() {
            let is_perf = exp.id().starts_with("perf_");
            assert_eq!(
                exp.deterministic(Mode::Full),
                !is_perf,
                "{}: unexpected Full-mode determinism flag",
                exp.id()
            );
            assert!(
                exp.deterministic(Mode::Smoke),
                "{}: smoke reports must be byte-stable (CI gates them)",
                exp.id()
            );
        }
    }
}
