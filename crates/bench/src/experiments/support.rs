//! Shared measurement helpers for the starvation experiments (E12/E14).

use ccsim::{Phase, Prng, ProcId, Sim, Step};
use rwcore::PidMap;

/// Scheduler steps until the writer first enters the CS while `active`
/// readers cycle passages non-stop under a uniformly random scheduler.
/// `None` = still locked out after `budget` steps (starved).
pub(crate) fn writer_latency(
    sim: &mut Sim,
    pids: &PidMap,
    active: usize,
    seed: u64,
    budget: u64,
) -> Option<u64> {
    let mut rng = Prng::new(seed);
    let readers: Vec<ProcId> = pids.reader_pids().take(active).collect();
    let writer = pids.writer(0);
    let participants: Vec<ProcId> = readers
        .iter()
        .copied()
        .chain(std::iter::once(writer))
        .collect();
    for t in 0..budget {
        if sim.phase(writer) == Phase::Cs {
            return Some(t);
        }
        let p = participants[rng.below(participants.len())];
        // Readers cycle forever; the writer keeps trying its one passage.
        match sim.poll(p) {
            Step::Remainder if p == writer && sim.stats(writer).passages > 0 => continue,
            _ => {
                sim.step(p);
            }
        }
        sim.check_mutual_exclusion().expect("MX holds throughout");
    }
    None
}

/// Render the median of latency samples (`"STARVED"` when the median
/// run never reached the CS). Sorts in place; `None` sorts first.
pub(crate) fn median(samples: &mut [Option<u64>]) -> String {
    samples.sort();
    render(samples[samples.len() / 2])
}

/// Render the worst (largest / most-starved) latency sample.
pub(crate) fn worst(samples: &mut [Option<u64>]) -> String {
    samples.sort();
    render(*samples.last().expect("at least one sample"))
}

fn render(sample: Option<u64>) -> String {
    match sample {
        Some(v) => v.to_string(),
        None => "STARVED".to_string(),
    }
}
