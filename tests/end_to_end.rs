//! Cross-crate integration: the facade crate's public API exercised end
//! to end — real lock under threads, simulated lock under the adversary
//! and the model checker, and agreement between the two forms.

use rwlock_repro::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn real_lock_full_stack_stress() {
    // Readers observe a monotone pair (x, y) with x == y at all times;
    // writers bump both. Any torn read or MX failure breaks the
    // invariant.
    #[derive(Default)]
    struct Pair {
        x: u64,
        y: u64,
    }
    let cfg = AfConfig {
        readers: 4,
        writers: 2,
        policy: FPolicy::SqrtN,
    };
    let lock = Arc::new(AfRwLock::new(cfg, Pair::default()));
    std::thread::scope(|s| {
        for w in 0..2 {
            let lock = Arc::clone(&lock);
            s.spawn(move || {
                let mut h = lock.writer(w).unwrap();
                for _ in 0..2_000 {
                    let mut p = h.write();
                    p.x += 1;
                    p.y += 1;
                }
            });
        }
        for r in 0..4 {
            let lock = Arc::clone(&lock);
            s.spawn(move || {
                let mut h = lock.reader(r).unwrap();
                let mut last = 0;
                for _ in 0..2_000 {
                    let p = h.read();
                    assert_eq!(p.x, p.y, "torn read under the writer");
                    assert!(p.x >= last, "time went backwards");
                    last = p.x;
                }
            });
        }
    });
    let p = Arc::try_unwrap(lock).ok().unwrap().into_inner();
    assert_eq!(p.x, 4_000);
}

#[test]
fn simulated_and_real_locks_share_grouping() {
    // The sim and real implementations must partition readers identically
    // (same config type drives both).
    let cfg = AfConfig {
        readers: 10,
        writers: 1,
        policy: FPolicy::SqrtN,
    };
    let real = RawAfLock::new(cfg);
    let world = af_world(cfg, Protocol::WriteBack);
    assert_eq!(real.groups(), world.shared.groups);
    assert_eq!(real.config().group_size(), world.shared.cfg.group_size());
}

#[test]
fn adversary_through_facade() {
    let cfg = AfConfig {
        readers: 16,
        writers: 1,
        policy: FPolicy::One,
    };
    let mut world = af_world(cfg, Protocol::WriteBack);
    let setup = AdversarySetup::new(world.pids.reader_pids().collect(), world.pids.writer(0));
    let report = run_lower_bound(&mut world.sim, &setup).unwrap();
    assert!(report.writer_aware_of_all);
    assert!(report.iterations >= 2, "r must be ≥ log3(16) - slack");
    assert!(report.lemma2_bound_held);
}

#[test]
fn model_checker_through_facade() {
    let report = explore(
        || af_world(AfConfig::new(2, 1), Protocol::WriteBack).sim,
        &CheckConfig {
            passages_per_proc: 1,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(report.complete);
}

#[test]
fn counter_and_mutex_substrates_compose() {
    // Use the substrates directly, the way A_f composes them: a counter
    // guarded by nothing (wait-free) plus a mutex-protected section.
    let counter = Arc::new(FArray::new(4));
    let mutex = Arc::new(TournamentLock::new(4));
    let in_mutex = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for id in 0..4 {
            let counter = Arc::clone(&counter);
            let mutex = Arc::clone(&mutex);
            let in_mutex = Arc::clone(&in_mutex);
            s.spawn(move || {
                for _ in 0..1_000 {
                    counter.add(id, 1);
                    mutex.lock(id);
                    let v = in_mutex.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(v, 0, "two processes inside the mutex");
                    in_mutex.fetch_sub(1, Ordering::SeqCst);
                    mutex.unlock(id);
                }
            });
        }
    });
    assert_eq!(counter.read(), 4_000);
}

#[test]
fn rmr_complexity_shapes_hold_through_facade() {
    // The headline tradeoff, measured through the public API alone.
    fn solo_rmrs(cfg: AfConfig, reader: bool) -> u64 {
        let mut world = af_world(cfg, Protocol::WriteBack);
        let pid = if reader {
            world.pids.reader(0)
        } else {
            world.pids.writer(0)
        };
        run_solo(&mut world.sim, pid, 1_000_000, |s| {
            s.stats(pid).passages == 1
        })
        .unwrap();
        world.sim.stats(pid).rmrs()
    }
    let n = 256;
    let f1 = AfConfig {
        readers: n,
        writers: 1,
        policy: FPolicy::One,
    };
    let fn_ = AfConfig {
        readers: n,
        writers: 1,
        policy: FPolicy::Linear,
    };
    // Writers: Θ(f).
    assert!(solo_rmrs(fn_, false) > 10 * solo_rmrs(f1, false));
    // Readers: Θ(log(n/f)).
    assert!(solo_rmrs(f1, true) > 3 * solo_rmrs(fn_, true));
}

#[test]
fn trace_analysis_detects_information_flow_in_af() {
    // Record a real simulated interaction and confirm awareness flows
    // from a reader to the writer through the lock's variables.
    let cfg = AfConfig::new(2, 1);
    let mut world = af_world(cfg, Protocol::WriteBack);
    world.sim.set_tracing(true);
    let r0 = world.pids.reader(0);
    let w0 = world.pids.writer(0);
    // Reader completes a passage; then the writer completes one.
    run_solo(&mut world.sim, r0, 100_000, |s| s.stats(r0).passages == 1).unwrap();
    run_solo(&mut world.sim, w0, 100_000, |s| s.stats(w0).passages == 1).unwrap();
    let trace = world.sim.take_trace().unwrap();
    let tracker = analyze_trace(&trace, world.sim.n_procs());
    assert!(
        tracker.awareness(w0).contains(r0),
        "the writer must have become aware of the reader (Lemma 4 flavour)"
    );
}

#[test]
fn handles_are_safe_across_threads() {
    // Claims protect against double-use; releasing by drop allows reuse
    // from another thread.
    let lock = Arc::new(AfRwLock::new(AfConfig::new(2, 1), 0u8));
    let l2 = Arc::clone(&lock);
    let t = std::thread::spawn(move || {
        let mut h = l2.reader(0).unwrap();
        let _g = h.read();
    });
    t.join().unwrap();
    // After the thread exits (handle dropped), id 0 is claimable again.
    lock.reader(0).unwrap();
}

#[test]
fn crash_all_counterexample_survives_the_replay_pipeline() {
    // The same pipeline `examples/verify_your_lock.rs --replay` runs:
    // explore the seq-reuse-bug world under a system-wide crash adversary,
    // shrink the witness, persist it through the artifact text format
    // (crash-all tokens included), parse it back and replay onto the
    // recorded fingerprint.
    let factory = || af_world_seq_reuse_bug(AfConfig::new(1, 1), Protocol::WriteBack).sim;
    let err = explore(
        factory,
        &CheckConfig {
            passages_per_proc: 2,
            crash_all_budget: 1,
            ..Default::default()
        },
    )
    .expect_err("seq reuse after a crash-all must violate mutual exclusion");
    let violates = |s: &Sim| s.check_mutual_exclusion().is_err();
    let out = shrink(factory, err.schedule(), violates);
    assert!(
        out.schedule.contains(&SchedEntry::CrashAll),
        "the minimal witness must keep the system-wide crash"
    );

    let artifact = TraceArtifact {
        world: "af-seq-reuse-bug n=1 m=1 writeback".into(),
        violation: err.describe(),
        fingerprint: out.fingerprint,
        schedule: out.schedule,
    };
    let text = artifact.render();
    assert!(
        text.contains(" ca"),
        "rendered schedule carries the ca token"
    );
    let parsed = TraceArtifact::parse(&text).expect("round trip");
    assert_eq!(parsed, artifact);
    let sim = replay(factory, &parsed.schedule);
    assert!(violates(&sim));
    assert_eq!(sim.fingerprint(), parsed.fingerprint);
}

#[test]
fn artifact_parse_rejects_malformed_crash_all_and_abort_tokens() {
    // Strict token grammar end to end: a trace file whose schedule line
    // smuggles a malformed crash-all/abort token must fail to parse, so
    // `--replay` can never misread a corrupted trace.
    let good = "# rwlock-repro trace v1\nworld: w\nviolation: v\nfingerprint: 0x1\n";
    for bad in [
        "ca1", "ca0", "a", "aa", "CA", "Ca", "a1x", "a+1", "a-0", "c a",
    ] {
        let text = format!("{good}schedule: s0 {bad} s1\n");
        assert!(
            TraceArtifact::parse(&text).is_err(),
            "token {bad:?} must be rejected"
        );
    }
    // ...while the well-formed tokens parse.
    let text = format!("{good}schedule: s0 ca a1 c0 s1\n");
    let parsed = TraceArtifact::parse(&text).unwrap();
    assert_eq!(
        parsed.schedule,
        vec![
            SchedEntry::Step(ProcId(0)),
            SchedEntry::CrashAll,
            SchedEntry::Abort(ProcId(1)),
            SchedEntry::Crash(ProcId(0)),
            SchedEntry::Step(ProcId(1)),
        ]
    );
}
