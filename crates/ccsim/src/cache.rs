//! Per-process cache state for the two CC coherence protocols of §2.

use crate::value::VarId;
use std::collections::HashMap;

/// The cache-coherence protocol simulated by [`crate::Memory`].
///
/// The paper's results apply to both the write-through and write-back CC
/// protocols; the simulator implements both so experiments can confirm the
/// complexity shapes are protocol-independent.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Protocol {
    /// Write-through: reads hit only on a valid cached copy; every write
    /// goes to main memory (an RMR) and invalidates all *other* copies.
    WriteThrough,
    /// Write-back (the default): copies are held Shared or Exclusive; reads
    /// hit on either mode, writes hit only on Exclusive.
    #[default]
    WriteBack,
    /// Distributed shared memory: every variable lives in one process's
    /// memory segment ([`crate::Layout::var_at`]); an access is an RMR iff
    /// the accessing process is not the variable's home. There are no
    /// caches — spinning on a remote variable costs an RMR per read.
    ///
    /// This model is *outside* the paper's results (its tradeoff is for
    /// CC; §6 notes Danek–Hadzilacos's Ω(n) DSM lower bound instead).
    /// Experiment E11 uses it to show `A_f`'s local-spin structure is
    /// CC-specific.
    Dsm,
}

/// The mode in which a cache line is held (write-back protocol). The
/// write-through protocol only uses [`Mode::Shared`] ("valid").
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Mode {
    /// A read-only copy; other caches may hold the line too.
    Shared,
    /// The sole, writable copy (write-back only).
    Exclusive,
}

/// One process's private cache: the set of variables it holds copies of.
///
/// Values are not stored in the cache: the simulator is sequentially
/// consistent, so the authoritative value always lives in
/// [`crate::Memory`]; the cache only tracks *which* variables are locally
/// readable/writable, which is all that RMR accounting needs.
///
/// [`crate::Memory`] itself now stores this information in a flat
/// per-variable directory (see [`crate::CacheView`]); this map-based
/// representation survives as the state of the [`crate::reference`]
/// oracle the directory rewrite is differentially tested against.
#[derive(Clone, Debug, Default)]
pub struct Cache {
    lines: HashMap<VarId, Mode>,
}

impl Cache {
    /// An empty (cold) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The mode in which `v` is cached, if at all.
    pub fn mode(&self, v: VarId) -> Option<Mode> {
        self.lines.get(&v).copied()
    }

    /// True if the cache holds any copy of `v`.
    pub fn holds(&self, v: VarId) -> bool {
        self.lines.contains_key(&v)
    }

    /// True if the cache holds `v` in [`Mode::Exclusive`].
    pub fn holds_exclusive(&self, v: VarId) -> bool {
        self.mode(v) == Some(Mode::Exclusive)
    }

    /// Install or upgrade a line.
    pub(crate) fn insert(&mut self, v: VarId, mode: Mode) {
        self.lines.insert(v, mode);
    }

    /// Drop a line entirely (invalidation).
    pub(crate) fn invalidate(&mut self, v: VarId) {
        self.lines.remove(&v);
    }

    /// Downgrade an Exclusive line to Shared (write-back read by another
    /// process). No-op if the line is absent or already Shared.
    pub(crate) fn downgrade(&mut self, v: VarId) {
        if let Some(m) = self.lines.get_mut(&v) {
            *m = Mode::Shared;
        }
    }

    /// Number of lines currently held.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if the cache is cold.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_holds_invalidate() {
        let mut c = Cache::new();
        let v = VarId(0);
        assert!(!c.holds(v));
        c.insert(v, Mode::Shared);
        assert!(c.holds(v));
        assert!(!c.holds_exclusive(v));
        c.insert(v, Mode::Exclusive);
        assert!(c.holds_exclusive(v));
        c.invalidate(v);
        assert!(!c.holds(v));
    }

    #[test]
    fn downgrade_exclusive_to_shared() {
        let mut c = Cache::new();
        let v = VarId(1);
        c.insert(v, Mode::Exclusive);
        c.downgrade(v);
        assert_eq!(c.mode(v), Some(Mode::Shared));
        // Downgrading an absent line is a no-op.
        c.downgrade(VarId(2));
        assert!(!c.holds(VarId(2)));
    }

    #[test]
    fn len_tracks_lines() {
        let mut c = Cache::new();
        assert!(c.is_empty());
        c.insert(VarId(0), Mode::Shared);
        c.insert(VarId(1), Mode::Shared);
        assert_eq!(c.len(), 2);
    }
}
