//! perf_locks — the contended real-atomics lock lab: `A_f`, the sharded
//! `A_f` read path, the real-atomics baselines, the busy-forbidden
//! protocol, and `std::sync::RwLock` under genuine multi-threaded
//! contention.
//!
//! Full mode runs up to `min(ncpu, 64)` OS threads (capped by the
//! strict `BENCH_THREADS` parsing from [`crate::par`]), pinned to cores
//! where the platform allows (pinning failure degrades to a report
//! note, never an error), across five workload shapes: read-mostly
//! (1000:1), mixed (9:1), write-heavy (1:1), reader churn (1000:1 with
//! yields), and oversubscription (4 threads per core). Each lock ×
//! shape cell reports throughput plus p50/p99/p999 latency from
//! lock-free per-thread histograms ([`crate::hist`]), and the whole
//! sweep lands in `BENCH_locks.json` (override: `BENCH_LOCKS_OUT`).
//! Wall-clock content makes the full report non-byte-stable, so
//! [`Experiment::deterministic`] is false there.
//!
//! Smoke mode is byte-stable: 4 threads, 2 shards, fixed per-thread op
//! quotas with seeded coin flips (so the read/write split is exactly
//! reproducible), and no timing columns. The sharded-vs-single floor
//! only binds at >= 8 CPUs; below that the check renders a stable
//! "skipped: fewer than 8 CPUs" string so goldens blessed on small
//! hosts byte-match CI runners.

use super::prelude::*;
use crate::hist::format_ns;
use crate::throughput::{
    contended_contenders, run_contended, ContendedSample, MixedWorkload, OpBudget,
};
use crate::{par, pin};
use std::time::Duration;

/// Wall-clock budget per full-mode cell.
const FULL_CELL: Duration = Duration::from_millis(150);
/// Base RNG seed; shape `i`, thread `t` streams from `SEED + 1000*i + t`.
const SEED: u64 = 0x10C5;

/// One workload shape of the sweep.
struct Shape {
    name: &'static str,
    reads_per_write: u64,
    churn: bool,
    threads: usize,
}

/// A measured cell: one lock under one shape.
struct Cell {
    shape: &'static str,
    sample: ContendedSample,
}

fn shape_workload(shape: &Shape, index: usize, budget: OpBudget, pin: bool) -> MixedWorkload {
    MixedWorkload {
        threads: shape.threads,
        reads_per_write: shape.reads_per_write,
        churn: shape.churn,
        budget,
        pin,
        seed: SEED + 1000 * index as u64,
    }
}

fn quantile_cell(sample: &ContendedSample, read: bool, q: f64) -> String {
    let h = if read {
        &sample.read_hist
    } else {
        &sample.write_hist
    };
    match h.quantile(q) {
        Some(ns) => format_ns(ns),
        None => "-".to_string(),
    }
}

/// Registry entry for the contended lock lab.
pub(crate) struct PerfLocks;

impl Experiment for PerfLocks {
    fn id(&self) -> &'static str {
        "perf_locks"
    }

    fn title(&self) -> &'static str {
        "contended lock lab: sharded A_f vs the field, throughput + latency tails"
    }

    fn claim(&self) -> &'static str {
        "sharded A_f read path >= 3x single A_f read-mostly throughput at >= 8 threads; every lock x workload cell reports p99 latency"
    }

    fn deterministic(&self, mode: Mode) -> bool {
        // Full mode renders throughput and latency quantiles; smoke
        // renders only seeded op counts and host-class-stable strings.
        mode == Mode::Smoke
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let ncpu = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let mut report = Report::new(self, ctx);
        let mut notes: Vec<String> = Vec::new();

        if ctx.smoke() {
            run_smoke(&mut report, &mut notes, ncpu);
        } else {
            run_full(&mut report, &mut notes, ncpu);
        }
        if !notes.is_empty() {
            report.notes(notes.join("\n"));
        }
        report
    }
}

/// Byte-stable smoke sweep: fixed threads/quotas/seeds, no timing.
fn run_smoke(report: &mut Report, notes: &mut Vec<String>, ncpu: usize) {
    const THREADS: usize = 4;
    const SHARDS: usize = 2;
    let shapes = [
        Shape {
            name: "read-mostly 1000:1",
            reads_per_write: 1000,
            churn: false,
            threads: THREADS,
        },
        Shape {
            name: "mixed 9:1",
            reads_per_write: 9,
            churn: false,
            threads: THREADS,
        },
    ];
    let quotas = [300u64, 150];

    let mut completed = 0usize;
    let mut total = 0usize;
    for (i, (shape, &quota)) in shapes.iter().zip(quotas.iter()).enumerate() {
        let wl = shape_workload(shape, i, OpBudget::PerThreadOps(quota), false);
        let mut table = Table::new(["lock", "ops", "reads", "writes"]);
        for lock in contended_contenders(shape.threads, SHARDS) {
            let s = run_contended(lock, &wl);
            total += 1;
            if s.reads + s.writes == quota * shape.threads as u64 {
                completed += 1;
            }
            table.row([
                s.lock.clone(),
                (s.reads + s.writes).to_string(),
                s.reads.to_string(),
                s.writes.to_string(),
            ]);
        }
        report.section(
            format!(
                "{} — {} threads x {} ops each, {} shards, seeded",
                shape.name, shape.threads, quota, SHARDS
            ),
            table,
        );
    }
    report.check(Check::all(
        "every lock completes its per-thread op quota in every smoke shape",
        completed,
        total,
    ));

    // The CI floor: sharded read path >= 2x single A_f, read-mostly, 8
    // threads. Only measurable with >= 8 CPUs; the rendered strings are
    // host-class-stable either way (no host numbers), so the golden
    // blessed on a small host byte-matches small CI runners.
    let floor = if ncpu < 8 {
        Check::new(
            "sharded read path holds the 2x read-mostly CI floor over single A_f",
            ">= 2.0x ops/s at 8 threads",
            "skipped: fewer than 8 CPUs",
            true,
        )
    } else {
        let shape = Shape {
            name: "floor probe",
            reads_per_write: 1000,
            churn: false,
            threads: 8,
        };
        let wl = shape_workload(
            &shape,
            9,
            OpBudget::Duration(Duration::from_millis(100)),
            false,
        );
        let locks = contended_contenders(8, 8);
        let single = run_contended(locks[0].clone(), &wl);
        let sharded = run_contended(locks[1].clone(), &wl);
        let ratio = sharded.ops_per_sec() / single.ops_per_sec().max(1e-9);
        Check::new(
            "sharded read path holds the 2x read-mostly CI floor over single A_f",
            ">= 2.0x ops/s at 8 threads",
            if ratio >= 2.0 {
                "held (>= 2.0x)"
            } else {
                "BELOW FLOOR (< 2.0x)"
            },
            ratio >= 2.0,
        )
    };
    report.check(floor);
    let _ = notes;
}

/// Timed full sweep with latency tables and the JSON side artifact.
fn run_full(report: &mut Report, notes: &mut Vec<String>, ncpu: usize) {
    // Thread budget: min(ncpu, 64), at least 2 so there is contention,
    // honoring the strict BENCH_THREADS cap (satellite: rejects garbage
    // loudly, caps silently).
    let threads = par::worker_count(usize::MAX).clamp(2, 64);
    let oversub = (4 * ncpu).clamp(8, 64);
    let shards = threads.min(ncpu).max(2);

    // Pin where possible; degrade to a note, never an error.
    let pin_ok = match pin::probe() {
        Ok(()) => true,
        Err(e) => {
            notes.push(format!(
                "CPU pinning unavailable ({e}); threads ran unpinned."
            ));
            false
        }
    };

    let shapes = [
        Shape {
            name: "read-mostly 1000:1",
            reads_per_write: 1000,
            churn: false,
            threads,
        },
        Shape {
            name: "mixed 9:1",
            reads_per_write: 9,
            churn: false,
            threads,
        },
        Shape {
            name: "write-heavy 1:1",
            reads_per_write: 1,
            churn: false,
            threads,
        },
        Shape {
            name: "reader churn 1000:1+yield",
            reads_per_write: 1000,
            churn: true,
            threads,
        },
        Shape {
            name: "oversubscribed 9:1",
            reads_per_write: 9,
            churn: false,
            threads: oversub,
        },
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for (i, shape) in shapes.iter().enumerate() {
        let wl = shape_workload(shape, i, OpBudget::Duration(FULL_CELL), pin_ok);
        let mut table = Table::new(["lock", "ops/s", "r p50", "r p99", "r p999", "w p99"]);
        for lock in contended_contenders(shape.threads, shards) {
            let s = run_contended(lock, &wl);
            table.row([
                s.lock.clone(),
                format!("{:.0}", s.ops_per_sec()),
                quantile_cell(&s, true, 0.50),
                quantile_cell(&s, true, 0.99),
                quantile_cell(&s, true, 0.999),
                quantile_cell(&s, false, 0.99),
            ]);
            cells.push(Cell {
                shape: shape.name,
                sample: s,
            });
        }
        report.section(
            format!(
                "{} — {} threads, {} shards, {}ms/cell{}",
                shape.name,
                shape.threads,
                shards,
                FULL_CELL.as_millis(),
                if pin_ok { ", pinned" } else { "" }
            ),
            table,
        );
    }

    // Acceptance: a p99 for every lock x workload cell (over the merged
    // read+write histogram — each cell performs at least one op).
    let with_p99 = cells
        .iter()
        .filter(|c| c.sample.merged_hist().quantile(0.99).is_some())
        .count();
    report.check(Check::all(
        "every lock x workload cell reports a p99 latency",
        with_p99,
        cells.len(),
    ));

    // The tentpole floor: sharded read-mostly >= 3x single A_f. Only
    // binds where there is real parallelism to shard across.
    let ops = |shape: &str, lock: &str| {
        cells
            .iter()
            .find(|c| c.shape == shape && c.sample.lock == lock)
            .map(|c| c.sample.ops_per_sec())
    };
    let single = ops("read-mostly 1000:1", "a_f");
    let sharded = ops("read-mostly 1000:1", "a_f-sharded");
    let floor_ratio = match (single, sharded) {
        (Some(s), Some(sh)) if s > 0.0 => Some(sh / s),
        _ => None,
    };
    if ncpu >= 8 {
        let ratio = floor_ratio.unwrap_or(0.0);
        report.check(Check::new(
            "sharded read path holds the 3x read-mostly floor over single A_f",
            ">= 3.00x ops/s at >= 8 threads",
            format!("{ratio:.2}x at {threads} threads"),
            ratio >= 3.0,
        ));
    } else {
        notes.push(format!(
            "3x floor skipped: fewer than 8 CPUs (read-mostly sharded/single ratio {} at {threads} threads, informational only).",
            floor_ratio
                .map(|r| format!("{r:.2}x"))
                .unwrap_or_else(|| "n/a".to_string()),
        ));
    }

    // The JSON side artifact: one object per cell, plus sweep metadata.
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut cell_json: Vec<String> = Vec::new();
    for c in &cells {
        let s = &c.sample;
        let rq = |q: f64| {
            s.read_hist
                .quantile(q)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".to_string())
        };
        let wq = |q: f64| {
            s.write_hist
                .quantile(q)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".to_string())
        };
        cell_json.push(format!(
            "    {{\n      \"shape\": \"{}\",\n      \"lock\": \"{}\",\n      \"threads\": {},\n      \
             \"ops_per_sec\": {:.0},\n      \"reads\": {},\n      \"writes\": {},\n      \
             \"read_p50_ns\": {},\n      \"read_p99_ns\": {},\n      \"read_p999_ns\": {},\n      \
             \"write_p99_ns\": {},\n      \"pinned\": {}\n    }}",
            c.shape,
            s.lock,
            s.threads,
            s.ops_per_sec(),
            s.reads,
            s.writes,
            rq(0.50),
            rq(0.99),
            rq(0.999),
            wq(0.99),
            s.pinned,
        ));
    }
    let floor_json = match floor_ratio {
        Some(r) => format!(
            "{{ \"checked\": {}, \"read_mostly_sharded_over_single\": {r:.2} }}",
            ncpu >= 8
        ),
        None => "{ \"checked\": false, \"read_mostly_sharded_over_single\": null }".to_string(),
    };
    let json = format!(
        "{{\n  \"experiment\": \"perf_locks\",\n  \"unix_timestamp\": {unix_secs},\n  \
         \"ncpu\": {ncpu},\n  \"threads\": {threads},\n  \"oversubscribed_threads\": {oversub},\n  \
         \"shards\": {shards},\n  \"pinned\": {pin_ok},\n  \"cell_millis\": {},\n  \
         \"floor\": {floor_json},\n  \"cells\": [\n{}\n  ]\n}}\n",
        FULL_CELL.as_millis(),
        cell_json.join(",\n"),
    );
    let path = std::env::var("BENCH_LOCKS_OUT").unwrap_or_else(|_| "BENCH_locks.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => notes.push(format!("Side artifact: {path}")),
        Err(e) => notes.push(format!("Side artifact write failed ({path}): {e}")),
    }
}
