//! Simulated baseline locks: the centralized CAS lock and the FAA
//! read-indicator lock as `ccsim` machines, plus world builders.
//!
//! These exist so experiment E7 can put the same adversarial schedules to
//! `A_f` and to the baselines and compare reader-exit RMR costs:
//! the centralized lock's exit (a CAS retry loop) degrades linearly with
//! contention, while the FAA lock's exit is one step — below the
//! `Ω(log n)` bound, possible only because FAA is outside the model.

use crate::world::PidMap;
use ccsim::{
    sub, Layout, Memory, Op, Phase, Program, Protocol, Role, Sim, Step, SubMachine, SubStep, Value,
    VarId,
};
use std::hash::{Hash, Hasher};
use wmutex::SimTournament;

/// Sentinel added to the centralized state word while a writer holds the
/// lock (far above any reader count).
const WRITER: i64 = 1 << 40;

/// A wired-up simulated baseline world.
#[derive(Debug)]
pub struct BaselineWorld {
    /// The simulation (readers `ProcId(0..n)`, writers `ProcId(n..n+m)`).
    pub sim: Sim,
    /// Id conventions.
    pub pids: PidMap,
    /// The central state variable (for harness inspection); `None` for
    /// the mutex-only world.
    pub state: Option<VarId>,
}

#[derive(Clone, Debug)]
enum CrPc {
    Remainder,
    /// Spin: read the state word until no writer bit.
    ReadEntry,
    /// CAS `state: seen -> seen + 1`.
    CasInc {
        seen: i64,
    },
    Cs,
    /// Read the state word before decrementing.
    ReadExit,
    /// CAS `state: seen -> seen - 1`.
    CasDec {
        seen: i64,
    },
}

/// A reader of the centralized CAS lock.
#[derive(Clone, Debug)]
pub struct CentralReaderSim {
    state: VarId,
    pc: CrPc,
}

impl CentralReaderSim {
    /// Build a reader over the shared state word.
    pub fn new(state: VarId) -> Self {
        CentralReaderSim {
            state,
            pc: CrPc::Remainder,
        }
    }
}

impl Program for CentralReaderSim {
    ccsim::impl_program_in_place_clone!();

    fn poll(&self) -> Step {
        match self.pc {
            CrPc::Remainder => Step::Remainder,
            CrPc::ReadEntry | CrPc::ReadExit => Step::Op(Op::Read(self.state)),
            CrPc::CasInc { seen } => Step::Op(Op::cas(self.state, seen, seen + 1)),
            CrPc::Cs => Step::Cs,
            CrPc::CasDec { seen } => Step::Op(Op::cas(self.state, seen, seen - 1)),
        }
    }

    fn resume(&mut self, response: Value) {
        self.pc = match self.pc {
            CrPc::Remainder => CrPc::ReadEntry,
            CrPc::ReadEntry => {
                let s = response.expect_int();
                if s >= WRITER {
                    CrPc::ReadEntry // writer active: spin
                } else {
                    CrPc::CasInc { seen: s }
                }
            }
            CrPc::CasInc { seen } => {
                if response.expect_int() == seen {
                    CrPc::Cs // CAS succeeded
                } else {
                    CrPc::ReadEntry // contention: retry
                }
            }
            CrPc::Cs => CrPc::ReadExit,
            CrPc::ReadExit => CrPc::CasDec {
                seen: response.expect_int(),
            },
            CrPc::CasDec { seen } => {
                if response.expect_int() == seen {
                    CrPc::Remainder
                } else {
                    CrPc::ReadExit // the unbounded-exit retry loop
                }
            }
        };
    }

    fn phase(&self) -> Phase {
        match self.pc {
            CrPc::Remainder => Phase::Remainder,
            CrPc::ReadEntry | CrPc::CasInc { .. } => Phase::Entry,
            CrPc::Cs => Phase::Cs,
            CrPc::ReadExit | CrPc::CasDec { .. } => Phase::Exit,
        }
    }

    fn role(&self) -> Role {
        Role::Reader
    }

    fn on_crash(&mut self) {
        self.pc = CrPc::Remainder;
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        match self.pc {
            CrPc::Remainder => 0u8.hash(&mut h),
            CrPc::ReadEntry => 1u8.hash(&mut h),
            CrPc::CasInc { seen } => {
                2u8.hash(&mut h);
                seen.hash(&mut h);
            }
            CrPc::Cs => 3u8.hash(&mut h),
            CrPc::ReadExit => 4u8.hash(&mut h),
            CrPc::CasDec { seen } => {
                5u8.hash(&mut h);
                seen.hash(&mut h);
            }
        }
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum CwPc {
    Remainder,
    /// CAS `state: 0 -> WRITER`, retrying forever.
    CasAcquire,
    Cs,
    /// Write `state := 0`.
    Clear,
}

/// A writer of the centralized CAS lock.
#[derive(Clone, Debug)]
pub struct CentralWriterSim {
    state: VarId,
    pc: CwPc,
}

impl CentralWriterSim {
    /// Build a writer over the shared state word.
    pub fn new(state: VarId) -> Self {
        CentralWriterSim {
            state,
            pc: CwPc::Remainder,
        }
    }
}

impl Program for CentralWriterSim {
    ccsim::impl_program_in_place_clone!();

    fn poll(&self) -> Step {
        match self.pc {
            CwPc::Remainder => Step::Remainder,
            CwPc::CasAcquire => Step::Op(Op::cas(self.state, 0, WRITER)),
            CwPc::Cs => Step::Cs,
            CwPc::Clear => Step::Op(Op::write(self.state, 0)),
        }
    }

    fn resume(&mut self, response: Value) {
        self.pc = match self.pc {
            CwPc::Remainder => CwPc::CasAcquire,
            CwPc::CasAcquire => {
                if response.expect_int() == 0 {
                    CwPc::Cs
                } else {
                    CwPc::CasAcquire
                }
            }
            CwPc::Cs => CwPc::Clear,
            CwPc::Clear => CwPc::Remainder,
        };
    }

    fn phase(&self) -> Phase {
        match self.pc {
            CwPc::Remainder => Phase::Remainder,
            CwPc::CasAcquire => Phase::Entry,
            CwPc::Cs => Phase::Cs,
            CwPc::Clear => Phase::Exit,
        }
    }

    fn role(&self) -> Role {
        Role::Writer
    }

    fn on_crash(&mut self) {
        self.pc = CwPc::Remainder;
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        self.pc.hash(&mut h);
    }
}

/// Build a simulated world of the centralized CAS lock.
pub fn centralized_world(readers: usize, writers: usize, protocol: Protocol) -> BaselineWorld {
    let mut layout = Layout::new();
    let state = layout.var("state", Value::Int(0));
    let pids = PidMap { readers, writers };
    let mem = Memory::new(&layout, pids.total(), protocol);
    let mut procs: Vec<Box<dyn Program>> = Vec::new();
    for _ in 0..readers {
        procs.push(Box::new(CentralReaderSim::new(state)));
    }
    for _ in 0..writers {
        procs.push(Box::new(CentralWriterSim::new(state)));
    }
    BaselineWorld {
        sim: Sim::new(mem, procs),
        pids,
        state: Some(state),
    }
}

#[derive(Clone, Debug)]
enum FrPc {
    Remainder,
    /// `readers.faa(+1)`.
    Inc,
    /// Read the writer flag.
    CheckFlag,
    /// Back out: `readers.faa(-1)`.
    Retreat,
    /// Spin until the writer flag clears.
    SpinFlag,
    Cs,
    /// Exit: one `readers.faa(-1)`.
    Dec,
}

/// A reader of the FAA read-indicator lock. Its exit section is a single
/// fetch-and-add step.
#[derive(Clone, Debug)]
pub struct FaaReaderSim {
    readers: VarId,
    wflag: VarId,
    pc: FrPc,
}

impl FaaReaderSim {
    /// Build a reader over the indicator and flag variables.
    pub fn new(readers: VarId, wflag: VarId) -> Self {
        FaaReaderSim {
            readers,
            wflag,
            pc: FrPc::Remainder,
        }
    }
}

impl Program for FaaReaderSim {
    ccsim::impl_program_in_place_clone!();

    fn poll(&self) -> Step {
        match self.pc {
            FrPc::Remainder => Step::Remainder,
            FrPc::Inc => Step::Op(Op::Faa {
                var: self.readers,
                delta: 1,
            }),
            FrPc::CheckFlag | FrPc::SpinFlag => Step::Op(Op::Read(self.wflag)),
            FrPc::Retreat | FrPc::Dec => Step::Op(Op::Faa {
                var: self.readers,
                delta: -1,
            }),
            FrPc::Cs => Step::Cs,
        }
    }

    fn resume(&mut self, response: Value) {
        self.pc = match self.pc {
            FrPc::Remainder => FrPc::Inc,
            FrPc::Inc => FrPc::CheckFlag,
            FrPc::CheckFlag => {
                if response.expect_int() == 0 {
                    FrPc::Cs
                } else {
                    FrPc::Retreat
                }
            }
            FrPc::Retreat => FrPc::SpinFlag,
            FrPc::SpinFlag => {
                if response.expect_int() == 0 {
                    FrPc::Inc
                } else {
                    FrPc::SpinFlag
                }
            }
            FrPc::Cs => FrPc::Dec,
            FrPc::Dec => FrPc::Remainder,
        };
    }

    fn phase(&self) -> Phase {
        match self.pc {
            FrPc::Remainder => Phase::Remainder,
            FrPc::Cs => Phase::Cs,
            FrPc::Dec => Phase::Exit,
            _ => Phase::Entry,
        }
    }

    fn role(&self) -> Role {
        Role::Reader
    }

    fn on_crash(&mut self) {
        self.pc = FrPc::Remainder;
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        (match self.pc {
            FrPc::Remainder => 0u8,
            FrPc::Inc => 1,
            FrPc::CheckFlag => 2,
            FrPc::Retreat => 3,
            FrPc::SpinFlag => 4,
            FrPc::Cs => 5,
            FrPc::Dec => 6,
        })
        .hash(&mut h);
    }
}

#[derive(Clone, Debug)]
enum FwPc {
    Remainder,
    WlEnter(wmutex::EnterMachine),
    /// `wflag := 1`.
    Raise,
    /// Spin until the indicator drains to 0.
    Drain,
    Cs,
    /// `wflag := 0`.
    Lower,
    WlExit(wmutex::ExitMachine),
}

/// A writer of the FAA read-indicator lock.
#[derive(Clone, Debug)]
pub struct FaaWriterSim {
    readers: VarId,
    wflag: VarId,
    wl: SimTournament,
    id: usize,
    pc: FwPc,
}

impl FaaWriterSim {
    /// Build writer `id` over the shared variables and writer mutex.
    pub fn new(readers: VarId, wflag: VarId, wl: SimTournament, id: usize) -> Self {
        FaaWriterSim {
            readers,
            wflag,
            wl,
            id,
            pc: FwPc::Remainder,
        }
    }
}

impl Program for FaaWriterSim {
    ccsim::impl_program_in_place_clone!();

    fn poll(&self) -> Step {
        match &self.pc {
            FwPc::Remainder => Step::Remainder,
            FwPc::WlEnter(m) => Step::Op(sub::poll_op(m)),
            FwPc::Raise => Step::Op(Op::write(self.wflag, 1)),
            FwPc::Drain => Step::Op(Op::Read(self.readers)),
            FwPc::Cs => Step::Cs,
            FwPc::Lower => Step::Op(Op::write(self.wflag, 0)),
            FwPc::WlExit(m) => Step::Op(sub::poll_op(m)),
        }
    }

    fn resume(&mut self, response: Value) {
        self.pc = match std::mem::replace(&mut self.pc, FwPc::Remainder) {
            FwPc::Remainder => {
                let enter = self.wl.enter(self.id);
                if matches!(enter.poll(), SubStep::Done(_)) {
                    FwPc::Raise
                } else {
                    FwPc::WlEnter(enter)
                }
            }
            FwPc::WlEnter(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => FwPc::Raise,
                sub::Drive::Running => FwPc::WlEnter(m),
            },
            FwPc::Raise => FwPc::Drain,
            FwPc::Drain => {
                if response.expect_int() == 0 {
                    FwPc::Cs
                } else {
                    FwPc::Drain
                }
            }
            FwPc::Cs => FwPc::Lower,
            FwPc::Lower => {
                let exit = self.wl.exit(self.id);
                if matches!(exit.poll(), SubStep::Done(_)) {
                    FwPc::Remainder
                } else {
                    FwPc::WlExit(exit)
                }
            }
            FwPc::WlExit(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => FwPc::Remainder,
                sub::Drive::Running => FwPc::WlExit(m),
            },
        };
    }

    fn phase(&self) -> Phase {
        match self.pc {
            FwPc::Remainder => Phase::Remainder,
            FwPc::Cs => Phase::Cs,
            FwPc::Lower | FwPc::WlExit(_) => Phase::Exit,
            _ => Phase::Entry,
        }
    }

    fn role(&self) -> Role {
        Role::Writer
    }

    fn on_crash(&mut self) {
        self.pc = FwPc::Remainder;
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        match &self.pc {
            FwPc::Remainder => 0u8.hash(&mut h),
            FwPc::WlEnter(m) => {
                1u8.hash(&mut h);
                m.fingerprint(h);
            }
            FwPc::Raise => 2u8.hash(&mut h),
            FwPc::Drain => 3u8.hash(&mut h),
            FwPc::Cs => 4u8.hash(&mut h),
            FwPc::Lower => 5u8.hash(&mut h),
            FwPc::WlExit(m) => {
                6u8.hash(&mut h);
                m.fingerprint(h);
            }
        }
    }
}

/// Build a simulated world where a single tournament mutex plays the
/// reader-writer lock: every passage, reader or writer, is exclusive.
/// The degenerate baseline — correct, `Θ(log(n + m))` RMRs for everyone,
/// and zero reader parallelism.
pub fn mutex_rw_world(readers: usize, writers: usize, protocol: Protocol) -> BaselineWorld {
    let mut layout = Layout::new();
    let mutex = wmutex::SimTournament::allocate(&mut layout, "M", readers + writers);
    let pids = PidMap { readers, writers };
    let mem = Memory::new(&layout, pids.total(), protocol);
    let mut procs: Vec<Box<dyn Program>> = Vec::new();
    for r in 0..readers {
        procs.push(Box::new(wmutex::MutexClient::with_role(
            mutex.clone(),
            r,
            Role::Reader,
        )));
    }
    for w in 0..writers {
        procs.push(Box::new(wmutex::MutexClient::with_role(
            mutex.clone(),
            readers + w,
            Role::Writer,
        )));
    }
    BaselineWorld {
        sim: Sim::new(mem, procs),
        pids,
        state: None,
    }
}

/// Build a simulated world of the FAA read-indicator lock.
pub fn faa_world(readers: usize, writers: usize, protocol: Protocol) -> BaselineWorld {
    let mut layout = Layout::new();
    let indicator = layout.var("readers", Value::Int(0));
    let wflag = layout.var("wflag", Value::Int(0));
    let wl = SimTournament::allocate(&mut layout, "WL", writers);
    let pids = PidMap { readers, writers };
    let mem = Memory::new(&layout, pids.total(), protocol);
    let mut procs: Vec<Box<dyn Program>> = Vec::new();
    for _ in 0..readers {
        procs.push(Box::new(FaaReaderSim::new(indicator, wflag)));
    }
    for w in 0..writers {
        procs.push(Box::new(FaaWriterSim::new(indicator, wflag, wl.clone(), w)));
    }
    BaselineWorld {
        sim: Sim::new(mem, procs),
        pids,
        state: Some(indicator),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::{run_random, run_round_robin, run_solo, Prng, RunConfig};

    #[test]
    fn centralized_round_robin_completes() {
        let mut world = centralized_world(3, 2, Protocol::WriteBack);
        let rc = RunConfig {
            passages_per_proc: 4,
            ..Default::default()
        };
        let report = run_round_robin(&mut world.sim, &rc).unwrap();
        assert!(report.completed.iter().all(|&c| c == 4));
    }

    #[test]
    fn centralized_random_schedules() {
        for seed in 0..20 {
            let mut world = centralized_world(4, 1, Protocol::WriteBack);
            let mut rng = Prng::new(seed);
            let rc = RunConfig {
                passages_per_proc: 3,
                ..Default::default()
            };
            run_random(&mut world.sim, &mut rng, &rc)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn faa_round_robin_completes() {
        let mut world = faa_world(3, 2, Protocol::WriteBack);
        let rc = RunConfig {
            passages_per_proc: 4,
            ..Default::default()
        };
        let report = run_round_robin(&mut world.sim, &rc).unwrap();
        assert!(report.completed.iter().all(|&c| c == 4));
    }

    #[test]
    fn faa_random_schedules() {
        for seed in 0..20 {
            let mut world = faa_world(4, 2, Protocol::WriteBack);
            let mut rng = Prng::new(seed);
            let rc = RunConfig {
                passages_per_proc: 3,
                ..Default::default()
            };
            run_random(&mut world.sim, &mut rng, &rc)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn faa_reader_exit_is_one_step() {
        let mut world = faa_world(2, 1, Protocol::WriteBack);
        let r0 = world.pids.reader(0);
        run_solo(&mut world.sim, r0, 100, |s| s.phase(r0) == ccsim::Phase::Cs).unwrap();
        world.sim.reset_stats();
        run_solo(&mut world.sim, r0, 100, |s| {
            s.phase(r0) == ccsim::Phase::Remainder
        })
        .unwrap();
        assert_eq!(
            world.sim.stats(r0).ops_in(ccsim::Phase::Exit),
            1,
            "FAA exit section is exactly one step"
        );
    }

    #[test]
    fn centralized_readers_share_cs() {
        let mut world = centralized_world(3, 1, Protocol::WriteBack);
        for r in 0..3 {
            let pid = world.pids.reader(r);
            run_solo(&mut world.sim, pid, 100, |s| {
                s.phase(pid) == ccsim::Phase::Cs
            })
            .unwrap();
        }
        assert_eq!(world.sim.procs_in_cs().len(), 3);
        assert!(world.sim.check_mutual_exclusion().is_ok());
    }

    #[test]
    fn mutex_rw_world_completes_and_serializes() {
        let mut world = mutex_rw_world(3, 1, Protocol::WriteBack);
        let rc = RunConfig {
            passages_per_proc: 3,
            ..Default::default()
        };
        let report = run_round_robin(&mut world.sim, &rc).unwrap();
        assert!(report.completed.iter().all(|&c| c == 3));
        // Readers cannot share the CS through a plain mutex: get one
        // reader in, then show a second reader cannot enter.
        let mut world = mutex_rw_world(2, 1, Protocol::WriteBack);
        let r0 = world.pids.reader(0);
        let r1 = world.pids.reader(1);
        run_solo(&mut world.sim, r0, 1_000, |s| {
            s.phase(r0) == ccsim::Phase::Cs
        })
        .unwrap();
        let reached = run_solo(&mut world.sim, r1, 2_000, |s| {
            s.phase(r1) == ccsim::Phase::Cs
        });
        assert_eq!(reached, None, "mutex baseline serializes readers");
    }

    #[test]
    fn centralized_writer_excludes_readers() {
        let mut world = centralized_world(2, 1, Protocol::WriteBack);
        let w0 = world.pids.writer(0);
        let r0 = world.pids.reader(0);
        run_solo(&mut world.sim, w0, 100, |s| s.phase(w0) == ccsim::Phase::Cs).unwrap();
        let reached = run_solo(&mut world.sim, r0, 2_000, |s| {
            s.phase(r0) == ccsim::Phase::Cs
        });
        assert_eq!(reached, None, "reader entered CS during writer passage");
    }
}
