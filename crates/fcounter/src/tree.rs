//! Heap-layout geometry shared by the real and simulated f-array counters.

/// Geometry of a complete binary tree with `k` leaves, padded to the next
/// power of two, stored heap-style: the root is node `1`, node `x` has
/// children `2x` and `2x+1`, and leaf `i` (for `i < k`) is node
/// `leaf_base() + i`. Node `0` is unused.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TreeShape {
    k: usize,
    width: usize,
}

impl TreeShape {
    /// Shape for `k` leaves.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "a counter needs at least one process");
        TreeShape {
            k,
            width: k.next_power_of_two(),
        }
    }

    /// Number of real leaves (processes).
    pub fn leaves(&self) -> usize {
        self.k
    }

    /// Padded leaf count (a power of two).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total heap slots, including the unused slot 0 (= `2 * width`).
    pub fn heap_len(&self) -> usize {
        2 * self.width
    }

    /// Heap index of the first leaf.
    pub fn leaf_base(&self) -> usize {
        self.width
    }

    /// Heap index of leaf `i`.
    ///
    /// # Panics
    /// Panics if `i >= leaves()`.
    pub fn leaf(&self, i: usize) -> usize {
        assert!(i < self.k, "leaf index {i} out of range (k = {})", self.k);
        self.width + i
    }

    /// Heap index of the root. When `width() == 1` the root *is* the single
    /// leaf.
    pub fn root(&self) -> usize {
        1
    }

    /// True if heap node `x` is a leaf slot.
    pub fn is_leaf(&self, x: usize) -> bool {
        x >= self.width
    }

    /// Parent of heap node `x`.
    pub fn parent(&self, x: usize) -> usize {
        x / 2
    }

    /// Children of internal heap node `x`.
    pub fn children(&self, x: usize) -> (usize, usize) {
        debug_assert!(!self.is_leaf(x));
        (2 * x, 2 * x + 1)
    }

    /// The internal nodes on the path from leaf `i`'s parent to the root,
    /// bottom-up. Empty when the tree is a single leaf.
    pub fn path_to_root(&self, i: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut x = self.parent(self.leaf(i));
        while x >= 1 {
            path.push(x);
            if x == 1 {
                break;
            }
            x = self.parent(x);
        }
        path
    }

    /// Tree depth: number of internal levels (`log2(width)`).
    pub fn depth(&self) -> u32 {
        self.width.trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_tree() {
        let t = TreeShape::new(1);
        assert_eq!(t.width(), 1);
        assert_eq!(t.leaf(0), 1);
        assert_eq!(t.root(), 1);
        assert!(t.is_leaf(t.root()), "root is the leaf when k = 1");
        assert!(t.path_to_root(0).is_empty());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn non_power_of_two_padding() {
        let t = TreeShape::new(5);
        assert_eq!(t.width(), 8);
        assert_eq!(t.heap_len(), 16);
        assert_eq!(t.leaf(0), 8);
        assert_eq!(t.leaf(4), 12);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn path_is_bottom_up_to_root() {
        let t = TreeShape::new(4);
        assert_eq!(
            t.path_to_root(3),
            vec![3, 1],
            "leaf 3 = node 7; parents 3, 1"
        );
        assert_eq!(t.path_to_root(0), vec![2, 1]);
    }

    #[test]
    fn path_length_is_logarithmic() {
        for k in [1usize, 2, 3, 7, 8, 9, 64, 100, 512] {
            let t = TreeShape::new(k);
            assert_eq!(t.path_to_root(0).len() as u32, t.depth());
        }
    }

    #[test]
    fn children_and_parent_roundtrip() {
        let t = TreeShape::new(8);
        for x in 1..8 {
            let (l, r) = t.children(x);
            assert_eq!(t.parent(l), x);
            assert_eq!(t.parent(r), x);
        }
    }

    #[test]
    #[should_panic(expected = "leaf index")]
    fn leaf_out_of_range_panics() {
        TreeShape::new(3).leaf(3);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_leaves_panics() {
        TreeShape::new(0);
    }
}
