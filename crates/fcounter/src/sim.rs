//! The simulated f-array counter: the same algorithm as [`crate::FArray`],
//! expressed as `ccsim` step machines so RMRs can be counted and schedules
//! controlled adversarially.

use crate::tree::TreeShape;
use ccsim::{Layout, Memory, Op, SubMachine, SubStep, Value, VarId};
use std::hash::{Hash, Hasher};

/// Decode the sum component of a tree node's value: leaves hold
/// `Int(sum)`, internal nodes hold `Pair(version, sum)`.
fn sum_of(v: Value) -> i64 {
    match v {
        Value::Int(i) => i,
        Value::Pair(_, s) => s,
        other => panic!("f-array node holds unexpected value {other:?}"),
    }
}

/// Shared-memory descriptor of a simulated `K`-process f-array counter:
/// the variable ids of its tree nodes. Cheap to clone; every process of
/// the group holds a clone inside its machines.
#[derive(Clone, Debug)]
pub struct SimCounter {
    shape: TreeShape,
    /// Heap-indexed node variables; slot 0 is a dummy.
    nodes: Vec<VarId>,
}

impl SimCounter {
    /// Allocate the counter's variables: internal nodes init `Pair(0, 0)`,
    /// leaves init `Int(0)`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn allocate(layout: &mut Layout, name: &str, k: usize) -> Self {
        let shape = TreeShape::new(k);
        let mut nodes = Vec::with_capacity(shape.heap_len());
        for x in 0..shape.heap_len() {
            let init = if x == 0 {
                Value::Nil // unused dummy slot
            } else if shape.is_leaf(x) {
                Value::Int(0)
            } else {
                Value::Pair(0, 0)
            };
            nodes.push(layout.var(format!("{name}.node[{x}]"), init));
        }
        SimCounter { shape, nodes }
    }

    /// Number of registered processes.
    pub fn processes(&self) -> usize {
        self.shape.leaves()
    }

    /// A per-process handle for leaf `leaf` (each leaf must be used by one
    /// simulated process only).
    ///
    /// # Panics
    /// Panics if `leaf >= processes()`.
    pub fn handle(&self, leaf: usize) -> SimCounterHandle {
        assert!(leaf < self.shape.leaves(), "leaf {leaf} out of range");
        SimCounterHandle {
            counter: self.clone(),
            leaf,
            mirror: 0,
        }
    }

    /// Start a `read` operation (any process may read).
    pub fn read(&self) -> ReadMachine {
        ReadMachine {
            root: self.nodes[self.shape.root()],
            done: None,
        }
    }

    /// Inspect the counter's current value without simulating steps
    /// (test/assertion aid).
    pub fn peek(&self, mem: &Memory) -> i64 {
        sum_of(mem.peek(self.nodes[self.shape.root()]))
    }

    /// The shared variable backing process `leaf`'s leaf — the location a
    /// symmetry declaration must list as owned by that process.
    ///
    /// # Panics
    /// Panics if `leaf >= processes()`.
    pub fn leaf_var(&self, leaf: usize) -> VarId {
        assert!(leaf < self.shape.leaves(), "leaf {leaf} out of range");
        self.nodes[self.shape.leaf(leaf)]
    }

    /// Are `a` and `b` sibling leaves (same parent node)? Sibling leaves
    /// are the only pairs whose swap is a transition automorphism of the
    /// refresh (see [`AddMachine`]'s read order).
    pub fn leaves_are_siblings(&self, a: usize, b: usize) -> bool {
        a < self.shape.leaves()
            && b < self.shape.leaves()
            && a != b
            && self.shape.leaf(a) / 2 == self.shape.leaf(b) / 2
    }

    fn var(&self, heap: usize) -> VarId {
        self.nodes[heap]
    }
}

/// A process's private handle on a [`SimCounter`]: remembers the current
/// value of its own (single-writer) leaf so an `add` needs no leaf read.
#[derive(Clone, Debug)]
pub struct SimCounterHandle {
    counter: SimCounter,
    leaf: usize,
    mirror: i64,
}

impl SimCounterHandle {
    /// Start an `add(delta)` operation. The handle's leaf mirror is updated
    /// immediately; the returned machine must then be driven to completion
    /// before the next operation on this handle starts.
    pub fn add(&mut self, delta: i64) -> AddMachine {
        self.mirror += delta;
        let shape = self.counter.shape;
        AddMachine {
            counter: self.counter.clone(),
            leaf_heap: shape.leaf(self.leaf),
            new_leaf_value: self.mirror,
            path: shape.path_to_root(self.leaf),
            pc: AddPc::WriteLeaf,
        }
    }

    /// Start a `read` operation.
    pub fn read(&self) -> ReadMachine {
        self.counter.read()
    }

    /// This process's current leaf contribution.
    pub fn mirror(&self) -> i64 {
        self.mirror
    }
}

/// Program counter of an [`AddMachine`]. `path_pos` indexes the bottom-up
/// path of internal nodes; `round` distinguishes the two refresh attempts.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum AddPc {
    WriteLeaf,
    ReadNode {
        path_pos: usize,
        round: u8,
    },
    ReadFirst {
        path_pos: usize,
        round: u8,
        node_old: Value,
    },
    ReadSecond {
        path_pos: usize,
        round: u8,
        node_old: Value,
        first_sum: i64,
    },
    Cas {
        path_pos: usize,
        round: u8,
        expected: Value,
        new: Value,
    },
    Done,
}

/// Step machine for one wait-free `add`: write own leaf, then
/// double-refresh each internal node up to the root. `Θ(log K)` steps.
///
/// At the leaf level (`path_pos == 0`) the refresh reads the process's
/// **own** leaf first and its sibling second; higher levels read
/// left-then-right. Addition is commutative, so the computed sum is
/// unchanged — but the own-first order makes swapping two sibling-leaf
/// processes a transition automorphism (each machine's next shared
/// access maps to the swapped machine's next shared access), which is
/// what lets f-array worlds declare reader symmetry classes.
#[derive(Clone, Debug)]
pub struct AddMachine {
    counter: SimCounter,
    leaf_heap: usize,
    new_leaf_value: i64,
    path: Vec<usize>,
    pc: AddPc,
}

impl AddMachine {
    fn refresh_start(&self, path_pos: usize, round: u8) -> AddPc {
        if path_pos >= self.path.len() {
            debug_assert_eq!(round, 0);
            AddPc::Done
        } else {
            AddPc::ReadNode { path_pos, round }
        }
    }

    /// The two children of `path[path_pos]` in *read order*: own leaf
    /// first at the leaf level, left-then-right above it.
    fn children_in_read_order(&self, path_pos: usize) -> (usize, usize) {
        let (l, r) = self.counter.shape.children(self.path[path_pos]);
        if path_pos == 0 && r == self.leaf_heap {
            (r, l)
        } else {
            (l, r)
        }
    }
}

impl SubMachine for AddMachine {
    fn poll(&self) -> SubStep {
        match &self.pc {
            AddPc::WriteLeaf => SubStep::Op(Op::write(
                self.counter.var(self.leaf_heap),
                self.new_leaf_value,
            )),
            AddPc::ReadNode { path_pos, .. } => {
                SubStep::Op(Op::Read(self.counter.var(self.path[*path_pos])))
            }
            AddPc::ReadFirst { path_pos, .. } => {
                let (first, _) = self.children_in_read_order(*path_pos);
                SubStep::Op(Op::Read(self.counter.var(first)))
            }
            AddPc::ReadSecond { path_pos, .. } => {
                let (_, second) = self.children_in_read_order(*path_pos);
                SubStep::Op(Op::Read(self.counter.var(second)))
            }
            AddPc::Cas {
                path_pos,
                expected,
                new,
                ..
            } => SubStep::Op(Op::Cas {
                var: self.counter.var(self.path[*path_pos]),
                expected: *expected,
                new: *new,
            }),
            AddPc::Done => SubStep::Done(Value::Nil),
        }
    }

    fn resume(&mut self, response: Value) {
        self.pc = match self.pc.clone() {
            AddPc::WriteLeaf => self.refresh_start(0, 0),
            AddPc::ReadNode { path_pos, round } => AddPc::ReadFirst {
                path_pos,
                round,
                node_old: response,
            },
            AddPc::ReadFirst {
                path_pos,
                round,
                node_old,
            } => AddPc::ReadSecond {
                path_pos,
                round,
                node_old,
                first_sum: sum_of(response),
            },
            AddPc::ReadSecond {
                path_pos,
                round,
                node_old,
                first_sum,
            } => {
                let (ver, _) = match node_old {
                    Value::Pair(v, s) => (v, s),
                    other => panic!("internal node held {other:?}"),
                };
                let sum = first_sum + sum_of(response);
                AddPc::Cas {
                    path_pos,
                    round,
                    expected: node_old,
                    new: Value::Pair(ver.wrapping_add(1), sum),
                }
            }
            AddPc::Cas {
                path_pos,
                round,
                expected,
                ..
            } => {
                let succeeded = response == expected;
                if !succeeded && round == 0 {
                    // Second refresh attempt on the same node.
                    AddPc::ReadNode { path_pos, round: 1 }
                } else {
                    self.refresh_start(path_pos + 1, 0)
                }
            }
            AddPc::Done => panic!("AddMachine resumed after completion"),
        };
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        // Deliberately index-free: `leaf_heap` is a per-process constant
        // (the handle's leaf), so under the per-process fingerprint salt
        // it carries no information, and hashing it would make sibling
        // readers' otherwise-identical machines distinguishable — which
        // would defeat the f-array symmetry quotient.
        self.pc.hash(&mut h);
        self.new_leaf_value.hash(&mut h);
    }
}

/// Step machine for a constant-step `read`: one root load.
#[derive(Clone, Debug)]
pub struct ReadMachine {
    root: VarId,
    done: Option<i64>,
}

impl SubMachine for ReadMachine {
    fn poll(&self) -> SubStep {
        match self.done {
            None => SubStep::Op(Op::Read(self.root)),
            Some(v) => SubStep::Done(Value::Int(v)),
        }
    }

    fn resume(&mut self, response: Value) {
        assert!(self.done.is_none(), "ReadMachine resumed after completion");
        self.done = Some(sum_of(response));
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        self.done.hash(&mut h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::{ProcId, Protocol};

    /// Drive a sub-machine to completion as process `p`, returning
    /// `(result, steps, rmrs)`.
    fn drive(mem: &mut Memory, p: ProcId, m: &mut dyn SubMachine) -> (Value, u64, u64) {
        let mut steps = 0;
        let mut rmrs = 0;
        loop {
            match m.poll() {
                SubStep::Done(v) => return (v, steps, rmrs),
                SubStep::Op(op) => {
                    let out = mem.apply(p, &op);
                    steps += 1;
                    if out.rmr {
                        rmrs += 1;
                    }
                    m.resume(out.response);
                }
            }
        }
    }

    fn world(k: usize) -> (Memory, SimCounter) {
        let mut layout = Layout::new();
        let c = SimCounter::allocate(&mut layout, "C", k);
        let mem = Memory::new(&layout, k, Protocol::WriteBack);
        (mem, c)
    }

    #[test]
    fn sequential_adds_and_reads() {
        let (mut mem, c) = world(4);
        let mut handles: Vec<_> = (0..4).map(|i| c.handle(i)).collect();
        for (i, h) in handles.iter_mut().enumerate() {
            let mut add = h.add((i as i64) + 1);
            drive(&mut mem, ProcId(i), &mut add);
        }
        let (v, steps, _) = drive(&mut mem, ProcId(0), &mut c.read());
        assert_eq!(v, Value::Int(10));
        assert_eq!(steps, 1, "read is a single root load");
        assert_eq!(c.peek(&mem), 10);
    }

    #[test]
    fn add_steps_are_logarithmic() {
        for k in [1usize, 2, 4, 8, 64, 256] {
            let (mut mem, c) = world(k);
            let mut h = c.handle(0);
            let (_, steps, _) = drive(&mut mem, ProcId(0), &mut h.add(1));
            let depth = TreeShape::new(k).depth() as u64;
            // 1 leaf write + at most 2 refreshes x 4 steps per level.
            assert!(steps > 4 * depth, "k={k}: steps={steps}");
            assert!(steps <= 1 + 8 * depth, "k={k}: steps={steps}");
        }
    }

    #[test]
    fn single_process_counter_has_constant_add() {
        let (mut mem, c) = world(1);
        let mut h = c.handle(0);
        let (_, steps, _) = drive(&mut mem, ProcId(0), &mut h.add(5));
        assert_eq!(steps, 1, "k=1: add is just the leaf write");
        assert_eq!(c.peek(&mem), 5);
    }

    #[test]
    fn negative_deltas() {
        let (mut mem, c) = world(2);
        let mut h0 = c.handle(0);
        let mut h1 = c.handle(1);
        drive(&mut mem, ProcId(0), &mut h0.add(1));
        drive(&mut mem, ProcId(1), &mut h1.add(1));
        drive(&mut mem, ProcId(0), &mut h0.add(-1));
        assert_eq!(c.peek(&mem), 1);
        assert_eq!(h0.mirror(), 0);
    }

    #[test]
    fn interleaved_adds_converge() {
        // Interleave two adds step-by-step in every round-robin pattern;
        // the final root must always be the true sum (double-refresh).
        let (mut mem, c) = world(2);
        let mut h0 = c.handle(0);
        let mut h1 = c.handle(1);
        let mut m0 = h0.add(3);
        let mut m1 = h1.add(4);
        let mut turn = 0;
        loop {
            let (m, p): (&mut dyn SubMachine, ProcId) = if turn % 2 == 0 {
                (&mut m0, ProcId(0))
            } else {
                (&mut m1, ProcId(1))
            };
            turn += 1;
            match m.poll() {
                SubStep::Done(_) => {
                    if matches!(m0.poll(), SubStep::Done(_))
                        && matches!(m1.poll(), SubStep::Done(_))
                    {
                        break;
                    }
                }
                SubStep::Op(op) => {
                    let out = mem.apply(p, &op);
                    m.resume(out.response);
                }
            }
        }
        assert_eq!(c.peek(&mem), 7);
    }

    #[test]
    fn exhaustive_interleavings_of_two_adds() {
        // Enumerate *all* interleavings of two concurrent adds on k=2 via
        // binary schedule strings; every execution must end with root = 2.
        let shape_steps = {
            let (mut mem, c) = world(2);
            let mut h = c.handle(0);
            let (_, steps, _) = drive(&mut mem, ProcId(0), &mut h.add(1));
            steps as usize
        };
        let total = 2 * shape_steps;
        let mut schedules_tested = 0u32;
        for mask in 0u32..(1 << total) {
            if (mask.count_ones() as usize) != shape_steps {
                continue;
            }
            let (mut mem, c) = world(2);
            let mut h0 = c.handle(0);
            let mut h1 = c.handle(1);
            let mut m0 = h0.add(1);
            let mut m1 = h1.add(1);
            let mut ok = true;
            for bit in 0..total {
                let pick1 = (mask >> bit) & 1 == 1;
                let (m, p): (&mut dyn SubMachine, ProcId) = if pick1 {
                    (&mut m1, ProcId(1))
                } else {
                    (&mut m0, ProcId(0))
                };
                match m.poll() {
                    SubStep::Op(op) => {
                        let out = mem.apply(p, &op);
                        m.resume(out.response);
                    }
                    SubStep::Done(_) => {
                        // Schedule gave extra steps to a finished machine —
                        // drain the other machine instead.
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            // Machines may run different step counts (a successful first
            // refresh skips the second); drain both.
            while let SubStep::Op(op) = m0.poll() {
                let out = mem.apply(ProcId(0), &op);
                m0.resume(out.response);
            }
            while let SubStep::Op(op) = m1.poll() {
                let out = mem.apply(ProcId(1), &op);
                m1.resume(out.response);
            }
            assert_eq!(c.peek(&mem), 2, "schedule mask {mask:b}");
            schedules_tested += 1;
        }
        assert!(schedules_tested > 50, "tested {schedules_tested} schedules");
    }

    #[test]
    fn leaf_refresh_reads_own_leaf_first() {
        // k=2: both processes share one parent; each must read its own
        // leaf before its sibling's during the leaf-level refresh.
        let (mut mem, c) = world(2);
        for leaf in 0..2 {
            let mut h = c.handle(leaf);
            let mut m = h.add(1);
            // Step 1: leaf write. Step 2: parent read. Step 3: first
            // child read — must be the process's own leaf.
            for _ in 0..2 {
                let SubStep::Op(op) = m.poll() else {
                    panic!("add finished early")
                };
                let out = mem.apply(ProcId(leaf), &op);
                m.resume(out.response);
            }
            match m.poll() {
                SubStep::Op(Op::Read(v)) => {
                    assert_eq!(v, c.leaf_var(leaf), "leaf {leaf} reads own leaf first")
                }
                other => panic!("expected first child read, got {other:?}"),
            }
        }
    }

    #[test]
    fn sibling_leaf_detection() {
        let (_, c) = world(4);
        assert!(c.leaves_are_siblings(0, 1));
        assert!(c.leaves_are_siblings(3, 2));
        assert!(!c.leaves_are_siblings(1, 2));
        assert!(!c.leaves_are_siblings(0, 0));
        let (_, c3) = world(3);
        assert!(c3.leaves_are_siblings(0, 1));
        assert!(!c3.leaves_are_siblings(1, 2), "pad leaf is not a partner");
    }

    #[test]
    #[should_panic(expected = "resumed after completion")]
    fn read_machine_guards_double_resume() {
        let (_, c) = world(2);
        let mut r = c.read();
        r.resume(Value::Pair(0, 0));
        r.resume(Value::Pair(0, 0));
    }
}
