//! Property tests for the mutex substrates: random schedules of the
//! simulated tournament, and real-thread agreement between all three
//! real locks.

use ccsim::{run_random, Protocol, RunConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use wmutex::{mutex_world, ClhLock, IdMutex, TicketLock, TournamentLock};

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Random schedules of the simulated tournament always complete all
    /// passages with mutual exclusion intact (checked per step by the
    /// runner), under all three memory models.
    #[test]
    fn sim_tournament_random_schedules(
        m in 1usize..7,
        seed in any::<u64>(),
        protocol_idx in 0usize..3,
    ) {
        let protocol = [Protocol::WriteBack, Protocol::WriteThrough, Protocol::Dsm][protocol_idx];
        let mut sim = mutex_world(m, protocol);
        let mut rng = StdRng::seed_from_u64(seed);
        let rc = RunConfig { passages_per_proc: 3, ..Default::default() };
        let report = run_random(&mut sim, &mut rng, &rc)
            .map_err(|e| TestCaseError::fail(format!("m={m} {protocol:?} seed={seed}: {e}")))?;
        prop_assert!(report.completed.iter().all(|&c| c == 3));
    }

    /// All real locks serialize a non-atomic counter correctly for any
    /// (threads, iters) shape.
    #[test]
    fn real_locks_serialize(threads in 1usize..5, iters in 1u64..400) {
        let locks: Vec<Arc<dyn IdMutex>> = vec![
            Arc::new(TournamentLock::new(threads)),
            Arc::new(ClhLock::new(threads)),
            Arc::new(TicketLock::new(threads)),
        ];
        for lock in locks {
            struct SendCell(std::cell::UnsafeCell<u64>);
            unsafe impl Send for SendCell {}
            unsafe impl Sync for SendCell {}
            let counter = Arc::new(SendCell(std::cell::UnsafeCell::new(0)));
            std::thread::scope(|s| {
                for id in 0..threads {
                    let lock = Arc::clone(&lock);
                    let counter = Arc::clone(&counter);
                    s.spawn(move || {
                        for _ in 0..iters {
                            lock.lock(id);
                            unsafe { *counter.0.get() += 1 };
                            lock.unlock(id);
                        }
                    });
                }
            });
            prop_assert_eq!(
                unsafe { *counter.0.get() },
                threads as u64 * iters,
                "{} lost updates", lock.name()
            );
        }
    }
}

/// The simulated and real tournament locks share the arena geometry: the
/// sim solo entry performs the same number of competitions as
/// `TournamentLock::levels`.
#[test]
fn sim_and_real_agree_on_levels() {
    for m in [1usize, 2, 3, 4, 8, 9] {
        let real = TournamentLock::new(m);
        let mut layout = ccsim::Layout::new();
        let sim = wmutex::SimTournament::allocate(&mut layout, "WL", m);
        assert_eq!(real.levels(), sim.levels(), "m={m}");
    }
}
