//! Replayable violation-trace artifacts.
//!
//! When a model check or a randomized stress run finds a violation, the
//! schedule that reproduces it is worth keeping: CI uploads it, humans
//! attach it to bug reports, and [`crate::replay`] turns it back into the
//! violating configuration. [`TraceArtifact`] is that file format — a
//! small, line-oriented, human-readable text format:
//!
//! ```text
//! # rwlock-repro trace v1
//! world: af n=2 m=1 writeback
//! violation: mutual exclusion violated: CS occupied by p0 [writer], p1 [reader]
//! fingerprint: 0x1f00ba5e00c0ffee
//! schedule: s0 s0 s1 c0 s1
//! ```
//!
//! The `schedule:` line uses [`crate::SchedEntry`] tokens (`s<pid>` step,
//! `c<pid>` crash, `ca` system-wide crash, `a<pid>` abort request). The
//! `world:` line is free text naming the factory
//! configuration — the parser carries it through untouched; pairing the
//! right factory with the artifact is the caller's contract, checked at
//! replay time against `fingerprint`.

use crate::SchedEntry;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Magic first line of the v1 trace format.
const MAGIC: &str = "# rwlock-repro trace v1";

/// A persisted, replayable counterexample: which world, which violation,
/// the schedule that reproduces it, and the fingerprint of the violating
/// configuration for verification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceArtifact {
    /// Free-text description of the world factory (e.g. `af n=2 m=1
    /// writeback`). Must not contain newlines.
    pub world: String,
    /// Free-text description of the violated property. Must not contain
    /// newlines.
    pub violation: String,
    /// [`ccsim::Sim::fingerprint`] of the violating configuration.
    pub fingerprint: u64,
    /// The reproducing schedule.
    pub schedule: Vec<SchedEntry>,
}

impl TraceArtifact {
    /// Render to the v1 text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(out, "world: {}", self.world);
        let _ = writeln!(out, "violation: {}", self.violation);
        let _ = writeln!(out, "fingerprint: {:#018x}", self.fingerprint);
        let _ = write!(out, "schedule:");
        for e in &self.schedule {
            let _ = write!(out, " {e}");
        }
        out.push('\n');
        out
    }

    /// Parse the v1 text format (the inverse of [`TraceArtifact::render`]).
    ///
    /// # Errors
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<TraceArtifact, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.trim() == MAGIC => {}
            other => return Err(format!("bad magic line {other:?}, expected {MAGIC:?}")),
        }
        let mut world = None;
        let mut violation = None;
        let mut fingerprint = None;
        let mut schedule = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, val) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed line {line:?}: expected key: value"))?;
            let val = val.trim();
            match key.trim() {
                "world" => world = Some(val.to_string()),
                "violation" => violation = Some(val.to_string()),
                "fingerprint" => {
                    let digits = val.strip_prefix("0x").unwrap_or(val);
                    fingerprint = Some(
                        u64::from_str_radix(digits, 16)
                            .map_err(|_| format!("bad fingerprint {val:?}"))?,
                    );
                }
                "schedule" => {
                    schedule = Some(
                        val.split_whitespace()
                            .map(|tok| tok.parse::<SchedEntry>())
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        Ok(TraceArtifact {
            world: world.ok_or("missing world: line")?,
            violation: violation.ok_or("missing violation: line")?,
            fingerprint: fingerprint.ok_or("missing fingerprint: line")?,
            schedule: schedule.ok_or("missing schedule: line")?,
        })
    }

    /// Write the artifact into `dir` (created if needed) as
    /// `trace_<fingerprint>.txt`; returns the path written.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("trace_{:016x}.txt", self.fingerprint));
        fs::write(&path, self.render())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::ProcId;

    fn sample() -> TraceArtifact {
        TraceArtifact {
            world: "af n=2 m=1 writeback".into(),
            violation: "mutual exclusion violated: CS occupied by p0, p1".into(),
            fingerprint: 0x1f00_ba5e_00c0_ffee,
            schedule: vec![
                SchedEntry::Step(ProcId(0)),
                SchedEntry::Step(ProcId(1)),
                SchedEntry::Crash(ProcId(0)),
                SchedEntry::CrashAll,
                SchedEntry::Abort(ProcId(1)),
                SchedEntry::Step(ProcId(1)),
            ],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let a = sample();
        let text = a.render();
        assert!(text.starts_with(MAGIC));
        assert!(text.contains("schedule: s0 s1 c0 ca a1 s1"));
        let b = TraceArtifact::parse(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceArtifact::parse("").is_err());
        assert!(TraceArtifact::parse("# wrong magic\n").is_err());
        let missing = format!("{MAGIC}\nworld: w\nviolation: v\nschedule: s0\n");
        assert!(TraceArtifact::parse(&missing)
            .unwrap_err()
            .contains("fingerprint"));
        for bad in ["x9", "ca1", "a", "CA", "a1x"] {
            let text =
                format!("{MAGIC}\nworld: w\nviolation: v\nfingerprint: 0x1\nschedule: s0 {bad}\n");
            assert!(
                TraceArtifact::parse(&text).is_err(),
                "schedule token {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn write_to_creates_dir_and_file() {
        let dir =
            std::env::temp_dir().join(format!("modelcheck_artifact_test_{}", std::process::id()));
        let a = sample();
        let path = a.write_to(&dir).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(TraceArtifact::parse(&text).unwrap(), a);
        let _ = fs::remove_dir_all(&dir);
    }
}
