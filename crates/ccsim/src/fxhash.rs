//! A fast, dependency-free 64-bit hasher in the FxHash/rustc-hash
//! lineage, plus the `splitmix64` finalizer used to build Zobrist-style
//! incremental fingerprints.
//!
//! The model checker hashes millions of tiny keys (configuration
//! fingerprints, program counters, quota vectors). `SipHash` — the
//! default `std` hasher — is cryptographically keyed and pays ~1 round
//! per 8-byte write; that robustness buys nothing here because the keys
//! are not attacker-controlled. [`FxHasher`] is the classic
//! multiply-rotate word hasher the Rust compiler itself uses for its
//! interning tables: one rotate, one xor, one multiply per word.
//!
//! Raw Fx output has weak low-bit diffusion, so everything that *stores*
//! an Fx hash as an identity key (visited-set fingerprints, shard
//! selection) must pass it through [`mix64`] first — a full-avalanche
//! `splitmix64` finalizer — which restores uniformity at the cost of
//! three multiplies. [`FxHasher::finish`] applies the finalizer for
//! exactly that reason; use the raw state only internally.

use std::hash::{BuildHasherDefault, Hasher};

/// The golden-ratio multiplier used by rustc's FxHash.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// `splitmix64`'s finalizer: a cheap full-avalanche bijection on `u64`.
///
/// Every output bit depends on every input bit, so XOR-accumulating
/// `mix64` images of independent inputs (the Zobrist trick used by
/// [`crate::Sim::fingerprint`]) behaves like XOR-ing independent random
/// words. Being a bijection it never loses entropy.
#[inline]
pub const fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A fast FxHash-style [`Hasher`]. Not cryptographic, not DoS-resistant
/// — use only for in-process tables and fingerprints whose inputs the
/// program itself generates.
///
/// Unlike rustc's FxHasher, [`FxHasher::finish`] folds the *number of
/// bytes absorbed* into the final mix (the same trick SipHash uses).
/// The raw Fx round maps `(state = 0, word = 0)` back to zero, so
/// without the length term every all-zero write sequence — `0u8`,
/// `(0u8, 0u64)`, ... — would share one digest. Program step machines
/// routinely hash exactly such tag + payload encodings of their initial
/// states, and those digests feed the model checker's visited-state
/// keys, where a collision silently merges distinct configurations.
///
/// ```
/// use ccsim::FxHasher;
/// use std::hash::{Hash, Hasher};
///
/// let mut h = FxHasher::default();
/// 42u64.hash(&mut h);
/// let a = h.finish();
/// let mut h = FxHasher::default();
/// 43u64.hash(&mut h);
/// assert_ne!(a, h.finish());
/// ```
#[derive(Copy, Clone, Debug, Default)]
pub struct FxHasher {
    state: u64,
    /// Bytes absorbed so far, folded into [`FxHasher::finish`].
    bytes: u64,
}

/// A [`std::hash::BuildHasher`] for `HashMap`/`HashSet` keyed by
/// [`FxHasher`] — the model checker's visited shards use this in place
/// of `RandomState`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

impl FxHasher {
    /// A hasher whose state starts at `seed` instead of zero; distinct
    /// seeds give independent hash families (used to salt the per-slot
    /// Zobrist signatures so variable 3 and process 3 never collide).
    #[inline]
    pub fn with_seed(seed: u64) -> Self {
        FxHasher {
            state: seed,
            bytes: 0,
        }
    }

    /// Absorb one word that carried `width` meaningful input bytes.
    #[inline]
    fn add(&mut self, word: u64, width: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
        self.bytes = self.bytes.wrapping_add(width);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state ^ self.bytes.wrapping_mul(K))
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()), 8);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Length-tag the tail so "ab" and "ab\0" differ.
            buf[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(buf), rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64, 1);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64, 2);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64, 4);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i, 8);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64, 8);
        self.add((i >> 64) as u64, 8);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64, 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::hash::Hash;

    fn fx_of(f: impl FnOnce(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_sensitive() {
        let a = fx_of(|h| h.write_u64(1));
        assert_eq!(a, fx_of(|h| h.write_u64(1)));
        assert_ne!(a, fx_of(|h| h.write_u64(2)));
        assert_ne!(
            fx_of(|h| h.write(b"ab")),
            fx_of(|h| h.write(b"ab\0")),
            "tail length must be tagged"
        );
    }

    #[test]
    fn order_sensitive() {
        let ab = fx_of(|h| {
            h.write_u64(0xa);
            h.write_u64(0xb);
        });
        let ba = fx_of(|h| {
            h.write_u64(0xb);
            h.write_u64(0xa);
        });
        assert_ne!(ab, ba);
    }

    #[test]
    fn seeds_give_distinct_families() {
        let a = {
            let mut h = FxHasher::with_seed(1);
            h.write_u64(7);
            h.finish()
        };
        let b = {
            let mut h = FxHasher::with_seed(2);
            h.write_u64(7);
            h.finish()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn mix64_is_bijective_on_a_sample_and_avalanches() {
        let mut seen = HashSet::new();
        for i in 0u64..10_000 {
            assert!(seen.insert(mix64(i)), "mix64 collided at {i}");
        }
        // Low bits of sequential inputs must not stay sequential.
        let low_bits: HashSet<u64> = (0u64..64).map(|i| mix64(i) & 0xff).collect();
        assert!(low_bits.len() > 32, "finalizer fails to diffuse low bits");
    }

    #[test]
    fn all_zero_write_sequences_of_different_shapes_stay_distinct() {
        // The raw Fx round fixes (0, 0) — guard the length fold that
        // keeps the common "tag + zeroed payload" encodings apart.
        let digests = [
            fx_of(|_| {}),
            fx_of(|h| h.write_u8(0)),
            fx_of(|h| {
                h.write_u8(0);
                h.write_u64(0);
            }),
            fx_of(|h| {
                h.write_u32(0);
                h.write_u32(0);
            }),
            fx_of(|h| {
                h.write_u64(0);
                h.write_u64(0);
                h.write_u64(0);
            }),
        ];
        let distinct: HashSet<u64> = digests.iter().copied().collect();
        assert_eq!(distinct.len(), digests.len(), "digests: {digests:#x?}");
    }

    #[test]
    fn usable_in_std_collections() {
        let mut set: HashSet<u64, FxBuildHasher> = HashSet::default();
        for i in 0..1000u64 {
            set.insert(mix64(i));
        }
        assert_eq!(set.len(), 1000);
        // Derived Hash impls route through the Hasher trait methods.
        let mut h = FxHasher::default();
        (1u8, 2usize, Some(3i64)).hash(&mut h);
        assert_ne!(h.finish(), 0);
    }
}
