//! Differential test for the directory-based coherence rewrite.
//!
//! Drives the directory-based [`Memory`] and the preserved map-based
//! [`reference::RefMemory`] through identical randomized op/proc
//! sequences (in-tree PRNG, fixed seeds) and asserts *every* field of
//! every [`ccsim::StepOutcome`] — response, rmr, trivial, old, new — is
//! identical, along with `would_rmr` predictions and per-process cache
//! views, for WriteThrough, WriteBack, and Dsm at several
//! `n_procs`/`n_vars` sizes (including multi-word bitset sizes).

use ccsim::reference::RefMemory;
use ccsim::{Layout, Memory, Op, Prng, ProcId, Protocol, Value, VarId};

fn layout(n_vars: usize, n_procs: usize) -> Layout {
    let mut l = Layout::new();
    for i in 0..n_vars {
        // Mix homed and homeless variables so DSM accounting is varied.
        if i % 3 == 0 {
            l.var_at(format!("v{i}"), Value::Int(0), i % n_procs);
        } else {
            l.var(format!("v{i}"), Value::Int(0));
        }
    }
    l
}

fn random_op(rng: &mut Prng, n_procs: usize, n_vars: usize) -> (ProcId, Op) {
    let p = ProcId(rng.below(n_procs));
    let var = VarId(rng.below(n_vars));
    let val = rng.int_in(-4, 5);
    let op = match rng.below(8) {
        // Write-heavy mix: invalidations are the interesting path.
        0 | 1 => Op::Read(var),
        2..=4 => Op::write(var, val),
        5 | 6 => Op::cas(var, val, val + 1),
        _ => Op::Faa { var, delta: val },
    };
    (p, op)
}

/// Full-state agreement check after each step for one configuration.
fn run_differential(protocol: Protocol, n_procs: usize, n_vars: usize, seed: u64, steps: usize) {
    let l = layout(n_vars, n_procs);
    let mut new = Memory::new(&l, n_procs, protocol);
    let mut old = RefMemory::new(&l, n_procs, protocol);
    let mut rng = Prng::new(seed);
    for step in 0..steps {
        let (p, op) = random_op(&mut rng, n_procs, n_vars);
        let ctx = format!(
            "{protocol:?} n_procs={n_procs} n_vars={n_vars} seed={seed} step={step} {p} {op}"
        );
        assert_eq!(
            new.would_rmr(p, &op),
            old.would_rmr(p, &op),
            "would_rmr: {ctx}"
        );
        let a = new.apply(p, &op);
        let b = old.apply(p, &op);
        // StepOutcome derives Eq: one compare covers response, rmr,
        // trivial, old, new.
        assert_eq!(a, b, "StepOutcome: {ctx}");
    }
    // Terminal state agreement: values and every per-process cache view.
    assert_eq!(new.snapshot(), old.snapshot());
    for q in 0..n_procs {
        for v in 0..n_vars {
            let var = VarId(v);
            assert_eq!(
                new.cache(ProcId(q)).mode(var),
                old.cache(ProcId(q)).mode(var),
                "cache mode diverged: {protocol:?} p{q} {var} seed={seed}"
            );
        }
    }
}

#[test]
fn directory_matches_reference_write_back() {
    for &(n_procs, n_vars) in &[(2usize, 1usize), (3, 4), (8, 16), (65, 3), (130, 8)] {
        for seed in 0..8 {
            run_differential(Protocol::WriteBack, n_procs, n_vars, seed, 2500);
        }
    }
}

#[test]
fn directory_matches_reference_write_through() {
    for &(n_procs, n_vars) in &[(2usize, 1usize), (3, 4), (8, 16), (65, 3), (130, 8)] {
        for seed in 0..8 {
            run_differential(Protocol::WriteThrough, n_procs, n_vars, seed, 2500);
        }
    }
}

#[test]
fn directory_matches_reference_dsm() {
    for &(n_procs, n_vars) in &[(2usize, 1usize), (3, 4), (8, 16), (65, 3)] {
        for seed in 0..8 {
            run_differential(Protocol::Dsm, n_procs, n_vars, seed, 2500);
        }
    }
}

/// Read-heavy sequences hit the WB downgrade path more often; cover it
/// separately so the mix above can stay write-heavy.
#[test]
fn directory_matches_reference_read_heavy() {
    for protocol in [Protocol::WriteBack, Protocol::WriteThrough] {
        let n_procs = 16;
        let n_vars = 4;
        let l = layout(n_vars, n_procs);
        let mut new = Memory::new(&l, n_procs, protocol);
        let mut old = RefMemory::new(&l, n_procs, protocol);
        let mut rng = Prng::new(99);
        for _ in 0..20_000 {
            let p = ProcId(rng.below(n_procs));
            let var = VarId(rng.below(n_vars));
            let op = if rng.below(10) == 0 {
                Op::write(var, rng.int_in(0, 3))
            } else {
                Op::Read(var)
            };
            assert_eq!(
                new.apply(p, &op),
                old.apply(p, &op),
                "{protocol:?} {p} {op}"
            );
        }
    }
}
