//! E15 — crash robustness: `A_f` vs the baselines under fault injection.
//!
//! The RME individual-crash model (a crash wipes a process's pc,
//! registers, and cache lines; shared memory survives) stresses exactly
//! the assumption classic locks lean on: that a passage, once started,
//! runs to completion. This experiment asks two questions per lock:
//!
//! 1. **Does Mutual Exclusion survive crashes outside the CS?** Answered
//!    exhaustively: the crash-augmented model checker explores every
//!    interleaving of every one-crash adversary at small n, m. (For `A_f`
//!    this holds only because the writer's recovery section burns the
//!    interrupted epoch — without it, stale reader helper CASes replay
//!    into the reused sequence number and break MX; see DESIGN.md,
//!    "Crash-fault model".)
//! 2. **What does recovery cost, and who pays for abandoned state?**
//!    Answered statistically: seeded random schedules with seeded random
//!    crash plans, recording completed passages, recovery-window RMRs,
//!    and — when abandoned increments wedge the lock — the stall
//!    watchdog's diagnosis of who spins on what.
//!
//! On any safety violation the counterexample is shrunk to a locally
//! minimal schedule and persisted under `results/` as a replayable trace
//! artifact. All rows are deterministic for the fixed seeds.

use bench::{par, Table};
use ccsim::{run_random_with_faults, FaultPlan, Prng, Protocol, RunConfig, RunError, Sim};
use modelcheck::{explore_par, shrink, CheckConfig, TraceArtifact};
use rwcore::{af_world, centralized_world, faa_world, AfConfig, FPolicy};

const SEED: u64 = 0xE15_C4A5;

#[derive(Copy, Clone, Debug)]
enum Lock {
    Af,
    Centralized,
    Faa,
}

impl Lock {
    const ALL: [Lock; 3] = [Lock::Af, Lock::Centralized, Lock::Faa];

    fn name(self) -> &'static str {
        match self {
            Lock::Af => "A_f (f=1)",
            Lock::Centralized => "centralized CAS",
            Lock::Faa => "FAA",
        }
    }

    fn world(self, readers: usize, writers: usize) -> Sim {
        let cfg = AfConfig {
            readers,
            writers,
            policy: FPolicy::One,
        };
        match self {
            Lock::Af => af_world(cfg, Protocol::WriteBack).sim,
            Lock::Centralized => centralized_world(readers, writers, Protocol::WriteBack).sim,
            Lock::Faa => faa_world(readers, writers, Protocol::WriteBack).sim,
        }
    }
}

/// Exhaustive crash-augmented safety check for one lock. The whole
/// worker pool attacks one state space at a time — the budget-2 spaces
/// dwarf the budget-1 ones, so parallelism inside the explorer beats
/// parallelism across rows.
fn check_row(lock: Lock, budget: u32) -> [String; 5] {
    let (n, m) = (2usize, 1usize);
    let result = explore_par(
        || lock.world(n, m),
        &CheckConfig {
            passages_per_proc: 1,
            crash_budget: budget,
            max_states: 200_000_000,
            ..Default::default()
        },
        par::worker_count(usize::MAX),
    );
    match result {
        Ok(r) => [
            lock.name().to_string(),
            format!("model check n={n} m={m} crashes<={budget}"),
            if r.complete {
                "MX SAFE (complete)"
            } else {
                "MX SAFE (capped)"
            }
            .to_string(),
            format!("{} states", r.states_explored),
            format!("{} crash transitions", r.crash_transitions),
        ],
        Err(e) => {
            // Shrink and persist the counterexample as a replayable trace.
            let out = shrink(
                || lock.world(n, m),
                e.schedule(),
                |sim| sim.check_mutual_exclusion().is_err(),
            );
            let artifact = TraceArtifact {
                world: format!("{} n={n} m={m} writeback", lock.name()),
                violation: e.describe(),
                fingerprint: out.fingerprint,
                schedule: out.schedule,
            };
            let detail = match artifact.write_to("results") {
                Ok(path) => format!("trace: {}", path.display()),
                Err(io) => format!("trace write failed: {io}"),
            };
            [
                lock.name().to_string(),
                format!("model check n={n} m={m} crashes<={budget}"),
                "MX VIOLATION".to_string(),
                format!("minimal schedule: {} entries", artifact.schedule.len()),
                detail,
            ]
        }
    }
}

/// Randomized run with seeded crash injection for one lock.
fn stress_row(lock: Lock, seed: u64) -> [String; 5] {
    let (n, m) = (6usize, 2usize);
    let mut sim = lock.world(n, m);
    let plan = FaultPlan::random(seed, n + m, 2, 40);
    let mut rng = Prng::new(seed);
    let rc = RunConfig {
        passages_per_proc: 3,
        max_steps: 300_000,
        stall_after: 30_000,
    };
    let outcome = run_random_with_faults(&mut sim, &mut rng, &rc, &plan);

    let stats: Vec<_> = sim.proc_ids().map(|p| sim.stats(p)).collect();
    let passages: u64 = stats.iter().map(|s| s.passages).sum();
    let crashes: u64 = stats.iter().map(|s| s.crashes).sum();
    let recovery_rmrs: u64 = stats.iter().map(|s| s.recovery_rmrs).sum();
    let total_rmrs: u64 = stats.iter().map(|s| s.rmrs()).sum();

    let verdict = match &outcome {
        Ok(_) => "completed".to_string(),
        Err(RunError::MutualExclusion(v)) => format!("MX VIOLATION: {v}"),
        Err(RunError::Stalled { spinners, .. }) => {
            // The watchdog's diagnosis: abandoned state wedges the lock.
            let who: Vec<String> = spinners
                .iter()
                .take(3)
                .map(|(p, v)| format!("{p} on v{}", v.0))
                .collect();
            let more = spinners.len().saturating_sub(3);
            if more > 0 {
                format!("stalled ({}, +{more} more)", who.join(", "))
            } else {
                format!("stalled ({})", who.join(", "))
            }
        }
        Err(RunError::StepBudgetExhausted { .. }) => "step budget exhausted".to_string(),
    };
    [
        lock.name().to_string(),
        format!("random n={n} m={m} seed={seed:#x} 2 crashes"),
        verdict,
        format!("{passages} passages, {crashes} crashes"),
        format!("{recovery_rmrs} recovery RMRs of {total_rmrs}"),
    ]
}

fn main() {
    let mut table = Table::new(["lock", "run", "verdict", "progress", "detail"]);

    // Part 1: exhaustive crash-augmented model checks. Each row runs the
    // parallel explorer with the full worker pool, so rows go in order.
    for &lock in &Lock::ALL {
        for budget in [1u32, 2] {
            table.row(check_row(lock, budget));
        }
    }

    // Part 2: seeded random schedules with seeded random crash plans.
    let stresses: Vec<(Lock, u64)> = Lock::ALL
        .iter()
        .flat_map(|&l| (0..4u64).map(move |i| (l, SEED + i)))
        .collect();
    for row in par::par_map(&stresses, |&(lock, seed)| stress_row(lock, seed)) {
        table.row(row);
    }

    println!("E15 — crash robustness under the RME individual-crash model\n");
    table.print();
    println!(
        "\nReading the table: all three locks keep Mutual Exclusion under\n\
         every one- and two-crash adversary that strikes outside the CS\n\
         (A_f needs its epoch-burning writer recovery for this — the\n\
         crash-augmented checker finds a real violation without it). None\n\
         of them is *recoverable*, though: the random-stress rows show\n\
         crashes abandoning counter increments and lock claims, and the\n\
         stall watchdog names the processes left spinning on the wedged\n\
         variables. Recovery RMRs are the re-warming cost of the crashed\n\
         processes' passages. On a violation, a shrunk replayable trace\n\
         is written to results/ (replay: see examples/verify_your_lock.rs)."
    );
}
