//! E17 — system-wide crashes: `A_f` under the RME system-crash model,
//! where one event (`Sim::crash_all`) wipes every process's local state
//! and cache at once. Three parts: (1) exhaustive crash-all-augmented
//! model checks, with the bounded-abort and post-crash-acquirability
//! invariants probed at every reachable configuration; (2) the same
//! adversary against a deliberately broken recovery (the writer re-enters
//! with the crashed passage's `WSEQ`), which must produce a replayable
//! counterexample; (3) deterministic recovery-window RMR accounting —
//! the cost of re-warming the whole process set after a crash-all —
//! compared against the cited recoverable-mutex bounds (Chan–Woelfel's
//! Ω(log n / log log n) per-passage lower bound, arXiv:2106.03185, and
//! the Jayanti–Jayanti–Joshi O(log n) worst-case upper bound lineage,
//! arXiv:2302.00748).

use super::prelude::*;
use crate::par;
use ccsim::{run_round_robin, RunConfig};
use modelcheck::{
    bounded_abort_invariant, explore_par, explore_par_with, post_crash_acquirability_invariant,
    shrink, CheckConfig, TraceArtifact,
};
use rwcore::{af_world, af_world_seq_reuse_bug};

/// Crash-all-augmented exhaustive check rows, with and without the
/// per-state invariant probes.
fn check_rows(ctx: &Ctx) -> (Vec<[String; 5]>, usize, usize) {
    let mut rows = Vec::new();
    let mut safe = 0usize;
    let mut total = 0usize;

    // Row 1: the full fault-tolerance contract at n=1, m=1 — MX plus
    // bounded abort plus post-crash acquirability at every reachable
    // configuration under one crash-all and one abort.
    let bounded_abort = bounded_abort_invariant(400);
    let acquirable = post_crash_acquirability_invariant(4_000);
    let small = explore_par_with(
        || af_world(AfConfig::new(1, 1), Protocol::WriteBack).sim,
        &CheckConfig {
            passages_per_proc: 1,
            crash_all_budget: 1,
            abort_budget: 1,
            ..Default::default()
        },
        par::worker_count(usize::MAX),
        move |sim| {
            bounded_abort(sim)?;
            acquirable(sim)
        },
    );
    total += 1;
    match small {
        Ok(r) => {
            safe += 1;
            rows.push([
                "model check + invariants".into(),
                "n=1 m=1, crash_all<=1, aborts<=1".into(),
                if r.complete {
                    "SAFE (complete)"
                } else {
                    "SAFE (capped)"
                }
                .into(),
                format!("{} states", r.states_explored),
                format!("{} crash transitions", r.crash_transitions),
            ]);
        }
        Err(e) => rows.push([
            "model check + invariants".into(),
            "n=1 m=1, crash_all<=1, aborts<=1".into(),
            "VIOLATION".into(),
            e.describe(),
            format!("{} entries", e.schedule().len()),
        ]),
    }

    // Row 2 (full mode only — the space is the bulk of the runtime):
    // MX across the n=2, m=1 crash-all + abort space.
    if !ctx.smoke() {
        let wide = explore_par(
            || af_world(AfConfig::new(2, 1), Protocol::WriteBack).sim,
            &CheckConfig {
                passages_per_proc: 1,
                crash_all_budget: 1,
                abort_budget: 1,
                max_states: 200_000_000,
                ..Default::default()
            },
            par::worker_count(usize::MAX),
        );
        total += 1;
        match wide {
            Ok(r) => {
                safe += 1;
                rows.push([
                    "model check (MX)".into(),
                    "n=2 m=1, crash_all<=1, aborts<=1".into(),
                    if r.complete {
                        "SAFE (complete)"
                    } else {
                        "SAFE (capped)"
                    }
                    .into(),
                    format!("{} states", r.states_explored),
                    format!("{} crash transitions", r.crash_transitions),
                ]);
            }
            Err(e) => rows.push([
                "model check (MX)".into(),
                "n=2 m=1, crash_all<=1, aborts<=1".into(),
                "VIOLATION".into(),
                e.describe(),
                format!("{} entries", e.schedule().len()),
            ]),
        }
    }

    (rows, safe, total)
}

/// The negative control: the same adversary must catch the recovery with
/// the epoch burn removed. Returns the row and whether it was caught.
fn catch_row() -> ([String; 5], bool) {
    let factory = || af_world_seq_reuse_bug(AfConfig::new(1, 1), Protocol::WriteBack).sim;
    let result = explore_par(
        factory,
        &CheckConfig {
            passages_per_proc: 2,
            crash_all_budget: 1,
            ..Default::default()
        },
        par::worker_count(usize::MAX),
    );
    match result {
        Err(e) => {
            let out = shrink(factory, e.schedule(), |sim| {
                sim.check_mutual_exclusion().is_err()
            });
            let artifact = TraceArtifact {
                world: "af-seq-reuse-bug n=1 m=1 writeback".into(),
                violation: e.describe(),
                fingerprint: out.fingerprint,
                schedule: out.schedule,
            };
            let detail = match artifact.write_to("results") {
                Ok(path) => format!("trace: {}", path.display()),
                Err(io) => format!("trace write failed: {io}"),
            };
            (
                [
                    "negative control".into(),
                    "seq-reuse bug, n=1 m=1, 2 passages, crash_all<=1".into(),
                    "VIOLATION CAUGHT".into(),
                    format!("minimal schedule: {} entries", artifact.schedule.len()),
                    detail,
                ],
                true,
            )
        }
        Ok(r) => (
            [
                "negative control".into(),
                "seq-reuse bug, n=1 m=1, 2 passages, crash_all<=1".into(),
                "MISSED (explored safe)".into(),
                format!("{} states", r.states_explored),
                String::new(),
            ],
            false,
        ),
    }
}

/// Deterministic recovery-window measurement at size `n`: warm every
/// process through one passage round-robin, crash the whole system, then
/// drive one more passage each and account the recovery-window RMRs.
fn recovery_row(n: usize) -> ([String; 5], f64, bool) {
    let cfg = AfConfig {
        readers: n,
        writers: 1,
        policy: FPolicy::One,
    };
    let mut world = af_world(cfg, Protocol::WriteBack);
    let rc = RunConfig {
        passages_per_proc: 1,
        max_steps: 10_000_000,
        stall_after: 1_000_000,
    };
    run_round_robin(&mut world.sim, &rc).expect("failure-free warmup must complete");
    world.sim.crash_all();
    let recovered = run_round_robin(&mut world.sim, &rc).is_ok();

    let stats: Vec<_> = world.sim.proc_ids().map(|p| world.sim.stats(p)).collect();
    let total_recovery: u64 = stats.iter().map(|s| s.recovery_rmrs).sum();
    let max_recovery = stats.iter().map(|s| s.recovery_rmrs).max().unwrap_or(0);
    let per_proc = total_recovery as f64 / stats.len() as f64;
    (
        [
            "recovery window".into(),
            format!("n={n} m=1 f=1, crash-all between passages"),
            if recovered {
                "recovered (all passages complete)"
            } else {
                "WEDGED"
            }
            .into(),
            format!("{total_recovery} recovery RMRs, max {max_recovery}/proc"),
            format!("{per_proc:.2} avg RMRs/proc"),
        ],
        max_recovery as f64,
        recovered,
    )
}

/// Registry entry for the system-crash suite.
pub(crate) struct E17;

impl Experiment for E17 {
    fn id(&self) -> &'static str {
        "e17_system_crash"
    }

    fn title(&self) -> &'static str {
        "system-wide crashes: exhaustive safety + recovery-window RMRs"
    }

    fn claim(&self) -> &'static str {
        "crash-all adversaries never break MX or strand the lock (burned epochs are essential), and per-process recovery costs O(log n) RMRs — between the cited RME lower and upper bounds"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let mut table = Table::new(["part", "config", "verdict", "progress", "detail"]);

        let (rows, safe, checks_total) = check_rows(ctx);
        for row in rows {
            table.row(row);
        }
        let (row, caught) = catch_row();
        table.row(row);

        let sizes: &[usize] = if ctx.smoke() {
            &[2, 4]
        } else {
            &[2, 4, 8, 16, 32]
        };
        let recovery = par_map(sizes, |&n| recovery_row(n));
        let mut recovered_all = 0usize;
        let mut max_ratio = 0f64;
        for (&n, (row, max_recovery, recovered)) in sizes.iter().zip(recovery.iter()) {
            table.row(row.clone());
            recovered_all += usize::from(*recovered);
            max_ratio = max_ratio.max(max_recovery / (log2(n as f64) + 1.0));
        }

        let mut report = Report::new(self, ctx);
        report
            .section("crash-all adversaries and recovery windows", table)
            .check(Check::all(
                "exhaustive: MX + bounded abort + post-crash acquirability hold",
                safe,
                checks_total,
            ))
            .check(Check::all(
                "negative control: the epoch-reuse recovery bug is caught",
                usize::from(caught),
                1,
            ))
            .check(Check::all(
                "every crash-all recovery completes its next passage round",
                recovered_all,
                sizes.len(),
            ))
            .check(Check::le_f64(
                "max per-process recovery RMRs within c·(log2(n)+1)",
                max_ratio,
                24.0,
            ))
            .notes(
                "Reading the table: a crash-all wipes every pc and cache line in\n\
                 one event; the recovery window runs from the crash to each\n\
                 process's next completed passage, and its RMRs are accounted\n\
                 separately (ProcStats::recovery_rmrs — the cost of re-warming a\n\
                 cold cache plus re-running the passage). The invariant-augmented\n\
                 model check proves the recoverable reader (stale-counter drain)\n\
                 and the writer's epoch burn leave no reachable configuration\n\
                 with a stranded lock; the negative control shows the same\n\
                 adversary catching the recovery with the burn removed — the\n\
                 shrunk trace lands in results/ and replays through\n\
                 examples/verify_your_lock.rs --replay. The measured per-process\n\
                 recovery cost grows like log2(n) (the f-array re-walk at f=1),\n\
                 sitting between Chan–Woelfel's Ω(log n/log log n) per-passage\n\
                 RME lower bound (arXiv:2106.03185) and the O(log n) worst-case\n\
                 upper bounds of the Jayanti–Jayanti–Joshi lineage\n\
                 (arXiv:2302.00748).",
            );
        report
    }
}
