//! RMR measurement scenarios over simulated worlds (experiments E2, E3,
//! E6, E10).
//!
//! All scenarios drive a fresh world so caches start cold and report RMRs
//! per passage, split by section, under schedules chosen to exercise the
//! paper's claimed bounds.

use ccsim::{run_round_robin, run_solo, Phase, ProcId, Protocol, Role, RunConfig, Sim};
use rwcore::{af_world, AfConfig, FPolicy, LockRegistry, SimInstance};

/// RMR measurements for one `A_f` configuration.
#[derive(Copy, Clone, Debug)]
pub struct AfRmrSample {
    /// Readers `n`.
    pub n: usize,
    /// Groups actually maintained (`≈ f(n)`).
    pub groups: usize,
    /// Group size `K`.
    pub group_size: usize,
    /// Writer entry+exit RMRs, first passage from cold caches, running
    /// solo (the Θ(f(n)) claim, Lemma 17).
    pub writer_solo_rmrs: u64,
    /// Writer passage RMRs after all readers completed one passage each
    /// (counters dirty in reader caches — the realistic case).
    pub writer_post_reader_rmrs: u64,
    /// Reader entry+exit RMRs, first passage from cold caches, solo
    /// (the Θ(log(n/f)) claim).
    pub reader_solo_rmrs: u64,
    /// Worst per-reader mean passage RMRs when all `n` readers pass
    /// concurrently (round-robin), 2 passages each.
    pub reader_concurrent_max_rmrs: u64,
    /// Reader passage RMRs on the wait path: the reader arrives while a
    /// writer holds the CS, waits, and completes after the writer exits.
    pub reader_wait_path_rmrs: u64,
}

/// Total passage RMRs (entry + CS + exit phases) for `p` since the last
/// stats reset.
fn passage_rmrs(sim: &Sim, p: ProcId) -> u64 {
    sim.stats(p).rmrs_in(Phase::Entry)
        + sim.stats(p).rmrs_in(Phase::Cs)
        + sim.stats(p).rmrs_in(Phase::Exit)
}

/// Run `p` solo through exactly one complete passage; return its RMRs.
fn solo_passage(sim: &mut Sim, p: ProcId) -> u64 {
    sim.reset_stats();
    let target = sim.stats(p).passages + 1;
    run_solo(sim, p, 10_000_000, |s| s.stats(p).passages >= target)
        .expect("solo passage must complete");
    passage_rmrs(sim, p)
}

/// Measure all [`AfRmrSample`] scenarios for one configuration.
///
/// # Panics
/// Panics if any scenario fails to complete (a liveness bug).
pub fn measure_af(cfg: AfConfig, protocol: Protocol) -> AfRmrSample {
    // Scenario 1: solo writer, cold caches.
    let mut world = af_world(cfg, protocol);
    let w0 = world.pids.writer(0);
    let writer_solo_rmrs = solo_passage(&mut world.sim, w0);

    // Scenario 2: solo reader, cold caches.
    let mut world = af_world(cfg, protocol);
    let r0 = world.pids.reader(0);
    let reader_solo_rmrs = solo_passage(&mut world.sim, r0);

    // Scenario 3: writer after all readers passed once (dirty counters).
    let mut world = af_world(cfg, protocol);
    for r in 0..cfg.readers {
        let pid = world.pids.reader(r);
        run_solo(&mut world.sim, pid, 10_000_000, |s| {
            s.stats(pid).passages >= 1
        })
        .expect("reader warmup");
    }
    let w0 = world.pids.writer(0);
    let writer_post_reader_rmrs = solo_passage(&mut world.sim, w0);

    // Scenario 4: all processes pass concurrently; take the worst
    // per-reader mean. The round-robin runner schedules *every* process
    // to its quota, writers included — the writers' passages perturb the
    // schedule (readers may take the wait path) but RMR stats are
    // per-process, so the reader rows count only reader RMRs. This makes
    // the scenario the "realistic mix" number rather than a reader-only
    // ideal; the reader-only cost is scenario 2 (solo).
    let mut world = af_world(cfg, protocol);
    world.sim.reset_stats();
    let rc = RunConfig {
        passages_per_proc: 2,
        ..Default::default()
    };
    run_round_robin(&mut world.sim, &rc).expect("concurrent passages");
    let reader_concurrent_max_rmrs = (0..cfg.readers)
        .map(|r| {
            let pid = world.pids.reader(r);
            let passages = world.sim.stats(pid).passages;
            // The divisor below is only meaningful if the run really
            // completed the reader's quota (the runner errors on stalls,
            // so anything else is a harness bug).
            assert_eq!(
                passages, rc.passages_per_proc,
                "reader {r} finished {passages} of {} passages",
                rc.passages_per_proc
            );
            passage_rmrs(&world.sim, pid) / passages
        })
        .max()
        .unwrap_or(0);

    // Scenario 5: reader arrives while the writer holds the CS.
    let mut world = af_world(cfg, protocol);
    let w0 = world.pids.writer(0);
    let r0 = world.pids.reader(0);
    run_solo(&mut world.sim, w0, 10_000_000, |s| s.phase(w0) == Phase::Cs)
        .expect("writer reaches CS");
    world.sim.reset_stats();
    // Reader runs until it blocks (cannot reach CS while writer is in).
    let entered = run_solo(&mut world.sim, r0, 50_000, |s| s.phase(r0) == Phase::Cs);
    assert!(entered.is_none(), "reader must wait while writer is in CS");
    // Writer completes; reader then finishes its passage.
    run_solo(&mut world.sim, w0, 10_000_000, |s| {
        s.phase(w0) == Phase::Remainder
    })
    .expect("writer completes");
    run_solo(&mut world.sim, r0, 10_000_000, |s| {
        s.stats(r0).passages >= 1
    })
    .expect("waiting reader completes after writer");
    let reader_wait_path_rmrs = passage_rmrs(&world.sim, r0);

    AfRmrSample {
        n: cfg.readers,
        groups: cfg.occupied_groups(),
        group_size: cfg.group_size(),
        writer_solo_rmrs,
        writer_post_reader_rmrs,
        reader_solo_rmrs,
        reader_concurrent_max_rmrs,
        reader_wait_path_rmrs,
    }
}

/// Solo passage RMRs for one [`LockRegistry`] entry (E2/E3 registry
/// sections): cold-cache reader and writer passages, roles discovered
/// from the sim itself so the measurement needs nothing but the
/// registry id.
#[derive(Clone, Debug)]
pub struct LockSoloSample {
    /// The registry id of the measured lock.
    pub id: &'static str,
    /// Cold solo reader passage RMRs; `Err` carries the reason the
    /// passage did not complete (a lock whose readers park behind a
    /// peer, or a budget bust) instead of wedging the sweep.
    pub reader_solo_rmrs: Result<u64, String>,
    /// Cold solo writer passage RMRs, same convention.
    pub writer_solo_rmrs: Result<u64, String>,
}

/// Run `p` solo through one complete cold passage; `Err` on a stall.
fn try_solo_passage(sim: &mut Sim, p: ProcId) -> Result<u64, String> {
    sim.reset_stats();
    let target = sim.stats(p).passages + 1;
    match run_solo(sim, p, 10_000_000, |s| s.stats(p).passages >= target) {
        Some(_) => Ok(passage_rmrs(sim, p)),
        None => Err(format!("{p} stalled solo")),
    }
}

/// Measure cold solo reader and writer passages for every registered
/// lock with a simulated twin, in registration order — newly registered
/// locks get an RMR row with no experiment edits.
pub fn measure_registry_solo(
    reg: &LockRegistry,
    readers: usize,
    writers: usize,
    protocol: Protocol,
) -> Vec<LockSoloSample> {
    reg.sim_entries()
        .map(|(id, lock)| {
            let find = |sim: &Sim, role: Role| {
                (0..sim.n_procs())
                    .map(ProcId)
                    .find(|&p| sim.role(p) == role)
                    .expect("instance fields both roles")
            };
            // Fresh world per role: both passages start from cold caches.
            let mut sim = lock.build(&SimInstance::new(readers, writers), protocol);
            let r = find(&sim, Role::Reader);
            let reader_solo_rmrs = try_solo_passage(&mut sim, r);
            let mut sim = lock.build(&SimInstance::new(readers, writers), protocol);
            let w = find(&sim, Role::Writer);
            let writer_solo_rmrs = try_solo_passage(&mut sim, w);
            LockSoloSample {
                id,
                reader_solo_rmrs,
                writer_solo_rmrs,
            }
        })
        .collect()
}

/// Mutex (E6) measurement: solo passage RMRs and contended mean passage
/// RMRs for an m-process tournament world.
#[derive(Copy, Clone, Debug)]
pub struct MutexRmrSample {
    /// Contenders `m`.
    pub m: usize,
    /// Tree levels `⌈log2 m⌉`.
    pub levels: u32,
    /// RMRs of one solo passage from cold caches.
    pub solo_rmrs: u64,
    /// Worst mean passage RMRs with all m contending round-robin.
    pub contended_max_rmrs: u64,
}

/// Measure the tournament mutex world (experiment E6).
pub fn measure_mutex(m: usize, protocol: Protocol) -> MutexRmrSample {
    let mut sim = wmutex::mutex_world(m, protocol);
    let p0 = ProcId(0);
    let solo_rmrs = solo_passage(&mut sim, p0);

    let mut sim = wmutex::mutex_world(m, protocol);
    let rc = RunConfig {
        passages_per_proc: 3,
        ..Default::default()
    };
    run_round_robin(&mut sim, &rc).expect("contended mutex run");
    let contended_max_rmrs = (0..m)
        .map(|i| {
            let pid = ProcId(i);
            passage_rmrs(&sim, pid) / sim.stats(pid).passages.max(1)
        })
        .max()
        .unwrap_or(0);

    MutexRmrSample {
        m,
        levels: m.next_power_of_two().trailing_zeros(),
        solo_rmrs,
        contended_max_rmrs,
    }
}

/// Concurrent-Entering (E10) measurement: the maximum number of entry
/// section *steps* a reader takes while all writers are in the remainder
/// section — the paper's constant `b` for the configuration.
pub fn measure_concurrent_entering(cfg: AfConfig, protocol: Protocol) -> u64 {
    let mut world = af_world(cfg, protocol);
    // All readers interleave entry sections round-robin; no writer moves.
    let reader_pids: Vec<ProcId> = world.pids.reader_pids().collect();
    let mut max_entry_steps = 0u64;
    // Interleave: repeatedly step each reader not yet in CS.
    let mut remaining: Vec<ProcId> = reader_pids.clone();
    let mut guard = 0u64;
    while !remaining.is_empty() {
        guard += 1;
        assert!(
            guard < 10_000_000,
            "Concurrent Entering violated (no bound)"
        );
        remaining.retain(|&r| {
            if world.sim.phase(r) == Phase::Cs {
                return false;
            }
            world.sim.step(r);
            world.sim.phase(r) != Phase::Cs
        });
    }
    for &r in &reader_pids {
        max_entry_steps = max_entry_steps.max(
            world.sim.stats(r).ops_in(Phase::Entry) + 1, /* begin-passage step */
        );
    }
    max_entry_steps
}

/// The named `(n, policy)` sweep used by several experiment binaries.
pub fn standard_sweep() -> Vec<(usize, FPolicy)> {
    let mut out = Vec::new();
    for n in [8usize, 16, 32, 64, 128, 256, 512, 1024] {
        for policy in [FPolicy::One, FPolicy::LogN, FPolicy::SqrtN, FPolicy::Linear] {
            out.push((n, policy));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn af_sample_shapes() {
        let cfg = AfConfig {
            readers: 16,
            writers: 1,
            policy: FPolicy::One,
        };
        let s = measure_af(cfg, Protocol::WriteBack);
        assert_eq!(s.groups, 1);
        assert!(s.writer_solo_rmrs > 0);
        assert!(s.reader_solo_rmrs > 0);
        assert!(s.reader_wait_path_rmrs >= s.reader_solo_rmrs / 2);
    }

    #[test]
    fn writer_rmrs_grow_with_f() {
        let base = measure_af(
            AfConfig {
                readers: 64,
                writers: 1,
                policy: FPolicy::One,
            },
            Protocol::WriteBack,
        );
        let lin = measure_af(
            AfConfig {
                readers: 64,
                writers: 1,
                policy: FPolicy::Linear,
            },
            Protocol::WriteBack,
        );
        assert!(
            lin.writer_solo_rmrs > 4 * base.writer_solo_rmrs,
            "f=n ({}) vs f=1 ({})",
            lin.writer_solo_rmrs,
            base.writer_solo_rmrs
        );
        assert!(lin.reader_solo_rmrs < base.reader_solo_rmrs);
    }

    #[test]
    fn mutex_rmrs_grow_logarithmically() {
        let s4 = measure_mutex(4, Protocol::WriteBack);
        let s64 = measure_mutex(64, Protocol::WriteBack);
        assert_eq!(s4.levels, 2);
        assert_eq!(s64.levels, 6);
        // Tripling the levels should roughly triple solo RMRs, and
        // certainly not square them.
        assert!(s64.solo_rmrs > s4.solo_rmrs);
        assert!(s64.solo_rmrs < 8 * s4.solo_rmrs);
    }

    #[test]
    fn concurrent_entering_bound_is_logarithmic() {
        let b16 = measure_concurrent_entering(
            AfConfig {
                readers: 16,
                writers: 1,
                policy: FPolicy::One,
            },
            Protocol::WriteBack,
        );
        let b256 = measure_concurrent_entering(
            AfConfig {
                readers: 256,
                writers: 1,
                policy: FPolicy::One,
            },
            Protocol::WriteBack,
        );
        assert!(b16 > 0 && b256 > 0);
        // log2(256)/log2(16) = 2: allow generous slack but rule out linear.
        assert!(
            b256 <= 4 * b16,
            "entry bound should grow ~log: b16={b16}, b256={b256}"
        );
    }

    #[test]
    fn measure_af_tiny_config_covers_both_protocols() {
        // A seconds-scale smoke of the full measurement path (all five
        // scenarios) at the smallest interesting size, so `cargo test`
        // covers it without running a sweep. Values are exact RMR counts
        // from the deterministic simulator, so equality is stable.
        for protocol in [Protocol::WriteBack, Protocol::WriteThrough] {
            let cfg = AfConfig {
                readers: 4,
                writers: 1,
                policy: FPolicy::One,
            };
            let s = measure_af(cfg, protocol);
            assert_eq!(s.groups, 1);
            assert_eq!(s.group_size, 4);
            assert!(s.writer_solo_rmrs > 0);
            // Re-measuring reproduces the sample bit-for-bit (the
            // property the golden-file gate depends on).
            let s2 = measure_af(cfg, protocol);
            assert_eq!(s.writer_solo_rmrs, s2.writer_solo_rmrs);
            assert_eq!(s.reader_solo_rmrs, s2.reader_solo_rmrs);
            assert_eq!(s.writer_post_reader_rmrs, s2.writer_post_reader_rmrs);
            assert_eq!(s.reader_concurrent_max_rmrs, s2.reader_concurrent_max_rmrs);
            assert_eq!(s.reader_wait_path_rmrs, s2.reader_wait_path_rmrs);
            // The wait path (reader arriving during a writer passage) is
            // never cheaper than half the cold solo passage.
            assert!(s.reader_wait_path_rmrs >= s.reader_solo_rmrs / 2);
        }
    }
}
