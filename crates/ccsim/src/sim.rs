//! The simulation world: processes + memory + metrics + trace.

use crate::fxhash::{mix64, FxHasher};
use crate::memory::Memory;
use crate::op::Op;
use crate::program::{Phase, Program, Role, Step};
use crate::trace::{StepKind, StepRecord, Trace};
use crate::value::{ProcId, Value, VarId};
use std::error::Error;
use std::fmt;

/// Salt for per-process Zobrist signatures (the value-slot counterpart
/// lives in `memory.rs` with a different salt).
const PROC_SALT: u64 = 0x5eed_0000_0000_0002;

/// Salt for the *index-free* member signatures of the symmetry-quotient
/// canonical fingerprint ([`Sim::fingerprint_canonical`]). Distinct from
/// [`PROC_SALT`] so a canonical member bundle can never collide with a
/// concrete process-slot signature.
const MEMBER_SALT: u64 = 0x5eed_0000_0000_0003;

/// Sentinel hashed in place of a [`Value::Proc`] self-reference inside a
/// member bundle: "this slot holds *its own owner's* id" is the
/// index-free fact, whichever concrete process that is.
const SELF_REF_SENTINEL: u64 = 0x5e1f_5e1f_5e1f_5e1f;

/// The Zobrist signature of "process `i` has this local state": the
/// program's 64-bit digest fed through a hasher *seeded* by the process
/// index. The sim's process fingerprint is the XOR of one signature per
/// process, so a step or crash of one process is an O(1) patch.
///
/// This is the *concrete* (index-salted) mix: swapping the local states
/// of two processes always changes [`Sim::fingerprint`]. The
/// symmetry-quotient mode ([`Sim::fingerprint_canonical`]) deliberately
/// drops the index salt for processes declared interchangeable in a
/// [`SymmetryClass`] and re-combines their digests as a *sorted multiset*
/// instead, so a pure swap of class members hashes identically.
///
/// In **both** mixes the digest must enter through a hasher's multiply,
/// never a bare XOR with the other terms: programs commonly implement
/// [`Program::fingerprint64`] as `mix64(small_code)`, the same family as
/// `mix64(i)`, and a plain `mix64(salt ^ mix64(i) ^ digest)` then makes
/// "process 0 in state 1" and "process 1 in state 0" produce *identical*
/// signatures (their XOR contributions cancel pairwise), silently
/// merging mirror configurations in the model checker's visited set —
/// the PR-3 injectivity regression. The canonical mode has the same
/// hazard between a member's digest and its owned-value slots, which is
/// why the bundle feeds everything through one seeded [`FxHasher`].
#[inline]
fn proc_sig(i: usize, prog: &dyn Program) -> u64 {
    use std::hash::Hasher;
    let mut h = FxHasher::with_seed(PROC_SALT ^ mix64(i as u64));
    h.write_u64(prog.fingerprint64());
    h.finish()
}

/// Append the tag-prefixed prefix-code encoding of `v` to `out` (the
/// unit of [`Sim::canonical_vec`]'s serialization). The tag determines
/// how many words follow, so concatenations parse unambiguously. When
/// the value sits in a class member's owned slot, a [`Value::Proc`]
/// reference to the owner itself is canonicalized to a dedicated tag:
/// "this slot names its own owner" is the index-free fact, whichever
/// concrete process that is (the vector analogue of
/// [`SELF_REF_SENTINEL`]).
fn encode_value(v: Value, owner: Option<ProcId>, out: &mut Vec<u64>) {
    match v {
        Value::Nil => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.push(i as u64);
        }
        Value::Pair(a, b) => {
            out.push(2);
            out.push(a as u64);
            out.push(b as u64);
        }
        Value::Proc(q) if owner == Some(q) => out.push(3),
        Value::Proc(q) => {
            out.push(4);
            out.push(q.0 as u64);
        }
        Value::Bool(b) => {
            out.push(5);
            out.push(b as u64);
        }
    }
}

/// A set of processes declared interchangeable for the symmetry-quotient
/// canonical fingerprint: permuting the *local states* of the members
/// (together with their per-member `owned` shared-variable slices) maps
/// reachable configurations to reachable configurations with identical
/// observable behaviour.
///
/// Declaring a class is a **soundness claim by the world builder**: the
/// permutation must be a true automorphism of the transition system.
/// That requires (a) the members run identical programs whose
/// [`Program::fingerprint`] is index-free (no process ids, no absolute
/// variable ids that differ between members), (b) every shared variable
/// whose value distinguishes the members appears in their `owned` slice
/// (position `k` of member `j`'s slice corresponds to position `k` of
/// every other member's slice), and (c) no *other* process or shared
/// variable observes a member's identity. See DESIGN.md "Symmetry
/// quotient" for a worked non-example: f-array tree counters fail (c) —
/// the refresh's fixed left-then-right child reads sample swapped leaves
/// at different moments, so even sibling-leaf readers are not
/// interchangeable mid-refresh.
#[derive(Clone, Debug)]
pub struct SymmetryClass {
    members: Vec<ProcId>,
    /// Per member, the shared-variable slice only it writes (parallel to
    /// `members`; all slices have equal length, position-aligned).
    owned: Vec<Vec<VarId>>,
}

impl SymmetryClass {
    /// A class of interchangeable processes with no owned shared
    /// variables (e.g. CAS-loop counter readers: all shared state they
    /// touch is common to the whole class).
    pub fn new(members: Vec<ProcId>) -> Self {
        let owned = vec![Vec::new(); members.len()];
        SymmetryClass { members, owned }
    }

    /// A class whose members each own a position-aligned slice of shared
    /// variables (member `j` owns `owned[j]`; swapping members `j` and
    /// `k` swaps the values of `owned[j][i]` and `owned[k][i]` for every
    /// position `i`).
    ///
    /// # Panics
    /// Panics if `owned` is not parallel to `members` or the slices have
    /// unequal lengths.
    pub fn with_owned(members: Vec<ProcId>, owned: Vec<Vec<VarId>>) -> Self {
        assert_eq!(
            members.len(),
            owned.len(),
            "one owned slice per class member"
        );
        if let Some(first) = owned.first() {
            assert!(
                owned.iter().all(|s| s.len() == first.len()),
                "owned slices must be position-aligned (equal lengths)"
            );
        }
        SymmetryClass { members, owned }
    }

    /// The interchangeable processes.
    pub fn members(&self) -> &[ProcId] {
        &self.members
    }

    /// The per-member owned variable slices (parallel to `members`).
    pub fn owned(&self) -> &[Vec<VarId>] {
        &self.owned
    }
}

/// Per-process execution metrics, split by passage section.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct ProcStats {
    /// Memory operations executed, per [`Phase::index`].
    pub ops_by_phase: [u64; 4],
    /// RMRs incurred, per [`Phase::index`].
    pub rmrs_by_phase: [u64; 4],
    /// Completed passages.
    pub passages: u64,
    /// Crashes suffered (see [`Sim::crash`]), including system-wide
    /// crashes ([`Sim::crash_all`]).
    pub crashes: u64,
    /// Memory operations executed while recovering (between a crash and
    /// the next completed passage). A subset of [`ProcStats::ops`].
    pub recovery_ops: u64,
    /// RMRs incurred while recovering. A subset of [`ProcStats::rmrs`] —
    /// the RMR cost of re-warming a crashed process's cold cache and
    /// re-running its passage.
    pub recovery_rmrs: u64,
    /// Completed aborts: passages withdrawn via [`Sim::abort`] that
    /// reached the remainder section (they do **not** count as
    /// [`ProcStats::passages`]).
    pub aborts: u64,
    /// Memory operations executed inside abort windows (between an abort
    /// request and the return to remainder). A subset of [`ProcStats::ops`].
    pub abort_ops: u64,
    /// RMRs incurred inside abort windows — the RMR cost of withdrawing.
    /// A subset of [`ProcStats::rmrs`].
    pub abort_rmrs: u64,
}

impl ProcStats {
    /// Total memory operations.
    pub fn ops(&self) -> u64 {
        self.ops_by_phase.iter().sum()
    }

    /// Total RMRs.
    pub fn rmrs(&self) -> u64 {
        self.rmrs_by_phase.iter().sum()
    }

    /// RMRs incurred in a given phase.
    pub fn rmrs_in(&self, phase: Phase) -> u64 {
        self.rmrs_by_phase[phase.index()]
    }

    /// Memory operations executed in a given phase.
    pub fn ops_in(&self, phase: Phase) -> u64 {
        self.ops_by_phase[phase.index()]
    }
}

/// A violation of the Mutual Exclusion property (§2.1): a writer in the CS
/// concurrently with any other process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MutualExclusionViolation {
    /// All processes that were in the CS, with their roles.
    pub occupants: Vec<(ProcId, Role)>,
}

impl fmt::Display for MutualExclusionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mutual exclusion violated; CS occupants:")?;
        for (p, r) in &self.occupants {
            write!(f, " {p}({r})")?;
        }
        Ok(())
    }
}

impl Error for MutualExclusionViolation {}

/// The simulation world: a set of [`Program`] processes sharing a
/// [`Memory`], with per-process metrics and an optional step [`Trace`].
///
/// The `Sim` itself imposes no schedule — callers (round-robin and random
/// runners, the model checker, the lower-bound adversary) decide which
/// process steps next via [`Sim::step`].
///
/// # Examples
/// ```
/// use ccsim::{Layout, Memory, Protocol, Sim, Value};
/// # use ccsim::{Op, Phase, Program, Role, Step};
/// # struct Noop;
/// # impl Program for Noop {
/// #   fn poll(&self) -> Step { Step::Remainder }
/// #   fn resume(&mut self, _: Value) {}
/// #   fn phase(&self) -> Phase { Phase::Remainder }
/// #   fn role(&self) -> Role { Role::Reader }
/// #   fn on_crash(&mut self) {}
/// #   fn fingerprint(&self, _: &mut dyn std::hash::Hasher) {}
/// #   fn clone_box(&self) -> Box<dyn Program> { Box::new(Noop) }
/// # }
/// let layout = Layout::new();
/// let mem = Memory::new(&layout, 1, Protocol::WriteBack);
/// let sim = Sim::new(mem, vec![Box::new(Noop)]);
/// assert_eq!(sim.n_procs(), 1);
/// ```
pub struct Sim {
    mem: Memory,
    procs: Vec<Box<dyn Program>>,
    stats: Vec<ProcStats>,
    /// Per process: crashed and not yet completed a fresh passage. Only
    /// affects metric attribution (recovery_* counters), never behaviour.
    recovering: Vec<bool>,
    /// Per process: abort requested ([`Sim::abort`]) and not yet back in
    /// the remainder section. Affects passage accounting (the withdrawal
    /// counts as an abort, not a passage) and the abort_* counters.
    aborting: Vec<bool>,
    /// Maintained [`proc_sig`] per process; `procs_fp` is their XOR.
    /// Re-derived only for the process that just stepped or crashed, so
    /// [`Sim::fingerprint`] is O(1) instead of a full-state rehash.
    proc_sigs: Vec<u64>,
    procs_fp: u64,
    /// Interchangeable-process classes declared by the world builder via
    /// [`Sim::declare_symmetry`]; consulted only by the canonical
    /// fingerprint ([`Sim::fingerprint_canonical`]), never by stepping.
    symmetry: Vec<SymmetryClass>,
    /// `owned_mask[v]` — variable `v` appears in some class member's
    /// owned slice (derived by [`Sim::declare_symmetry`]; lets the
    /// canonical serialization skip owned slots in O(1) per variable).
    owned_mask: Vec<bool>,
    /// `class_member[p]` — process `p` belongs to some declared class.
    class_member: Vec<bool>,
    trace: Option<Trace>,
    steps: u64,
}

impl Sim {
    /// Create a world from a memory and its processes.
    ///
    /// # Panics
    /// Panics if the memory was not created with exactly
    /// `procs.len()` caches.
    pub fn new(mem: Memory, procs: Vec<Box<dyn Program>>) -> Self {
        assert_eq!(
            mem.n_procs(),
            procs.len(),
            "memory must have one cache per process"
        );
        let n = procs.len();
        let proc_sigs: Vec<u64> = procs
            .iter()
            .enumerate()
            .map(|(i, p)| proc_sig(i, &**p))
            .collect();
        let procs_fp = proc_sigs.iter().fold(0u64, |acc, s| acc ^ s);
        let n_vars = mem.n_vars();
        Sim {
            mem,
            procs,
            stats: vec![ProcStats::default(); n],
            recovering: vec![false; n],
            aborting: vec![false; n],
            proc_sigs,
            procs_fp,
            symmetry: Vec::new(),
            owned_mask: vec![false; n_vars],
            class_member: vec![false; n],
            trace: None,
            steps: 0,
        }
    }

    /// Re-derive process `p`'s Zobrist signature after its local state
    /// changed (a resume or a crash) and patch the maintained XOR.
    fn refresh_proc_sig(&mut self, p: ProcId) {
        let sig = proc_sig(p.0, &*self.procs[p.0]);
        self.procs_fp ^= self.proc_sigs[p.0] ^ sig;
        self.proc_sigs[p.0] = sig;
    }

    /// Enable (or disable) step tracing. Tracing is off by default; the
    /// lower-bound adversary and the knowledge analyses require it.
    pub fn set_tracing(&mut self, on: bool) {
        if on && self.trace.is_none() {
            self.trace = Some(Trace::new());
        } else if !on {
            self.trace = None;
        }
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Take the recorded trace, leaving tracing enabled with a fresh trace.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.replace(Trace::new())
    }

    /// Number of processes.
    pub fn n_procs(&self) -> usize {
        self.procs.len()
    }

    /// All process ids.
    pub fn proc_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.procs.len()).map(ProcId)
    }

    /// The shared memory (for assertions and adversary planning).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// The program of process `p`.
    pub fn program(&self, p: ProcId) -> &dyn Program {
        &*self.procs[p.0]
    }

    /// What process `p` will do when next stepped.
    pub fn poll(&self, p: ProcId) -> Step {
        self.procs[p.0].poll()
    }

    /// The phase process `p` is in.
    pub fn phase(&self, p: ProcId) -> Phase {
        self.procs[p.0].phase()
    }

    /// The role of process `p`.
    pub fn role(&self, p: ProcId) -> Role {
        self.procs[p.0].role()
    }

    /// Metrics for process `p`.
    pub fn stats(&self, p: ProcId) -> ProcStats {
        self.stats[p.0]
    }

    /// Reset all metrics (the trace is unaffected). Useful between
    /// measurement phases of an experiment.
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = ProcStats::default();
        }
    }

    /// Total steps executed since construction.
    pub fn total_steps(&self) -> u64 {
        self.steps
    }

    /// Would stepping `p` now incur an RMR? (False for section
    /// transitions.) Pure; used by adversarial schedulers.
    pub fn would_rmr(&self, p: ProcId) -> bool {
        match self.poll(p) {
            Step::Op(op) => self.mem.would_rmr(p, &op),
            _ => false,
        }
    }

    /// The pending memory operation of `p`, if any.
    pub fn pending_op(&self, p: ProcId) -> Option<Op> {
        match self.poll(p) {
            Step::Op(op) => Some(op),
            _ => None,
        }
    }

    /// Execute one step of process `p` and return the record of what
    /// happened (also appended to the trace when tracing is on).
    ///
    /// Stepping a process whose poll is [`Step::Cs`] releases it into its
    /// exit section; stepping one in [`Step::Remainder`] starts a new
    /// passage.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn step(&mut self, p: ProcId) -> StepRecord {
        let phase_before = self.procs[p.0].phase();
        let role = self.procs[p.0].role();
        let kind = match self.procs[p.0].poll() {
            Step::Op(op) => {
                let out = self.mem.apply(p, &op);
                self.procs[p.0].resume(out.response);
                let st = &mut self.stats[p.0];
                st.ops_by_phase[phase_before.index()] += 1;
                if out.rmr {
                    st.rmrs_by_phase[phase_before.index()] += 1;
                }
                if self.recovering[p.0] {
                    st.recovery_ops += 1;
                    if out.rmr {
                        st.recovery_rmrs += 1;
                    }
                }
                if self.aborting[p.0] {
                    st.abort_ops += 1;
                    if out.rmr {
                        st.abort_rmrs += 1;
                    }
                }
                StepKind::Op {
                    op,
                    response: out.response,
                    old: out.old,
                    new: out.new,
                    rmr: out.rmr,
                    trivial: out.trivial,
                }
            }
            Step::Cs => {
                self.procs[p.0].resume(Value::Nil);
                StepKind::BeginExit
            }
            Step::Remainder => {
                self.procs[p.0].resume(Value::Nil);
                StepKind::BeginPassage
            }
        };
        self.refresh_proc_sig(p);
        // Passage completion: the process just returned to the remainder
        // section (usually Exit -> Remainder; Cs -> Remainder when the exit
        // section is empty, e.g. a 1-process tournament). A withdrawal
        // requested via [`Sim::abort`] counts as an abort instead.
        if phase_before != Phase::Remainder && self.procs[p.0].phase() == Phase::Remainder {
            if self.aborting[p.0] {
                self.stats[p.0].aborts += 1;
                self.aborting[p.0] = false;
            } else {
                self.stats[p.0].passages += 1;
                // A full passage completed after the crash: recovery is over.
                self.recovering[p.0] = false;
            }
        }
        let record = StepRecord {
            index: self.steps,
            proc: p,
            role,
            phase: phase_before,
            kind,
        };
        self.steps += 1;
        if let Some(t) = &mut self.trace {
            t.push(record);
        }
        record
    }

    /// Crash process `p` — the RME individual-crash model (Chan & Woelfel;
    /// Golab & Ramaraju): the process loses all local state and all cached
    /// lines, while shared memory survives. Concretely:
    ///
    /// * every line `p` holds is purged from the coherence directory (its
    ///   next accesses are cold misses — the cache part of recovery cost);
    /// * the program is reset through [`Program::on_crash`] and must come
    ///   back in its remainder section (the in-progress passage, if any,
    ///   is abandoned and does **not** count as completed);
    /// * [`ProcStats::crashes`] is incremented and the process enters a
    ///   *recovery* window: until its next completed passage, its ops and
    ///   RMRs are additionally accumulated in [`ProcStats::recovery_ops`] /
    ///   [`ProcStats::recovery_rmrs`].
    ///
    /// A crash is a scheduled event (it gets a trace record and a global
    /// step index) but not a memory step: no variable changes value and no
    /// RMR is charged to anyone.
    ///
    /// # Panics
    /// Panics if `p` is out of range, or if `on_crash` leaves the program
    /// outside its remainder section.
    pub fn crash(&mut self, p: ProcId) -> StepRecord {
        let phase_before = self.procs[p.0].phase();
        let role = self.procs[p.0].role();
        self.mem.crash_invalidate(p);
        self.procs[p.0].on_crash();
        self.refresh_proc_sig(p);
        assert_eq!(
            self.procs[p.0].phase(),
            Phase::Remainder,
            "on_crash must reset {p} to its remainder section"
        );
        self.stats[p.0].crashes += 1;
        self.recovering[p.0] = true;
        // A crash obliterates any in-flight withdrawal too.
        self.aborting[p.0] = false;
        let record = StepRecord {
            index: self.steps,
            proc: p,
            role,
            phase: phase_before,
            kind: StepKind::Crash,
        };
        self.steps += 1;
        if let Some(t) = &mut self.trace {
            t.push(record);
        }
        record
    }

    /// System-wide crash (the RME system-crash model, Jayanti–Jayanti–
    /// Joshi; Golab–Hendler): **every** process loses its local state and
    /// all cached lines in one event, while shared memory survives. Each
    /// process is reset through [`Program::on_crash`] exactly as in
    /// [`Sim::crash`], its crash count is incremented, and it enters a
    /// recovery window. The whole event is one scheduled step: a single
    /// [`StepKind::CrashAll`] record (conventionally against process 0)
    /// with a single global step index.
    ///
    /// # Panics
    /// Panics if any `on_crash` leaves its program outside the remainder
    /// section.
    pub fn crash_all(&mut self) -> StepRecord {
        for i in 0..self.procs.len() {
            let p = ProcId(i);
            self.mem.crash_invalidate(p);
            self.procs[i].on_crash();
            self.refresh_proc_sig(p);
            assert_eq!(
                self.procs[i].phase(),
                Phase::Remainder,
                "on_crash must reset {p} to its remainder section"
            );
            self.stats[i].crashes += 1;
            self.recovering[i] = true;
            self.aborting[i] = false;
        }
        let record = StepRecord {
            index: self.steps,
            proc: ProcId(0),
            role: self.procs.first().map_or(Role::Reader, |p| p.role()),
            phase: Phase::Remainder,
            kind: StepKind::CrashAll,
        };
        self.steps += 1;
        if let Some(t) = &mut self.trace {
            t.push(record);
        }
        record
    }

    /// Request that process `p` abort its passage. If the program reports
    /// [`Program::can_abort`], it is switched onto its withdrawal path via
    /// [`Program::on_abort`]; until it reaches the remainder section its
    /// ops/RMRs additionally accumulate in [`ProcStats::abort_ops`] /
    /// [`ProcStats::abort_rmrs`], and the completed withdrawal counts as
    /// an abort, not a passage. When the program cannot abort from its
    /// current state this is a tolerated no-op returning `None` — which
    /// keeps every subsequence of a schedule valid (the shrinker relies on
    /// it).
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn abort(&mut self, p: ProcId) -> Option<StepRecord> {
        if !self.procs[p.0].can_abort() {
            return None;
        }
        let phase_before = self.procs[p.0].phase();
        let role = self.procs[p.0].role();
        self.procs[p.0].on_abort();
        self.refresh_proc_sig(p);
        if self.procs[p.0].phase() == Phase::Remainder {
            // Nothing to undo: the withdrawal completed instantly.
            self.stats[p.0].aborts += 1;
        } else {
            self.aborting[p.0] = true;
        }
        let record = StepRecord {
            index: self.steps,
            proc: p,
            role,
            phase: phase_before,
            kind: StepKind::Abort,
        };
        self.steps += 1;
        if let Some(t) = &mut self.trace {
            t.push(record);
        }
        Some(record)
    }

    /// True if `p` has crashed and not yet completed a fresh passage.
    pub fn is_recovering(&self, p: ProcId) -> bool {
        self.recovering[p.0]
    }

    /// True if `p` has an abort in flight (requested via [`Sim::abort`]
    /// and not yet back in the remainder section).
    pub fn is_aborting(&self, p: ProcId) -> bool {
        self.aborting[p.0]
    }

    /// All processes currently inside the critical section.
    pub fn procs_in_cs(&self) -> Vec<ProcId> {
        self.proc_ids()
            .filter(|&p| self.phase(p) == Phase::Cs)
            .collect()
    }

    /// Check the Mutual Exclusion property in the current configuration:
    /// if any writer is in the CS, it must be alone.
    ///
    /// # Errors
    /// Returns the full occupant list on violation.
    pub fn check_mutual_exclusion(&self) -> Result<(), MutualExclusionViolation> {
        let occupants: Vec<(ProcId, Role)> = self
            .procs_in_cs()
            .into_iter()
            .map(|p| (p, self.role(p)))
            .collect();
        let writer_present = occupants.iter().any(|(_, r)| *r == Role::Writer);
        if writer_present && occupants.len() > 1 {
            return Err(MutualExclusionViolation { occupants });
        }
        Ok(())
    }

    /// A 64-bit fingerprint of the global configuration: all variable
    /// values plus every process's local state. Cache state and metrics are
    /// excluded (they never influence observable behaviour).
    ///
    /// O(1): the fingerprint is maintained incrementally, Zobrist-style —
    /// [`Memory::apply`] patches the changed variable's signature and
    /// [`Sim::step`]/[`Sim::crash`] re-derive only the affected process's
    /// signature. Debug builds assert it against the from-scratch
    /// [`Sim::fingerprint_full`] oracle on every query.
    pub fn fingerprint(&self) -> u64 {
        let fp = self.mem.values_fingerprint() ^ self.procs_fp;
        debug_assert_eq!(
            fp,
            self.fingerprint_full(),
            "maintained incremental fingerprint diverged from full recompute \
             (a step/crash path failed to patch a signature)"
        );
        fp
    }

    /// Recompute [`Sim::fingerprint`] from scratch — rehash every variable
    /// and every process. This is the oracle the maintained incremental
    /// hash is checked against (debug assertions here and dedicated
    /// randomized-walk tests); the model checker's `Symmetry::FullRehash`
    /// mode also measures against it.
    pub fn fingerprint_full(&self) -> u64 {
        let vals = self.mem.values_fingerprint_full();
        let procs = self
            .procs
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, p)| acc ^ proc_sig(i, &**p));
        vals ^ procs
    }

    /// Declare the interchangeable-process classes of this world.
    /// Replaces any previous declaration. Stepping and the concrete
    /// [`Sim::fingerprint`] are unaffected; only
    /// [`Sim::fingerprint_canonical`] (and the model checker's quotient
    /// visited-set backend built on it) consult the classes.
    ///
    /// # Panics
    /// Panics loudly on a malformed declaration: a class with fewer than
    /// two members, an out-of-range or repeated member, a repeated owned
    /// variable, or members whose current local-state digests or owned
    /// values differ (classes must be declared on a freshly built,
    /// symmetric world).
    pub fn declare_symmetry(&mut self, classes: Vec<SymmetryClass>) {
        let mut seen_procs = vec![false; self.procs.len()];
        let mut seen_vars = vec![false; self.mem.n_vars()];
        for class in &classes {
            assert!(
                class.members.len() >= 2,
                "a symmetry class needs at least two members"
            );
            assert!(
                class.members.len() <= 64,
                "symmetry classes are limited to 64 members"
            );
            for &p in &class.members {
                assert!(p.0 < self.procs.len(), "symmetry member {p} out of range");
                assert!(
                    !seen_procs[p.0],
                    "process {p} appears in more than one symmetry class"
                );
                seen_procs[p.0] = true;
            }
            for slice in &class.owned {
                for &v in slice {
                    assert!(v.0 < self.mem.n_vars(), "owned variable {v} out of range");
                    assert!(!seen_vars[v.0], "variable {v} owned twice");
                    seen_vars[v.0] = true;
                }
            }
            let d0 = self.procs[class.members[0].0].fingerprint64();
            let vals0: Vec<Value> = class.owned[0].iter().map(|&v| self.mem.peek(v)).collect();
            for (j, &p) in class.members.iter().enumerate() {
                assert_eq!(
                    self.procs[p.0].fingerprint64(),
                    d0,
                    "symmetry members must start in identical local states \
                     (member {p} differs — declare classes on a fresh world)"
                );
                let vals: Vec<Value> = class.owned[j].iter().map(|&v| self.mem.peek(v)).collect();
                assert_eq!(
                    vals, vals0,
                    "symmetry members must start with identical owned values \
                     (member {p} differs)"
                );
            }
        }
        self.owned_mask = seen_vars;
        self.class_member = seen_procs;
        self.symmetry = classes;
    }

    /// The declared interchangeable-process classes (empty unless the
    /// world builder called [`Sim::declare_symmetry`]).
    pub fn symmetry_classes(&self) -> &[SymmetryClass] {
        &self.symmetry
    }

    /// The index-free signature of one class member: its program digest
    /// plus its owned shared-variable values, keyed by *position in the
    /// owned slice* (not by absolute variable id) with [`Value::Proc`]
    /// self-references canonicalized to a sentinel. Two members whose
    /// local states and owned values are a pure swap of each other
    /// produce equal signatures.
    pub fn symmetry_member_sig(&self, class: usize, member: usize) -> u64 {
        use std::hash::{Hash, Hasher};
        let c = &self.symmetry[class];
        let p = c.members[member];
        let mut h = FxHasher::with_seed(MEMBER_SALT);
        h.write_u64(self.procs[p.0].fingerprint64());
        for (k, &v) in c.owned[member].iter().enumerate() {
            h.write_usize(k);
            match self.mem.peek(v) {
                Value::Proc(q) if q == p => h.write_u64(SELF_REF_SENTINEL),
                val => val.hash(&mut h),
            }
        }
        h.finish()
    }

    /// The symmetric part of the configuration: [`Sim::fingerprint`] with
    /// the index-salted contributions of every class member (its
    /// [`proc_sig`] and its owned variable slots) XORed back out. What
    /// remains covers exactly the variables and processes *outside* the
    /// declared classes, and is the base the sorted member bundles are
    /// mixed onto. O(class members + owned variables) per call.
    pub fn fingerprint_canonical_base(&self) -> u64 {
        let mut fp = self.fingerprint();
        for class in &self.symmetry {
            for &p in &class.members {
                fp ^= self.proc_sigs[p.0];
            }
            fp ^= self
                .mem
                .slots_signature(class.owned.iter().flatten().copied());
        }
        fp
    }

    /// The symmetry-quotient canonical fingerprint: equal for any two
    /// configurations that differ only by permuting the members of a
    /// declared [`SymmetryClass`] (local states and owned variable values
    /// swapped together). Built from [`Sim::fingerprint_canonical_base`]
    /// plus, per class, the **sorted multiset** of member signatures —
    /// sorting erases which member holds which state, which is the whole
    /// point. With no classes declared this degenerates to a rehash of
    /// the concrete fingerprint (same partition of configurations).
    ///
    /// This is intentionally *coarser* than [`Sim::fingerprint`] and must
    /// only be used for visited-set deduplication in worlds whose
    /// declared classes are genuine automorphisms; it is never an
    /// identity oracle.
    pub fn fingerprint_canonical(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = FxHasher::with_seed(MEMBER_SALT);
        h.write_u64(self.fingerprint_canonical_base());
        let mut sigs: Vec<u64> = Vec::new();
        for ci in 0..self.symmetry.len() {
            sigs.clear();
            for j in 0..self.symmetry[ci].members.len() {
                sigs.push(self.symmetry_member_sig(ci, j));
            }
            sigs.sort_unstable();
            for &s in &sigs {
                h.write_u64(s);
            }
        }
        h.finish()
    }

    /// Append the **canonical state vector** of this configuration to
    /// `out`: the full, losslessly parseable serialization the set-based
    /// (LDD) visited backend stores, as opposed to the 64-bit digests of
    /// [`Sim::fingerprint`] / [`Sim::fingerprint_canonical`]. Layout, in
    /// order:
    ///
    /// 1. every shared variable **not** owned by a symmetry-class member,
    ///    in `VarId` order, as a tag-prefixed value encoding;
    /// 2. for every process outside the declared classes, in slot order:
    ///    its [`Program::fingerprint64`] digest and its annotation word;
    /// 3. per declared [`SymmetryClass`], in declaration order: one
    ///    length-prefixed *member bundle* per member — digest, annotation
    ///    word, then the member's owned values (with [`Value::Proc`]
    ///    self-references canonicalized) — with the bundles sorted
    ///    lexicographically. Sorting erases which member holds which
    ///    state, so permuting class members yields an identical vector:
    ///    this is the true orbit canonicalization the Zobrist multiset
    ///    *fold* of [`Sim::fingerprint_canonical`] can only approximate
    ///    by hashing.
    ///
    /// Cache state and metrics are excluded, matching the fingerprint
    /// discipline: they never influence observable behaviour, only RMR
    /// accounting. Every section is a prefix code (tags determine value
    /// lengths; bundles carry explicit lengths), so for a fixed world
    /// shape the serialization is injective on canonical states: two
    /// configurations produce equal vectors iff they differ only by a
    /// declared-class permutation (given equal annotations).
    pub fn canonical_vec(&self, out: &mut Vec<u64>) {
        self.canonical_vec_annotated(|_| 0, out);
    }

    /// [`Sim::canonical_vec`] with a caller-chosen annotation word mixed
    /// into each process's serialization — *inside* the sorted member
    /// bundle for class members, positionally for everyone else. The
    /// model checker uses this to key exploration semantics (remaining
    /// passage quota, in-flight abort flag) that must travel with a
    /// member's local state under a permutation; keying them by process
    /// index would merge states whose permuted members disagree.
    pub fn canonical_vec_annotated(&self, annot: impl Fn(ProcId) -> u64, out: &mut Vec<u64>) {
        // 1. Shared memory minus class-owned slots, in VarId order.
        for v in 0..self.mem.n_vars() {
            if !self.owned_mask[v] {
                encode_value(self.mem.peek(VarId(v)), None, out);
            }
        }
        // 2. Non-class processes, positionally.
        for (i, p) in self.procs.iter().enumerate() {
            if !self.class_member[i] {
                out.push(p.fingerprint64());
                out.push(annot(ProcId(i)));
            }
        }
        // 3. Per class: the sorted multiset of member bundles.
        for class in &self.symmetry {
            let base = out.len();
            // `declare_symmetry` caps classes at 64 members.
            let mut ranges = [(0u32, 0u32); 64];
            for (j, &p) in class.members().iter().enumerate() {
                let start = out.len();
                out.push(0); // length placeholder
                out.push(self.procs[p.0].fingerprint64());
                out.push(annot(p));
                for &v in &class.owned()[j] {
                    encode_value(self.mem.peek(v), Some(p), out);
                }
                out[start] = (out.len() - start) as u64;
                ranges[j] = (start as u32, out.len() as u32);
            }
            let k = class.members().len();
            let unsorted_end = out.len();
            ranges[..k].sort_unstable_by(|&(as_, ae), &(bs, be)| {
                out[as_ as usize..ae as usize].cmp(&out[bs as usize..be as usize])
            });
            // Re-emit the bundles in sorted order, then drop the
            // unsorted originals — no extra allocation once `out` is
            // warm.
            for &(s, e) in &ranges[..k] {
                out.extend_from_within(s as usize..e as usize);
            }
            out.drain(base..unsorted_end);
        }
    }

    /// True if every process is in its remainder section (a *quiescent*
    /// configuration, §2.1).
    pub fn is_quiescent(&self) -> bool {
        self.proc_ids().all(|p| self.phase(p) == Phase::Remainder)
    }

    /// Duplicate the entire world — memory, caches, process states, and
    /// metrics (the trace is not copied). This is how the model checker
    /// branches a configuration.
    pub fn clone_world(&self) -> Sim {
        Sim {
            mem: self.mem.clone(),
            procs: self.procs.iter().map(|p| p.clone_box()).collect(),
            stats: self.stats.clone(),
            recovering: self.recovering.clone(),
            aborting: self.aborting.clone(),
            proc_sigs: self.proc_sigs.clone(),
            procs_fp: self.procs_fp,
            symmetry: self.symmetry.clone(),
            owned_mask: self.owned_mask.clone(),
            class_member: self.class_member.clone(),
            trace: None,
            steps: self.steps,
        }
    }

    /// [`Sim::clone_world`] into an existing world, reusing `dst`'s
    /// buffers. When `dst` came from the same factory (same process types
    /// in the same slots — the invariant of the model checker's recycling
    /// pool) and the programs opt into
    /// [`Program::clone_into_dyn`], no allocation happens at all: each
    /// per-process `Box` is overwritten in place and every `Vec` reuses
    /// its capacity. Mismatched slots fall back to a fresh
    /// [`Program::clone_box`], so the copy is correct for any `dst`.
    pub fn clone_world_into(&self, dst: &mut Sim) {
        dst.mem.assign_from(&self.mem);
        if dst.procs.len() != self.procs.len() {
            dst.procs = self.procs.iter().map(|p| p.clone_box()).collect();
        } else {
            for (slot, src) in dst.procs.iter_mut().zip(&self.procs) {
                if !src.clone_into_dyn(&mut **slot) {
                    *slot = src.clone_box();
                }
            }
        }
        dst.stats.clone_from(&self.stats);
        dst.recovering.clone_from(&self.recovering);
        dst.aborting.clone_from(&self.aborting);
        dst.proc_sigs.clone_from(&self.proc_sigs);
        dst.procs_fp = self.procs_fp;
        dst.symmetry.clone_from(&self.symmetry);
        dst.owned_mask.clone_from(&self.owned_mask);
        dst.class_member.clone_from(&self.class_member);
        dst.trace = None;
        dst.steps = self.steps;
    }
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("n_procs", &self.procs.len())
            .field("steps", &self.steps)
            .field(
                "phases",
                &self.proc_ids().map(|p| self.phase(p)).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Protocol;
    use crate::layout::Layout;
    use crate::memory::Memory;
    use crate::value::VarId;
    use std::hash::Hasher;

    /// A trivial test lock client: entry = write flag, CS, exit = clear flag.
    #[derive(Clone)]
    struct FlagClient {
        flag: VarId,
        me: ProcId,
        role: Role,
        pc: u8, // 0 remainder, 1 about-to-set, 2 cs, 3 about-to-clear
    }

    impl Program for FlagClient {
        fn poll(&self) -> Step {
            match self.pc {
                0 => Step::Remainder,
                1 => Step::Op(Op::write(self.flag, Value::Proc(self.me))),
                2 => Step::Cs,
                3 => Step::Op(Op::Write(self.flag, Value::Nil)),
                _ => unreachable!(),
            }
        }
        fn resume(&mut self, _: Value) {
            self.pc = (self.pc + 1) % 4;
        }
        fn phase(&self) -> Phase {
            match self.pc {
                0 => Phase::Remainder,
                1 => Phase::Entry,
                2 => Phase::Cs,
                3 => Phase::Exit,
                _ => unreachable!(),
            }
        }
        fn role(&self) -> Role {
            self.role
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn can_abort(&self) -> bool {
            // Abortable only before the flag write lands: nothing to undo,
            // so the withdrawal is instantaneous. After the flag is set
            // the passage is committed.
            self.pc == 1
        }
        fn on_abort(&mut self) {
            self.pc = 0;
        }
        fn fingerprint(&self, h: &mut dyn Hasher) {
            h.write_u8(self.pc);
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
        crate::impl_program_in_place_clone!();
    }

    fn world(roles: &[Role]) -> Sim {
        let mut l = Layout::new();
        let flag = l.var("flag", Value::Nil);
        let mem = Memory::new(&l, roles.len(), Protocol::WriteBack);
        let procs: Vec<Box<dyn Program>> = roles
            .iter()
            .enumerate()
            .map(|(i, &role)| {
                Box::new(FlagClient {
                    flag,
                    me: ProcId(i),
                    role,
                    pc: 0,
                }) as Box<dyn Program>
            })
            .collect();
        Sim::new(mem, procs)
    }

    #[test]
    fn passage_lifecycle_and_stats() {
        let mut sim = world(&[Role::Reader]);
        let p = ProcId(0);
        assert_eq!(sim.poll(p), Step::Remainder);
        sim.step(p); // begin passage
        assert_eq!(sim.phase(p), Phase::Entry);
        sim.step(p); // entry write
        assert_eq!(sim.phase(p), Phase::Cs);
        sim.step(p); // leave CS
        assert_eq!(sim.phase(p), Phase::Exit);
        sim.step(p); // exit write
        assert_eq!(sim.phase(p), Phase::Remainder);
        let st = sim.stats(p);
        assert_eq!(st.passages, 1);
        assert_eq!(st.ops(), 2);
        assert_eq!(st.rmrs_in(Phase::Entry), 1);
    }

    #[test]
    fn mutual_exclusion_check_flags_writer_overlap() {
        let mut sim = world(&[Role::Writer, Role::Reader]);
        for p in [ProcId(0), ProcId(1)] {
            sim.step(p); // begin passage
            sim.step(p); // entry op -> CS
        }
        assert_eq!(sim.procs_in_cs().len(), 2);
        let err = sim.check_mutual_exclusion().unwrap_err();
        assert_eq!(err.occupants.len(), 2);
        assert!(err.to_string().contains("mutual exclusion violated"));
    }

    #[test]
    fn readers_may_share_cs() {
        let mut sim = world(&[Role::Reader, Role::Reader]);
        for p in [ProcId(0), ProcId(1)] {
            sim.step(p);
            sim.step(p);
        }
        assert_eq!(sim.procs_in_cs().len(), 2);
        assert!(sim.check_mutual_exclusion().is_ok());
    }

    #[test]
    fn clone_world_into_matches_clone_world() {
        let mut sim = world(&[Role::Reader, Role::Writer]);
        sim.step(ProcId(0));
        sim.step(ProcId(0));
        sim.step(ProcId(1));

        // In-place copy into a same-shape world (the recycling-pool case):
        // byte-for-byte the same observable state as a fresh clone.
        let mut dst = world(&[Role::Reader, Role::Writer]);
        for _ in 0..3 {
            dst.step(ProcId(1)); // arbitrary divergence to overwrite
        }
        sim.clone_world_into(&mut dst);
        assert_eq!(dst.fingerprint(), sim.fingerprint());
        assert_eq!(dst.fingerprint(), dst.fingerprint_full());
        for p in [ProcId(0), ProcId(1)] {
            assert_eq!(dst.phase(p), sim.phase(p));
            assert_eq!(dst.stats(p), sim.stats(p));
        }

        // The copy is detached: stepping one world leaves the other alone.
        dst.step(ProcId(0));
        assert_ne!(dst.fingerprint(), sim.fingerprint());
        assert_eq!(sim.fingerprint(), sim.fingerprint_full());

        // A mismatched-shape destination is rebuilt, not corrupted.
        let mut small = world(&[Role::Reader]);
        sim.clone_world_into(&mut small);
        assert_eq!(small.n_procs(), sim.n_procs());
        assert_eq!(small.fingerprint(), sim.fingerprint());
        assert_eq!(small.fingerprint(), small.fingerprint_full());
    }

    #[test]
    fn in_place_program_clone_copies_state_and_rejects_foreign_types() {
        let sim = world(&[Role::Reader]);
        let src = FlagClient {
            flag: VarId(0),
            me: ProcId(0),
            role: Role::Reader,
            pc: 2,
        };
        let mut dst = src.clone();
        dst.pc = 0;
        assert!(src.clone_into_dyn(&mut dst));
        assert_eq!(dst.pc, 2);
        // A different concrete Program type is refused (the caller then
        // falls back to clone_box).
        assert!(!sim.program(ProcId(0)).clone_into_dyn(&mut NotAFlag));
    }

    /// Distinct concrete type for the foreign-downcast rejection test.
    #[derive(Clone)]
    struct NotAFlag;
    impl Program for NotAFlag {
        fn poll(&self) -> Step {
            Step::Remainder
        }
        fn resume(&mut self, _: Value) {}
        fn phase(&self) -> Phase {
            Phase::Remainder
        }
        fn role(&self) -> Role {
            Role::Reader
        }
        fn on_crash(&mut self) {}
        fn fingerprint(&self, _: &mut dyn Hasher) {}
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(NotAFlag)
        }
        crate::impl_program_in_place_clone!();
    }

    #[test]
    fn fingerprint_changes_with_state() {
        let mut sim = world(&[Role::Reader]);
        let f0 = sim.fingerprint();
        sim.step(ProcId(0));
        assert_ne!(f0, sim.fingerprint());
    }

    #[test]
    fn tracing_records_steps() {
        let mut sim = world(&[Role::Reader]);
        sim.set_tracing(true);
        sim.step(ProcId(0));
        sim.step(ProcId(0));
        let t = sim.take_trace().unwrap();
        assert_eq!(t.len(), 2);
        assert!(matches!(t.records()[0].kind, StepKind::BeginPassage));
        assert!(
            sim.trace().unwrap().is_empty(),
            "take_trace leaves a fresh trace"
        );
    }

    #[test]
    fn quiescence() {
        let mut sim = world(&[Role::Reader]);
        assert!(sim.is_quiescent());
        sim.step(ProcId(0));
        assert!(!sim.is_quiescent());
    }

    #[test]
    fn crash_resets_program_and_purges_cache() {
        let mut sim = world(&[Role::Reader, Role::Reader]);
        let p = ProcId(0);
        sim.set_tracing(true);
        sim.step(p); // begin passage
        sim.step(p); // entry write -> CS (p now holds `flag` exclusively)
        assert_eq!(sim.phase(p), Phase::Cs);
        let flag = VarId(0);
        assert!(sim.mem().cache(p).holds_exclusive(flag));
        let before = sim.mem().peek(flag);

        let rec = sim.crash(p);
        assert_eq!(rec.kind, StepKind::Crash);
        assert_eq!(rec.phase, Phase::Cs, "record keeps the pre-crash phase");
        assert_eq!(sim.phase(p), Phase::Remainder, "program reset");
        assert!(!sim.mem().cache(p).holds(flag), "cache lines purged");
        assert_eq!(sim.mem().peek(flag), before, "shared memory survives");
        assert_eq!(sim.stats(p).crashes, 1);
        assert_eq!(sim.stats(p).passages, 0, "aborted passage doesn't count");
        assert!(sim.is_recovering(p));
        assert!(matches!(
            sim.trace().unwrap().records().last().unwrap().kind,
            StepKind::Crash
        ));
    }

    #[test]
    fn recovery_window_accounting() {
        let mut sim = world(&[Role::Reader]);
        let p = ProcId(0);
        sim.step(p); // begin passage
        sim.crash(p);
        // The recovery passage: its ops/RMRs land in the recovery counters.
        for _ in 0..4 {
            sim.step(p);
        }
        let st = sim.stats(p);
        assert_eq!(st.passages, 1);
        assert!(!sim.is_recovering(p), "completed passage ends recovery");
        assert_eq!(st.recovery_ops, 2, "both writes of the recovery passage");
        assert!(
            st.recovery_rmrs >= 1,
            "re-warming the purged line costs an RMR"
        );
        // Post-recovery passages accumulate nothing further.
        for _ in 0..4 {
            sim.step(p);
        }
        assert_eq!(sim.stats(p).recovery_ops, 2);
    }

    #[test]
    fn incremental_fingerprint_tracks_full_recompute() {
        let mut sim = world(&[Role::Writer, Role::Reader]);
        assert_eq!(sim.fingerprint(), sim.fingerprint_full());
        for round in 0..3 {
            for p in [ProcId(0), ProcId(1)] {
                for _ in 0..4 {
                    sim.step(p);
                    assert_eq!(sim.fingerprint(), sim.fingerprint_full());
                }
            }
            if round == 1 {
                sim.crash(ProcId(0));
                assert_eq!(sim.fingerprint(), sim.fingerprint_full());
            }
        }
        let clone = sim.clone_world();
        assert_eq!(clone.fingerprint(), sim.fingerprint());
        assert_eq!(clone.fingerprint(), clone.fingerprint_full());
    }

    #[test]
    fn fingerprint_distinguishes_which_process_holds_state() {
        // Two worlds whose processes have swapped local states must not
        // collide: per-process signatures are salted by slot index.
        let mut a = world(&[Role::Reader, Role::Reader]);
        let mut b = world(&[Role::Reader, Role::Reader]);
        a.step(ProcId(0)); // a: p0 in Entry, p1 in Remainder
        b.step(ProcId(1)); // b: p1 in Entry, p0 in Remainder
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn crash_all_resets_every_process_in_one_step() {
        let mut sim = world(&[Role::Reader, Role::Writer, Role::Reader]);
        sim.set_tracing(true);
        for p in [ProcId(0), ProcId(1)] {
            sim.step(p); // begin passage
            sim.step(p); // entry write -> CS
        }
        let flag = VarId(0);
        let before = sim.mem().peek(flag);
        let steps_before = sim.total_steps();

        let rec = sim.crash_all();
        assert_eq!(rec.kind, StepKind::CrashAll);
        assert_eq!(sim.total_steps(), steps_before + 1, "one scheduled event");
        assert_eq!(sim.mem().peek(flag), before, "shared memory survives");
        for p in [ProcId(0), ProcId(1), ProcId(2)] {
            assert_eq!(sim.phase(p), Phase::Remainder, "{p} reset");
            assert!(!sim.mem().cache(p).holds(flag), "{p} cache purged");
            assert_eq!(sim.stats(p).crashes, 1);
            assert!(sim.is_recovering(p), "{p} enters its recovery window");
            assert_eq!(sim.stats(p).passages, 0);
        }
        assert!(matches!(
            sim.trace().unwrap().records().last().unwrap().kind,
            StepKind::CrashAll
        ));
        assert_eq!(sim.fingerprint(), sim.fingerprint_full());
    }

    #[test]
    fn abort_is_a_tolerated_noop_when_not_abortable() {
        let mut sim = world(&[Role::Reader]);
        let p = ProcId(0);
        let f0 = sim.fingerprint();
        assert!(
            sim.abort(p).is_none(),
            "remainder section: nothing to abort"
        );
        assert_eq!(sim.fingerprint(), f0);
        assert_eq!(sim.total_steps(), 0, "a refused abort is not a step");
        sim.step(p); // begin passage
        sim.step(p); // entry write -> CS: committed, no longer abortable
        assert!(sim.abort(p).is_none());
        assert_eq!(sim.stats(p).aborts, 0);
    }

    #[test]
    fn abort_before_commitment_counts_as_abort_not_passage() {
        let mut sim = world(&[Role::Reader]);
        let p = ProcId(0);
        sim.set_tracing(true);
        sim.step(p); // begin passage -> pc 1 (abortable)
        let rec = sim.abort(p).expect("abortable at pc 1");
        assert_eq!(rec.kind, StepKind::Abort);
        assert_eq!(rec.phase, Phase::Entry, "record keeps the pre-abort phase");
        assert_eq!(sim.phase(p), Phase::Remainder, "instant withdrawal");
        assert!(!sim.is_aborting(p), "instant withdrawal completes at once");
        let st = sim.stats(p);
        assert_eq!(st.aborts, 1);
        assert_eq!(st.passages, 0, "a withdrawn passage does not count");
        assert_eq!(sim.fingerprint(), sim.fingerprint_full());
        // The process is free to run a full passage afterwards.
        for _ in 0..4 {
            sim.step(p);
        }
        assert_eq!(sim.stats(p).passages, 1);
        assert_eq!(sim.stats(p).aborts, 1);
    }

    /// A world of `n` readers where each process writes its **own** flag
    /// variable (never anyone else's): permuting processes together with
    /// their flags is a true automorphism, so the whole set is one
    /// symmetry class with position-aligned owned slices.
    fn per_slot_world(n: usize) -> Sim {
        let mut l = Layout::new();
        let flags: Vec<VarId> = (0..n)
            .map(|i| l.var(format!("flag{i}"), Value::Nil))
            .collect();
        let mem = Memory::new(&l, n, Protocol::WriteBack);
        let procs: Vec<Box<dyn Program>> = (0..n)
            .map(|i| {
                Box::new(FlagClient {
                    flag: flags[i],
                    me: ProcId(i),
                    role: Role::Reader,
                    pc: 0,
                }) as Box<dyn Program>
            })
            .collect();
        let mut sim = Sim::new(mem, procs);
        sim.declare_symmetry(vec![SymmetryClass::with_owned(
            (0..n).map(ProcId).collect(),
            flags.into_iter().map(|f| vec![f]).collect(),
        )]);
        sim
    }

    #[test]
    fn canonical_fingerprint_merges_swapped_symmetric_members() {
        let mut a = per_slot_world(3);
        let mut b = per_slot_world(3);
        // a: p0 runs to its CS (flag0 = Proc(0)); b: the mirror via p2.
        a.step(ProcId(0));
        a.step(ProcId(0));
        b.step(ProcId(2));
        b.step(ProcId(2));
        // Concrete fingerprints distinguish the swap; canonical merges it.
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint_canonical(), b.fingerprint_canonical());
        // The quotient is not degenerate: a genuinely different state
        // (nobody in the CS) keeps a different canonical fingerprint.
        let fresh = per_slot_world(3);
        assert_ne!(a.fingerprint_canonical(), fresh.fingerprint_canonical());
        // With no classes declared the canonical partition is concrete.
        let mut c = per_slot_world(3);
        c.declare_symmetry(Vec::new());
        c.step(ProcId(2));
        c.step(ProcId(2));
        assert_ne!(b.fingerprint_canonical(), c.fingerprint_canonical());
    }

    #[test]
    fn canonical_fingerprint_keeps_identity_leaks_distinct() {
        // Two readers share ONE flag variable and write their own id into
        // it. The flag is shared (not owned by either member), so after
        // p0's entry it holds Proc(0) and after p1's it holds Proc(1):
        // the states are observably different and must NOT merge, even
        // with the processes declared interchangeable.
        let mut a = world(&[Role::Reader, Role::Reader]);
        let mut b = world(&[Role::Reader, Role::Reader]);
        a.declare_symmetry(vec![SymmetryClass::new(vec![ProcId(0), ProcId(1)])]);
        b.declare_symmetry(vec![SymmetryClass::new(vec![ProcId(0), ProcId(1)])]);
        a.step(ProcId(0));
        a.step(ProcId(0));
        b.step(ProcId(1));
        b.step(ProcId(1));
        assert_ne!(a.fingerprint_canonical(), b.fingerprint_canonical());
    }

    #[test]
    fn canonical_fingerprint_survives_world_cloning() {
        let mut a = per_slot_world(2);
        a.step(ProcId(1));
        let clone = a.clone_world();
        assert_eq!(clone.fingerprint_canonical(), a.fingerprint_canonical());
        let mut dst = per_slot_world(2);
        dst.step(ProcId(0));
        a.clone_world_into(&mut dst);
        assert_eq!(dst.fingerprint_canonical(), a.fingerprint_canonical());
    }

    fn canon_vec(sim: &Sim) -> Vec<u64> {
        let mut v = Vec::new();
        sim.canonical_vec(&mut v);
        v
    }

    #[test]
    fn canonical_vec_merges_swapped_symmetric_members() {
        let mut a = per_slot_world(3);
        let mut b = per_slot_world(3);
        a.step(ProcId(0));
        a.step(ProcId(0));
        b.step(ProcId(2));
        b.step(ProcId(2));
        // The vectors agree exactly where the canonical fingerprints do.
        assert_eq!(canon_vec(&a), canon_vec(&b));
        assert_ne!(canon_vec(&a), canon_vec(&per_slot_world(3)));
    }

    #[test]
    fn canonical_vec_keeps_identity_leaks_distinct() {
        // Same setup as the fingerprint test: a *shared* flag holding the
        // writer's id is not owned by either member, so the states are
        // observably different and the vectors must differ.
        let mut a = world(&[Role::Reader, Role::Reader]);
        let mut b = world(&[Role::Reader, Role::Reader]);
        a.declare_symmetry(vec![SymmetryClass::new(vec![ProcId(0), ProcId(1)])]);
        b.declare_symmetry(vec![SymmetryClass::new(vec![ProcId(0), ProcId(1)])]);
        a.step(ProcId(0));
        a.step(ProcId(0));
        b.step(ProcId(1));
        b.step(ProcId(1));
        assert_ne!(canon_vec(&a), canon_vec(&b));
    }

    #[test]
    fn canonical_vec_without_classes_is_positional() {
        // No declared classes: every process serializes by slot, so a
        // swap of local states stays distinct (like the concrete
        // fingerprint).
        let mut a = per_slot_world(2);
        let mut b = per_slot_world(2);
        a.declare_symmetry(Vec::new());
        b.declare_symmetry(Vec::new());
        a.step(ProcId(0));
        b.step(ProcId(1));
        assert_ne!(canon_vec(&a), canon_vec(&b));
    }

    #[test]
    fn canonical_vec_annotation_travels_with_members() {
        // Annotations are folded inside the sorted bundles: swapping
        // members *together with* their annotations merges, swapping
        // only the states (annotations keyed to the old indices) must
        // not.
        let mut a = per_slot_world(2);
        let mut b = per_slot_world(2);
        a.step(ProcId(0));
        b.step(ProcId(1));
        let mark_p0 = |p: ProcId| (p == ProcId(0)) as u64;
        let mark_p1 = |p: ProcId| (p == ProcId(1)) as u64;
        let mut av = Vec::new();
        a.canonical_vec_annotated(mark_p0, &mut av);
        let mut bv = Vec::new();
        b.canonical_vec_annotated(mark_p1, &mut bv);
        assert_eq!(av, bv, "state and annotation permuted together");
        let mut bv_stuck = Vec::new();
        b.canonical_vec_annotated(mark_p0, &mut bv_stuck);
        assert_ne!(av, bv_stuck, "annotation pinned to the old member");
    }

    #[test]
    fn canonical_vec_appends_and_is_reproducible() {
        let mut sim = per_slot_world(2);
        sim.step(ProcId(1));
        let mut buf = vec![0xdead_beefu64];
        sim.canonical_vec(&mut buf);
        assert_eq!(buf[0], 0xdead_beef, "appends, never overwrites");
        assert_eq!(buf[1..].to_vec(), canon_vec(&sim));
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn declare_symmetry_rejects_singleton_classes() {
        let mut sim = world(&[Role::Reader, Role::Reader]);
        sim.declare_symmetry(vec![SymmetryClass::new(vec![ProcId(0)])]);
    }

    #[test]
    #[should_panic(expected = "more than one symmetry class")]
    fn declare_symmetry_rejects_overlapping_classes() {
        let mut sim = world(&[Role::Reader, Role::Reader, Role::Reader]);
        sim.declare_symmetry(vec![
            SymmetryClass::new(vec![ProcId(0), ProcId(1)]),
            SymmetryClass::new(vec![ProcId(1), ProcId(2)]),
        ]);
    }

    #[test]
    #[should_panic(expected = "identical local states")]
    fn declare_symmetry_rejects_asymmetric_start_states() {
        let mut sim = world(&[Role::Reader, Role::Reader]);
        sim.step(ProcId(0)); // p0 leaves its remainder section
        sim.declare_symmetry(vec![SymmetryClass::new(vec![ProcId(0), ProcId(1)])]);
    }

    #[test]
    #[should_panic(expected = "owned twice")]
    fn declare_symmetry_rejects_shared_owned_variables() {
        let mut sim = world(&[Role::Reader, Role::Reader]);
        let flag = VarId(0);
        sim.declare_symmetry(vec![SymmetryClass::with_owned(
            vec![ProcId(0), ProcId(1)],
            vec![vec![flag], vec![flag]],
        )]);
    }

    #[test]
    fn crash_in_remainder_is_harmless() {
        let mut sim = world(&[Role::Reader]);
        let p = ProcId(0);
        let f0 = sim.fingerprint();
        sim.crash(p);
        assert_eq!(sim.phase(p), Phase::Remainder);
        assert_eq!(sim.fingerprint(), f0, "no observable state changed");
        assert_eq!(sim.stats(p).crashes, 1);
    }
}
