//! E6 — the `WL` substrate: tournament mutex passages incur `Θ(log m)`
//! RMRs (the writer-side floor implied by Corollary 7).

use super::prelude::*;
use crate::measure_mutex;

/// Registry entry for the tournament-mutex substrate measurement.
pub(crate) struct E6;

impl Experiment for E6 {
    fn id(&self) -> &'static str {
        "e6_mutex_rmr"
    }

    fn title(&self) -> &'static str {
        "tournament mutex passage RMRs"
    }

    fn claim(&self) -> &'static str {
        "WL substrate: a mutex passage incurs Θ(log m) RMRs (Corollary 7's writer-side floor)"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let ms: &[usize] = if ctx.smoke() {
            &[2, 8]
        } else {
            &[2, 4, 8, 16, 32, 64, 128, 256]
        };
        let configs: Vec<(usize, Protocol)> = [Protocol::WriteBack, Protocol::WriteThrough]
            .into_iter()
            .flat_map(|p| ms.iter().map(move |&m| (m, p)))
            .collect();
        let samples = par_map(&configs, |&(m, p)| measure_mutex(m, p));

        let mut report = Report::new(self, ctx);
        let (mut worst_solo, mut worst_contended) = (0f64, 0f64);
        for protocol in [Protocol::WriteBack, Protocol::WriteThrough] {
            let mut table = Table::new([
                "m",
                "levels",
                "solo RMR",
                "solo/levels",
                "contended max RMR",
                "contended/levels",
            ]);
            for ((m, p), s) in configs.iter().zip(&samples) {
                if *p != protocol {
                    continue;
                }
                let lv = s.levels.max(1) as f64;
                let solo = s.solo_rmrs as f64 / lv;
                let contended = s.contended_max_rmrs as f64 / lv;
                worst_solo = worst_solo.max(solo);
                worst_contended = worst_contended.max(contended);
                table.row([
                    m.to_string(),
                    s.levels.to_string(),
                    s.solo_rmrs.to_string(),
                    format!("{solo:.1}"),
                    s.contended_max_rmrs.to_string(),
                    format!("{contended:.1}"),
                ]);
            }
            report.section(format!("{protocol:?} protocol"), table);
        }
        report
            .check(Check::le_f64(
                "solo RMR/levels stays a small constant",
                worst_solo,
                5.0,
            ))
            .check(Check::le_f64(
                "contended max RMR/levels stays a small constant",
                worst_contended,
                6.0,
            ))
            .notes(
                "Expected shape: RMR/levels stays near a constant — Θ(log m) per\n\
                 passage (levels = ceil(log2 m)).",
            );
        report
    }
}
