//! Lock-free per-thread latency histograms.
//!
//! Each benchmark thread owns a plain [`Histogram`] — no atomics, no
//! sharing, no allocation after construction — and records one
//! nanosecond latency per operation. After the run, the harness
//! [`Histogram::merge`]s the per-thread histograms and reads quantiles
//! off the combined counts. This keeps the measurement path to an array
//! increment (a handful of cycles), so the instrument does not distort
//! the contention it measures.
//!
//! Buckets are log-linear (the HdrHistogram layout): values below 32 get
//! exact buckets; above that, each power-of-two range is split into 32
//! linear sub-buckets, giving a worst-case quantization error of ~3%
//! across the full `u64` range — ample for p50/p99/p999 tables.

/// log2 of the sub-bucket count per power-of-two group.
const SUB_BITS: u32 = 5;
/// Sub-buckets per group.
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Total bucket count: group 0 holds `0..32` exactly; groups `1..=59`
/// cover the remaining exponents up to `u64::MAX`.
const BUCKETS: usize = SUB_COUNT * (64 - SUB_BITS as usize + 1);

/// A fixed-size log-linear histogram of `u64` samples (nanoseconds, by
/// convention). ~15 KiB per instance; `record` is branch-light and
/// allocation-free.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of value `v`.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUB_COUNT as u64 {
        v as usize
    } else {
        // Highest set bit >= 5; the group is (exp - 4), its 32 linear
        // sub-buckets are the top 5 bits below the leading bit.
        let exp = 63 - v.leading_zeros();
        let group = (exp - SUB_BITS + 1) as usize;
        let sub = ((v >> (exp - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
        group * SUB_COUNT + sub
    }
}

/// Lower bound of bucket `idx` (the value reported for quantiles landing
/// in that bucket).
#[inline]
fn lower_bound(idx: usize) -> u64 {
    let group = idx / SUB_COUNT;
    let sub = (idx % SUB_COUNT) as u64;
    if group == 0 {
        sub
    } else {
        (SUB_COUNT as u64 + sub) << (group - 1)
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0u64; BUCKETS]),
            total: 0,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.total += 1;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]` (bucket lower bound, i.e. a
    /// slight underestimate, never an overestimate beyond quantization).
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        if rank >= self.total {
            return Some(self.max); // the top rank is tracked exactly
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(lower_bound(idx).min(self.max));
            }
        }
        Some(self.max)
    }
}

/// Render nanoseconds compactly for tables: `850ns`, `12.4us`, `3.1ms`.
pub fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_continuous_at_group_boundaries() {
        // Exact region joins the first linear group seamlessly.
        assert_eq!(index_of(0), 0);
        assert_eq!(index_of(31), 31);
        assert_eq!(index_of(32), 32);
        assert_eq!(index_of(63), 63);
        assert_eq!(index_of(64), 64);
        let mut samples: Vec<u64> = (0..60)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift) + off))
            .collect();
        samples.sort_unstable();
        let mut prev = 0usize;
        for v in samples {
            let idx = index_of(v);
            assert!(idx >= prev, "index must be monotone at {v}");
            prev = idx;
        }
    }

    #[test]
    fn lower_bound_inverts_index() {
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            123_456,
            u64::MAX / 3,
        ] {
            let idx = index_of(v);
            let lb = lower_bound(idx);
            assert!(lb <= v, "lower_bound({idx}) = {lb} > {v}");
            // The next bucket starts above v.
            if idx + 1 < BUCKETS {
                assert!(
                    lower_bound(idx + 1) > v,
                    "value {v} not inside bucket {idx}"
                );
            }
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5).unwrap();
        // ~3% quantization below the true 500.
        assert!((470..=500).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((950..=990).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0).unwrap(), 1000, "p100 is the exact max");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            combined.record(v * 3);
        }
        for v in 0..300u64 {
            b.record(v * 7 + 1);
            combined.record(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), combined.quantile(q), "q={q}");
        }
    }

    #[test]
    fn single_sample_quantiles() {
        let mut h = Histogram::new();
        h.record(42);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(42), "q={q}");
        }
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(850), "850ns");
        assert_eq!(format_ns(12_400), "12.4us");
        assert_eq!(format_ns(3_100_000), "3.1ms");
        assert_eq!(format_ns(2_500_000_000), "2.50s");
    }
}
