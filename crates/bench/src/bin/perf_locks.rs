//! Thin wrapper: `cargo run --release --bin perf_locks` runs the
//! contended lock lab through the registry (same report/golden pipeline
//! as `experiments --filter perf_locks`).

fn main() {
    bench::exp::run_as_bin("perf_locks", false);
}
