//! Strict environment-knob parsing, shared by every crate in the
//! workspace.
//!
//! Every env-var knob in this repo follows one discipline: *unset* means
//! "use the built-in default", and anything else must parse exactly or
//! the process aborts with a diagnostic naming the variable. Silently
//! falling back on a typo'd value would quietly void whatever the knob
//! exists for (a `BENCH_THREADS=1` determinism comparison, a
//! `CCSIM_STALL_AFTER` deadlock threshold, a backend A/B selection), so
//! the parsers here reject empty strings, stray whitespace, signs, radix
//! prefixes, and non-UTF-8 values uniformly.
//!
//! The three layers:
//!
//! * [`parse_strict`] — the generic core: an optional raw value plus a
//!   fallible token parser; errors are prefixed with the variable name.
//! * [`parse_strict_uint`] — the decimal-integer special case used by
//!   `BENCH_THREADS`, `CCSIM_STALL_AFTER`, and `RANDOMIZED_SEED`.
//! * [`read_strict_uint`] / [`read_nonempty`] — process-environment
//!   lookups over the above, panicking (loud abort) on malformed values,
//!   including values that are not valid UTF-8.

use std::fmt;

/// Strictly parse an optional env value with a fallible token parser.
///
/// `None` (the variable is unset) means "use the default" and returns
/// `Ok(None)`. Otherwise `parse` decides; its error is prefixed with
/// `name` so the diagnostic names the offending variable. Note the
/// parser sees empty strings too — a strict parser must reject them
/// (every parser in this workspace does), never treat `FOO=` as unset.
pub fn parse_strict<T, E: fmt::Display>(
    name: &str,
    raw: Option<&str>,
    parse: impl Fn(&str) -> Result<T, E>,
) -> Result<Option<T>, String> {
    let Some(raw) = raw else { return Ok(None) };
    parse(raw).map(Some).map_err(|e| format!("{name}: {e}"))
}

/// Strictly parse an optional decimal unsigned integer env value.
///
/// Exactly ASCII digits: no sign, no whitespace, no radix prefixes
/// (`u64::from_str` would accept a leading `+`), no empty string. With
/// `allow_zero = false`, `"0"` is rejected too — the shape of a
/// "positive count" knob like `BENCH_THREADS`.
///
/// # Errors
/// Returns a diagnostic naming the variable on an empty, malformed,
/// out-of-range, or (when disallowed) zero value.
pub fn parse_strict_uint(
    name: &str,
    raw: Option<&str>,
    allow_zero: bool,
) -> Result<Option<u64>, String> {
    let Some(raw) = raw else { return Ok(None) };
    let kind = if allow_zero {
        "a decimal integer"
    } else {
        "a positive decimal integer"
    };
    if raw.is_empty() || !raw.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("{name} must be {kind}, got {raw:?}"));
    }
    match raw.parse::<u64>() {
        Ok(0) if !allow_zero => Err(format!("{name} must be a positive integer, got \"0\"")),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!("{name} must be {kind}, got {raw:?}")),
    }
}

/// The raw value of `name` from the process environment, mapped through
/// the workspace convention for non-UTF-8 values: they become the
/// (unparseable, hence loudly rejected) token `"<non-utf8>"` instead of
/// being silently dropped as if the variable were unset.
pub fn raw_var(name: &str) -> Option<String> {
    std::env::var_os(name).map(|v| match v.into_string() {
        Ok(s) => s,
        Err(_) => "<non-utf8>".to_string(),
    })
}

/// Read a decimal unsigned integer knob from the process environment.
///
/// `None` when unset; the parsed value otherwise.
///
/// # Panics
/// Panics with a diagnostic naming the variable on any malformed value
/// (see [`parse_strict_uint`]).
pub fn read_strict_uint(name: &str, allow_zero: bool) -> Option<u64> {
    let raw = raw_var(name);
    match parse_strict_uint(name, raw.as_deref(), allow_zero) {
        Ok(v) => v,
        Err(msg) => panic!("{msg}"),
    }
}

/// Read a free-form override (e.g. an output path) from the process
/// environment, defaulting to `default` when unset.
///
/// An *empty* value is rejected loudly: `BENCH_LOCKS_OUT=` used to be
/// accepted and made the artifact writer target `""`, failing later with
/// an unrelated I/O error — the empty-string inconsistency this helper
/// removes.
///
/// # Panics
/// Panics if the variable is set to an empty or non-UTF-8 value.
pub fn read_nonempty(name: &str, default: &str) -> String {
    match raw_var(name) {
        None => default.to_string(),
        Some(s) if s.is_empty() => {
            panic!("{name} must be a non-empty value when set (unset it to use {default:?})")
        }
        Some(s) if s == "<non-utf8>" => panic!("{name} must be valid UTF-8"),
        Some(s) => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_means_default() {
        assert_eq!(parse_strict_uint("K", None, false), Ok(None));
        assert_eq!(parse_strict_uint("K", None, true), Ok(None));
        assert_eq!(
            parse_strict::<u64, String>("K", None, |_| Err("never called".into())),
            Ok(None)
        );
    }

    #[test]
    fn uint_accepts_plain_decimals() {
        assert_eq!(parse_strict_uint("K", Some("1"), false), Ok(Some(1)));
        assert_eq!(
            parse_strict_uint("K", Some("200000"), false),
            Ok(Some(200_000))
        );
        assert_eq!(parse_strict_uint("K", Some("0"), true), Ok(Some(0)));
    }

    #[test]
    fn uint_rejects_empty_and_malformed() {
        for bad in ["", " 5", "5 ", "+5", "-1", "0x10", "1e3", "five", "3.5"] {
            for allow_zero in [false, true] {
                let err = parse_strict_uint("MY_KNOB", Some(bad), allow_zero)
                    .expect_err(&format!("{bad:?} must be rejected, not defaulted"));
                assert!(err.contains("MY_KNOB"), "{bad:?}: {err}");
                assert!(err.contains("decimal"), "{bad:?}: {err}");
            }
        }
    }

    #[test]
    fn uint_zero_policy() {
        let err = parse_strict_uint("K", Some("0"), false).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        assert_eq!(parse_strict_uint("K", Some("0"), true), Ok(Some(0)));
    }

    #[test]
    fn generic_prefixes_the_variable_name() {
        let parse = |s: &str| -> Result<u8, String> {
            if s == "on" {
                Ok(1)
            } else {
                Err(format!("bad toggle {s:?}"))
            }
        };
        assert_eq!(parse_strict("TOGGLE", Some("on"), parse), Ok(Some(1)));
        let err = parse_strict("TOGGLE", Some("off"), parse).unwrap_err();
        assert!(err.starts_with("TOGGLE: "), "{err}");
        assert!(err.contains("bad toggle"), "{err}");
        // Empty strings reach the parser and must be rejected by it —
        // FOO= is a set (malformed) value, not an unset one.
        assert!(parse_strict("TOGGLE", Some(""), parse).is_err());
    }

    #[test]
    fn read_nonempty_defaults_only_when_unset() {
        // Process-env mutation is unsafe in tests (other threads read the
        // environment); exercise the classification logic directly via a
        // name that is certainly unset instead.
        assert_eq!(
            read_nonempty("CCSIM_ENV_TEST_SURELY_UNSET_7041", "fallback.json"),
            "fallback.json"
        );
    }
}
