//! Randomized tests for the mutex substrates: random schedules of the
//! simulated tournament, and real-thread agreement between all three
//! real locks. These are the former proptest suites ported to plain
//! `#[test]`s driven by the in-tree `ccsim::Prng` (the workspace builds
//! with zero external dependencies).

use ccsim::{run_random, Prng, Protocol, RunConfig};
use std::sync::Arc;
use wmutex::{mutex_world, ClhLock, IdMutex, TicketLock, TournamentLock};

/// Random schedules of the simulated tournament always complete all
/// passages with mutual exclusion intact (checked per step by the
/// runner), under all three memory models.
#[test]
fn sim_tournament_random_schedules() {
    let mut gen = Prng::new(0x5ee0_cafe);
    for case in 0..40 {
        let m = 1 + gen.below(6);
        let seed = gen.next_u64();
        let protocol = [Protocol::WriteBack, Protocol::WriteThrough, Protocol::Dsm][gen.below(3)];
        let mut sim = mutex_world(m, protocol);
        let mut rng = Prng::new(seed);
        let rc = RunConfig {
            passages_per_proc: 3,
            ..Default::default()
        };
        let report = run_random(&mut sim, &mut rng, &rc)
            .unwrap_or_else(|e| panic!("case {case}: m={m} {protocol:?} seed={seed}: {e}"));
        assert!(
            report.completed.iter().all(|&c| c == 3),
            "case {case}: m={m}"
        );
    }
}

/// All real locks serialize a non-atomic counter correctly for any
/// (threads, iters) shape.
#[test]
fn real_locks_serialize() {
    let mut gen = Prng::new(0x10c4_b01d);
    for case in 0..12 {
        let threads = 1 + gen.below(4);
        let iters = 1 + gen.next_u64() % 399;
        let locks: Vec<Arc<dyn IdMutex>> = vec![
            Arc::new(TournamentLock::new(threads)),
            Arc::new(ClhLock::new(threads)),
            Arc::new(TicketLock::new(threads)),
        ];
        for lock in locks {
            struct SendCell(std::cell::UnsafeCell<u64>);
            unsafe impl Send for SendCell {}
            unsafe impl Sync for SendCell {}
            let counter = Arc::new(SendCell(std::cell::UnsafeCell::new(0)));
            std::thread::scope(|s| {
                for id in 0..threads {
                    let lock = Arc::clone(&lock);
                    let counter = Arc::clone(&counter);
                    s.spawn(move || {
                        for _ in 0..iters {
                            lock.lock(id);
                            unsafe { *counter.0.get() += 1 };
                            lock.unlock(id);
                        }
                    });
                }
            });
            assert_eq!(
                unsafe { *counter.0.get() },
                threads as u64 * iters,
                "case {case}: {} lost updates",
                lock.name()
            );
        }
    }
}

/// The simulated and real tournament locks share the arena geometry: the
/// sim solo entry performs the same number of competitions as
/// `TournamentLock::levels`.
#[test]
fn sim_and_real_agree_on_levels() {
    for m in [1usize, 2, 3, 4, 8, 9] {
        let real = TournamentLock::new(m);
        let mut layout = ccsim::Layout::new();
        let sim = wmutex::SimTournament::allocate(&mut layout, "WL", m);
        assert_eq!(real.levels(), sim.levels(), "m={m}");
    }
}
