//! E3 — Lemma 17 (reader side): reader passages incur `Θ(log(n/f(n)))`
//! RMRs.
//!
//! Measures complete reader passages: solo from cold caches, the worst
//! mean under all-readers contention, and the wait path (arriving while a
//! writer holds the CS). The `RMR / log2(K)` column should stay near a
//! constant as `n` grows (K = n/f is the group size; the passage cost is
//! dominated by the f-array adds).
//!
//! The `(n, policy, protocol)` sweep fans out across cores via
//! [`bench::par::par_map`]; output order (and bytes) match a sequential
//! run.

use bench::par::par_map;
use bench::{log2, measure_af, standard_sweep, Table};
use ccsim::Protocol;
use rwcore::AfConfig;

fn main() {
    let configs: Vec<(Protocol, usize, rwcore::FPolicy)> =
        [Protocol::WriteBack, Protocol::WriteThrough]
            .into_iter()
            .flat_map(|protocol| {
                standard_sweep()
                    .into_iter()
                    .map(move |(n, policy)| (protocol, n, policy))
            })
            .collect();
    let samples = par_map(&configs, |&(protocol, n, policy)| {
        measure_af(
            AfConfig {
                readers: n,
                writers: 1,
                policy,
            },
            protocol,
        )
    });

    for protocol in [Protocol::WriteBack, Protocol::WriteThrough] {
        let mut table = Table::new([
            "n",
            "f policy",
            "K=n/f",
            "reader solo RMR",
            "solo/log2K",
            "concurrent max RMR",
            "wait-path RMR",
        ]);
        for ((p, n, policy), s) in configs.iter().zip(&samples) {
            if *p != protocol {
                continue;
            }
            let logk = log2(s.group_size.max(2) as f64);
            table.row([
                n.to_string(),
                policy.to_string(),
                s.group_size.to_string(),
                s.reader_solo_rmrs.to_string(),
                format!("{:.1}", s.reader_solo_rmrs as f64 / logk),
                s.reader_concurrent_max_rmrs.to_string(),
                s.reader_wait_path_rmrs.to_string(),
            ]);
        }
        println!("E3 — reader passage RMRs, {protocol:?} protocol\n");
        table.print();
        println!();
    }
    println!(
        "Expected shape: RMR/log2(K) is a small constant — reader cost is\n\
         Θ(log(n/f)) per Lemma 17; with f=n (K=1) passages are O(1)."
    );
}
