//! The auto-generated model-check suite, run end to end over the lock
//! registry — the sim surface of the registration contract. These runs
//! subsume the per-lock exploration tests that previously lived in
//! `af_exhaustive.rs` and `sharded_af.rs` (plain/gated/sharded/CAS-loop
//! `A_f` and the baselines, Mutual Exclusion plus Bounded Exit on probe
//! instances); what remains in `af_exhaustive.rs` is coverage the suite
//! does not generate — alternate policies/protocols, exhaustive fault
//! adversaries, and the negative-control counterexamples.

use ccsim::Protocol;
use modelcheck::{suite, CheckConfig};
use rwcore::{LockRegistry, Scenario};

#[test]
fn failure_free_suite_passes_for_every_builtin_sim_twin() {
    let reg = LockRegistry::builtin();
    let scenario: Scenario = "r9:1".parse().unwrap();
    let base = CheckConfig::default();
    let planned = suite::plan(&reg, &scenario, &base);
    let outcomes = suite::run_suite(&reg, &scenario, &base, Protocol::WriteBack, 0)
        .unwrap_or_else(|f| panic!("generated check failed: {f}"));
    assert_eq!(
        outcomes.len(),
        planned.len(),
        "every planned check ran: {:?}",
        planned.iter().map(|c| c.describe()).collect::<Vec<_>>()
    );
    for o in &outcomes {
        assert!(
            o.report.complete,
            "{}: exploration must exhaust the failure-free space",
            o.case.describe()
        );
        assert!(o.report.states_explored > 0, "{}", o.case.describe());
        assert_eq!(
            o.report.crash_transitions,
            0,
            "{}: failure-free runs take no crash transitions",
            o.case.describe()
        );
    }
    // The flagship's large instance is genuinely non-trivial.
    let af_large = outcomes
        .iter()
        .find(|o| o.case.lock == "a_f" && o.case.instance == "2r+2w")
        .expect("a_f 2r+2w ran");
    assert!(af_large.report.states_explored > 10_000);
}

#[test]
fn faulty_scenario_drives_crash_and_abort_adversaries_through_the_suite() {
    // The `faulty` preset on the flagship alone (the registry's other
    // twins either lack fault support — budgets intersect to zero — or
    // would re-run checks the failure-free test already covers). The
    // probe invariants are expensive per state, so the base config caps
    // the exploration: the assertion is that the generated adversary
    // actually strikes and every struck state passes the probes, not
    // that the capped slice is exhaustive (E15/E17 do that in release).
    let reg = LockRegistry::builtin();
    let flagship = LockRegistry::empty().with(reg.get("a_f").expect("a_f registered").clone());
    let scenario: Scenario = "r2:1,xcrash=0.01,xabort=0.01".parse().unwrap();
    let base = CheckConfig {
        max_states: 30_000,
        ..Default::default()
    };
    let planned = suite::plan(&flagship, &scenario, &base);
    let probe_case = planned
        .iter()
        .find(|c| c.instance == "2r+1w")
        .expect("probe instance planned");
    for prop in [
        "mutual-exclusion",
        "bounded-exit",
        "post-crash-acquirability",
        "bounded-abort",
    ] {
        assert!(
            probe_case.properties.contains(&prop),
            "faulty probe case plans {prop}: {}",
            probe_case.describe()
        );
    }
    let outcomes = suite::run_suite(&flagship, &scenario, &base, Protocol::WriteBack, 0)
        .unwrap_or_else(|f| panic!("generated fault check failed: {f}"));
    let probe = outcomes
        .iter()
        .find(|o| o.case.instance == "2r+1w")
        .expect("probe instance ran");
    assert!(
        probe.report.crash_transitions > 0,
        "the generated crash adversary must actually strike"
    );
    // The non-probe instance stayed failure-free by construction.
    let large = outcomes
        .iter()
        .find(|o| o.case.instance == "2r+2w")
        .expect("non-probe instance ran");
    assert_eq!(large.report.crash_transitions, 0);
    assert_eq!(large.case.config.crash_budget, 0);
}
