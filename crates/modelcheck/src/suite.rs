//! Auto-generated model-check suites over the lock registry.
//!
//! Every lock with a sim twin ([`rwcore::SimLock`]) gets its checks
//! derived here instead of hand-written per-lock test drivers: Mutual
//! Exclusion on every declared [`rwcore::SimInstance`], Bounded Exit on
//! probe instances that declare an exit budget, and — when the driving
//! [`Scenario`] carries fault pressure the lock's world model supports —
//! crash/abort-augmented exploration with the post-crash-acquirability
//! and bounded-abort invariants. Registering a lock in
//! [`rwcore::LockRegistry`] is the *only* step; the suite picks it up.
//!
//! The scenario is the same DSL string the bench harness consumes
//! (`"r2:1,xcrash=0.01,xabort=0.01"`): its `xcrash`/`xabort` rates map
//! to the exhaustive explorer's crash/abort budgets via
//! [`Scenario::crash_budget`]/[`Scenario::abort_budget`], intersected
//! with the lock's [`FaultSupport`] — a fault regime a world model
//! cannot express is skipped, not silently misreported as checked.
//!
//! Fault budgets are applied to **probe** instances only: each budget
//! unit multiplies the state space, and the probe instances are the
//! small worlds sized for exactly that. Non-probe instances are always
//! explored failure-free (Mutual Exclusion only).

use crate::{
    bounded_abort_invariant, bounded_exit_invariant, explore_par_with, explore_with,
    post_crash_acquirability_invariant, CheckConfig, CheckError, CheckReport,
};
use ccsim::{Protocol, Sim};
use rwcore::{FaultSupport, LockRegistry, Scenario, SimInstance, SimLock};

/// Budget conventions of the generated invariant probes, re-exported so
/// suite consumers and hand-written tests agree on one set of numbers.
pub mod budgets {
    /// Step budget of [`crate::bounded_abort_invariant`] probes.
    pub const ABORT: u64 = 400;
    /// Step budget of [`crate::post_crash_acquirability_invariant`]
    /// probes.
    pub const POST_CRASH: u64 = 4_000;
}

/// One generated check: a lock instance, the properties verified on it
/// (in one exploration pass), and the effective exploration config.
#[derive(Clone, Debug)]
pub struct SuiteCase {
    /// Registry id of the lock.
    pub lock: String,
    /// Instance label (e.g. `"2r+1w"`).
    pub instance: String,
    /// Property names checked on this instance.
    pub properties: Vec<&'static str>,
    /// The exploration limits and adversary budgets in force.
    pub config: CheckConfig,
}

impl SuiteCase {
    /// `"lock/instance: prop, prop"` — the line `--list`-style surfaces
    /// print.
    pub fn describe(&self) -> String {
        format!(
            "{}/{}: {}",
            self.lock,
            self.instance,
            self.properties.join(", ")
        )
    }
}

/// A generated check together with the exploration report that passed
/// it.
#[derive(Clone, Debug)]
pub struct SuiteOutcome {
    /// The check that ran.
    pub case: SuiteCase,
    /// The (passing) exploration report.
    pub report: CheckReport,
}

/// A failed generated check: which lock/instance, and the explorer's
/// counterexample.
#[derive(Debug)]
pub struct SuiteFailure {
    /// Registry id of the lock.
    pub lock: String,
    /// Instance label.
    pub instance: String,
    /// The violation, with schedule and fingerprint.
    pub error: CheckError,
}

impl std::fmt::Display for SuiteFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}: {}", self.lock, self.instance, self.error)
    }
}

/// The effective exploration config for one lock under `scenario`:
/// `base` with the scenario's crash/abort budgets, intersected with
/// what the lock's world model supports.
pub fn check_config_for(
    scenario: &Scenario,
    support: FaultSupport,
    base: &CheckConfig,
) -> CheckConfig {
    let mut cfg = base.clone();
    cfg.crash_budget = if support.crash {
        scenario.crash_budget()
    } else {
        0
    };
    // A system-wide crash composes every per-process crash at once, so
    // one is already the expensive regime; never plan more than one.
    cfg.crash_all_budget = if support.crash_all {
        scenario.crash_budget().min(1)
    } else {
        0
    };
    cfg.abort_budget = if support.abort {
        scenario.abort_budget()
    } else {
        0
    };
    cfg
}

/// The checks `scenario` generates for one sim twin. Shared by
/// [`plan`] and [`run_suite`] so the printed plan is exactly what runs.
fn cases_for(
    id: &str,
    sim: &dyn SimLock,
    scenario: &Scenario,
    base: &CheckConfig,
) -> Vec<(SimInstance, SuiteCase)> {
    let faulty = check_config_for(scenario, sim.fault_support(), base);
    let mut failure_free = base.clone();
    failure_free.crash_budget = 0;
    failure_free.crash_all_budget = 0;
    failure_free.abort_budget = 0;
    sim.instances()
        .into_iter()
        .map(|inst| {
            let config = if inst.probes {
                faulty.clone()
            } else {
                failure_free.clone()
            };
            let mut properties = vec!["mutual-exclusion"];
            if inst.probes && sim.exit_budget().is_some() {
                properties.push("bounded-exit");
            }
            if config.crash_budget > 0 || config.crash_all_budget > 0 {
                properties.push("post-crash-acquirability");
            }
            if config.abort_budget > 0 {
                properties.push("bounded-abort");
            }
            let case = SuiteCase {
                lock: id.to_string(),
                instance: inst.label.clone(),
                properties,
                config,
            };
            (inst, case)
        })
        .collect()
}

/// Enumerate the checks `scenario` generates over every sim twin in
/// `reg` — the model-check surface a registered lock appears on, and
/// what `experiments --list`-style listings print.
pub fn plan(reg: &LockRegistry, scenario: &Scenario, base: &CheckConfig) -> Vec<SuiteCase> {
    reg.sim_entries()
        .flat_map(|(id, sim)| {
            cases_for(id, sim.as_ref(), scenario, base)
                .into_iter()
                .map(|(_, case)| case)
        })
        .collect()
}

type Probe = Box<dyn Fn(&Sim) -> Result<(), String> + Sync>;

/// The invariant probes a planned case attaches (beyond the always-on
/// Mutual Exclusion check), derived from its property list.
fn probes_for(sim: &dyn SimLock, case: &SuiteCase) -> Vec<Probe> {
    let mut probes: Vec<Probe> = Vec::new();
    if case.properties.contains(&"bounded-exit") {
        let budget = sim
            .exit_budget()
            .expect("bounded-exit planned without a budget");
        probes.push(Box::new(bounded_exit_invariant(budget)));
    }
    if case.properties.contains(&"post-crash-acquirability") {
        probes.push(Box::new(post_crash_acquirability_invariant(
            budgets::POST_CRASH,
        )));
    }
    if case.properties.contains(&"bounded-abort") {
        probes.push(Box::new(bounded_abort_invariant(budgets::ABORT)));
    }
    probes
}

/// Run one generated check: a single exploration pass over the instance
/// with every applicable invariant probe attached.
pub fn run_case(
    sim: &dyn SimLock,
    inst: &SimInstance,
    case: &SuiteCase,
    protocol: Protocol,
    workers: usize,
) -> Result<CheckReport, CheckError> {
    let probes = probes_for(sim, case);
    explore_par_with(
        || sim.build(inst, protocol),
        &case.config,
        workers,
        move |s| probes.iter().try_for_each(|p| p(s)),
    )
}

/// [`run_case`] on the *sequential* explorer — identical checks, single
/// thread. The backend-parity suite drives every case through both
/// explorers; reports from the two must agree exactly on a complete run.
pub fn run_case_seq(
    sim: &dyn SimLock,
    inst: &SimInstance,
    case: &SuiteCase,
    protocol: Protocol,
) -> Result<CheckReport, CheckError> {
    let probes = probes_for(sim, case);
    explore_with(
        || sim.build(inst, protocol),
        &case.config,
        move |s| probes.iter().try_for_each(|p| p(s)),
    )
}

/// The (instance, case) pairs `scenario` generates for every sim twin —
/// the iteration surface external harnesses (e.g. the backend-parity
/// suite) use to run each case under custom configs.
pub fn planned_cases(
    reg: &LockRegistry,
    scenario: &Scenario,
    base: &CheckConfig,
) -> Vec<(String, SimInstance, SuiteCase)> {
    reg.sim_entries()
        .flat_map(|(id, sim)| {
            cases_for(id, sim.as_ref(), scenario, base)
                .into_iter()
                .map(move |(inst, case)| (id.to_string(), inst, case))
        })
        .collect()
}

/// Run the whole generated suite for `scenario` over every sim twin in
/// `reg`, stopping at the first failure.
///
/// # Errors
/// The first failing check, with the lock/instance it failed on and the
/// explorer's deterministic counterexample.
pub fn run_suite(
    reg: &LockRegistry,
    scenario: &Scenario,
    base: &CheckConfig,
    protocol: Protocol,
    workers: usize,
) -> Result<Vec<SuiteOutcome>, Box<SuiteFailure>> {
    let mut outcomes = Vec::new();
    for (id, sim) in reg.sim_entries() {
        for (inst, case) in cases_for(id, sim.as_ref(), scenario, base) {
            match run_case(sim.as_ref(), &inst, &case, protocol, workers) {
                Ok(report) => outcomes.push(SuiteOutcome { case, report }),
                Err(error) => {
                    return Err(Box::new(SuiteFailure {
                        lock: case.lock,
                        instance: case.instance,
                        error,
                    }))
                }
            }
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failure_free() -> Scenario {
        "r9:1".parse().unwrap()
    }

    #[test]
    fn plan_covers_every_sim_twin() {
        let reg = LockRegistry::builtin();
        let base = CheckConfig::default();
        let cases = plan(&reg, &failure_free(), &base);
        let locks: std::collections::BTreeSet<&str> =
            cases.iter().map(|c| c.lock.as_str()).collect();
        for (id, _) in reg.sim_entries() {
            assert!(locks.contains(id), "{id} missing from the plan");
        }
        // Failure-free scenario: no fault properties anywhere.
        for c in &cases {
            assert!(
                c.properties.contains(&"mutual-exclusion"),
                "{}",
                c.describe()
            );
            assert!(
                !c.properties.contains(&"post-crash-acquirability"),
                "{}",
                c.describe()
            );
            assert_eq!(c.config.crash_budget, 0, "{}", c.describe());
        }
        // Probe instances with an exit budget get the Bounded Exit probe.
        assert!(
            cases
                .iter()
                .any(|c| c.lock == "a_f" && c.properties.contains(&"bounded-exit")),
            "a_f probes plan Bounded Exit"
        );
        // Baselines opted out via exit_budget = None.
        assert!(
            cases
                .iter()
                .filter(|c| c.lock == "centralized-cas")
                .all(|c| !c.properties.contains(&"bounded-exit")),
            "baselines never plan Bounded Exit"
        );
    }

    #[test]
    fn faulty_scenario_plans_fault_properties_where_supported() {
        let reg = LockRegistry::builtin();
        let scenario: Scenario = "r2:1,xcrash=0.01,xabort=0.01".parse().unwrap();
        let base = CheckConfig::default();
        let cases = plan(&reg, &scenario, &base);
        let af_probe = cases
            .iter()
            .find(|c| c.lock == "a_f" && c.instance == "2r+1w")
            .expect("a_f probe instance planned");
        assert!(af_probe.properties.contains(&"post-crash-acquirability"));
        assert!(af_probe.properties.contains(&"bounded-abort"));
        assert_eq!(af_probe.config.crash_budget, 1);
        assert_eq!(af_probe.config.crash_all_budget, 1);
        assert_eq!(af_probe.config.abort_budget, 1);
        // The larger a_f instance stays failure-free (probes gate cost).
        let af_large = cases
            .iter()
            .find(|c| c.lock == "a_f" && c.instance == "2r+2w")
            .expect("a_f large instance planned");
        assert_eq!(af_large.config.crash_budget, 0);
        // Locks without fault support never plan fault properties.
        for c in cases.iter().filter(|c| c.lock == "a_f-sharded") {
            assert!(
                !c.properties.contains(&"post-crash-acquirability"),
                "{}",
                c.describe()
            );
        }
    }

    #[test]
    fn config_intersection_respects_support() {
        let scenario: Scenario = "r1:1,xcrash=0.2,xabort=0.01".parse().unwrap();
        let base = CheckConfig::default();
        let all = check_config_for(&scenario, FaultSupport::ALL, &base);
        assert_eq!(all.crash_budget, 2);
        assert_eq!(all.crash_all_budget, 1, "crash-alls cap at one");
        assert_eq!(all.abort_budget, 1);
        let none = check_config_for(&scenario, FaultSupport::NONE, &base);
        assert_eq!(
            (none.crash_budget, none.crash_all_budget, none.abort_budget),
            (0, 0, 0)
        );
    }
}
