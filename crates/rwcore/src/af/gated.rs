//! A writer-biased `A_f` variant (the paper's §6 future-work direction).
//!
//! `A_f` writers can starve under a continuous stream of readers: the
//! PREENTRY handshake needs a moment with `C[i] = 0`, and fresh readers
//! keep the counters positive. This variant adds a single *gate*
//! variable, owned by whichever writer holds `WL`:
//!
//! * the `WL` holder writes `GATE := 1` immediately after acquiring `WL`
//!   and `GATE := 0` in its exit section (before `WL.Exit`);
//! * readers spin on `GATE = 0` *before* their `A_f` entry section
//!   (before line 31's `C[i].add(1)`).
//!
//! Because only the current `WL` holder writes the gate, plain writes
//! suffice (no counter needed), and because readers are held *outside*
//! the `A_f` protocol, every `A_f` invariant — and therefore Mutual
//! Exclusion — is untouched; the model checker confirms it exhaustively.
//!
//! **The trade:** the writer's group-drain completes as fast as the
//! in-flight readers exit, but Lemma 16 is lost — an adversarial schedule
//! can now starve a *reader* behind back-to-back writer passages. RMR
//! costs gain `O(1)` per overlapping writer passage on the reader side
//! and `+2` on the writer side, so Theorem 18's complexity bounds are
//! preserved. Experiment E14 quantifies the latency gain.

use crate::af::real::RawAfLock;
use crate::af::shared::AfShared;
use crate::af::sim::{AfReaderSim, AfWriterSim};
use crate::config::AfConfig;
use crate::world::PidMap;
use ccsim::{Layout, Memory, Op, Phase, Program, Protocol, Role, Sim, Step, Value, VarId};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The real-atomics writer-biased lock: [`RawAfLock`] plus the gate.
#[derive(Debug)]
pub struct GatedAfLock {
    inner: RawAfLock,
    gate: AtomicU64,
}

impl GatedAfLock {
    /// Build a gated lock for the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration has zero readers or writers.
    pub fn new(cfg: AfConfig) -> Self {
        GatedAfLock {
            inner: RawAfLock::new(cfg),
            gate: AtomicU64::new(0),
        }
    }

    /// The lock's configuration.
    pub fn config(&self) -> &AfConfig {
        self.inner.config()
    }

    /// Reader entry: wait out any active writer at the gate, then run the
    /// `A_f` entry section.
    pub fn reader_lock(&self, reader_id: usize) {
        while self.gate.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        self.inner.reader_lock(reader_id);
    }

    /// Reader exit: unchanged `A_f` exit section.
    pub fn reader_unlock(&self, reader_id: usize) {
        self.inner.reader_unlock(reader_id);
    }

    /// Writer entry: acquire `WL`, raise the gate, then run the rest of
    /// the `A_f` entry section.
    pub fn writer_lock(&self, writer_id: usize) {
        // RawAfLock::writer_lock begins with WL.lock; we need the gate
        // raised between WL acquisition and the PREENTRY phase. The raw
        // lock doesn't expose that seam, so the gate is raised *before*
        // WL here: pending writers bias readers away even while queued,
        // which only strengthens the writer preference (the gate is
        // cleared by the writer that finishes, so it stays 1 as long as
        // any writer is inside or queued-and-first).
        self.gate.store(1, Ordering::SeqCst);
        self.inner.writer_lock(writer_id);
    }

    /// Writer exit: clear the gate, then run the `A_f` exit section.
    pub fn writer_unlock(&self, writer_id: usize) {
        self.gate.store(0, Ordering::SeqCst);
        self.inner.writer_unlock(writer_id);
    }
}

impl crate::baselines::real::RawRwLock for GatedAfLock {
    fn reader_lock(&self, id: usize) {
        Self::reader_lock(self, id);
    }
    fn reader_unlock(&self, id: usize) {
        Self::reader_unlock(self, id);
    }
    fn writer_lock(&self, id: usize) {
        Self::writer_lock(self, id);
    }
    fn writer_unlock(&self, id: usize) {
        Self::writer_unlock(self, id);
    }
    fn name(&self) -> &'static str {
        "a_f-gated"
    }
}

/// Simulated gated reader: spin on the gate, then behave as [`AfReaderSim`].
#[derive(Clone, Debug)]
pub struct GatedReaderSim {
    gate: VarId,
    at_gate: bool,
    inner: AfReaderSim,
}

impl GatedReaderSim {
    /// Build the machine for reader `id`.
    pub fn new(gate: VarId, shared: Arc<AfShared>, id: usize) -> Self {
        GatedReaderSim {
            gate,
            at_gate: false,
            inner: AfReaderSim::new(shared, id),
        }
    }
}

impl Program for GatedReaderSim {
    ccsim::impl_program_in_place_clone!();

    fn poll(&self) -> Step {
        if self.at_gate {
            Step::Op(Op::Read(self.gate))
        } else {
            self.inner.poll()
        }
    }

    fn resume(&mut self, response: Value) {
        if self.at_gate {
            if response.expect_int() == 0 {
                self.at_gate = false;
                // Proceed into the A_f entry section proper.
                self.inner.resume(Value::Nil);
            }
            // else: keep spinning at the gate.
        } else if self.inner.phase() == Phase::Remainder {
            // Beginning a passage: head to the gate first. The inner
            // machine is advanced only once the gate opens.
            self.at_gate = true;
        } else {
            self.inner.resume(response);
        }
    }

    fn phase(&self) -> Phase {
        if self.at_gate {
            Phase::Entry
        } else {
            self.inner.phase()
        }
    }

    fn role(&self) -> Role {
        Role::Reader
    }

    fn on_crash(&mut self) {
        self.at_gate = false;
        self.inner.on_crash();
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        self.at_gate.hash(&mut h);
        self.inner.fingerprint(h);
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

/// Simulated gated writer: raise the gate, run [`AfWriterSim`], clear the
/// gate at the start of the exit section.
#[derive(Clone, Debug)]
pub struct GatedWriterSim {
    gate: VarId,
    pc: GatePc,
    inner: AfWriterSim,
}

#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum GatePc {
    /// Delegating to the inner machine.
    Inner,
    /// About to write `GATE := 1` (start of entry).
    Raise,
    /// About to write `GATE := 0` (start of exit).
    Clear,
}

impl GatedWriterSim {
    /// Build the machine for writer `id`.
    pub fn new(gate: VarId, shared: Arc<AfShared>, id: usize) -> Self {
        GatedWriterSim {
            gate,
            pc: GatePc::Inner,
            inner: AfWriterSim::new(shared, id),
        }
    }
}

impl Program for GatedWriterSim {
    ccsim::impl_program_in_place_clone!();

    fn poll(&self) -> Step {
        match self.pc {
            GatePc::Raise => Step::Op(Op::write(self.gate, 1)),
            GatePc::Clear => Step::Op(Op::write(self.gate, 0)),
            GatePc::Inner => self.inner.poll(),
        }
    }

    fn resume(&mut self, response: Value) {
        match self.pc {
            GatePc::Raise | GatePc::Clear => {
                self.pc = GatePc::Inner;
            }
            GatePc::Inner => match self.inner.poll() {
                Step::Remainder => {
                    // Begin passage: raise the gate first, then let the
                    // inner machine start (WL.Enter etc.).
                    self.inner.resume(Value::Nil);
                    self.pc = GatePc::Raise;
                }
                Step::Cs => {
                    // Leave the CS: clear the gate first, then start the
                    // inner exit section.
                    self.inner.resume(Value::Nil);
                    self.pc = GatePc::Clear;
                }
                Step::Op(_) => self.inner.resume(response),
            },
        }
    }

    fn phase(&self) -> Phase {
        match self.pc {
            GatePc::Raise => Phase::Entry,
            GatePc::Clear => Phase::Exit,
            GatePc::Inner => self.inner.phase(),
        }
    }

    fn role(&self) -> Role {
        Role::Writer
    }

    fn on_crash(&mut self) {
        self.pc = GatePc::Inner;
        self.inner.on_crash();
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        self.pc.hash(&mut h);
        self.inner.fingerprint(h);
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }
}

/// A wired-up simulated gated world (same pid convention as
/// [`crate::af_world`]).
#[derive(Debug)]
pub struct GatedWorld {
    /// The simulation.
    pub sim: Sim,
    /// The `A_f` shared variables.
    pub shared: Arc<AfShared>,
    /// The gate variable.
    pub gate: VarId,
    /// Id conventions.
    pub pids: PidMap,
}

/// Build a simulated writer-biased world.
pub fn gated_af_world(cfg: AfConfig, protocol: Protocol) -> GatedWorld {
    let mut layout = Layout::new();
    let shared = AfShared::allocate(&mut layout, cfg);
    let gate = layout.var("GATE", Value::Int(0));
    let pids = PidMap::from(cfg);
    let mem = Memory::new(&layout, pids.total(), protocol);
    let mut procs: Vec<Box<dyn Program>> = Vec::new();
    for r in 0..cfg.readers {
        procs.push(Box::new(GatedReaderSim::new(gate, Arc::clone(&shared), r)));
    }
    for w in 0..cfg.writers {
        procs.push(Box::new(GatedWriterSim::new(gate, Arc::clone(&shared), w)));
    }
    GatedWorld {
        sim: Sim::new(mem, procs),
        shared,
        gate,
        pids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FPolicy;
    use ccsim::{run_random, run_round_robin, run_solo, Prng, RunConfig};

    #[test]
    fn round_robin_completes() {
        let cfg = AfConfig {
            readers: 3,
            writers: 2,
            policy: FPolicy::Groups(2),
        };
        let mut world = gated_af_world(cfg, Protocol::WriteBack);
        let rc = RunConfig {
            passages_per_proc: 3,
            ..Default::default()
        };
        let report = run_round_robin(&mut world.sim, &rc).unwrap();
        assert!(report.completed.iter().all(|&c| c == 3));
    }

    #[test]
    fn random_schedules_safe() {
        for seed in 0..20 {
            let cfg = AfConfig {
                readers: 3,
                writers: 1,
                policy: FPolicy::One,
            };
            let mut world = gated_af_world(cfg, Protocol::WriteBack);
            let mut rng = Prng::new(seed);
            let rc = RunConfig {
                passages_per_proc: 3,
                ..Default::default()
            };
            run_random(&mut world.sim, &mut rng, &rc)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn gate_blocks_new_readers_during_writer_passage() {
        let cfg = AfConfig {
            readers: 2,
            writers: 1,
            policy: FPolicy::One,
        };
        let mut world = gated_af_world(cfg, Protocol::WriteBack);
        let (r0, w0) = (world.pids.reader(0), world.pids.writer(0));
        // Writer raises the gate and enters.
        run_solo(&mut world.sim, w0, 10_000, |s| s.phase(w0) == Phase::Cs).unwrap();
        assert_eq!(world.sim.mem().peek(world.gate), Value::Int(1));
        // A fresh reader cannot even increment C[0]: it parks at the gate.
        assert_eq!(
            run_solo(&mut world.sim, r0, 2_000, |s| s.phase(r0) == Phase::Cs),
            None
        );
        assert_eq!(
            world.shared.peek_c(world.sim.mem(), 0),
            0,
            "gated reader must not have entered the A_f protocol"
        );
        // Writer leaves; the gate opens; the reader proceeds.
        run_solo(&mut world.sim, w0, 10_000, |s| {
            s.phase(w0) == Phase::Remainder
        })
        .unwrap();
        assert_eq!(world.sim.mem().peek(world.gate), Value::Int(0));
        run_solo(&mut world.sim, r0, 10_000, |s| s.phase(r0) == Phase::Cs).unwrap();
    }

    #[test]
    fn real_gated_lock_stress() {
        use crate::baselines::real::RawRwLock;
        let cfg = AfConfig {
            readers: 4,
            writers: 2,
            policy: FPolicy::LogN,
        };
        let lock = std::sync::Arc::new(GatedAfLock::new(cfg));
        let occ = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for r in 0..4 {
                let (lock, occ) = (std::sync::Arc::clone(&lock), std::sync::Arc::clone(&occ));
                s.spawn(move || {
                    for _ in 0..500 {
                        lock.reader_lock(r);
                        let v = occ.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(v >> 32, 0, "reader with a writer");
                        occ.fetch_sub(1, Ordering::SeqCst);
                        lock.reader_unlock(r);
                    }
                });
            }
            for w in 0..2 {
                let (lock, occ) = (std::sync::Arc::clone(&lock), std::sync::Arc::clone(&occ));
                s.spawn(move || {
                    for _ in 0..500 {
                        RawRwLock::writer_lock(&*lock, w);
                        let v = occ.fetch_add(1 << 32, Ordering::SeqCst);
                        assert_eq!(v, 0, "writer with occupants");
                        occ.fetch_sub(1 << 32, Ordering::SeqCst);
                        RawRwLock::writer_unlock(&*lock, w);
                    }
                });
            }
        });
    }

    #[test]
    fn concurrent_entering_still_holds_when_writers_quiet() {
        // All writers in remainder => gate is 0 => readers enter in
        // bounded steps (the +1 is the gate read).
        let cfg = AfConfig {
            readers: 4,
            writers: 1,
            policy: FPolicy::One,
        };
        let mut world = gated_af_world(cfg, Protocol::WriteBack);
        let r0 = world.pids.reader(0);
        let steps =
            run_solo(&mut world.sim, r0, 100, |s| s.phase(r0) == Phase::Cs).expect("bounded entry");
        assert!(steps < 40, "{steps} steps");
    }
}
