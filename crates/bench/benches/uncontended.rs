//! Uncontended passage latency of every lock implementation: the price of
//! a reader or writer passage when nobody else competes. The `A_f` reader
//! pays its `Θ(log(n/f))` f-array walk even uncontended; the `f` policy
//! moves that cost between the two rows. Run with
//! `cargo bench -p bench --bench uncontended`.

use bench::stopwatch::bench_loop;
use rwcore::{
    AfConfig, CentralizedRwLock, FPolicy, FaaRwLock, GatedAfLock, MutexRwLock, RawAfLock, RawRwLock,
};

fn locks(n: usize) -> Vec<(String, Box<dyn RawRwLock>)> {
    vec![
        (
            "a_f(f=1)".into(),
            Box::new(RawAfLock::new(AfConfig {
                readers: n,
                writers: 2,
                policy: FPolicy::One,
            })),
        ),
        (
            "a_f(f=sqrt)".into(),
            Box::new(RawAfLock::new(AfConfig {
                readers: n,
                writers: 2,
                policy: FPolicy::SqrtN,
            })),
        ),
        (
            "a_f(f=n)".into(),
            Box::new(RawAfLock::new(AfConfig {
                readers: n,
                writers: 2,
                policy: FPolicy::Linear,
            })),
        ),
        (
            "a_f-gated(f=1)".into(),
            Box::new(GatedAfLock::new(AfConfig {
                readers: n,
                writers: 2,
                policy: FPolicy::One,
            })),
        ),
        ("centralized-cas".into(), Box::new(CentralizedRwLock::new())),
        ("faa-indicator".into(), Box::new(FaaRwLock::new(2))),
        ("mutex-only".into(), Box::new(MutexRwLock::new(n, 2))),
    ]
}

fn bench_reader_passage() {
    let n = 64;
    println!("== uncontended_reader_passage ==");
    for (name, lock) in locks(n) {
        bench_loop(&name, || {
            lock.reader_lock(0);
            lock.reader_unlock(0);
        });
    }
}

fn bench_writer_passage() {
    let n = 64;
    println!("== uncontended_writer_passage ==");
    for (name, lock) in locks(n) {
        bench_loop(&name, || {
            lock.writer_lock(0);
            lock.writer_unlock(0);
        });
    }
}

fn main() {
    bench_reader_passage();
    bench_writer_passage();
}
