//! E12 (extension) — quantifying §6's acknowledged fairness gap:
//! "Writers ... may starve if there are always readers performing
//! passages." Measures scheduler steps to the writer's first CS entry
//! while `a` readers churn, per lock.

use super::prelude::*;
use super::support::{median, writer_latency};
use rwcore::{af_world, centralized_world, faa_world};

const N: usize = 16;
const BUDGET: u64 = 2_000_000;

#[derive(Copy, Clone)]
enum Lock {
    Af,
    Faa,
    Centralized,
}

impl Lock {
    const ALL: [Lock; 3] = [Lock::Af, Lock::Faa, Lock::Centralized];

    fn label(self) -> &'static str {
        match self {
            Lock::Af => "A_f (f=1)",
            Lock::Faa => "faa-indicator",
            Lock::Centralized => "centralized-cas",
        }
    }

    fn latency(self, active: usize, seed: u64) -> Option<u64> {
        match self {
            Lock::Af => {
                let cfg = AfConfig {
                    readers: N,
                    writers: 1,
                    policy: FPolicy::One,
                };
                let mut world = af_world(cfg, Protocol::WriteBack);
                writer_latency(&mut world.sim, &world.pids, active, seed, BUDGET)
            }
            Lock::Faa => {
                let mut world = faa_world(N, 1, Protocol::WriteBack);
                writer_latency(&mut world.sim, &world.pids, active, seed, BUDGET)
            }
            Lock::Centralized => {
                let mut world = centralized_world(N, 1, Protocol::WriteBack);
                writer_latency(&mut world.sim, &world.pids, active, seed, BUDGET)
            }
        }
    }
}

/// Registry entry for the writer-starvation measurement.
pub(crate) struct E12;

impl Experiment for E12 {
    fn id(&self) -> &'static str {
        "e12_writer_starvation"
    }

    fn title(&self) -> &'static str {
        "writer time-to-CS under reader churn"
    }

    fn claim(&self) -> &'static str {
        "§6 fairness gap: no contender is writer-fair; A_f's writer latency grows with reader churn"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let (actives, seeds): (&[usize], u64) = if ctx.smoke() {
            (&[0, 2], 3)
        } else {
            (&[0, 1, 2, 4, 8, 16], 9)
        };
        let rows: Vec<(usize, Lock)> = actives
            .iter()
            .flat_map(|&a| Lock::ALL.map(|l| (a, l)))
            .collect();
        let samples = par_map(&rows, |&(active, lock)| {
            (0..seeds)
                .map(|seed| lock.latency(active, seed))
                .collect::<Vec<_>>()
        });

        let mut table = Table::new(["lock", "active readers", "median steps to writer CS"]);
        let mut medians_finite = 0usize;
        for ((active, lock), mut row_samples) in rows.iter().zip(samples) {
            let m = median(&mut row_samples);
            medians_finite += usize::from(m != "STARVED");
            table.row([lock.label().to_string(), active.to_string(), m]);
        }

        let mut report = Report::new(self, ctx);
        report
            .section(
                format!("n = {N}, step budget {BUDGET}, {seeds} seeds/row"),
                table,
            )
            .check(Check::all(
                "the median seeded run reaches the writer CS within the step budget",
                medians_finite,
                rows.len(),
            ))
            .notes(
                "Expected shape: every lock's writer latency grows with churn (no\n\
                 contender here is writer-fair). A_f grows steadily — its writer\n\
                 needs a moment with C[i] = 0 per group, but once past PREENTRY\n\
                 the WAIT flag holds arrivals back, so medians stay moderate. The\n\
                 FAA lock's flag gives similar protection after the drain begins.\n\
                 The centralized lock is heavy-tailed: its writer needs an instant\n\
                 with a zero word AND must win the CAS race outright, so medians\n\
                 jump around and individual runs starve. A variant of A_f with\n\
                 writer fairness at the same tradeoff is the paper's open problem.",
            );
        report
    }
}
