//! E6 — the `WL` substrate: tournament mutex passages incur `Θ(log m)`
//! RMRs (the writer-side floor implied by Corollary 7).

use bench::{log2, measure_mutex, Table};
use ccsim::Protocol;

fn main() {
    for protocol in [Protocol::WriteBack, Protocol::WriteThrough] {
        let mut table = Table::new([
            "m",
            "levels",
            "solo RMR",
            "solo/levels",
            "contended max RMR",
            "contended/levels",
        ]);
        for m in [2usize, 4, 8, 16, 32, 64, 128, 256] {
            let s = measure_mutex(m, protocol);
            let lv = s.levels.max(1) as f64;
            table.row([
                m.to_string(),
                s.levels.to_string(),
                s.solo_rmrs.to_string(),
                format!("{:.1}", s.solo_rmrs as f64 / lv),
                s.contended_max_rmrs.to_string(),
                format!("{:.1}", s.contended_max_rmrs as f64 / lv),
            ]);
        }
        println!("E6 — tournament mutex passage RMRs, {protocol:?} protocol\n");
        table.print();
        println!();
    }
    println!(
        "Expected shape: RMR/levels stays near a constant — Θ(log m) per\n\
         passage (levels = ceil(log2 m) = {:.0} at m = 256).",
        log2(256.0)
    );
}
