//! Values stored in simulated shared-memory variables, and process identifiers.

use std::fmt;

/// Identifier of a simulated process.
///
/// Processes are numbered `0..P` within a [`crate::Sim`]. The paper's process
/// set is `{R_1..R_n, W_1..W_m}`; harnesses conventionally assign readers the
/// low ids and writers the high ids, but nothing in the simulator depends on
/// that.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcId(pub usize);

impl ProcId {
    /// The raw index of this process.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcId {
    fn from(i: usize) -> Self {
        ProcId(i)
    }
}

/// Identifier of a simulated shared variable, allocated by [`crate::Layout`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub usize);

impl VarId {
    /// The raw index of this variable.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A value held by a simulated shared variable.
///
/// The simulator is typed loosely: every variable holds a [`Value`], and
/// programs decode the variant they expect (helpers panic on a variant
/// mismatch, which indicates a bug in a simulated algorithm, never user
/// error). Equality on `Value` is exact structural equality; it determines
/// CAS success and step *triviality* (a step is trivial iff it does not
/// change the value of the variable it accesses, §2 of the paper).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Value {
    /// The distinguished "unset"/⊥ value.
    #[default]
    Nil,
    /// A signed integer.
    Int(i64),
    /// An ordered pair of integers, used for the paper's `<seq, opcode>`
    /// signal words (`RSIG`, `WSIG[i]`).
    Pair(i64, i64),
    /// A process identifier (used e.g. by mutual-exclusion algorithms that
    /// store process names in variables).
    Proc(ProcId),
    /// A boolean flag.
    Bool(bool),
}

impl Value {
    /// Decode an integer.
    ///
    /// # Panics
    /// Panics if the value is not [`Value::Int`].
    pub fn expect_int(self) -> i64 {
        match self {
            Value::Int(i) => i,
            other => panic!("expected Value::Int, found {other:?}"),
        }
    }

    /// Decode a pair.
    ///
    /// # Panics
    /// Panics if the value is not [`Value::Pair`].
    pub fn expect_pair(self) -> (i64, i64) {
        match self {
            Value::Pair(a, b) => (a, b),
            other => panic!("expected Value::Pair, found {other:?}"),
        }
    }

    /// Decode a boolean.
    ///
    /// # Panics
    /// Panics if the value is not [`Value::Bool`].
    pub fn expect_bool(self) -> bool {
        match self {
            Value::Bool(b) => b,
            other => panic!("expected Value::Bool, found {other:?}"),
        }
    }

    /// Decode a process id, treating [`Value::Nil`] as `None`.
    ///
    /// # Panics
    /// Panics if the value is neither [`Value::Proc`] nor [`Value::Nil`].
    pub fn expect_proc_opt(self) -> Option<ProcId> {
        match self {
            Value::Proc(p) => Some(p),
            Value::Nil => None,
            other => panic!("expected Value::Proc or Nil, found {other:?}"),
        }
    }

    /// True iff this is [`Value::Nil`].
    pub fn is_nil(self) -> bool {
        matches!(self, Value::Nil)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "⊥"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Pair(a, b) => write!(f, "<{a},{b}>"),
            Value::Proc(p) => write!(f, "{p}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<(i64, i64)> for Value {
    fn from(p: (i64, i64)) -> Self {
        Value::Pair(p.0, p.1)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<ProcId> for Value {
    fn from(p: ProcId) -> Self {
        Value::Proc(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_equality_is_structural() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Int(4));
        assert_ne!(Value::Int(0), Value::Nil);
        assert_eq!(Value::Pair(1, 2), Value::Pair(1, 2));
        assert_ne!(Value::Pair(1, 2), Value::Pair(2, 1));
    }

    #[test]
    fn decode_helpers_roundtrip() {
        assert_eq!(Value::from(7i64).expect_int(), 7);
        assert_eq!(Value::from((1, 2)).expect_pair(), (1, 2));
        assert!(Value::from(true).expect_bool());
        assert_eq!(Value::from(ProcId(3)).expect_proc_opt(), Some(ProcId(3)));
        assert_eq!(Value::Nil.expect_proc_opt(), None);
    }

    #[test]
    #[should_panic(expected = "expected Value::Int")]
    fn expect_int_panics_on_mismatch() {
        Value::Bool(true).expect_int();
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Nil.to_string(), "⊥");
        assert_eq!(Value::Pair(4, 1).to_string(), "<4,1>");
        assert_eq!(ProcId(2).to_string(), "p2");
        assert_eq!(VarId(5).to_string(), "v5");
    }

    #[test]
    fn default_is_nil() {
        assert!(Value::default().is_nil());
    }
}
