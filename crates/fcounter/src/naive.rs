//! Comparison counters: CAS retry loop and fetch-and-add.
//!
//! The f-array exists because a CAS retry loop has *unbounded* worst-case
//! step complexity under contention (an adversary can fail one process's
//! CAS forever), which would break the lock's Bounded Exit property.
//! Fetch-and-add solves that in `O(1)` — but FAA is outside the paper's
//! read/write/CAS operation set, which is exactly why the Ω(log) tradeoff
//! does not apply to FAA-based locks such as Bhatt–Jayanti (§6).

use std::sync::atomic::{AtomicI64, Ordering};

/// Operations shared by all counter implementations in this crate, so
/// benches can sweep over them uniformly.
pub trait SharedCounter: Send + Sync {
    /// Add `delta` on behalf of process `id`.
    fn add(&self, id: usize, delta: i64);
    /// Read the current value.
    fn read(&self) -> i64;
    /// A short human-readable implementation name.
    fn name(&self) -> &'static str;
}

impl SharedCounter for crate::FArray {
    fn add(&self, id: usize, delta: i64) {
        FArrayExt::add(self, id, delta);
    }
    fn read(&self) -> i64 {
        FArrayExt::read(self)
    }
    fn name(&self) -> &'static str {
        "f-array"
    }
}

/// Disambiguation shim: calls the inherent methods of [`crate::FArray`].
trait FArrayExt {
    fn add(&self, id: usize, delta: i64);
    fn read(&self) -> i64;
}

impl FArrayExt for crate::FArray {
    fn add(&self, id: usize, delta: i64) {
        crate::FArray::add(self, id, delta)
    }
    fn read(&self) -> i64 {
        crate::FArray::read(self)
    }
}

/// A counter implemented as a single word updated by a CAS retry loop.
///
/// Lock-free but not wait-free: an individual `add` can starve under
/// contention, and its worst-case step count is unbounded — the property
/// the lower-bound adversary exploits against centralized locks.
#[derive(Debug, Default)]
pub struct CasCounter {
    value: AtomicI64,
}

impl CasCounter {
    /// A zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta`, retrying the CAS until it succeeds. Returns the number
    /// of attempts (1 = uncontended), which benches use as a contention
    /// metric.
    pub fn add_counting_attempts(&self, delta: i64) -> u64 {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let cur = self.value.load(Ordering::SeqCst);
            if self
                .value
                .compare_exchange(cur, cur + delta, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return attempts;
            }
        }
    }
}

impl SharedCounter for CasCounter {
    fn add(&self, _id: usize, delta: i64) {
        self.add_counting_attempts(delta);
    }
    fn read(&self) -> i64 {
        self.value.load(Ordering::SeqCst)
    }
    fn name(&self) -> &'static str {
        "cas-loop"
    }
}

/// A counter implemented with hardware fetch-and-add: `O(1)` steps,
/// wait-free — but using an operation outside the paper's model.
#[derive(Debug, Default)]
pub struct FaaCounter {
    value: AtomicI64,
}

impl FaaCounter {
    /// A zero counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SharedCounter for FaaCounter {
    fn add(&self, _id: usize, delta: i64) {
        self.value.fetch_add(delta, Ordering::SeqCst);
    }
    fn read(&self) -> i64 {
        self.value.load(Ordering::SeqCst)
    }
    fn name(&self) -> &'static str {
        "fetch-add"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FArray;
    use std::sync::Arc;

    fn exercise(c: Arc<dyn SharedCounter>, threads: usize, per: i64) {
        let mut handles = Vec::new();
        for id in 0..threads {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..per {
                    c.add(id, 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.read(), threads as i64 * per, "{}", c.name());
    }

    #[test]
    fn all_implementations_count_correctly() {
        exercise(Arc::new(CasCounter::new()), 4, 500);
        exercise(Arc::new(FaaCounter::new()), 4, 500);
        exercise(Arc::new(FArray::new(4)), 4, 500);
    }

    #[test]
    fn cas_counter_reports_attempts() {
        let c = CasCounter::new();
        assert_eq!(
            c.add_counting_attempts(1),
            1,
            "uncontended add takes one attempt"
        );
        assert_eq!(c.read(), 1);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            SharedCounter::name(&CasCounter::new()),
            SharedCounter::name(&FaaCounter::new()),
            SharedCounter::name(&FArray::new(1)),
        ];
        assert_eq!(
            names.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }
}
