//! The Theorem-5 lower-bound adversary.
//!
//! Constructs the execution of Figure 1 against a live lock
//! implementation:
//!
//! * `E1` — every reader runs solo through its entry section into the CS;
//! * `E2 = σ0 σ1 … σr` — readers execute their exit sections, but each
//!   reader is *parked* whenever its next step would be an expanding step
//!   (Definition 3); each iteration releases all parked expanding steps in
//!   the Lemma-2 order (reads, then writes, then CAS/FAA grouped by
//!   variable) and lets readers run non-expanding again;
//! * `E3` — one writer runs solo through its entry section into the CS.
//!
//! The report records `r` (the iteration count the paper proves is
//! `Ω(log₃(n/f(n)))`), the per-iteration maximum knowledge `M` (which
//! Lemma 2 bounds by `3^j`), the worst per-reader expanding-step count,
//! reader exit RMRs, writer entry RMRs, and the Lemma-4 check that the
//! writer ends up aware of every reader.

use crate::lemma2::order_batch;
use crate::tracker::KnowledgeTracker;
use ccsim::{Phase, ProcId, Sim, Step, StepKind};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Which processes play which part in the Figure-1 construction.
#[derive(Clone, Debug)]
pub struct AdversarySetup {
    /// The readers `R_1..R_n` (process ids in the target `Sim`).
    pub readers: Vec<ProcId>,
    /// The writer `W_1`.
    pub writer: ProcId,
    /// Per-phase step budget per process; exceeded = the lock violates a
    /// boundedness property (or the budget is too small).
    pub solo_budget: u64,
    /// Safety cap on adversary iterations.
    pub max_iterations: u64,
}

impl AdversarySetup {
    /// A setup with default budgets.
    pub fn new(readers: Vec<ProcId>, writer: ProcId) -> Self {
        AdversarySetup {
            readers,
            writer,
            solo_budget: 2_000_000,
            max_iterations: 10_000,
        }
    }
}

/// Failure modes of the construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AdversaryError {
    /// A reader failed to reach the CS solo within budget (Concurrent
    /// Entering violation or insufficient budget).
    EntryStuck {
        /// The stuck reader.
        reader: ProcId,
    },
    /// A process kept taking non-expanding steps without finishing or
    /// parking (Bounded Exit violation or insufficient budget).
    TailStall {
        /// The stalling process.
        proc: ProcId,
    },
    /// The writer failed to enter the CS from the quiescent configuration
    /// (Deadlock Freedom violation or insufficient budget).
    WriterStuck,
    /// The iteration cap was reached with readers still mid-exit.
    IterationCapReached,
}

impl fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversaryError::EntryStuck { reader } => {
                write!(f, "reader {reader} could not enter the CS solo (E1)")
            }
            AdversaryError::TailStall { proc } => {
                write!(
                    f,
                    "process {proc} ran non-expanding steps without bound (E2)"
                )
            }
            AdversaryError::WriterStuck => {
                write!(f, "writer could not enter the CS from quiescence (E3)")
            }
            AdversaryError::IterationCapReached => {
                write!(f, "iteration cap reached with readers still exiting")
            }
        }
    }
}

impl Error for AdversaryError {}

/// Everything the construction measured.
#[derive(Clone, Debug)]
pub struct LowerBoundReport {
    /// Number of readers `n`.
    pub n: usize,
    /// `r`: adversary iterations needed before every reader finished its
    /// exit section. Theorem 5: `r = Ω(log₃(n / f(n)))`.
    pub iterations: u64,
    /// `M` after each iteration (index 0 = after `σ0`). Lemma 2:
    /// `M_j ≤ 3^j`.
    pub max_knowledge_per_iteration: Vec<usize>,
    /// Whether every `M_j ≤ 3^j` held.
    pub lemma2_bound_held: bool,
    /// The largest number of *expanding* steps any single reader executed
    /// during `E2` (each costs an RMR, Lemma 1).
    pub max_reader_expanding: u64,
    /// The largest exit-section RMR count over readers during `E2`.
    pub max_reader_exit_rmrs: u64,
    /// RMRs the writer incurred in its entry section during `E3`.
    pub writer_entry_rmrs: u64,
    /// Memory steps the writer took in `E3`.
    pub writer_entry_steps: u64,
    /// Lemma 4: after `E3` the writer is aware of all `n` readers.
    pub writer_aware_of_all: bool,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum ReaderState {
    Active,
    Parked,
    Done,
}

/// Execute one tracked memory step of `p` (which must be pending an op).
fn tracked_step(sim: &mut Sim, tracker: &mut KnowledgeTracker, p: ProcId) -> bool {
    let record = sim.step(p);
    match record.kind {
        StepKind::Op { op, trivial, .. } => tracker.record(p, &op, trivial),
        _ => false,
    }
}

/// Run `p` until it parks (next step expanding), finishes its passage, or
/// exhausts `budget`. Returns its new state.
fn run_tail(
    sim: &mut Sim,
    tracker: &mut KnowledgeTracker,
    p: ProcId,
    budget: u64,
) -> Result<ReaderState, AdversaryError> {
    let mut steps = 0;
    loop {
        match sim.poll(p) {
            Step::Remainder => return Ok(ReaderState::Done),
            Step::Cs => {
                sim.step(p); // release into the exit section
            }
            Step::Op(op) => {
                if tracker.would_expand(p, &op) {
                    return Ok(ReaderState::Parked);
                }
                let expanded = tracked_step(sim, tracker, p);
                debug_assert!(!expanded);
            }
        }
        steps += 1;
        if steps > budget {
            return Err(AdversaryError::TailStall { proc: p });
        }
    }
}

/// Run the full Figure-1 construction against `sim`.
///
/// The `Sim` must be in its initial (quiescent) configuration with every
/// listed process in its remainder section.
///
/// # Errors
/// See [`AdversaryError`]; any error indicates either a property violation
/// in the lock under test or an insufficient budget.
pub fn run_lower_bound(
    sim: &mut Sim,
    setup: &AdversarySetup,
) -> Result<LowerBoundReport, AdversaryError> {
    let n = setup.readers.len();

    // ---- E1: all readers enter the CS, one by one, running solo. ----
    for &r in &setup.readers {
        let entered = ccsim::run_solo(sim, r, setup.solo_budget, |s| s.phase(r) == Phase::Cs);
        if entered.is_none() {
            return Err(AdversaryError::EntryStuck { reader: r });
        }
    }

    // ---- E2: knowledge-throttled exit of all readers. ----
    // The fragment starts here (configuration C1): fresh tracker, fresh
    // RMR metrics.
    sim.reset_stats();
    let mut tracker = KnowledgeTracker::new(sim.n_procs());
    let mut state: BTreeMap<ProcId, ReaderState> = setup
        .readers
        .iter()
        .map(|&r| (r, ReaderState::Active))
        .collect();
    let mut expanding_by: BTreeMap<ProcId, u64> = setup.readers.iter().map(|&r| (r, 0)).collect();

    // σ0: run everyone until parked or done.
    for &r in &setup.readers {
        let s = run_tail(sim, &mut tracker, r, setup.solo_budget)?;
        state.insert(r, s);
    }

    let mut max_knowledge = vec![tracker.max_knowledge()];
    let mut iterations = 0u64;

    loop {
        let parked: Vec<ProcId> = setup
            .readers
            .iter()
            .copied()
            .filter(|r| state[r] == ReaderState::Parked)
            .collect();
        if parked.is_empty() {
            break;
        }
        if iterations >= setup.max_iterations {
            return Err(AdversaryError::IterationCapReached);
        }
        iterations += 1;

        // Release in the Lemma-2 order: reads, then writes, then CAS/FAA
        // grouped by variable.
        let pending: Vec<(ProcId, ccsim::Op)> = parked
            .iter()
            .map(|&r| {
                (
                    r,
                    sim.pending_op(r)
                        .expect("parked process must be pending an op"),
                )
            })
            .collect();
        let batch = order_batch(&pending);

        // Release the scheduled expanding steps...
        for &r in &batch {
            if tracked_step(sim, &mut tracker, r) {
                *expanding_by.get_mut(&r).expect("reader tracked") += 1;
            }
        }
        // ...then let those readers run non-expanding again.
        for &r in &batch {
            let s = run_tail(sim, &mut tracker, r, setup.solo_budget)?;
            state.insert(r, s);
        }
        max_knowledge.push(tracker.max_knowledge());
    }

    // Lemma-2 invariant: M_j ≤ 3^j (with M_0 ≤ 1).
    let lemma2_bound_held = max_knowledge
        .iter()
        .enumerate()
        .all(|(j, &m)| (m as f64) <= 3f64.powi(j as i32) + f64::EPSILON);

    let max_reader_exit_rmrs = setup
        .readers
        .iter()
        .map(|&r| sim.stats(r).rmrs_in(Phase::Exit))
        .max()
        .unwrap_or(0);

    // ---- E3: the writer runs solo into the CS. ----
    sim.reset_stats();
    let w = setup.writer;
    let mut writer_steps = 0u64;
    loop {
        if sim.phase(w) == Phase::Cs {
            break;
        }
        if writer_steps > setup.solo_budget {
            return Err(AdversaryError::WriterStuck);
        }
        match sim.poll(w) {
            Step::Op(_) => {
                tracked_step(sim, &mut tracker, w);
            }
            _ => {
                sim.step(w);
            }
        }
        writer_steps += 1;
    }

    let writer_aware_of_all = setup
        .readers
        .iter()
        .all(|&r| tracker.awareness(w).contains(r));

    Ok(LowerBoundReport {
        n,
        iterations,
        max_knowledge_per_iteration: max_knowledge,
        lemma2_bound_held,
        max_reader_expanding: expanding_by.values().copied().max().unwrap_or(0),
        max_reader_exit_rmrs,
        writer_entry_rmrs: sim.stats(w).rmrs_in(Phase::Entry),
        writer_entry_steps: sim.stats(w).ops_in(Phase::Entry),
        writer_aware_of_all,
    })
}

impl fmt::Display for LowerBoundReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lower-bound construction over n = {} readers: r = {} iterations",
            self.n, self.iterations
        )?;
        writeln!(
            f,
            "  worst reader: {} expanding steps, {} exit RMRs",
            self.max_reader_expanding, self.max_reader_exit_rmrs
        )?;
        writeln!(
            f,
            "  writer entry: {} RMRs over {} steps",
            self.writer_entry_rmrs, self.writer_entry_steps
        )?;
        write!(
            f,
            "  Lemma 2 (M_j <= 3^j): {}; Lemma 4 (writer aware of all): {}",
            if self.lemma2_bound_held {
                "held"
            } else {
                "VIOLATED"
            },
            if self.writer_aware_of_all {
                "held"
            } else {
                "VIOLATED"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_is_complete() {
        let report = LowerBoundReport {
            n: 8,
            iterations: 5,
            max_knowledge_per_iteration: vec![1, 2, 4, 8, 8, 8],
            lemma2_bound_held: true,
            max_reader_expanding: 5,
            max_reader_exit_rmrs: 12,
            writer_entry_rmrs: 4,
            writer_entry_steps: 7,
            writer_aware_of_all: true,
        };
        let s = report.to_string();
        assert!(s.contains("r = 5"));
        assert!(s.contains("12 exit RMRs"));
        assert!(s.contains("held"));
        assert!(!s.contains("VIOLATED"));
    }

    #[test]
    fn error_displays_name_their_phase() {
        assert!(AdversaryError::EntryStuck {
            reader: ccsim::ProcId(3)
        }
        .to_string()
        .contains("E1"));
        assert!(AdversaryError::TailStall {
            proc: ccsim::ProcId(1)
        }
        .to_string()
        .contains("E2"));
        assert!(AdversaryError::WriterStuck.to_string().contains("E3"));
    }

    #[test]
    fn setup_defaults_are_generous() {
        let setup = AdversarySetup::new(vec![ccsim::ProcId(0)], ccsim::ProcId(1));
        assert!(setup.solo_budget >= 1_000_000);
        assert!(setup.max_iterations >= 1_000);
    }
}
