//! E11 (extension) — why the paper's results are CC-specific: the same
//! algorithms under a distributed-shared-memory (DSM) cost model.
//!
//! In the CC model spinning is free after the first read (the copy stays
//! cached until written); in DSM every read of a variable homed elsewhere
//! is an RMR, so busy-wait loops accumulate unbounded cost. §6 cites
//! Danek–Hadzilacos's Ω(n) DSM lower bound as the reason the paper's
//! tradeoff is stated for CC only; this experiment shows the local-spin
//! structure of both `WL` and `A_f` degrading under DSM while the CC
//! numbers stay flat.

use bench::Table;
use ccsim::{run_round_robin, Phase, ProcId, Protocol, RunConfig};
use rwcore::{af_world, AfConfig, FPolicy};

fn contended_mutex_rmrs(m: usize, protocol: Protocol) -> u64 {
    let mut sim = wmutex::mutex_world(m, protocol);
    let rc = RunConfig {
        passages_per_proc: 3,
        ..Default::default()
    };
    run_round_robin(&mut sim, &rc).expect("mutex run");
    (0..m)
        .map(|i| {
            let p = ProcId(i);
            sim.stats(p).rmrs() / sim.stats(p).passages.max(1)
        })
        .max()
        .unwrap_or(0)
}

fn contended_reader_rmrs(n: usize, protocol: Protocol) -> u64 {
    let cfg = AfConfig {
        readers: n,
        writers: 1,
        policy: FPolicy::One,
    };
    let mut world = af_world(cfg, protocol);
    let rc = RunConfig {
        passages_per_proc: 2,
        ..Default::default()
    };
    run_round_robin(&mut world.sim, &rc).expect("af run");
    (0..n)
        .map(|r| {
            let p = world.pids.reader(r);
            let st = world.sim.stats(p);
            (st.rmrs_in(Phase::Entry) + st.rmrs_in(Phase::Exit)) / st.passages.max(1)
        })
        .max()
        .unwrap_or(0)
}

fn main() {
    let mut table = Table::new([
        "world",
        "size",
        "CC (write-back) RMR/passage",
        "DSM RMR/passage",
        "DSM / CC",
    ]);
    for m in [2usize, 4, 8, 16, 32] {
        let cc = contended_mutex_rmrs(m, Protocol::WriteBack);
        let dsm = contended_mutex_rmrs(m, Protocol::Dsm);
        table.row([
            "tournament mutex".to_string(),
            format!("m={m}"),
            cc.to_string(),
            dsm.to_string(),
            format!("{:.1}x", dsm as f64 / cc.max(1) as f64),
        ]);
    }
    for n in [4usize, 8, 16, 32] {
        let cc = contended_reader_rmrs(n, Protocol::WriteBack);
        let dsm = contended_reader_rmrs(n, Protocol::Dsm);
        table.row([
            "A_f readers (f=1)".to_string(),
            format!("n={n}"),
            cc.to_string(),
            dsm.to_string(),
            format!("{:.1}x", dsm as f64 / cc.max(1) as f64),
        ]);
    }
    println!("E11 — CC vs DSM cost of the same algorithms (contended, round-robin)\n");
    table.print();
    println!(
        "\nExpected shape: CC per-passage RMRs stay near Θ(log) as size\n\
         grows; DSM RMRs grow much faster because every spin re-read and\n\
         every access to an un-homed variable is charged. This is why the\n\
         paper's tradeoff (and this library's optimality) is a CC-model\n\
         result; DSM-optimal locks need per-process spin queues instead."
    );
}
