//! Property tests on the memory model: protocol-independence of values,
//! RMR accounting consistency, and coherence invariants.

use ccsim::{Layout, Memory, Op, ProcId, Protocol, Value};
use proptest::prelude::*;

/// A random operation over `n_vars` variables by one of `n_procs`
/// processes.
fn op_strategy(n_procs: usize, n_vars: usize) -> impl Strategy<Value = (ProcId, Op)> {
    (0..n_procs, 0..n_vars, 0u8..4, -3i64..4).prop_map(|(p, v, kind, val)| {
        let var = ccsim::VarId(v);
        let op = match kind {
            0 => Op::Read(var),
            1 => Op::write(var, val),
            2 => Op::cas(var, val, val + 1),
            _ => Op::Faa { var, delta: val },
        };
        (ProcId(p), op)
    })
}

fn world(protocol: Protocol, n_procs: usize, n_vars: usize) -> Memory {
    let mut layout = Layout::new();
    for i in 0..n_vars {
        // Give half the variables DSM homes so the DSM runs are varied.
        if i % 2 == 0 {
            layout.var_at(format!("v{i}"), Value::Int(0), i % n_procs);
        } else {
            layout.var(format!("v{i}"), Value::Int(0));
        }
    }
    Memory::new(&layout, n_procs, protocol)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The protocol affects RMR accounting only: responses, values and
    /// triviality are identical across WT, WB and DSM for any schedule.
    #[test]
    fn protocols_agree_on_values(ops in proptest::collection::vec(op_strategy(3, 4), 1..120)) {
        let mut wt = world(Protocol::WriteThrough, 3, 4);
        let mut wb = world(Protocol::WriteBack, 3, 4);
        let mut dsm = world(Protocol::Dsm, 3, 4);
        for (p, op) in ops {
            let a = wt.apply(p, &op);
            let b = wb.apply(p, &op);
            let c = dsm.apply(p, &op);
            prop_assert_eq!(a.response, b.response);
            prop_assert_eq!(b.response, c.response);
            prop_assert_eq!(a.new, b.new);
            prop_assert_eq!(b.new, c.new);
            prop_assert_eq!(a.trivial, b.trivial);
            prop_assert_eq!(b.trivial, c.trivial);
        }
        prop_assert_eq!(wt.snapshot(), wb.snapshot());
        prop_assert_eq!(wb.snapshot(), dsm.snapshot());
    }

    /// `would_rmr` always predicts `apply`'s RMR outcome exactly, under
    /// every protocol.
    #[test]
    fn would_rmr_is_exact(
        ops in proptest::collection::vec(op_strategy(3, 4), 1..120),
        protocol_idx in 0usize..3,
    ) {
        let protocol = [Protocol::WriteThrough, Protocol::WriteBack, Protocol::Dsm][protocol_idx];
        let mut mem = world(protocol, 3, 4);
        for (p, op) in ops {
            let predicted = mem.would_rmr(p, &op);
            let actual = mem.apply(p, &op).rmr;
            prop_assert_eq!(predicted, actual, "{:?} {:?}", protocol, op);
        }
    }

    /// Write-back coherence: immediately after any step, re-reading the
    /// same variable by the same process is free, and at most one process
    /// holds a variable exclusively.
    #[test]
    fn write_back_coherence_invariants(ops in proptest::collection::vec(op_strategy(4, 3), 1..150)) {
        let mut mem = world(Protocol::WriteBack, 4, 3);
        for (p, op) in ops {
            let v = op.var();
            mem.apply(p, &op);
            // Re-read is always a hit right after any access.
            prop_assert!(!mem.would_rmr(p, &Op::Read(v)), "re-read after access must hit");
            // Single-writer invariant across caches.
            for var_idx in 0..mem.n_vars() {
                let var = ccsim::VarId(var_idx);
                let exclusive_holders = (0..mem.n_procs())
                    .filter(|&q| mem.cache(ProcId(q)).holds_exclusive(var))
                    .count();
                prop_assert!(exclusive_holders <= 1, "two exclusive holders of {var}");
                if exclusive_holders == 1 {
                    let shared_elsewhere = (0..mem.n_procs()).any(|q| {
                        let c = mem.cache(ProcId(q));
                        c.holds(var) && !c.holds_exclusive(var)
                    });
                    prop_assert!(!shared_elsewhere, "exclusive + shared copies of {var}");
                }
            }
        }
    }

    /// DSM RMR accounting is schedule-independent: whether an access is
    /// remote depends only on (process, variable).
    #[test]
    fn dsm_rmr_is_static(ops in proptest::collection::vec(op_strategy(3, 4), 1..100)) {
        let mut mem = world(Protocol::Dsm, 3, 4);
        // Record the locality of the first access per (proc, var) pair
        // and demand every later access agrees.
        let mut seen = std::collections::HashMap::new();
        for (p, op) in ops {
            let rmr = mem.apply(p, &op).rmr;
            let key = (p, op.var());
            if let Some(prev) = seen.insert(key, rmr) {
                prop_assert_eq!(prev, rmr, "DSM locality changed for {:?}", key);
            }
        }
    }

    /// Sequential consistency sanity: a read always returns the value of
    /// the latest preceding write/CAS/FAA to that variable.
    #[test]
    fn reads_return_latest_value(ops in proptest::collection::vec(op_strategy(3, 2), 1..150)) {
        let mut mem = world(Protocol::WriteBack, 3, 2);
        let mut shadow = [Value::Int(0); 2];
        for (p, op) in ops {
            let out = mem.apply(p, &op);
            let v = op.var().0;
            match op {
                Op::Read(_) => prop_assert_eq!(out.response, shadow[v]),
                Op::Write(_, val) => shadow[v] = val,
                Op::Cas { expected, new, .. } => {
                    prop_assert_eq!(out.response, shadow[v]);
                    if shadow[v] == expected {
                        shadow[v] = new;
                    }
                }
                Op::Faa { delta, .. } => {
                    prop_assert_eq!(out.response, shadow[v]);
                    shadow[v] = Value::Int(shadow[v].expect_int() + delta);
                }
            }
        }
    }
}
