//! E10 — Concurrent Entering: with every writer in the remainder
//! section, a reader enters the CS within a bounded number `b` of its
//! own steps, even with all other readers interleaving.

use super::prelude::*;
use crate::measure_concurrent_entering;

/// Registry entry for the Concurrent Entering bound.
pub(crate) struct E10;

impl Experiment for E10 {
    fn id(&self) -> &'static str {
        "e10_concurrent_entering"
    }

    fn title(&self) -> &'static str {
        "Concurrent Entering bound b (writers quiescent)"
    }

    fn claim(&self) -> &'static str {
        "Concurrent Entering: reader entry completes in b = Θ(log(n/f)) own steps, independent of other readers"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let (ns, policies): (&[usize], &[FPolicy]) = if ctx.smoke() {
            (&[8, 16], &[FPolicy::One, FPolicy::LogN, FPolicy::Linear])
        } else {
            (
                &[8, 16, 32, 64, 128, 256, 512, 1024],
                &[FPolicy::One, FPolicy::LogN, FPolicy::SqrtN, FPolicy::Linear],
            )
        };
        let configs: Vec<(usize, FPolicy)> = ns
            .iter()
            .flat_map(|&n| policies.iter().map(move |&p| (n, p)))
            .collect();
        let bs = par_map(&configs, |&(n, policy)| {
            measure_concurrent_entering(
                AfConfig {
                    readers: n,
                    writers: 1,
                    policy,
                },
                Protocol::WriteBack,
            )
        });

        let mut table = Table::new(["n", "f policy", "K=n/f", "max entry steps b", "b/log2K"]);
        let (mut o1_rows, mut o1_total) = (0usize, 0usize);
        let mut worst_ratio = 0f64;
        for ((n, policy), &b) in configs.iter().zip(&bs) {
            let cfg = AfConfig {
                readers: *n,
                writers: 1,
                policy: *policy,
            };
            let k = cfg.group_size();
            let ratio = b as f64 / log2(k.max(2) as f64);
            worst_ratio = worst_ratio.max(ratio);
            if k == 1 {
                o1_total += 1;
                o1_rows += usize::from(b <= 3);
            }
            table.row([
                n.to_string(),
                policy.to_string(),
                k.to_string(),
                b.to_string(),
                format!("{ratio:.1}"),
            ]);
        }

        let mut report = Report::new(self, ctx);
        report
            .section("entry bound per (n, f)", table)
            .check(Check::le_f64(
                "b/log2(K) stays a small constant across the grid",
                worst_ratio,
                12.0,
            ))
            .check(Check::all(
                "f=n rows (K=1) enter in O(1): b <= 3 steps",
                o1_rows,
                o1_total,
            ))
            .notes(
                "Expected shape: b is dominated by the C[i].add(1) f-array walk —\n\
                 Θ(log(n/f)) steps — plus one RSIG read; it must never depend on\n\
                 other readers' scheduling (the property's requirement).",
            );
        report
    }
}
