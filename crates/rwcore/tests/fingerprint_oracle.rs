//! Aliasing oracle for the A_f step machines' 64-bit digests (PR 3).
//!
//! `rwcore`'s programs use the default [`ccsim::Program::fingerprint64`]
//! — an FxHash walk over the same state that `fingerprint` hashes. The
//! model checker's incremental state keys stand on that digest, so two
//! distinct local states collapsing to one digest would silently merge
//! model-checker states. This test pairs each digest with an independent
//! SipHash walk of the same state across long random crashy executions
//! and demands the mapping stays 1:1 in both directions.

use ccsim::{Phase, Prng, ProcId, Protocol};
use rwcore::{af_world, AfConfig, FPolicy};
use std::collections::HashMap;
use std::hash::{DefaultHasher, Hasher};

#[test]
fn default_fingerprint64_is_one_to_one_with_an_independent_hash_walk() {
    let mut fx_to_sip: HashMap<u64, u64> = HashMap::new();
    let mut sip_to_fx: HashMap<u64, u64> = HashMap::new();
    let mut distinct = 0usize;

    for (pi, policy) in [FPolicy::One, FPolicy::Linear].into_iter().enumerate() {
        let cfg = AfConfig {
            readers: 3,
            writers: 2,
            policy,
        };
        let mut sim = af_world(cfg, Protocol::WriteBack).sim;
        let n = sim.n_procs();
        let mut rng = Prng::new(0x0f_0c1e + pi as u64);
        for step in 0..12_000 {
            let p = ProcId(rng.below(n));
            if step % 151 == 150 && sim.phase(p) != Phase::Remainder {
                sim.crash(p);
            } else {
                sim.step(p);
            }
            for q in sim.proc_ids() {
                let prog = sim.program(q);
                let fx = prog.fingerprint64();
                let mut sip = DefaultHasher::new();
                prog.fingerprint(&mut sip);
                let sip = sip.finish();
                match fx_to_sip.insert(fx, sip) {
                    None => distinct += 1,
                    Some(prev) => assert_eq!(
                        prev, sip,
                        "fingerprint64 {fx:#x} aliases two local states the \
                         SipHash walk separates ({policy:?}, {q})"
                    ),
                }
                if let Some(prev) = sip_to_fx.insert(sip, fx) {
                    assert_eq!(
                        prev, fx,
                        "one local state produced two fingerprint64 digests \
                         ({policy:?}, {q}) — the digest is not a pure function \
                         of the hashed state"
                    );
                }
            }
        }
    }
    assert!(
        distinct > 50,
        "executions explored too few distinct local states: {distinct}"
    );
}
