//! # modelcheck — exhaustive interleaving exploration for `ccsim` worlds
//!
//! The paper proves the `A_f` family satisfies Mutual Exclusion, Bounded
//! Exit, Deadlock Freedom and Concurrent Entering by hand (Lemmas 8–16).
//! This crate validates those proofs mechanically on small instances: it
//! enumerates **every** reachable interleaving of a simulated world (up to
//! a per-process passage quota), pruning states already visited via
//! configuration fingerprints, and checks safety properties in every
//! reachable configuration.
//!
//! Because simulated algorithms take exactly one shared-memory step per
//! transition, the explored graph is precisely the set of executions the
//! paper's model admits (with CS dwell and passage starts also scheduled
//! nondeterministically).
//!
//! Schedules are sequences of [`SchedEntry`] values: ordinary process
//! steps plus — when [`CheckConfig::crash_budget`] is non-zero —
//! *crash events* in the RME individual-crash model (see
//! [`ccsim::Sim::crash`]), so the explorer also searches crash-augmented
//! interleavings. Violating schedules can be reduced to locally-minimal
//! counterexamples with [`shrink`] and persisted as replayable
//! [`TraceArtifact`]s.
//!
//! ```
//! use ccsim::Protocol;
//! use modelcheck::{explore, CheckConfig};
//! use wmutex::mutex_world;
//!
//! let report = explore(
//!     || mutex_world(2, Protocol::WriteBack),
//!     &CheckConfig { passages_per_proc: 1, ..Default::default() },
//! ).expect("2-process tournament is safe");
//! assert!(report.complete);
//! assert!(report.states_explored > 50);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use ccsim::{FxHasher, MutualExclusionViolation, Phase, ProcId, Sim, Step};
use std::collections::hash_map::DefaultHasher;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

mod artifact;
mod par;
mod shrink;
pub mod suite;
mod visited;

pub use artifact::TraceArtifact;
pub use par::{explore_par, explore_par_with};
pub use shrink::{shrink, ShrinkOutcome};
pub use visited::VisitedStats;

/// One entry of an explored (or replayed) schedule: a normal scheduled
/// step of a process, a crash event striking it, a system-wide crash
/// striking everyone, or an abort request withdrawing a waiting process.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SchedEntry {
    /// Process `.0` takes one scheduled step.
    Step(ProcId),
    /// Process `.0` crashes (see [`ccsim::Sim::crash`]).
    Crash(ProcId),
    /// Every process crashes at once (see [`ccsim::Sim::crash_all`]) —
    /// the RME system-wide crash model.
    CrashAll,
    /// Process `.0` is asked to abort its passage (see
    /// [`ccsim::Sim::abort`]).
    Abort(ProcId),
}

impl SchedEntry {
    /// The process this entry concerns (`None` for the system-wide
    /// [`SchedEntry::CrashAll`], which concerns all of them).
    pub fn proc(self) -> Option<ProcId> {
        match self {
            SchedEntry::Step(p) | SchedEntry::Crash(p) | SchedEntry::Abort(p) => Some(p),
            SchedEntry::CrashAll => None,
        }
    }

    /// True if this entry is a crash event (individual or system-wide).
    pub fn is_crash(self) -> bool {
        matches!(self, SchedEntry::Crash(_) | SchedEntry::CrashAll)
    }

    /// True if this entry is an abort request.
    pub fn is_abort(self) -> bool {
        matches!(self, SchedEntry::Abort(_))
    }

    /// Apply this entry to a world.
    pub fn apply(self, sim: &mut Sim) {
        match self {
            SchedEntry::Step(p) => {
                sim.step(p);
            }
            SchedEntry::Crash(p) => {
                sim.crash(p);
            }
            SchedEntry::CrashAll => {
                sim.crash_all();
            }
            SchedEntry::Abort(p) => {
                sim.abort(p);
            }
        }
    }
}

impl From<ProcId> for SchedEntry {
    fn from(p: ProcId) -> Self {
        SchedEntry::Step(p)
    }
}

/// The compact token form used in trace artifacts and replay commands:
/// `s<pid>` for a step, `c<pid>` for a crash, `ca` for a system-wide
/// crash, `a<pid>` for an abort (e.g. `s0 s2 c0 ca a1 s2`).
impl fmt::Display for SchedEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedEntry::Step(p) => write!(f, "s{}", p.0),
            SchedEntry::Crash(p) => write!(f, "c{}", p.0),
            SchedEntry::CrashAll => write!(f, "ca"),
            SchedEntry::Abort(p) => write!(f, "a{}", p.0),
        }
    }
}

impl FromStr for SchedEntry {
    type Err = String;

    /// Parse the strict grammar of `artifact.rs`: the literal `ca`, or a
    /// kind byte (`s`/`c`/`a`) followed by one or more ASCII digits,
    /// nothing else. Tokens with trailing garbage (`"s1x"`, `"ca1"`) or
    /// signs (`"s+1"`, which `usize::from_str` alone would admit) are
    /// rejected outright.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "ca" {
            return Ok(SchedEntry::CrashAll);
        }
        let err = || format!("bad schedule token {s:?}: expected s<pid>, c<pid>, ca, or a<pid>");
        let (&kind, num) = s.as_bytes().split_first().ok_or_else(err)?;
        if num.is_empty() || !num.iter().all(|b| b.is_ascii_digit()) {
            return Err(err());
        }
        // All-digits guaranteed above; parse can only fail on overflow.
        let pid: usize = std::str::from_utf8(num)
            .expect("ASCII digits are valid UTF-8")
            .parse()
            .map_err(|_| err())?;
        match kind {
            b's' => Ok(SchedEntry::Step(ProcId(pid))),
            b'c' => Ok(SchedEntry::Crash(ProcId(pid))),
            b'a' => Ok(SchedEntry::Abort(ProcId(pid))),
            _ => Err(err()),
        }
    }
}

/// Which visited-set backend deduplicates configurations — the
/// fingerprint discipline of an exploration (see
/// [`CheckConfig::symmetry`]).
///
/// Parsed strictly from `"off"`, `"quotient"`, or `"full_rehash"`
/// (exact, lowercase); anything else is a loud [`Err`], matching the
/// `BENCH_THREADS`/`CCSIM_STALL_AFTER` env-knob discipline.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Symmetry {
    /// Concrete incremental fingerprints (the default): one visited-set
    /// entry per reachable configuration, keyed by the O(1) maintained
    /// [`Sim::fingerprint`].
    #[default]
    Off,
    /// Symmetry-quotient deduplication: configurations are keyed by
    /// [`Sim::fingerprint_canonical`], so states differing only by a
    /// permutation of a declared [`ccsim::SymmetryClass`] share one
    /// entry and each orbit is expanded once, from whichever concrete
    /// representative reaches it first. Sound **only** for worlds whose
    /// declared classes are genuine automorphisms (see the
    /// `SymmetryClass` docs); with no classes declared it partitions the
    /// space exactly like [`Symmetry::Off`]. Counterexamples are still
    /// found on concrete states — schedules, fingerprints, and replay
    /// artifacts are unaffected.
    Quotient,
    /// The pre-optimization baseline: state keys from a from-scratch
    /// SipHash walk over every variable and every process per visited
    /// state, and a freshly allocated world per transition (no recycling
    /// pool). Kept for two reasons: it is the honest baseline
    /// `perf_modelcheck` measures the exploration speedup against —
    /// exactly how the explorer behaved before the incremental
    /// fingerprints and the world-recycling pool landed — and its keys
    /// are an independent hash family: a run in each mode must report
    /// identical [`CheckReport`] counts, which the determinism suite
    /// uses as a cross-check oracle against fingerprint aliasing.
    FullRehash,
}

impl fmt::Display for Symmetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Symmetry::Off => "off",
            Symmetry::Quotient => "quotient",
            Symmetry::FullRehash => "full_rehash",
        })
    }
}

impl FromStr for Symmetry {
    type Err = String;

    /// Strict parse: exactly `"off"`, `"quotient"`, or `"full_rehash"`.
    /// No case folding, no trimming, no prefixes — a malformed backend
    /// selection must abort loudly, never silently fall back to a mode
    /// that explores a different number of states.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(Symmetry::Off),
            "quotient" => Ok(Symmetry::Quotient),
            "full_rehash" => Ok(Symmetry::FullRehash),
            other => Err(format!(
                "bad symmetry mode {other:?}: expected \"off\", \"quotient\", or \"full_rehash\""
            )),
        }
    }
}

/// How the visited set *stores* configurations, orthogonal to the
/// [`Symmetry`] key discipline (see [`CheckConfig::backend`]).
///
/// Parsed strictly from `"hash"` or `"ldd"` (exact, lowercase);
/// anything else is a loud [`Err`], matching the [`Symmetry`] and
/// env-knob discipline.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum VisitedBackend {
    /// One 64-bit digest per configuration in a 64-way striped hash set
    /// (the default). O(1) per insert, but resident bytes grow linearly
    /// with the state count and digests cannot share structure.
    #[default]
    Hash,
    /// The full canonical state vector in an LDD-style set store:
    /// hash-consed `(value, down, right)` nodes prefix- and suffix-share
    /// serialized states, so resident bytes track the *structure* of the
    /// reachable set rather than its cardinality. Collision-free by
    /// construction (vectors, not digests). Requires a vector key
    /// discipline: combining with [`Symmetry::FullRehash`] panics.
    Ldd,
}

impl fmt::Display for VisitedBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VisitedBackend::Hash => "hash",
            VisitedBackend::Ldd => "ldd",
        })
    }
}

impl FromStr for VisitedBackend {
    type Err = String;

    /// Strict parse: exactly `"hash"` or `"ldd"` — a malformed backend
    /// selection must abort loudly, never silently fall back to a store
    /// with different resident-byte semantics.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hash" => Ok(VisitedBackend::Hash),
            "ldd" => Ok(VisitedBackend::Ldd),
            other => Err(format!(
                "bad visited backend {other:?}: expected \"hash\" or \"ldd\""
            )),
        }
    }
}

/// Exploration limits and quotas.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Passages each process performs before becoming permanently idle.
    pub passages_per_proc: u64,
    /// Stop (incomplete) after visiting this many distinct states.
    pub max_states: u64,
    /// Stop (incomplete) past this schedule depth.
    pub max_depth: usize,
    /// Total crash events the adversary may inject along any one schedule
    /// (`0` = failure-free exploration, the default). Crashes of processes
    /// in their remainder section are pruned: they change no observable
    /// state, so their subtree is a subset of the same node explored with
    /// the budget intact.
    pub crash_budget: u32,
    /// Whether the crash adversary may strike a process *inside* the
    /// critical section. Off by default — the regime in which a
    /// non-recoverable lock should still preserve Mutual Exclusion.
    pub crash_in_cs: bool,
    /// Total system-wide crash events ([`ccsim::Sim::crash_all`]) the
    /// adversary may inject along any one schedule (`0` = none, the
    /// default). A `CrashAll` is pruned when every process is in its
    /// remainder section (observably a no-op) and — unless
    /// [`CheckConfig::crash_in_cs`] — while anyone occupies the critical
    /// section (a system-wide crash necessarily strikes the occupant
    /// too).
    pub crash_all_budget: u32,
    /// Total abort requests ([`ccsim::Sim::abort`]) the adversary may
    /// inject along any one schedule (`0` = none, the default). Aborts
    /// are offered only to processes whose program reports
    /// [`ccsim::Program::can_abort`] — elsewhere they are observable
    /// no-ops and exploring them would only pad the state space.
    pub abort_budget: u32,
    /// The visited-set backend: concrete incremental fingerprints
    /// ([`Symmetry::Off`], the default), the symmetry-quotient canonical
    /// fingerprint ([`Symmetry::Quotient`]), or the full-rehash SipHash
    /// oracle ([`Symmetry::FullRehash`]). All three preserve exactly-once
    /// expansion (per key) and deterministic BFS-minimal counterexamples;
    /// they differ in which configurations share a key and in cost.
    pub symmetry: Symmetry,
    /// How visited configurations are stored: hashed digests
    /// ([`VisitedBackend::Hash`], the default) or full canonical vectors
    /// in the LDD set store ([`VisitedBackend::Ldd`]). Orthogonal to
    /// [`CheckConfig::symmetry`], except that the LDD store needs a
    /// vector form and therefore rejects [`Symmetry::FullRehash`].
    pub backend: VisitedBackend,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            passages_per_proc: 1,
            max_states: 5_000_000,
            max_depth: 100_000,
            crash_budget: 0,
            crash_in_cs: false,
            crash_all_budget: 0,
            abort_budget: 0,
            symmetry: Symmetry::Off,
            backend: VisitedBackend::default(),
        }
    }
}

/// The adversary budgets remaining along one schedule: individual
/// crashes, system-wide crashes, and abort requests are rationed
/// separately, so the state key and the frame bookkeeping carry all
/// three.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) struct Budgets {
    pub(crate) crashes: u32,
    pub(crate) crash_alls: u32,
    pub(crate) aborts: u32,
}

impl Budgets {
    /// The full budgets a schedule starts with.
    pub(crate) fn of(cfg: &CheckConfig) -> Self {
        Budgets {
            crashes: cfg.crash_budget,
            crash_alls: cfg.crash_all_budget,
            aborts: cfg.abort_budget,
        }
    }

    /// The budgets remaining after spending `entry`. Callers only spend
    /// entries that [`push_entries`] offered, so the subtraction cannot
    /// underflow.
    pub(crate) fn after(self, entry: SchedEntry) -> Self {
        match entry {
            SchedEntry::Step(_) => self,
            SchedEntry::Crash(_) => Budgets {
                crashes: self.crashes - 1,
                ..self
            },
            SchedEntry::CrashAll => Budgets {
                crash_alls: self.crash_alls - 1,
                ..self
            },
            SchedEntry::Abort(_) => Budgets {
                aborts: self.aborts - 1,
                ..self
            },
        }
    }
}

/// A property violation found by the explorer, with the schedule (steps
/// and crash events) that reproduces it from the initial configuration.
#[derive(Clone, Debug)]
pub enum CheckError {
    /// Mutual Exclusion failed.
    MutualExclusion {
        /// The offending schedule, replayable via [`replay`].
        schedule: Vec<SchedEntry>,
        /// The occupant list at the violating configuration.
        violation: MutualExclusionViolation,
        /// [`Sim::fingerprint`] of the violating configuration — the
        /// replay check: replaying `schedule` must land exactly here.
        fingerprint: u64,
    },
    /// A user-supplied invariant failed.
    Invariant {
        /// The offending schedule.
        schedule: Vec<SchedEntry>,
        /// The invariant's message.
        message: String,
        /// [`Sim::fingerprint`] of the violating configuration.
        fingerprint: u64,
    },
}

impl CheckError {
    /// The schedule that reproduces the violation.
    pub fn schedule(&self) -> &[SchedEntry] {
        match self {
            CheckError::MutualExclusion { schedule, .. } => schedule,
            CheckError::Invariant { schedule, .. } => schedule,
        }
    }

    /// The fingerprint of the violating configuration.
    pub fn fingerprint(&self) -> u64 {
        match self {
            CheckError::MutualExclusion { fingerprint, .. } => *fingerprint,
            CheckError::Invariant { fingerprint, .. } => *fingerprint,
        }
    }

    /// A one-line description of the violated property (without the
    /// schedule), suitable for a [`TraceArtifact`].
    pub fn describe(&self) -> String {
        match self {
            CheckError::MutualExclusion { violation, .. } => violation.to_string(),
            CheckError::Invariant { message, .. } => format!("invariant failed: {message}"),
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let crashes = self.schedule().iter().filter(|e| e.is_crash()).count();
        write!(
            f,
            "{} (schedule length {}, {crashes} crash(es))",
            self.describe(),
            self.schedule().len()
        )
    }
}

impl Error for CheckError {}

/// Statistics from a completed exploration.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Distinct configurations visited.
    pub states_explored: u64,
    /// Transitions executed (≥ states, because different schedules rejoin).
    pub transitions: u64,
    /// Crash transitions among them (0 without a crash budget).
    pub crash_transitions: u64,
    /// Deepest schedule examined.
    pub max_depth_seen: usize,
    /// Configurations with no enabled process (all quotas met).
    pub terminal_states: u64,
    /// Whether the whole state space was exhausted (no cap was hit).
    pub complete: bool,
    /// End-of-run visited-set occupancy ([`VisitedStats`]): distinct
    /// keys stored and approximate resident bytes of the backing tables.
    /// The set only grows, so these are also the peak. **Not** part of
    /// [`CheckReport::counts`]: under [`Symmetry::Quotient`] the entry
    /// count is the number of *orbits*, deliberately smaller than the
    /// concrete modes' state count.
    pub visited: VisitedStats,
}

impl CheckReport {
    /// The order-independent counters, for comparing explorations of the
    /// same world: on a *complete* run every unique configuration is
    /// expanded exactly once, so these are identical whatever the visit
    /// order — sequential DFS, [`explore_par`] at any worker count, or
    /// the [`Symmetry::Off`] vs [`Symmetry::FullRehash`] key family.
    /// ([`Symmetry::Quotient`] expands one representative per *orbit*,
    /// so its counts are intentionally smaller on symmetric worlds; its
    /// violation *verdicts* still agree.) Excludes
    /// [`CheckReport::max_depth_seen`], which is a discovery-order
    /// diagnostic (DFS reaches depth along its first branch; a parallel
    /// run's per-worker depths depend on how jobs were donated), and
    /// [`CheckReport::visited`], which differs between backends by
    /// design.
    pub fn counts(&self) -> (u64, u64, u64, u64, bool) {
        (
            self.states_explored,
            self.transitions,
            self.crash_transitions,
            self.terminal_states,
            self.complete,
        )
    }
}

/// Append every schedule entry available in a configuration to `out`:
/// one step per enabled process (mid-passage, in the CS, or idle with
/// passages remaining), plus — while the respective budget remains —
/// one crash per mid-passage process (the CS excluded unless
/// `crash_in_cs`), one system-wide crash (when anyone is mid-passage
/// and the CS rule allows it), and one abort request per process whose
/// program can withdraw from its current state.
///
/// Appending to a caller-owned scratch buffer instead of returning a
/// fresh `Vec` is what keeps the explorers allocation-free per state:
/// the sequential DFS (and each parallel worker) threads one arena
/// through its whole frame stack, truncating on pop.
fn push_entries(
    sim: &Sim,
    quota: u64,
    budgets: Budgets,
    crash_in_cs: bool,
    out: &mut Vec<SchedEntry>,
) {
    for p in sim.proc_ids() {
        let enabled = match sim.poll(p) {
            Step::Op(_) | Step::Cs => true,
            Step::Remainder => sim.stats(p).passages < quota,
        };
        if enabled {
            out.push(SchedEntry::Step(p));
        }
    }
    if budgets.crashes > 0 {
        for p in sim.proc_ids() {
            let crashable = match sim.phase(p) {
                Phase::Remainder => false, // pruned: observably a no-op
                Phase::Cs => crash_in_cs,
                _ => true,
            };
            if crashable {
                out.push(SchedEntry::Crash(p));
            }
        }
    }
    if budgets.crash_alls > 0 {
        let anyone_mid_passage = sim.proc_ids().any(|p| sim.phase(p) != Phase::Remainder);
        let cs_rule_ok = crash_in_cs || sim.proc_ids().all(|p| sim.phase(p) != Phase::Cs);
        if anyone_mid_passage && cs_rule_ok {
            out.push(SchedEntry::CrashAll);
        }
    }
    if budgets.aborts > 0 {
        for p in sim.proc_ids() {
            if sim.program(p).can_abort() {
                out.push(SchedEntry::Abort(p));
            }
        }
    }
}

/// Fingerprint a configuration *including* per-process passage counts,
/// the remaining adversary budgets, and the in-flight abort flags (two
/// identical memory/pc states differ for exploration purposes if the
/// remaining quotas or budgets differ — and an aborting process's
/// program can be pc-identical to a normally-exiting one while its
/// completion is accounted differently, so the abort flags must key the
/// state too).
///
/// The fast path ([`Symmetry::Off`]) reads [`Sim::fingerprint`] —
/// maintained incrementally, O(1) — and folds the quotas through the
/// in-tree [`FxHasher`]. The [`Symmetry::FullRehash`] baseline rehashes
/// the entire configuration with SipHash, exactly as the explorer did
/// before the incremental fingerprints landed; [`Symmetry::Quotient`]
/// keys orbits via the canonical fingerprint instead. The explorers
/// reach these through the [`visited::Visited`] backend for the
/// configured mode.
fn state_key_concrete(sim: &Sim, quota: u64, budgets: Budgets) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(sim.fingerprint());
    for p in sim.proc_ids() {
        h.write_u64(sim.stats(p).passages.min(quota));
    }
    h.write_u32(budgets.crashes);
    h.write_u32(budgets.crash_alls);
    h.write_u32(budgets.aborts);
    h.write_u64(aborting_bits(sim));
    h.finish()
}

/// The symmetry-quotient state key: [`Sim::fingerprint_canonical_base`]
/// (everything outside the declared classes, plus the quotas, budgets
/// and abort flags of non-class processes, keyed exactly as in
/// [`state_key_concrete`]) mixed with, per class, the **sorted multiset**
/// of member bundles.
///
/// A member's bundle folds its index-free signature together with its
/// own capped passage count and in-flight abort flag. Folding those
/// per-index *outside* the bundles would be unsound: the exploration
/// semantics of a member (is it enabled? does completing count as abort
/// or passage?) travel with its local state under a permutation, so they
/// must be erased-and-sorted with it — keying them by index would merge
/// states whose permuted members disagree on quota or abort status.
fn state_key_canonical(sim: &Sim, quota: u64, budgets: Budgets) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(sim.fingerprint_canonical_base());
    let mut class_procs = 0u64;
    // `declare_symmetry` caps classes at 64 members, so a fixed scratch
    // array keeps this allocation-free on the hot path.
    let mut sigs = [0u64; 64];
    for (ci, class) in sim.symmetry_classes().iter().enumerate() {
        let members = class.members();
        for (j, &p) in members.iter().enumerate() {
            let mut mh = FxHasher::default();
            mh.write_u64(sim.symmetry_member_sig(ci, j));
            mh.write_u64(sim.stats(p).passages.min(quota));
            mh.write_u8(sim.is_aborting(p) as u8);
            sigs[j] = mh.finish();
            class_procs |= 1u64.rotate_left(p.0 as u32);
        }
        let k = members.len();
        sigs[..k].sort_unstable();
        for &s in &sigs[..k] {
            h.write_u64(s);
        }
    }
    for p in sim.proc_ids() {
        if class_procs & 1u64.rotate_left(p.0 as u32) == 0 {
            h.write_u64(sim.stats(p).passages.min(quota));
        }
    }
    h.write_u32(budgets.crashes);
    h.write_u32(budgets.crash_alls);
    h.write_u32(budgets.aborts);
    h.write_u64(aborting_bits(sim) & !class_procs);
    h.finish()
}

/// The in-flight abort flags packed into a bitmask (bit `p` set iff
/// process `p` is aborting). Worlds are far smaller than 64 processes —
/// exploration is exponential in them — but fold conservatively anyway.
fn aborting_bits(sim: &Sim) -> u64 {
    let mut bits = 0u64;
    for p in sim.proc_ids() {
        if sim.is_aborting(p) {
            bits ^= 1u64.rotate_left(p.0 as u32);
        }
    }
    bits
}

/// The pre-optimization baseline for [`state_key_concrete`]: a from-scratch
/// SipHash (`DefaultHasher`) walk over every variable value and every
/// process's local state. Being an independent hash family, a run keyed
/// by this must partition states identically to the incremental path up
/// to hash collisions — the determinism suite compares the two runs'
/// [`CheckReport::counts`] as an aliasing oracle.
fn state_key_full(sim: &Sim, quota: u64, budgets: Budgets) -> u64 {
    let mut walk = DefaultHasher::new();
    sim.mem().hash_values(&mut walk);
    for p in sim.proc_ids() {
        sim.program(p).fingerprint(&mut walk);
    }
    let mut h = DefaultHasher::new();
    walk.finish().hash(&mut h);
    for p in sim.proc_ids() {
        sim.stats(p).passages.min(quota).hash(&mut h);
    }
    budgets.crashes.hash(&mut h);
    budgets.crash_alls.hash(&mut h);
    budgets.aborts.hash(&mut h);
    aborting_bits(sim).hash(&mut h);
    h.finish()
}

/// Exhaustively explore every interleaving of the world produced by
/// `factory`, checking Mutual Exclusion in every reachable configuration.
/// With [`CheckConfig::crash_budget`] > 0 the explored interleavings
/// include crash events.
///
/// # Errors
/// Returns the violating schedule if any reachable configuration breaks
/// Mutual Exclusion.
pub fn explore(factory: impl Fn() -> Sim, cfg: &CheckConfig) -> Result<CheckReport, CheckError> {
    explore_with(factory, cfg, |_| Ok(()))
}

/// Like [`explore`], additionally checking `invariant` in every reachable
/// configuration.
///
/// # Errors
/// Returns the violating schedule on a Mutual Exclusion or invariant
/// failure.
pub fn explore_with(
    factory: impl Fn() -> Sim,
    cfg: &CheckConfig,
    invariant: impl Fn(&Sim) -> Result<(), String>,
) -> Result<CheckReport, CheckError> {
    /// A suspended configuration. Its candidate entries live in the
    /// shared arena at `[next, eend)` (`estart` marks where they began,
    /// for truncation on pop) — frames own index ranges, not `Vec`s, so
    /// expanding a state allocates nothing once the arena is warm.
    struct Frame {
        sim: Sim,
        estart: usize,
        next: usize,
        eend: usize,
        /// The entry that produced this frame's configuration (`None` for
        /// the root) — used to reconstruct schedules.
        chosen: Option<SchedEntry>,
        budgets: Budgets,
    }

    fn schedule_of(stack: &[Frame], last: SchedEntry) -> Vec<SchedEntry> {
        // One exact-size allocation, only ever on the violation path.
        let mut sched = Vec::with_capacity(stack.len());
        sched.extend(stack.iter().filter_map(|f| f.chosen));
        sched.push(last);
        sched
    }

    let root = factory();
    let quota = cfg.passages_per_proc;
    let full = cfg.symmetry == Symmetry::FullRehash;
    let root_budgets = Budgets::of(cfg);
    let visited = visited::backend(cfg.symmetry, cfg.backend);
    let mut vscratch: Vec<u64> = Vec::new();
    visited.insert(&root, quota, root_budgets, &mut vscratch);

    let mut report = CheckReport {
        states_explored: 1,
        transitions: 0,
        crash_transitions: 0,
        max_depth_seen: 0,
        terminal_states: 0,
        complete: true,
        visited: VisitedStats::default(),
    };

    let mut arena: Vec<SchedEntry> = Vec::new();
    push_entries(&root, quota, root_budgets, cfg.crash_in_cs, &mut arena);
    if arena.is_empty() {
        report.terminal_states = 1;
        report.visited = visited.stats();
        return Ok(report);
    }
    let mut stack = vec![Frame {
        sim: root,
        estart: 0,
        next: 0,
        eend: arena.len(),
        chosen: None,
        budgets: root_budgets,
    }];

    // Popped and deduplicated worlds are recycled through this pool:
    // `clone_world_into` overwrites a spare world in place, so steady-state
    // branching allocates nothing (see `Sim::clone_world_into`). The
    // `Symmetry::FullRehash` baseline keeps the pre-optimization
    // discipline — a fresh allocation per transition — so the measured
    // speedup reflects the whole optimization, not just the key function.
    let mut pool: Vec<Sim> = Vec::new();

    while let Some(top) = stack.last_mut() {
        if top.next >= top.eend {
            arena.truncate(top.estart);
            if let Some(frame) = stack.pop() {
                if !full {
                    pool.push(frame.sim);
                }
            }
            continue;
        }
        let entry = arena[top.next];
        top.next += 1;
        let budgets = top.budgets.after(entry);

        let mut child = match pool.pop() {
            Some(mut spare) => {
                top.sim.clone_world_into(&mut spare);
                spare
            }
            None => top.sim.clone_world(),
        };
        entry.apply(&mut child);
        report.transitions += 1;
        report.crash_transitions += entry.is_crash() as u64;

        if let Err(violation) = child.check_mutual_exclusion() {
            return Err(CheckError::MutualExclusion {
                schedule: schedule_of(&stack, entry),
                violation,
                fingerprint: child.fingerprint(),
            });
        }
        if let Err(message) = invariant(&child) {
            return Err(CheckError::Invariant {
                schedule: schedule_of(&stack, entry),
                message,
                fingerprint: child.fingerprint(),
            });
        }

        if !visited.insert(&child, quota, budgets, &mut vscratch) {
            if !full {
                pool.push(child);
            }
            continue; // rejoined a known configuration
        }
        report.states_explored += 1;
        report.max_depth_seen = report.max_depth_seen.max(stack.len());

        if report.states_explored >= cfg.max_states || stack.len() >= cfg.max_depth {
            report.complete = false;
            if !full {
                pool.push(child);
            }
            continue; // stop deepening; keep scanning siblings
        }

        let estart = arena.len();
        push_entries(&child, quota, budgets, cfg.crash_in_cs, &mut arena);
        if arena.len() == estart {
            report.terminal_states += 1;
            if !full {
                pool.push(child);
            }
            continue;
        }
        stack.push(Frame {
            sim: child,
            estart,
            next: estart,
            eend: arena.len(),
            chosen: Some(entry),
            budgets,
        });
    }

    report.visited = visited.stats();
    Ok(report)
}

/// Replay a schedule (e.g. from a [`CheckError`] or a parsed
/// [`TraceArtifact`]) against a fresh world, returning the final
/// configuration for inspection.
pub fn replay(factory: impl Fn() -> Sim, schedule: &[SchedEntry]) -> Sim {
    let mut sim = factory();
    for &e in schedule {
        e.apply(&mut sim);
    }
    sim
}

/// A Bounded Exit invariant for [`explore_with`]: every process found in
/// its exit section must be able to finish the exit *running solo* within
/// `budget` of its own steps (the paper's Bounded Exit property — the exit
/// section contains no unbounded waiting). Clones the world per check;
/// use on small instances.
pub fn bounded_exit_invariant(budget: u64) -> impl Fn(&Sim) -> Result<(), String> {
    move |sim: &Sim| {
        for p in sim.proc_ids() {
            if sim.phase(p) != Phase::Exit {
                continue;
            }
            let mut probe = sim.clone_world();
            if ccsim::run_solo(&mut probe, p, budget, |s| s.phase(p) == Phase::Remainder).is_none()
            {
                return Err(format!(
                    "Bounded Exit violated: {p} cannot finish its exit section \
                     in {budget} solo steps"
                ));
            }
        }
        Ok(())
    }
}

/// A Bounded Abort invariant for [`explore_with`]: every process with an
/// abort in flight ([`ccsim::Sim::is_aborting`]) must reach its remainder
/// section *running solo* within `budget` of its own steps — withdrawal,
/// like exit, contains no unbounded waiting (the abortable-lock analogue
/// of the paper's Bounded Exit). Clones the world per check; use on
/// small instances with [`CheckConfig::abort_budget`] > 0.
pub fn bounded_abort_invariant(budget: u64) -> impl Fn(&Sim) -> Result<(), String> {
    move |sim: &Sim| {
        for p in sim.proc_ids() {
            if !sim.is_aborting(p) {
                continue;
            }
            let mut probe = sim.clone_world();
            if ccsim::run_solo(&mut probe, p, budget, |s| s.phase(p) == Phase::Remainder).is_none()
            {
                return Err(format!(
                    "Bounded Abort violated: aborting {p} cannot withdraw to \
                     its remainder section in {budget} solo steps"
                ));
            }
        }
        Ok(())
    }
}

/// A post-crash acquirability invariant for [`explore_with`]: from any
/// configuration in which some process is in its recovery window
/// ([`ccsim::Sim::is_recovering`]), a fair failure-free continuation must
/// still let every process complete a fresh passage — no crash (individual
/// or system-wide) may leave the lock permanently lost. The probe is a
/// round-robin run capped at `max_steps` scheduled steps; a stall,
/// deadlock, or safety violation in the continuation is reported as an
/// invariant failure. Clones the world per check (and only on post-crash
/// configurations); use on small instances with a crash budget.
pub fn post_crash_acquirability_invariant(max_steps: u64) -> impl Fn(&Sim) -> Result<(), String> {
    move |sim: &Sim| {
        if !sim.proc_ids().any(|p| sim.is_recovering(p)) {
            return Ok(());
        }
        let mut probe = sim.clone_world();
        let cfg = ccsim::RunConfig {
            passages_per_proc: 1,
            max_steps,
            stall_after: max_steps,
        };
        if let Err(e) = ccsim::run_round_robin(&mut probe, &cfg) {
            return Err(format!(
                "post-crash acquirability violated: a fair failure-free \
                 continuation cannot complete a passage per process: {e}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::{Layout, Memory, Op, Phase, Program, Protocol, Role, Value, VarId};

    /// A deliberately broken "lock": processes enter the CS with no
    /// synchronisation at all.
    #[derive(Clone)]
    struct NoLock {
        v: VarId,
        role: Role,
        pc: u8,
    }

    impl Program for NoLock {
        fn poll(&self) -> Step {
            match self.pc {
                0 => Step::Remainder,
                1 => Step::Op(Op::Read(self.v)),
                2 => Step::Cs,
                3 => Step::Op(Op::Read(self.v)),
                _ => unreachable!(),
            }
        }
        fn resume(&mut self, _: Value) {
            self.pc = (self.pc + 1) % 4;
        }
        fn phase(&self) -> Phase {
            [Phase::Remainder, Phase::Entry, Phase::Cs, Phase::Exit][self.pc as usize]
        }
        fn role(&self) -> Role {
            self.role
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn fingerprint(&self, h: &mut dyn Hasher) {
            h.write_u8(self.pc);
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn broken_world() -> Sim {
        let mut l = Layout::new();
        let v = l.var("x", Value::Int(0));
        let mem = Memory::new(&l, 2, Protocol::WriteBack);
        Sim::new(
            mem,
            vec![
                Box::new(NoLock {
                    v,
                    role: Role::Writer,
                    pc: 0,
                }),
                Box::new(NoLock {
                    v,
                    role: Role::Reader,
                    pc: 0,
                }),
            ],
        )
    }

    #[test]
    fn finds_mutual_exclusion_violation_in_broken_lock() {
        let err = explore(broken_world, &CheckConfig::default()).unwrap_err();
        match &err {
            CheckError::MutualExclusion {
                schedule,
                violation,
                fingerprint,
            } => {
                assert_eq!(violation.occupants.len(), 2);
                // The schedule must actually reproduce the violation, and
                // land on the reported fingerprint.
                let sim = replay(broken_world, schedule);
                assert!(sim.check_mutual_exclusion().is_err());
                assert_eq!(sim.fingerprint(), *fingerprint);
            }
            other => panic!("expected MX violation, got {other}"),
        }
    }

    #[test]
    fn tournament_mutex_is_safe_exhaustively() {
        for m in [2usize, 3] {
            let report = explore(
                || wmutex::mutex_world(m, Protocol::WriteBack),
                &CheckConfig {
                    passages_per_proc: 1,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("m={m}: {e}"));
            assert!(report.complete, "m={m}");
            assert!(report.terminal_states > 0, "m={m}");
        }
    }

    #[test]
    fn tournament_mutex_two_passages() {
        let report = explore(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig {
                passages_per_proc: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.complete);
        assert!(report.states_explored > 200);
    }

    #[test]
    fn invariant_hook_fires() {
        // An invariant that rejects any configuration with someone in CS.
        let err = explore_with(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig::default(),
            |sim| {
                if sim.procs_in_cs().is_empty() {
                    Ok(())
                } else {
                    Err("someone entered the CS".into())
                }
            },
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::Invariant { .. }));
        assert!(!err.schedule().is_empty());
    }

    #[test]
    fn caps_mark_report_incomplete() {
        let report = explore(
            || wmutex::mutex_world(3, Protocol::WriteBack),
            &CheckConfig {
                passages_per_proc: 2,
                max_states: 50,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!report.complete);
        assert!(report.states_explored >= 50);
    }

    #[test]
    fn terminal_states_are_quiescent() {
        let report = explore(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig {
                passages_per_proc: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // Terminal configurations exist and are few: the memory residue
        // (e.g. the last `turn` writer) may differ across schedules, but
        // every process is quiescent in each of them.
        assert!(report.terminal_states >= 1);
        assert!(
            report.terminal_states <= 8,
            "got {}",
            report.terminal_states
        );
    }

    #[test]
    fn crash_budget_zero_explores_no_crashes() {
        let report = explore(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig::default(),
        )
        .unwrap();
        assert_eq!(report.crash_transitions, 0);
    }

    #[test]
    fn crash_augmented_exploration_visits_crashes_and_stays_safe() {
        // The tournament mutex, like A_f, is non-recoverable: crashes
        // outside the CS may cost liveness but never Mutual Exclusion.
        let report = explore(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig {
                passages_per_proc: 1,
                crash_budget: 1,
                ..Default::default()
            },
        )
        .expect("crashes outside the CS must not break MX");
        assert!(report.complete);
        assert!(
            report.crash_transitions > 0,
            "the crash adversary must actually strike"
        );
    }

    #[test]
    fn crash_budget_grows_the_state_space() {
        let base = explore(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig::default(),
        )
        .unwrap();
        let crashy = explore(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig {
                crash_budget: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(crashy.states_explored > base.states_explored);
    }

    #[test]
    fn bounded_exit_holds_for_tournament() {
        explore_with(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig {
                crash_budget: 1,
                ..Default::default()
            },
            bounded_exit_invariant(200),
        )
        .expect("tournament exit sections are bounded, even after crashes");
    }

    #[test]
    fn crash_all_augmented_tournament_exploration_is_safe() {
        // A system-wide crash wipes every process's cache and pc at once;
        // the tournament mutex must still never admit two into the CS.
        let report = explore(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig {
                passages_per_proc: 1,
                crash_all_budget: 1,
                ..Default::default()
            },
        )
        .expect("a system-wide crash must not break MX");
        assert!(report.complete);
        assert!(
            report.crash_transitions > 0,
            "the crash-all adversary must actually strike"
        );
    }

    #[test]
    fn abort_augmented_tournament_exploration_is_safe_and_bounded() {
        // Every abort request mid-entry must withdraw to the remainder in
        // bounded solo steps without breaking MX for the survivor.
        let report = explore_with(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig {
                passages_per_proc: 1,
                abort_budget: 1,
                ..Default::default()
            },
            bounded_abort_invariant(300),
        )
        .expect("aborts must cost neither MX nor boundedness");
        assert!(report.complete);
    }

    #[test]
    fn crash_all_budget_grows_the_state_space() {
        let base = explore(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig::default(),
        )
        .unwrap();
        let crashy = explore(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig {
                crash_all_budget: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(crashy.states_explored > base.states_explored);
    }

    #[test]
    fn post_crash_acquirability_holds_for_tournament_crash_all() {
        explore_with(
            || wmutex::mutex_world(2, Protocol::WriteBack),
            &CheckConfig {
                passages_per_proc: 1,
                crash_all_budget: 1,
                ..Default::default()
            },
            post_crash_acquirability_invariant(2_000),
        )
        .expect("the tournament lock must stay acquirable after a crash-all");
    }

    #[test]
    fn sched_entry_tokens_round_trip() {
        for e in [
            SchedEntry::Step(ProcId(0)),
            SchedEntry::Crash(ProcId(12)),
            SchedEntry::Step(ProcId(3)),
            SchedEntry::CrashAll,
            SchedEntry::Abort(ProcId(7)),
            SchedEntry::Abort(ProcId(0)),
        ] {
            let tok = e.to_string();
            assert_eq!(tok.parse::<SchedEntry>().unwrap(), e);
        }
        assert_eq!("ca".parse::<SchedEntry>().unwrap(), SchedEntry::CrashAll);
        assert!("x3".parse::<SchedEntry>().is_err());
        assert!("s".parse::<SchedEntry>().is_err());
        assert!("".parse::<SchedEntry>().is_err());
    }

    #[test]
    fn symmetry_mode_tokens_round_trip() {
        for mode in [Symmetry::Off, Symmetry::Quotient, Symmetry::FullRehash] {
            assert_eq!(mode.to_string().parse::<Symmetry>().unwrap(), mode);
        }
        assert_eq!(Symmetry::default(), Symmetry::Off);
        assert_eq!(CheckConfig::default().symmetry, Symmetry::Off);
    }

    #[test]
    fn symmetry_mode_parse_is_strict() {
        // A malformed backend selection must abort loudly, never fall
        // back silently: the chosen mode decides how many states a run
        // explores, so a typo that "defaults to off" would corrupt A/B
        // measurements without a trace.
        for bad in [
            "",
            "Off",
            "OFF",
            " off",
            "off ",
            "on",
            "quotient ",
            "Quotient",
            "QUOTIENT",
            "quot",
            "sym",
            "symmetry",
            "full-rehash",
            "fullrehash",
            "full_rehash ",
            "FullRehash",
            "full",
            "rehash",
            "true",
            "false",
            "0",
            "1",
        ] {
            let err = bad
                .parse::<Symmetry>()
                .expect_err(&format!("mode {bad:?} must be rejected"));
            assert!(err.contains("bad symmetry mode"), "unhelpful error: {err}");
        }
    }

    #[test]
    fn quotient_without_declared_classes_partitions_like_concrete() {
        // With no SymmetryClass declared, the canonical fingerprint is a
        // rehash of the concrete one: the quotient backend must visit
        // exactly the same number of states, and the full-rehash oracle
        // (an independent hash family) must agree with both.
        let factory = || wmutex::mutex_world(2, Protocol::WriteBack);
        let base = CheckConfig {
            passages_per_proc: 1,
            crash_budget: 1,
            ..Default::default()
        };
        let mut counts = Vec::new();
        for symmetry in [Symmetry::Off, Symmetry::Quotient, Symmetry::FullRehash] {
            let cfg = CheckConfig {
                symmetry,
                ..base.clone()
            };
            let report = explore(factory, &cfg).expect("tournament is safe");
            assert!(report.complete);
            assert_eq!(
                report.visited.entries, report.states_explored,
                "{symmetry}: one visited entry per expanded state"
            );
            assert!(
                report.visited.resident_bytes >= report.visited.entries * 9,
                "{symmetry}: resident bytes cover at least the stored keys"
            );
            counts.push(report.counts());
        }
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
    }

    #[test]
    fn sched_entry_rejects_trailing_garbage_and_loose_integer_forms() {
        // `usize::from_str` alone would admit "+1"; a prefix-based parse
        // would admit "s1x". The grammar is strictly kind + digits, with
        // the literal "ca" (crash-all) carrying no pid at all.
        for bad in [
            "s1x", "c2 ", " s1", "s+1", "c-0", "s0x7", "s1c2", "s١", // Arabic-Indic digit
            "sß", "c", "ss1", "ca1", "ca ", "CA", "cA", "a", "aa1", "a1x", "a+1", "a-2",
        ] {
            assert!(
                bad.parse::<SchedEntry>().is_err(),
                "token {bad:?} must be rejected"
            );
        }
    }
}
