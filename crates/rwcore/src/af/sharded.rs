//! A sharded `A_f` read path: per-shard lock instances behind a global
//! writer gate, with batched reader admission.
//!
//! The ROADMAP's north star is "millions of readers", and a single `A_f`
//! instance caps read throughput in two ways: every reader traverses the
//! same `Θ(log(n/f))` counter tree, and every traversal hammers the same
//! cache lines. [`ShardedAfRwLock`] removes both costs from the common
//! path:
//!
//! * **Sharding.** The lock holds an array of independent `A_f`
//!   instances, one per shard, each padded to its own cache lines. A
//!   reader touches exactly one shard, picked by a thread-local slot, so
//!   readers on different shards share no data at all.
//! * **Batched admission.** Each shard runs the underlying `A_f`
//!   protocol through a single *batch slot*: the first reader to arrive
//!   at an idle shard (the batch *leader*) performs one `A_f` reader
//!   entry on behalf of everyone, then opens the batch; readers arriving
//!   while the batch is open join with one CAS on the shard's gate word.
//!   The last member out performs the single `A_f` reader exit. A
//!   thundering herd of readers thus costs **one** counter-tree
//!   traversal per batch instead of one per reader.
//! * **Writer gate.** Writers serialize on a tournament mutex, raise a
//!   per-shard *writer-pending* flag (plain writes, owned by the gate
//!   holder — same argument as [`crate::GatedAfLock`]'s gate), then
//!   acquire every shard's `A_f` write lock **in fixed ascending shard
//!   order**. Readers hold at most one shard and writers are serialized,
//!   so the fixed order makes shard-acquisition deadlock impossible.
//!
//! # Gate-word protocol
//!
//! Each shard has one 64-bit gate word: a member count in the low bits
//! plus [`OPEN`] and [`DRAIN`] flag bits.
//!
//! | transition | by | meaning |
//! |---|---|---|
//! | `0 → 1` | leader | batch claimed; leader runs the `A_f` entry |
//! | `∨ OPEN` | leader | entry done; members may proceed |
//! | `w → w+1` | joiner | join the batch (before or after `OPEN`) |
//! | `w → w−1` | exiter | leave (other members remain) |
//! | `OPEN∣1 → DRAIN` | last exiter | batch closing; runs the `A_f` exit |
//! | `DRAIN → 0` | last exiter | exit done (plain store); shard idle |
//!
//! `DRAIN` is load-bearing: the underlying batch slot is a *single*
//! reader id, whose lock/unlock calls must never overlap. If the last
//! exiter dropped the gate to `0` before running the `A_f` exit, a new
//! leader could claim the slot and start the next entry while the old
//! exit is still in flight. `DRAIN` holds fresh leaders (and joiners)
//! off until the exit has fully retired.
//!
//! A joiner may slip into an open batch after a writer raises the
//! pending flag (it checks the flag, then CASes). That is benign for
//! Mutual Exclusion — a batch with members always holds the shard's
//! `A_f` read lock, so the writer is still excluded — and bounded for
//! writer progress: each such reader joins at most once per flag check,
//! and the flag halts all later arrivals.
//!
//! # Properties and trade-offs
//!
//! Mutual Exclusion is inherited from the per-shard `A_f` instances: a
//! writer holds *every* shard's write lock, and any reader in the CS is
//! a member of some shard's batch, which holds that shard's read lock.
//! The writer-pending flag gives writers preference, so (like the gated
//! variant) reader starvation-freedom is traded away; batch admission
//! gives readers `O(1)` fast-path entry in exchange for a reader exit
//! that is a CAS retry loop (bounded only by batch churn, not by the
//! adversary-proof f-array argument — this variant is an engineering
//! point, not a member of the paper's `A_f` family). Writer passages
//! cost `shards × Θ(f)` — the price of the sharded read path.

use crate::af::real::RawAfLock;
use crate::af::typed::DEADLINE_SPIN_SLICE;
use crate::config::{AfConfig, FPolicy};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use wmutex::{IdMutex, TournamentLock};

/// Member count mask of the gate word.
const COUNT_MASK: u64 = (1 << 32) - 1;
/// Gate flag: the batch leader has completed the `A_f` entry.
const OPEN: u64 = 1 << 32;
/// Gate flag: the last member is running the `A_f` exit; the shard is
/// closed to new leaders until the gate returns to 0.
const DRAIN: u64 = 1 << 33;

/// Spin briefly, then start yielding: keeps oversubscribed hosts (more
/// lab threads than CPUs) from burning whole scheduler quanta in a
/// spin loop while the thread that would unblock us waits for a core.
#[inline]
fn backoff(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// One shard: an independent single-slot `A_f` instance plus its gate
/// word and writer-pending flag, padded so shards never share a cache
/// line (128 bytes covers the common 64-byte line and the 128-byte
/// prefetch pairs on recent x86).
#[repr(align(128))]
#[derive(Debug)]
struct Shard {
    /// The shard's `A_f` instance, driven through reader id 0 (the batch
    /// slot) and writer id 0 (writers are serialized by the outer gate).
    inner: RawAfLock,
    /// The batch gate word (see the module docs).
    gate: AtomicU64,
    /// 1 while a writer wants or holds the shards. Plain stores suffice:
    /// only the outer-gate holder writes it.
    wp: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            inner: RawAfLock::new(AfConfig {
                readers: 1,
                writers: 1,
                policy: FPolicy::One,
            }),
            gate: AtomicU64::new(0),
            wp: AtomicU64::new(0),
        }
    }
}

/// Round-robin source for thread shard slots (process-wide: threads get
/// stable, distinct slots regardless of how many locks they touch).
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's shard slot, assigned round-robin on first use.
fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| {
        let v = slot.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
        slot.set(v);
        v
    })
}

/// The sharded `A_f` reader-writer lock (see the module docs).
///
/// # Contract
/// Reader entry/exit pairs must be issued from the same thread (the
/// shard is picked by a thread-local slot). Writer ids `0..writers`
/// follow the usual one-thread-at-a-time rule. Reader ids passed through
/// the [`crate::RawRwLock`] facade are ignored — any number of threads
/// may read concurrently.
#[derive(Debug)]
pub struct ShardedAfRwLock {
    shards: Vec<Shard>,
    /// The outer writer gate.
    wl: TournamentLock,
}

impl ShardedAfRwLock {
    /// Build a lock with `shards` shards for `writers` writer processes.
    ///
    /// # Panics
    /// Panics if `shards` or `writers` is zero.
    pub fn new(shards: usize, writers: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(writers > 0, "need at least one writer");
        ShardedAfRwLock {
            shards: (0..shards).map(|_| Shard::new()).collect(),
            wl: TournamentLock::new(writers),
        }
    }

    /// A lock sized to the host: one shard per detected CPU (at least
    /// two, so the sharded structure is exercised even on tiny hosts).
    pub fn with_auto_shards(writers: usize) -> Self {
        let n = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        Self::new(n.max(2), writers)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard the calling thread maps to.
    pub fn shard_of_current_thread(&self) -> usize {
        thread_slot() % self.shards.len()
    }

    /// Reader entry on an explicit shard. Prefer [`Self::read_lock`];
    /// this is the building block (and the test seam). The matching
    /// [`Self::read_unlock_shard`] must target the same shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn read_lock_shard(&self, shard: usize) {
        let sh = &self.shards[shard];
        let mut spins = 0u32;
        loop {
            // Writer preference: arrivals hold off while a writer is
            // pending, so the shard's batch can drain.
            if sh.wp.load(Ordering::SeqCst) != 0 {
                backoff(&mut spins);
                continue;
            }
            let w = sh.gate.load(Ordering::SeqCst);
            if w & DRAIN != 0 {
                // An exit is retiring; the shard reopens at gate = 0.
                backoff(&mut spins);
                continue;
            }
            if w == 0 {
                // Claim the batch: become the leader.
                if sh
                    .gate
                    .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    sh.inner.reader_lock(0);
                    sh.gate.fetch_or(OPEN, Ordering::SeqCst);
                    return;
                }
            } else {
                debug_assert!(w & COUNT_MASK < COUNT_MASK, "batch member overflow");
                // Join the in-flight batch.
                if sh
                    .gate
                    .compare_exchange(w, w + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    if w & OPEN == 0 {
                        // Joined while the leader is still running the
                        // A_f entry; wait for it to open the batch.
                        let mut fill_spins = 0u32;
                        while sh.gate.load(Ordering::SeqCst) & OPEN == 0 {
                            backoff(&mut fill_spins);
                        }
                    }
                    return;
                }
            }
            // CAS lost a race: re-check the writer flag and retry.
        }
    }

    /// Reader exit on an explicit shard (pairs with
    /// [`Self::read_lock_shard`]).
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn read_unlock_shard(&self, shard: usize) {
        let sh = &self.shards[shard];
        loop {
            let w = sh.gate.load(Ordering::SeqCst);
            debug_assert!(
                w & OPEN != 0 && w & COUNT_MASK >= 1,
                "unlock without a matching lock (gate {w:#x})"
            );
            if w == OPEN | 1 {
                // Last member out: close the batch and retire the
                // underlying passage before reopening the shard.
                if sh
                    .gate
                    .compare_exchange(w, DRAIN, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    sh.inner.reader_unlock(0);
                    sh.gate.store(0, Ordering::SeqCst);
                    return;
                }
            } else if sh
                .gate
                .compare_exchange(w, w - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Bounded reader entry on an explicit shard: like
    /// [`Self::read_lock_shard`], but spend at most `spins` backoff
    /// rounds waiting for admission (writer-pending flag clear, batch not
    /// draining, gate CAS won). The attempt gives up only *before* it has
    /// CASed into a batch — after a successful gate transition the
    /// reader is committed (at worst it rides out the single writer
    /// passage that slipped in behind its admission check), so a `false`
    /// return leaves no residue anywhere. Pair a `true` with
    /// [`Self::read_unlock_shard`] on the same shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn try_read_lock_shard(&self, shard: usize, spins: u64) -> bool {
        let sh = &self.shards[shard];
        let mut budget = spins;
        let mut spin_state = 0u32;
        loop {
            let blocked =
                sh.wp.load(Ordering::SeqCst) != 0 || sh.gate.load(Ordering::SeqCst) & DRAIN != 0;
            if !blocked {
                let w = sh.gate.load(Ordering::SeqCst);
                if w == 0 {
                    if sh
                        .gate
                        .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        sh.inner.reader_lock(0); // committed: leader
                        sh.gate.fetch_or(OPEN, Ordering::SeqCst);
                        return true;
                    }
                } else if w & DRAIN == 0
                    && sh
                        .gate
                        .compare_exchange(w, w + 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    if w & OPEN == 0 {
                        let mut fill_spins = 0u32;
                        while sh.gate.load(Ordering::SeqCst) & OPEN == 0 {
                            backoff(&mut fill_spins);
                        }
                    }
                    return true; // committed: batch member
                }
            }
            if budget == 0 {
                return false;
            }
            budget -= 1;
            backoff(&mut spin_state);
        }
    }

    /// Reader entry on the calling thread's shard.
    pub fn read_lock(&self) {
        self.read_lock_shard(self.shard_of_current_thread());
    }

    /// Bounded reader entry on the calling thread's shard (see
    /// [`Self::try_read_lock_shard`]).
    pub fn try_read_lock(&self, spins: u64) -> bool {
        self.try_read_lock_shard(self.shard_of_current_thread(), spins)
    }

    /// Deadline reader entry on the calling thread's shard: retry bounded
    /// attempts until `deadline` passes.
    pub fn read_lock_deadline(&self, deadline: std::time::Instant) -> bool {
        let shard = self.shard_of_current_thread();
        loop {
            if self.try_read_lock_shard(shard, DEADLINE_SPIN_SLICE) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
        }
    }

    /// Reader exit on the calling thread's shard.
    pub fn read_unlock(&self) {
        self.read_unlock_shard(self.shard_of_current_thread());
    }

    /// Writer entry: serialize on the outer gate, flag every shard, then
    /// acquire each shard's write lock in ascending shard order.
    ///
    /// # Panics
    /// Panics if `writer_id` is out of range.
    pub fn write_lock(&self, writer_id: usize) {
        self.wl.lock(writer_id);
        for sh in &self.shards {
            sh.wp.store(1, Ordering::SeqCst);
        }
        // Fixed ascending order. Readers hold at most one shard and
        // never block while holding it, and writers are serialized
        // above, so no cycle in the wait-for graph is possible.
        for sh in &self.shards {
            sh.inner.writer_lock(0);
        }
    }

    /// Writer exit: release every shard, clear the flags, release the
    /// outer gate.
    ///
    /// # Panics
    /// Panics if `writer_id` is out of range.
    pub fn write_unlock(&self, writer_id: usize) {
        for sh in &self.shards {
            sh.inner.writer_unlock(0);
        }
        for sh in &self.shards {
            sh.wp.store(0, Ordering::SeqCst);
        }
        self.wl.unlock(writer_id);
    }

    /// Bounded writer entry: spend at most `spins` rounds on the outer
    /// gate and then on each shard's write lock. On any timeout the
    /// attempt rolls itself back completely — shards already won are
    /// released in reverse order, every writer-pending flag is cleared,
    /// and the outer gate is dropped — so a `false` return leaves the
    /// lock exactly as acquirable as before the call. Pair a `true` with
    /// [`Self::write_unlock`].
    ///
    /// # Panics
    /// Panics if `writer_id` is out of range.
    pub fn try_write_lock(&self, writer_id: usize, spins: u64) -> bool {
        if !self.wl.try_lock(writer_id, spins) {
            return false;
        }
        for sh in &self.shards {
            sh.wp.store(1, Ordering::SeqCst);
        }
        for (k, sh) in self.shards.iter().enumerate() {
            if !sh.inner.try_writer_lock(0, spins) {
                // Shard `k` timed out and already unwound itself (its
                // `try_writer_lock` burns the epoch on the way out); the
                // shards below it are fully held and need a real release.
                for held in self.shards[..k].iter().rev() {
                    held.inner.writer_unlock(0);
                }
                for flagged in &self.shards {
                    flagged.wp.store(0, Ordering::SeqCst);
                }
                self.wl.unlock(writer_id);
                return false;
            }
        }
        true
    }

    /// Deadline writer entry: retry bounded attempts until `deadline`
    /// passes.
    ///
    /// # Panics
    /// Panics if `writer_id` is out of range.
    pub fn write_lock_deadline(&self, writer_id: usize, deadline: std::time::Instant) -> bool {
        loop {
            if self.try_write_lock(writer_id, DEADLINE_SPIN_SLICE) {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
        }
    }
}

impl crate::baselines::real::RawRwLock for ShardedAfRwLock {
    fn reader_lock(&self, _id: usize) {
        self.read_lock();
    }
    fn reader_unlock(&self, _id: usize) {
        self.read_unlock();
    }
    fn writer_lock(&self, id: usize) {
        self.write_lock(id);
    }
    fn writer_unlock(&self, id: usize) {
        self.write_unlock(id);
    }
    fn name(&self) -> &'static str {
        "a_f-sharded"
    }
    fn effective_shards(&self) -> Option<usize> {
        Some(self.shards())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsim::Prng;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn uncontended_read_passages() {
        let lock = ShardedAfRwLock::new(4, 1);
        for _ in 0..100 {
            lock.read_lock();
            lock.read_unlock();
        }
    }

    #[test]
    fn uncontended_write_passages() {
        let lock = ShardedAfRwLock::new(4, 2);
        for _ in 0..100 {
            lock.write_lock(1);
            lock.write_unlock(1);
        }
    }

    #[test]
    fn readers_share_a_shard_batch() {
        // Two entries on the same shard before either exit: the second
        // must join the first's batch rather than deadlock.
        let lock = ShardedAfRwLock::new(2, 1);
        lock.read_lock_shard(0);
        lock.read_lock_shard(0);
        assert_eq!(
            lock.shards[0].gate.load(Ordering::SeqCst),
            OPEN | 2,
            "two members in one open batch"
        );
        lock.read_unlock_shard(0);
        lock.read_unlock_shard(0);
        assert_eq!(lock.shards[0].gate.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn readers_on_distinct_shards_are_independent() {
        let lock = ShardedAfRwLock::new(2, 1);
        lock.read_lock_shard(0);
        lock.read_lock_shard(1);
        assert_eq!(lock.shards[0].gate.load(Ordering::SeqCst), OPEN | 1);
        assert_eq!(lock.shards[1].gate.load(Ordering::SeqCst), OPEN | 1);
        lock.read_unlock_shard(1);
        lock.read_unlock_shard(0);
    }

    /// Satellite test: the writer gate acquires shards in fixed
    /// ascending order, so a writer blocked on a reader-held shard `k`
    /// already owns every shard below `k` — and because readers hold at
    /// most one shard and writers are serialized, the acquisition graph
    /// is acyclic (no deadlock). Observed here through behavior: with a
    /// reader parked on the *last* shard, the writer must already have
    /// locked shard 0 (a probe reader on shard 0 cannot get in), and
    /// releasing the parked reader lets everyone finish.
    #[test]
    fn writer_gate_acquires_shards_in_fixed_order() {
        let lock = Arc::new(ShardedAfRwLock::new(3, 1));
        lock.read_lock_shard(2); // park a batch on the last shard

        let writer_in_cs = Arc::new(AtomicBool::new(false));
        let writer = {
            let (lock, flag) = (Arc::clone(&lock), Arc::clone(&writer_in_cs));
            std::thread::spawn(move || {
                lock.write_lock(0);
                flag.store(true, Ordering::SeqCst);
                lock.write_unlock(0);
            })
        };
        // Give the writer time to raise the flags and take shards 0..2.
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            !writer_in_cs.load(Ordering::SeqCst),
            "writer entered the CS past a reader-held shard"
        );
        for s in 0..3 {
            assert_eq!(
                lock.shards[s].wp.load(Ordering::SeqCst),
                1,
                "writer-pending flag raised on shard {s}"
            );
        }

        // A probe reader on shard 0 must be blocked: the writer already
        // owns shard 0's write lock (ascending order) and wp holds it
        // out regardless.
        let probe_done = Arc::new(AtomicBool::new(false));
        let probe = {
            let (lock, flag) = (Arc::clone(&lock), Arc::clone(&probe_done));
            std::thread::spawn(move || {
                lock.read_lock_shard(0);
                flag.store(true, Ordering::SeqCst);
                lock.read_unlock_shard(0);
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            !probe_done.load(Ordering::SeqCst),
            "probe reader entered shard 0 during a writer's acquisition"
        );

        // Release the parked reader: writer completes, then the probe.
        lock.read_unlock_shard(2);
        writer.join().unwrap();
        assert!(writer_in_cs.load(Ordering::SeqCst));
        probe.join().unwrap();
        assert!(probe_done.load(Ordering::SeqCst));
    }

    /// Satellite test: seeded randomized stress. Writers increment a
    /// generation counter inside the CS; readers snapshot it at entry
    /// and exit and assert it never moved mid-read. Any Mutual
    /// Exclusion hole (a writer overlapping a reader) shows up as a
    /// torn generation.
    #[test]
    fn randomized_generation_counter_stress() {
        for seed in [0x5eed_0001u64, 0x5eed_0002, 0x5eed_0003] {
            let lock = Arc::new(ShardedAfRwLock::new(3, 2));
            let generation = Arc::new(AtomicU64::new(0));
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let lock = Arc::clone(&lock);
                    let generation = Arc::clone(&generation);
                    scope.spawn(move || {
                        let mut rng = Prng::new(seed ^ (t as u64) << 32);
                        for _ in 0..400 {
                            lock.read_lock();
                            let before = generation.load(Ordering::SeqCst);
                            // A little in-CS work so overlap is likely.
                            for _ in 0..rng.below(16) {
                                std::hint::spin_loop();
                            }
                            let after = generation.load(Ordering::SeqCst);
                            assert_eq!(before, after, "generation moved mid-read (seed {seed:#x})");
                            lock.read_unlock();
                        }
                    });
                }
                for w in 0..2 {
                    let lock = Arc::clone(&lock);
                    let generation = Arc::clone(&generation);
                    scope.spawn(move || {
                        for _ in 0..200 {
                            lock.write_lock(w);
                            generation.fetch_add(1, Ordering::SeqCst);
                            lock.write_unlock(w);
                        }
                    });
                }
            });
            assert_eq!(generation.load(Ordering::SeqCst), 400);
        }
    }

    #[test]
    fn two_writers_and_readers_no_deadlock() {
        // Deadlock-freedom smoke: both writers and a crowd of readers
        // hammer all shards; a deadlock hangs the test harness.
        let lock = Arc::new(ShardedAfRwLock::new(4, 2));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                scope.spawn(move || {
                    for _ in 0..500 {
                        lock.read_lock();
                        lock.read_unlock();
                    }
                });
            }
            for w in 0..2 {
                let lock = Arc::clone(&lock);
                scope.spawn(move || {
                    for _ in 0..250 {
                        lock.write_lock(w);
                        lock.write_unlock(w);
                    }
                });
            }
        });
    }

    #[test]
    fn thread_slots_are_stable_and_distinct() {
        let lock = Arc::new(ShardedAfRwLock::new(8, 1));
        let s1 = lock.shard_of_current_thread();
        assert_eq!(lock.shard_of_current_thread(), s1, "slot is sticky");
        let lock2 = Arc::clone(&lock);
        let s2 = std::thread::spawn(move || lock2.shard_of_current_thread())
            .join()
            .unwrap();
        // Different threads get different round-robin slots; with 8
        // shards and two fresh slots they can still collide only if the
        // process has already consumed many slots — allow that, but the
        // value must be in range.
        assert!(s1 < 8 && s2 < 8);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedAfRwLock::new(0, 1);
    }

    #[test]
    fn try_paths_uncontended() {
        let lock = ShardedAfRwLock::new(2, 2);
        assert!(lock.try_read_lock_shard(0, 64));
        lock.read_unlock_shard(0);
        assert!(lock.try_write_lock(1, 64));
        lock.write_unlock(1);
        assert!(lock.try_read_lock(64));
        lock.read_unlock();
    }

    #[test]
    fn try_write_times_out_on_a_reader_held_shard_and_rolls_back() {
        let lock = ShardedAfRwLock::new(3, 2);
        lock.read_lock_shard(2); // park a batch on the last shard

        // The writer wins the outer gate and shards 0 and 1, then times
        // out on shard 2 and must unwind everything.
        assert!(!lock.try_write_lock(0, 256));
        for s in 0..3 {
            assert_eq!(
                lock.shards[s].wp.load(Ordering::SeqCst),
                0,
                "writer-pending flag left raised on shard {s}"
            );
        }
        // No residue: another reader batch can open on shard 0, and the
        // parked batch is untouched.
        assert!(lock.try_read_lock_shard(0, 1 << 16));
        lock.read_unlock_shard(0);
        lock.read_unlock_shard(2);

        // With the reader gone, both a bounded and a plain writer pass.
        assert!(lock.try_write_lock(0, 1 << 16));
        lock.write_unlock(0);
        lock.write_lock(1);
        lock.write_unlock(1);
    }

    #[test]
    fn try_read_times_out_while_a_writer_holds() {
        let lock = ShardedAfRwLock::new(2, 1);
        lock.write_lock(0);
        assert!(!lock.try_read_lock_shard(0, 256));
        assert!(!lock.try_read_lock_shard(1, 256));
        assert!(!lock.read_lock_deadline(std::time::Instant::now()));
        lock.write_unlock(0);
        // A failed attempt left no trace on the gates.
        lock.read_lock_shard(0);
        lock.read_unlock_shard(0);
    }

    #[test]
    fn deadline_write_succeeds_once_the_reader_leaves() {
        let lock = Arc::new(ShardedAfRwLock::new(2, 1));
        lock.read_lock_shard(1);
        let writer = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let deadline = std::time::Instant::now() + Duration::from_secs(30);
                let ok = lock.write_lock_deadline(0, deadline);
                if ok {
                    lock.write_unlock(0);
                }
                ok
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        lock.read_unlock_shard(1);
        assert!(writer.join().unwrap(), "deadline writer should get in");
    }
}
