//! Golden-stream regression test for [`ccsim::Prng`].
//!
//! Everything reproducible in this workspace — random schedules, fault
//! plans, randomized invariant tests, the E-series sweeps — keys off the
//! exact output stream of the in-tree xorshift64* generator. A silent
//! change to its constants or reduction would invalidate every recorded
//! seed (CI seed matrices, trace artifacts, tables in EXPERIMENTS.md), so
//! the first 16 outputs of two fixed seeds are pinned here verbatim.

use ccsim::Prng;

#[test]
fn golden_stream_seed_zero() {
    // Seed 0 exercises the splitmix64 remap of the all-zero state.
    let mut rng = Prng::new(0);
    let expected: [u64; 16] = [
        0x7bbcb40d550682d0,
        0xde7fe413d00cc9fd,
        0xb3c638353c668c91,
        0xe073afc0949195fc,
        0x7f2f9e2eb34937f6,
        0x6ef86054c4731f4f,
        0x410926d7bb410255,
        0x0cf75540849d9c3b,
        0xcc4ad468f16227ed,
        0x88edb15077431c06,
        0xfb81ca6252a18bae,
        0x9f1270c924f47b7c,
        0x791ba7ad88316662,
        0x768a3190675fdd8b,
        0xfa11f514e87e86f9,
        0xce4ec4ed19fbffbf,
    ];
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(rng.next_u64(), want, "seed 0, output {i}");
    }
}

#[test]
fn golden_stream_high_entropy_seed() {
    let mut rng = Prng::new(0xDEAD_BEEF_CAFE_F00D);
    let expected: [u64; 16] = [
        0x904a27d0de2ac504,
        0xbff5ab5e5b1c5774,
        0x9e8ba5d193624c69,
        0xaeac6ff6f0ae6294,
        0x042da45e112e637a,
        0xce2286a0cab78df6,
        0xfaf85473725ec680,
        0xeb96e4f85b3bf4e1,
        0x4d8197a14d552859,
        0x6c4d1c958f88869d,
        0x19d2b932c43c90cd,
        0x163ea6b8c3bf9873,
        0x14b7321132c42f3b,
        0x78a5ffa6cf74eb0c,
        0x09d91754b4a4ebec,
        0x486bc20ea3dfd931,
    ];
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(
            rng.next_u64(),
            want,
            "seed 0xDEAD_BEEF_CAFE_F00D, output {i}"
        );
    }
}

#[test]
fn derived_draws_are_pinned_too() {
    // `below` and `chance` are thin reductions over `next_u64`; pin a few
    // derived draws so reduction changes are caught even if the raw
    // stream survives.
    let mut rng = Prng::new(0);
    let draws: Vec<usize> = (0..8).map(|_| rng.below(10)).collect();
    assert_eq!(draws, vec![4, 8, 7, 8, 4, 4, 2, 0]);
}
