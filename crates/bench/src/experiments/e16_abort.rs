//! E16 — abortable entry: the RMR cost of withdrawing from `A_f`'s entry
//! sections. A reader waiting for the writer's signal, or a writer still
//! competing in the `WL` tournament, can abort: retract its announced
//! state and return to the remainder in bounded solo steps without losing
//! wakeups for anyone else. This experiment measures the amortized RMRs
//! spent inside abort windows and contrasts the measured shape with the
//! O(1)-amortized abortable locks of Jayanti–Jayanti (the cited target;
//! `A_f`'s withdrawal retracts f-array contributions, so it pays the
//! entry cost again — Θ(log(n/f)) per reader abort, Θ(log m) per writer
//! abort). All rows are solo-driven and exactly deterministic.

use super::prelude::*;
use ccsim::{run_solo, Phase, ProcId, Sim};
use rwcore::af_world;

/// Per-abort solo-step safety budget: every withdrawal must reach the
/// remainder well within this (bounded abort, the model-checked variant
/// of which is `bounded_abort_invariant`).
const SOLO_BUDGET: u64 = 10_000;

/// What a batch of aborts cost.
struct AbortCosts {
    aborts: u64,
    abort_rmrs: u64,
    abort_ops: u64,
    max_single_rmrs: u64,
    max_solo_steps: u64,
    all_withdrew: bool,
}

/// Drive `p` solo until its program is abortable (spinning in its entry
/// section against the parked holder), then a few steps deeper so the
/// withdrawal has real announced state to retract.
fn park_in_entry(sim: &mut Sim, p: ProcId) -> bool {
    if run_solo(sim, p, 400, |s| s.program(p).can_abort()).is_none() {
        return false;
    }
    // Walk deeper (announce fully, start waiting) — this can land inside
    // a non-abortable sub-machine window — then settle on the abortable
    // wait loop the process spins in while the holder stays parked.
    for _ in 0..8 {
        sim.step(p);
    }
    run_solo(sim, p, 400, |s| s.program(p).can_abort()).is_some()
}

/// Issue `rounds` aborts for each process in `victims`, with the CS held
/// by a parked process throughout, and account the abort windows.
fn measure_aborts(sim: &mut Sim, victims: &[ProcId], rounds: u64) -> AbortCosts {
    let mut costs = AbortCosts {
        aborts: 0,
        abort_rmrs: 0,
        abort_ops: 0,
        max_single_rmrs: 0,
        max_solo_steps: 0,
        all_withdrew: true,
    };
    for _ in 0..rounds {
        for &p in victims {
            if !park_in_entry(sim, p) {
                costs.all_withdrew = false;
                continue;
            }
            let before = sim.stats(p);
            if sim.abort(p).is_none() {
                costs.all_withdrew = false;
                continue;
            }
            let steps = match run_solo(sim, p, SOLO_BUDGET, |s| s.phase(p) == Phase::Remainder) {
                Some(steps) => steps,
                None => {
                    costs.all_withdrew = false;
                    continue;
                }
            };
            let after = sim.stats(p);
            costs.aborts += after.aborts - before.aborts;
            let rmrs = after.abort_rmrs - before.abort_rmrs;
            costs.abort_rmrs += rmrs;
            costs.abort_ops += after.abort_ops - before.abort_ops;
            costs.max_single_rmrs = costs.max_single_rmrs.max(rmrs);
            costs.max_solo_steps = costs.max_solo_steps.max(steps);
            if after.aborts != before.aborts + 1 {
                costs.all_withdrew = false;
            }
        }
    }
    costs
}

/// Reader aborts at size `n`: a parked writer keeps every reader waiting
/// on `RSIG`, each reader withdraws `rounds` times.
fn reader_row(n: usize, rounds: u64) -> ([String; 6], AbortCosts, f64) {
    let cfg = AfConfig {
        readers: n,
        writers: 1,
        policy: FPolicy::One,
    };
    let mut world = af_world(cfg, Protocol::WriteBack);
    let w0 = world.pids.writer(0);
    run_solo(&mut world.sim, w0, 100_000, |s| s.phase(w0) == Phase::Cs)
        .expect("the writer must park in the CS");
    let victims: Vec<ProcId> = world.pids.reader_pids().collect();
    let costs = measure_aborts(&mut world.sim, &victims, rounds);
    let amortized = costs.abort_rmrs as f64 / costs.aborts.max(1) as f64;
    (
        [
            "reader".into(),
            format!("n={n} m=1 f=1, writer parked in CS"),
            format!("{} aborts", costs.aborts),
            format!("{amortized:.2} amortized RMRs/abort"),
            format!(
                "max {} RMRs, {} ops total",
                costs.max_single_rmrs, costs.abort_ops
            ),
            format!("max {} solo steps to remainder", costs.max_solo_steps),
        ],
        costs,
        amortized,
    )
}

/// Writer aborts at tournament size `m`: writer 0 parks in the CS (holds
/// `WL`), every other writer spins in the tree and withdraws `rounds`
/// times.
fn writer_row(m: usize, rounds: u64) -> ([String; 6], AbortCosts, f64) {
    let cfg = AfConfig {
        readers: 1,
        writers: m,
        policy: FPolicy::One,
    };
    let mut world = af_world(cfg, Protocol::WriteBack);
    let w0 = world.pids.writer(0);
    run_solo(&mut world.sim, w0, 100_000, |s| s.phase(w0) == Phase::Cs)
        .expect("writer 0 must park in the CS");
    let victims: Vec<ProcId> = world.pids.writer_pids().skip(1).collect();
    let costs = measure_aborts(&mut world.sim, &victims, rounds);
    let amortized = costs.abort_rmrs as f64 / costs.aborts.max(1) as f64;
    (
        [
            "writer".into(),
            format!("n=1 m={m} f=1, writer 0 parked in CS"),
            format!("{} aborts", costs.aborts),
            format!("{amortized:.2} amortized RMRs/abort"),
            format!(
                "max {} RMRs, {} ops total",
                costs.max_single_rmrs, costs.abort_ops
            ),
            format!("max {} solo steps to remainder", costs.max_solo_steps),
        ],
        costs,
        amortized,
    )
}

/// Registry entry for the abort-cost suite.
pub(crate) struct E16;

impl Experiment for E16 {
    fn id(&self) -> &'static str {
        "e16_abort"
    }

    fn title(&self) -> &'static str {
        "abortable entry: amortized RMRs per withdrawal"
    }

    fn claim(&self) -> &'static str {
        "every abort withdraws in bounded solo steps at Θ(log(n/f)) ops, and its RMR cost amortizes to O(1) per abort — the Jayanti–Jayanti amortized shape"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let mut table = Table::new([
            "role",
            "config",
            "aborts",
            "amortized",
            "cost",
            "boundedness",
        ]);

        let reader_sizes: &[usize] = if ctx.smoke() {
            &[2, 4]
        } else {
            &[2, 4, 8, 16, 32]
        };
        let writer_sizes: &[usize] = if ctx.smoke() { &[2, 4] } else { &[2, 4, 8, 16] };
        let rounds: u64 = if ctx.smoke() { 2 } else { 6 };

        let reader_rows: Vec<_> = par_map(reader_sizes, |&n| reader_row(n, rounds));
        let writer_rows: Vec<_> = par_map(writer_sizes, |&m| writer_row(m, rounds));

        let mut withdrew = 0usize;
        let total = reader_rows.len() + writer_rows.len();
        // Two shapes, checked separately: the *op* count per withdrawal
        // tracks the entry cost (log2(n)+1 for readers retracting f-array
        // contributions at f=1; log2(m)+1 for the tournament unwind),
        // while the *RMR* cost amortizes to a constant — retractions
        // rewrite lines the process already owns.
        let mut max_amortized_rmrs = 0f64;
        let mut max_ops_ratio = 0f64;
        let mut max_solo_steps = 0u64;
        for (sizes, rows) in [(reader_sizes, &reader_rows), (writer_sizes, &writer_rows)] {
            for (&k, (row, costs, amortized)) in sizes.iter().zip(rows.iter()) {
                table.row(row.clone());
                withdrew += usize::from(costs.all_withdrew);
                max_amortized_rmrs = max_amortized_rmrs.max(*amortized);
                let ops_per_abort = costs.abort_ops as f64 / costs.aborts.max(1) as f64;
                max_ops_ratio = max_ops_ratio.max(ops_per_abort / (log2(k as f64) + 1.0));
                max_solo_steps = max_solo_steps.max(costs.max_solo_steps);
            }
        }

        let mut report = Report::new(self, ctx);
        report
            .section("abort windows under a parked CS holder", table)
            .check(Check::all(
                "bounded abort: every withdrawal reaches the remainder",
                withdrew,
                total,
            ))
            .check(Check::le_u64(
                "withdrawal solo steps stay far below the budget",
                max_solo_steps,
                SOLO_BUDGET / 10,
            ))
            .check(Check::le_f64(
                "abort-window RMRs amortize to O(1) per abort (JJ shape)",
                max_amortized_rmrs,
                4.0,
            ))
            .check(Check::le_f64(
                "abort-window ops per withdrawal within c·(log2(k)+1)",
                max_ops_ratio,
                12.0,
            ))
            .notes(
                "Reading the table: each abort window runs from the abort request\n\
                 to the process's return to the remainder section; its RMRs are\n\
                 accounted separately (ProcStats::abort_rmrs) and never count as a\n\
                 passage. A_f's withdrawal retracts the announced f-array\n\
                 contributions (readers) or unwinds the claimed tournament path\n\
                 (writers): the op count per withdrawal grows with the entry cost\n\
                 — Θ(log(n/f)) and Θ(log m) — but in the cache-coherent RMR\n\
                 model those retractions rewrite lines the aborting process\n\
                 already owns, so the *remote* cost amortizes to O(1) per abort,\n\
                 matching the amortized shape of the purpose-built abortable\n\
                 mutex lineage of Jayanti–Jayanti (arXiv:2302.00748). The checks\n\
                 pin both shapes plus bounded-abort itself; the model-checked\n\
                 counterpart is `bounded_abort_invariant` in the `modelcheck`\n\
                 crate.",
            );
        report
    }
}
