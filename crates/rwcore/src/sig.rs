//! Signal words: the `<sequence, opcode>` pairs of `RSIG` and `WSIG[i]`.
//!
//! Every writer passage carries a unique sequence number (`WSEQ`); readers
//! and the writer signal each other with `(seq, opcode)` pairs so that a
//! signal for passage `s` can never be confused with one for passage
//! `s' ≠ s` — this is what makes the single CAS per signal ABA-safe
//! (see the paper's Lemma 17 RMR argument).
//!
//! In the simulator a signal is a `Value::Pair(seq, opcode)`; in the real
//! lock it is packed into one `AtomicU64` (61-bit seq, 3-bit opcode).

use std::fmt;

/// Opcodes carried by `RSIG` (writer → readers) and `WSIG[i]`
/// (group-i readers → writer).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Opcode {
    /// `RSIG`: no writer holds `WL`; readers may enter freely.
    Nop = 0,
    /// `WSIG[i]` initial state for the current passage (the paper's ⊥).
    Bot = 1,
    /// `RSIG`: the writer asks exiting readers that see `C[i] = 0` to
    /// signal it (line 11).
    Preentry = 2,
    /// `RSIG`: readers must wait (line 18); `WSIG[i]`: the writer has
    /// finished pre-entry for group i (line 16).
    Wait = 3,
    /// `WSIG[i]`: some group-i reader confirmed no reader of a previous
    /// passage is still waiting (line 45).
    Proceed = 4,
    /// `WSIG[i]`: some group-i reader confirmed the group has cleared the
    /// CS; the writer may enter (line 52).
    Cs = 5,
}

impl Opcode {
    /// Decode from the integer stored in a simulator pair / packed word.
    ///
    /// # Panics
    /// Panics on an unknown code (indicates memory corruption in a test).
    pub fn from_i64(x: i64) -> Self {
        match x {
            0 => Opcode::Nop,
            1 => Opcode::Bot,
            2 => Opcode::Preentry,
            3 => Opcode::Wait,
            4 => Opcode::Proceed,
            5 => Opcode::Cs,
            other => panic!("invalid opcode {other}"),
        }
    }

    /// The integer representation.
    pub fn as_i64(self) -> i64 {
        self as i64
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::Nop => "NOP",
            Opcode::Bot => "⊥",
            Opcode::Preentry => "PREENTRY",
            Opcode::Wait => "WAIT",
            Opcode::Proceed => "PROCEED",
            Opcode::Cs => "CS",
        };
        write!(f, "{s}")
    }
}

/// A `(sequence, opcode)` signal value.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Signal {
    /// The writer-passage sequence number.
    pub seq: u64,
    /// The command.
    pub op: Opcode,
}

impl Signal {
    /// Construct a signal.
    pub fn new(seq: u64, op: Opcode) -> Self {
        Signal { seq, op }
    }

    /// Pack into a single word: `seq` in the high 61 bits, opcode low 3.
    ///
    /// # Panics
    /// Debug-panics if `seq` overflows 61 bits (2.3e18 passages).
    pub fn pack(self) -> u64 {
        debug_assert!(self.seq < (1 << 61), "sequence number overflow");
        (self.seq << 3) | self.op.as_i64() as u64
    }

    /// Unpack from a word produced by [`Signal::pack`].
    pub fn unpack(word: u64) -> Self {
        Signal {
            seq: word >> 3,
            op: Opcode::from_i64((word & 0b111) as i64),
        }
    }

    /// The simulator representation: `Value::Pair(seq, opcode)`.
    pub fn to_pair(self) -> (i64, i64) {
        (self.seq as i64, self.op.as_i64())
    }

    /// Decode from a simulator pair.
    pub fn from_pair(pair: (i64, i64)) -> Self {
        Signal {
            seq: pair.0 as u64,
            op: Opcode::from_i64(pair.1),
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.seq, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for seq in [0u64, 1, 7, 1 << 40, (1 << 61) - 1] {
            for op in [
                Opcode::Nop,
                Opcode::Bot,
                Opcode::Preentry,
                Opcode::Wait,
                Opcode::Proceed,
                Opcode::Cs,
            ] {
                let s = Signal::new(seq, op);
                assert_eq!(Signal::unpack(s.pack()), s);
                assert_eq!(Signal::from_pair(s.to_pair()), s);
            }
        }
    }

    #[test]
    fn distinct_signals_pack_distinctly() {
        let a = Signal::new(3, Opcode::Wait).pack();
        let b = Signal::new(3, Opcode::Cs).pack();
        let c = Signal::new(4, Opcode::Wait).pack();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    #[should_panic(expected = "invalid opcode")]
    fn bad_opcode_panics() {
        Opcode::from_i64(6);
    }

    #[test]
    fn display() {
        assert_eq!(Signal::new(4, Opcode::Preentry).to_string(), "<4,PREENTRY>");
        assert_eq!(Opcode::Bot.to_string(), "⊥");
    }
}
