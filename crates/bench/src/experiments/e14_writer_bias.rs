//! E14 (extension) — the writer-biased `A_f` variant vs plain `A_f`:
//! does gating new readers during a writer passage fix E12's starvation?
//! Same methodology as E12; the gated variant holds arrivals at a gate
//! the moment a writer commits, at the documented price of losing
//! Lemma 16.

use super::prelude::*;
use super::support::{median, worst, writer_latency};
use rwcore::{af_world, gated_af_world};

const N: usize = 16;
const BUDGET: u64 = 2_000_000;

/// Registry entry for the writer-biased variant comparison.
pub(crate) struct E14;

impl Experiment for E14 {
    fn id(&self) -> &'static str {
        "e14_writer_bias"
    }

    fn title(&self) -> &'static str {
        "plain A_f vs the writer-biased (gated) variant"
    }

    fn claim(&self) -> &'static str {
        "Extension of the §6 open problem: gating arrivals shrinks the writer's starvation tail, at the price of Lemma 16"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let (actives, seeds): (&[usize], u64) = if ctx.smoke() {
            (&[0, 2], 3)
        } else {
            (&[0, 2, 4, 8, 16], 11)
        };
        let cfg = AfConfig {
            readers: N,
            writers: 1,
            policy: FPolicy::One,
        };
        let runs = par_map(actives, |&active| {
            let plain: Vec<Option<u64>> = (0..seeds)
                .map(|seed| {
                    let mut world = af_world(cfg, Protocol::WriteBack);
                    writer_latency(&mut world.sim, &world.pids, active, seed, BUDGET)
                })
                .collect();
            let gated: Vec<Option<u64>> = (0..seeds)
                .map(|seed| {
                    let mut world = gated_af_world(cfg, Protocol::WriteBack);
                    writer_latency(&mut world.sim, &world.pids, active, seed, BUDGET)
                })
                .collect();
            (plain, gated)
        });

        let mut table = Table::new([
            "active readers",
            "A_f median",
            "A_f worst",
            "gated median",
            "gated worst",
        ]);
        let mut tail_shrunk_at_moderate_churn = true;
        for (&active, (plain, gated)) in actives.iter().zip(runs) {
            let (mut plain, mut gated) = (plain, gated);
            let (pm, pw) = (median(&mut plain), worst(&mut plain));
            let (gm, gw) = (median(&mut gated), worst(&mut gated));
            // The tail claim binds at moderate churn (active = n/2): at
            // low churn the gate's constant overhead dominates, and at
            // full churn the residual drain of already-admitted readers
            // makes the comparison a coin flip (see the notes).
            if active == N / 2 {
                tail_shrunk_at_moderate_churn = match (gw.parse::<u64>(), pw.parse::<u64>()) {
                    (Ok(g), Ok(p)) => g <= p,
                    _ => false, // a STARVED worst on either side fails the claim
                };
            }
            table.row([active.to_string(), pm, pw, gm, gw]);
        }

        let mut report = Report::new(self, ctx);
        report.section(
            format!("n = {N}, f = 1, step budget {BUDGET}, {seeds} seeds/row"),
            table,
        );
        // Smoke only sweeps low churn, where the tail claim doesn't bind.
        if !ctx.smoke() {
            report.check(Check::new(
                "gated worst-case writer latency <= plain at moderate churn (active = n/2)",
                "gated worst <= plain worst",
                if tail_shrunk_at_moderate_churn {
                    "holds"
                } else {
                    "VIOLATED"
                },
                tail_shrunk_at_moderate_churn,
            ));
        }
        report.notes(
            "Expected shape: medians are a touch higher for the gated variant\n\
             (the gate costs a read per passage and two writes per writer\n\
             passage), but the starvation *tail* shrinks at moderate churn —\n\
             once the gate is up no new reader can join the drain. At extreme\n\
             churn (every reader always active) the residual tail comes from\n\
             readers already admitted when the gate rises; eliminating it\n\
             needs phase-fair machinery, which is exactly the open problem\n\
             the paper leaves. The price (not shown): gated readers can\n\
             starve behind back-to-back writers, so Lemma 16 no longer holds\n\
             for the variant. Safety is preserved and exhaustively\n\
             model-checked.",
        );
        report
    }
}
