//! The simulated `A_f` machines: Algorithm 1 as explicit `ccsim` step
//! machines, one state per pseudo-code line, so the RMR claims of
//! Lemma 17 can be *measured* and the safety claims of Lemmas 8–16
//! model-checked.

use crate::af::counters::{GroupAddMachine, GroupHandle, GroupReadMachine};
use crate::af::shared::{AfShared, HelpOrder};
use crate::config::GroupSlot;
use crate::sig::{Opcode, Signal};
use ccsim::{sub, Op, Phase, Program, Role, Step, SubMachine, SubStep, Value, VarId};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

fn signal_of(v: Value) -> Signal {
    Signal::from_pair(v.expect_pair())
}

/// Sub-machine for `HelpWCS(seq)` (lines 50–54): read the two group
/// counters and, if they are equal, CAS `WSIG[i]` from `<seq, WAIT>` to
/// `<seq, CS>`. The counter read order is configured by
/// [`HelpOrder`] — see the reproduction note there.
#[derive(Clone, Debug)]
pub struct HelpWcsMachine {
    wsig: VarId,
    seq: i64,
    pc: HelpPc,
}

#[derive(Clone, Debug)]
enum HelpPc {
    /// Reading the first counter; the second counter's read machine is
    /// held ready.
    First {
        m: GroupReadMachine,
        second: GroupReadMachine,
    },
    /// Reading the second counter.
    Second {
        first_val: i64,
        m: GroupReadMachine,
    },
    Cas,
    Done,
}

impl HelpWcsMachine {
    /// Start `HelpWCS(seq)` against group `i` of `shared`, honouring the
    /// instance's [`HelpOrder`].
    pub fn new(shared: &AfShared, i: usize, seq: i64) -> Self {
        let (first, second) = match shared.help_order {
            HelpOrder::WaitersFirst => (shared.w[i].read(), shared.c[i].read()),
            HelpOrder::PaperLiteral => (shared.c[i].read(), shared.w[i].read()),
        };
        HelpWcsMachine {
            wsig: shared.wsig[i],
            seq,
            pc: HelpPc::First { m: first, second },
        }
    }
}

impl SubMachine for HelpWcsMachine {
    fn poll(&self) -> SubStep {
        match &self.pc {
            HelpPc::First { m, .. } | HelpPc::Second { m, .. } => m.poll(),
            HelpPc::Cas => SubStep::Op(Op::Cas {
                var: self.wsig,
                expected: AfShared::sig_value(self.seq, Opcode::Wait),
                new: AfShared::sig_value(self.seq, Opcode::Cs),
            }),
            HelpPc::Done => SubStep::Done(Value::Nil),
        }
    }

    fn resume(&mut self, response: Value) {
        self.pc = match std::mem::replace(&mut self.pc, HelpPc::Done) {
            HelpPc::First { mut m, second } => match sub::drive(&mut m, response) {
                sub::Drive::Finished(v) => HelpPc::Second {
                    first_val: v.expect_int(),
                    m: second,
                },
                sub::Drive::Running => HelpPc::First { m, second },
            },
            HelpPc::Second { first_val, mut m } => match sub::drive(&mut m, response) {
                sub::Drive::Finished(v) => {
                    if v.expect_int() == first_val {
                        HelpPc::Cas // line 51 condition holds
                    } else {
                        HelpPc::Done
                    }
                }
                sub::Drive::Running => HelpPc::Second { first_val, m },
            },
            HelpPc::Cas => HelpPc::Done,
            HelpPc::Done => panic!("HelpWcsMachine resumed after completion"),
        };
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        match &self.pc {
            HelpPc::First { m, .. } => {
                0u8.hash(&mut h);
                m.fingerprint(h);
            }
            HelpPc::Second { first_val, m } => {
                1u8.hash(&mut h);
                first_val.hash(&mut h);
                m.fingerprint(h);
            }
            HelpPc::Cas => 2u8.hash(&mut h),
            HelpPc::Done => 3u8.hash(&mut h),
        }
        self.seq.hash(&mut h);
    }
}

/// Program counter of a simulated reader (the paper's line numbers).
#[derive(Clone, Debug)]
enum RPc {
    /// Line 29/30: in the remainder section.
    Remainder,
    /// Line 31: `C[i].add(1)`.
    AddC(GroupAddMachine),
    /// Line 32: read `RSIG`.
    ReadRsig,
    /// Line 34: `W[i].add(1)` after observing `<seq, WAIT>`.
    AddW { seq: i64, m: GroupAddMachine },
    /// Line 35: `HelpWCS(seq)`.
    Help1 { seq: i64, m: HelpWcsMachine },
    /// Line 36: await `RSIG ≠ <seq, WAIT>`.
    AwaitRsig { seq: i64 },
    /// Line 37: `W[i].add(-1)`.
    SubW(GroupAddMachine),
    /// Line 39: critical section.
    Cs,
    /// Line 40: `C[i].add(-1)`.
    SubC(GroupAddMachine),
    /// Line 41: read `RSIG` again.
    ReadRsig2,
    /// Line 43: read `C[i]` after seeing `PREENTRY`.
    ReadCForSignal { seq: i64, m: GroupReadMachine },
    /// Line 45: CAS `WSIG[i]` from `<seq, ⊥>` to `<seq, PROCEED>`.
    CasProceed { seq: i64 },
    /// Line 48: `HelpWCS(seq)` from the exit path.
    Help2 { m: HelpWcsMachine },
    /// Withdrawal: `W[i].add(-1)` after aborting from a waiting state
    /// (the reader had announced itself a waiter); continues into the
    /// normal exit duties at `SubC`.
    AbortSubW(GroupAddMachine),
    /// Recovery: drain this leaf's stale `W` contribution in one add
    /// before draining `C` and running the exit-signal duties.
    RecoverSubW(GroupAddMachine),
}

impl RPc {
    fn discriminant(&self) -> u8 {
        match self {
            RPc::Remainder => 0,
            RPc::AddC(_) => 1,
            RPc::ReadRsig => 2,
            RPc::AddW { .. } => 3,
            RPc::Help1 { .. } => 4,
            RPc::AwaitRsig { .. } => 5,
            RPc::SubW(_) => 6,
            RPc::Cs => 7,
            RPc::SubC(_) => 8,
            RPc::ReadRsig2 => 9,
            RPc::ReadCForSignal { .. } => 10,
            RPc::CasProceed { .. } => 11,
            RPc::Help2 { .. } => 12,
            RPc::AbortSubW(_) => 13,
            RPc::RecoverSubW(_) => 14,
        }
    }
}

/// A simulated `A_f` reader process (lines 29–49).
#[derive(Debug)]
pub struct AfReaderSim {
    shared: Arc<AfShared>,
    /// This reader's id (`0..n`) and group slot.
    id: usize,
    slot: GroupSlot,
    c_handle: GroupHandle,
    w_handle: GroupHandle,
    pc: RPc,
    /// Set by a crash; the next passage starts with the recovery section
    /// (drain the leaf's stale `C`/`W` contributions, run the exit-signal
    /// duties) instead of a fresh entry.
    recover: bool,
}

/// Manual `Clone` so `clone_from` (the model checker's recycling-pool hot
/// path, see [`ccsim::Sim::clone_world_into`]) skips the `Arc` refcount
/// round-trip when source and destination already share the same world —
/// which the pool guarantees — leaving a plain field copy.
impl Clone for AfReaderSim {
    fn clone(&self) -> Self {
        AfReaderSim {
            shared: Arc::clone(&self.shared),
            id: self.id,
            slot: self.slot,
            c_handle: self.c_handle.clone(),
            w_handle: self.w_handle.clone(),
            pc: self.pc.clone(),
            recover: self.recover,
        }
    }

    fn clone_from(&mut self, src: &Self) {
        if !Arc::ptr_eq(&self.shared, &src.shared) {
            self.shared = Arc::clone(&src.shared);
        }
        self.id = src.id;
        self.slot = src.slot;
        self.c_handle = src.c_handle.clone();
        self.w_handle = src.w_handle.clone();
        self.pc = src.pc.clone();
        self.recover = src.recover;
    }
}

impl AfReaderSim {
    /// Build the machine for reader `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn new(shared: Arc<AfShared>, id: usize) -> Self {
        let slot = shared.cfg.group_of(id);
        let c_handle = shared.c[slot.group].handle(slot.leaf);
        let w_handle = shared.w[slot.group].handle(slot.leaf);
        AfReaderSim {
            shared,
            id,
            slot,
            c_handle,
            w_handle,
            pc: RPc::Remainder,
            recover: false,
        }
    }

    /// Build the machine for reader `id` parked *inside* the critical
    /// section (line 39), as if some other process had already run the
    /// entry section for this reader id. This is the handoff constructor
    /// for compositions that pass one lock slot between processes — the
    /// sharded batch slot's exit runs in whichever member leaves last,
    /// not in the leader that entered.
    ///
    /// # Panics
    /// Panics if `id` is out of range, or if the instance's counters are
    /// not stateless ([`GroupHandle::is_stateless`]): an f-array handle
    /// carries a per-process leaf mirror, so an exit driven by a fresh
    /// handle in a different process would desynchronise the tree.
    /// Handed-off instances must use [`crate::CounterKind::CasLoop`].
    pub fn at_cs(shared: Arc<AfShared>, id: usize) -> Self {
        let mut m = Self::new(shared, id);
        assert!(
            m.c_handle.is_stateless() && m.w_handle.is_stateless(),
            "at_cs requires stateless (CasLoop) counters: f-array leaf \
             mirrors cannot be handed across processes"
        );
        m.pc = RPc::Cs;
        m
    }

    /// This reader's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Definition 4: the reader is *waiting* iff its pc is in [34, 36].
    pub fn is_waiting(&self) -> bool {
        matches!(
            self.pc,
            RPc::AddW { .. } | RPc::Help1 { .. } | RPc::AwaitRsig { .. }
        )
    }

    fn help(&self, seq: i64) -> HelpWcsMachine {
        HelpWcsMachine::new(&self.shared, self.slot.group, seq)
    }
}

impl Program for AfReaderSim {
    ccsim::impl_program_in_place_clone!();

    fn poll(&self) -> Step {
        match &self.pc {
            RPc::Remainder => Step::Remainder,
            RPc::AddC(m)
            | RPc::SubC(m)
            | RPc::SubW(m)
            | RPc::AbortSubW(m)
            | RPc::RecoverSubW(m) => Step::Op(sub::poll_op(m)),
            RPc::AddW { m, .. } => Step::Op(sub::poll_op(m)),
            RPc::ReadRsig | RPc::ReadRsig2 | RPc::AwaitRsig { .. } => {
                Step::Op(Op::Read(self.shared.rsig))
            }
            RPc::Help1 { m, .. } => Step::Op(sub::poll_op(m)),
            RPc::Help2 { m } => Step::Op(sub::poll_op(m)),
            RPc::Cs => Step::Cs,
            RPc::ReadCForSignal { m, .. } => Step::Op(sub::poll_op(m)),
            RPc::CasProceed { seq } => Step::Op(Op::Cas {
                var: self.shared.wsig[self.slot.group],
                expected: AfShared::sig_value(*seq, Opcode::Bot),
                new: AfShared::sig_value(*seq, Opcode::Proceed),
            }),
        }
    }

    fn resume(&mut self, response: Value) {
        self.pc = match std::mem::replace(&mut self.pc, RPc::Remainder) {
            RPc::Remainder => {
                if self.recover {
                    // Recovery passage: drain the leaf's W then C
                    // contributions, then run the exit-signal duties so no
                    // writer waits forever on a count this dead passage
                    // will never retract. The drain runs even on a zero
                    // mirror: `add(-mirror)` writes the leaf *absolutely*
                    // (leaf := new mirror, then double-refresh upward), so
                    // it also repairs a leaf left stale by a crash that
                    // struck between a prior `add`'s mirror update and its
                    // leaf write.
                    self.recover = false;
                    let w = self.w_handle.mirror();
                    RPc::RecoverSubW(self.w_handle.add(-w))
                } else {
                    RPc::AddC(self.c_handle.add(1)) // begin passage (line 31)
                }
            }
            RPc::AddC(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => RPc::ReadRsig,
                sub::Drive::Running => RPc::AddC(m),
            },
            RPc::ReadRsig => {
                let sig = signal_of(response); // line 32
                if sig.op == Opcode::Wait {
                    RPc::AddW {
                        seq: sig.seq as i64,
                        m: self.w_handle.add(1),
                    } // line 34
                } else {
                    RPc::Cs // line 33: op ≠ WAIT — enter freely
                }
            }
            RPc::AddW { seq, mut m } => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => RPc::Help1 {
                    seq,
                    m: self.help(seq),
                },
                sub::Drive::Running => RPc::AddW { seq, m },
            },
            RPc::Help1 { seq, mut m } => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => RPc::AwaitRsig { seq },
                sub::Drive::Running => RPc::Help1 { seq, m },
            },
            RPc::AwaitRsig { seq } => {
                if signal_of(response) == Signal::new(seq as u64, Opcode::Wait) {
                    RPc::AwaitRsig { seq } // line 36: keep spinning
                } else {
                    RPc::SubW(self.w_handle.add(-1)) // line 37
                }
            }
            RPc::SubW(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => RPc::Cs,
                sub::Drive::Running => RPc::SubW(m),
            },
            RPc::Cs => RPc::SubC(self.c_handle.add(-1)), // begin exit (line 40)
            RPc::SubC(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => RPc::ReadRsig2,
                sub::Drive::Running => RPc::SubC(m),
            },
            RPc::ReadRsig2 => {
                let sig = signal_of(response); // line 41
                match sig.op {
                    Opcode::Preentry => RPc::ReadCForSignal {
                        seq: sig.seq as i64,
                        m: self.shared.c[self.slot.group].read(), // line 43
                    },
                    Opcode::Wait => RPc::Help2 {
                        m: self.help(sig.seq as i64),
                    }, // line 48
                    _ => RPc::Remainder, // passage complete
                }
            }
            RPc::ReadCForSignal { seq, mut m } => match sub::drive(&mut m, response) {
                sub::Drive::Finished(v) => {
                    if v.expect_int() == 0 {
                        RPc::CasProceed { seq } // line 45
                    } else {
                        RPc::Remainder
                    }
                }
                sub::Drive::Running => RPc::ReadCForSignal { seq, m },
            },
            RPc::CasProceed { .. } => RPc::Remainder,
            RPc::Help2 { mut m } => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => RPc::Remainder,
                sub::Drive::Running => RPc::Help2 { m },
            },
            RPc::AbortSubW(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => RPc::SubC(self.c_handle.add(-1)),
                sub::Drive::Running => RPc::AbortSubW(m),
            },
            RPc::RecoverSubW(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => {
                    let c = self.c_handle.mirror();
                    RPc::SubC(self.c_handle.add(-c)) // unconditional: see above
                }
                sub::Drive::Running => RPc::RecoverSubW(m),
            },
        };
    }

    fn phase(&self) -> Phase {
        match self.pc {
            RPc::Remainder => Phase::Remainder,
            RPc::AddC(_)
            | RPc::ReadRsig
            | RPc::AddW { .. }
            | RPc::Help1 { .. }
            | RPc::AwaitRsig { .. }
            | RPc::SubW(_) => Phase::Entry,
            RPc::Cs => Phase::Cs,
            RPc::SubC(_)
            | RPc::ReadRsig2
            | RPc::ReadCForSignal { .. }
            | RPc::CasProceed { .. }
            | RPc::Help2 { .. }
            | RPc::AbortSubW(_)
            | RPc::RecoverSubW(_) => Phase::Exit,
        }
    }

    fn role(&self) -> Role {
        Role::Reader
    }

    fn on_crash(&mut self) {
        // The pc (and any in-flight counter/help machine) is lost. The
        // group-counter handles keep their leaf mirrors: the leaf is
        // single-writer, so recovery could restore the mirror by reading
        // it back, and a mirror that ran ahead of an interrupted add only
        // over-counts — conservative for Mutual Exclusion (an abandoned
        // C/W increment can block writers, never admit one). The next
        // passage is a *recovery* passage that drains those stale
        // contributions so no writer blocks on them forever.
        self.pc = RPc::Remainder;
        self.recover = true;
    }

    fn can_abort(&self) -> bool {
        // Abortable while merely announced (C incremented) or waiting
        // (W incremented, possibly helping): nothing is mid-add, so the
        // withdrawal retracts whole contributions. A reader that has
        // passed the admission read into the CS is committed.
        matches!(
            self.pc,
            RPc::ReadRsig | RPc::Help1 { .. } | RPc::AwaitRsig { .. }
        )
    }

    fn on_abort(&mut self) {
        let from_wait = matches!(self.pc, RPc::Help1 { .. } | RPc::AwaitRsig { .. });
        debug_assert!(from_wait || matches!(self.pc, RPc::ReadRsig));
        // Retract W (if announced as a waiter) then C, then run the normal
        // exit-signal duties — a withdrawal looks to everyone else exactly
        // like a passage that never reached the CS. An abandoned in-flight
        // `HelpWCS` is harmless: the exit path re-helps if needed.
        self.pc = if from_wait {
            RPc::AbortSubW(self.w_handle.add(-1))
        } else {
            RPc::SubC(self.c_handle.add(-1))
        };
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        self.pc.discriminant().hash(&mut h);
        self.recover.hash(&mut h);
        self.c_handle.mirror().hash(&mut h);
        self.w_handle.mirror().hash(&mut h);
        match &self.pc {
            RPc::AddC(m)
            | RPc::SubC(m)
            | RPc::SubW(m)
            | RPc::AbortSubW(m)
            | RPc::RecoverSubW(m) => m.fingerprint(h),
            RPc::AddW { seq, m } => {
                seq.hash(&mut h);
                m.fingerprint(h);
            }
            RPc::Help1 { seq, m } => {
                seq.hash(&mut h);
                m.fingerprint(h);
            }
            RPc::AwaitRsig { seq } => seq.hash(&mut h),
            RPc::ReadCForSignal { seq, m } => {
                seq.hash(&mut h);
                m.fingerprint(h);
            }
            RPc::CasProceed { seq } => seq.hash(&mut h),
            RPc::Help2 { m } => m.fingerprint(h),
            _ => {}
        }
    }
}

/// Program counter of a simulated writer (the paper's line numbers).
#[derive(Clone, Debug)]
enum WPc {
    Remainder,
    /// Line 6: `WL.Enter()`.
    WlEnter(wmutex::EnterMachine),
    /// Read `WSEQ` into the local `seq` (implicit in lines 7–11).
    ReadWseq,
    /// Lines 7–9: `WSIG[i] := <seq, ⊥>`.
    InitWsig {
        seq: i64,
        i: usize,
    },
    /// Line 11: `RSIG := <seq, PREENTRY>`.
    RsigPreentry {
        seq: i64,
    },
    /// Line 13: read `C[i]`.
    L1ReadC {
        seq: i64,
        i: usize,
        m: GroupReadMachine,
    },
    /// Line 14: await `WSIG[i] = <seq, PROCEED>`.
    L1Await {
        seq: i64,
        i: usize,
    },
    /// Line 16: `WSIG[i] := <seq, WAIT>`.
    L1WriteWsig {
        seq: i64,
        i: usize,
    },
    /// Line 18: `RSIG := <seq, WAIT>`.
    RsigWait {
        seq: i64,
    },
    /// Line 20: read `C[i]`.
    L2ReadC {
        seq: i64,
        i: usize,
        m: GroupReadMachine,
    },
    /// Line 21: await `WSIG[i] = <seq, CS>`.
    L2Await {
        seq: i64,
        i: usize,
    },
    /// Line 24: critical section.
    Cs {
        seq: i64,
    },
    /// Line 25: `WSEQ := seq + 1`.
    IncWseq {
        seq: i64,
    },
    /// Line 26: `RSIG := <seq + 1, NOP>`.
    RsigNop {
        seq: i64,
    },
    /// Line 27: `WL.Exit()`.
    WlExit(wmutex::ExitMachine),
    /// Recovery after a crash: re-acquire `WL` (re-running one's own
    /// tournament entry is safe from any stale own-flag state).
    RecoverWlEnter(wmutex::EnterMachine),
    /// Recovery: read `WSEQ` to learn the interrupted passage's epoch.
    RecoverReadWseq,
    /// Recovery: *burn the epoch* — `WSEQ := seq + 1`. The interrupted
    /// passage's sequence number must never be reused: readers that
    /// observed `<seq, …>` may still hold helper CASes armed for it, and
    /// replaying them into a fresh passage with the same `seq` admits a
    /// mutual-exclusion violation (found by the crash-augmented model
    /// checker; see DESIGN.md, "Crash-fault model").
    RecoverIncWseq {
        seq: i64,
    },
    /// Recovery: `RSIG := <seq + 1, NOP>` — unparks readers still waiting
    /// on the dead epoch, exactly as line 26 would have.
    RecoverRsigNop {
        seq: i64,
    },
    /// Withdrawal: release the tournament nodes already won (see
    /// [`wmutex::EnterMachine::abort`]). A writer is only abortable while
    /// still competing for `WL` — it has touched no `A_f` signal state
    /// yet, so the tournament unwind is the whole withdrawal.
    AbortWl(wmutex::ExitMachine),
}

impl WPc {
    fn discriminant(&self) -> u8 {
        match self {
            WPc::Remainder => 0,
            WPc::WlEnter(_) => 1,
            WPc::ReadWseq => 2,
            WPc::InitWsig { .. } => 3,
            WPc::RsigPreentry { .. } => 4,
            WPc::L1ReadC { .. } => 5,
            WPc::L1Await { .. } => 6,
            WPc::L1WriteWsig { .. } => 7,
            WPc::RsigWait { .. } => 8,
            WPc::L2ReadC { .. } => 9,
            WPc::L2Await { .. } => 10,
            WPc::Cs { .. } => 11,
            WPc::IncWseq { .. } => 12,
            WPc::RsigNop { .. } => 13,
            WPc::WlExit(_) => 14,
            WPc::RecoverWlEnter(_) => 15,
            WPc::RecoverReadWseq => 16,
            WPc::RecoverIncWseq { .. } => 17,
            WPc::RecoverRsigNop { .. } => 18,
            WPc::AbortWl(_) => 19,
        }
    }
}

/// A simulated `A_f` writer process (lines 5–28).
#[derive(Debug)]
pub struct AfWriterSim {
    shared: Arc<AfShared>,
    id: usize,
    pc: WPc,
    /// Set by a crash; the next passage starts with the recovery section
    /// (the RME model lets a restarted process know it is recovering).
    recover: bool,
    /// Whether recovery burns the interrupted epoch (always true outside
    /// tests; see [`AfWriterSim::new_with_seq_reuse_bug`]).
    burn_epoch: bool,
}

/// Manual `Clone` for the same reason as [`AfReaderSim`]'s: `clone_from`
/// in the model checker's recycling pool must not touch the shared-world
/// `Arc` refcount when both sides already point at the same world.
impl Clone for AfWriterSim {
    fn clone(&self) -> Self {
        AfWriterSim {
            shared: Arc::clone(&self.shared),
            id: self.id,
            pc: self.pc.clone(),
            recover: self.recover,
            burn_epoch: self.burn_epoch,
        }
    }

    fn clone_from(&mut self, src: &Self) {
        if !Arc::ptr_eq(&self.shared, &src.shared) {
            self.shared = Arc::clone(&src.shared);
        }
        self.id = src.id;
        self.pc = src.pc.clone();
        self.recover = src.recover;
        self.burn_epoch = src.burn_epoch;
    }
}

impl AfWriterSim {
    /// Build the machine for writer `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn new(shared: Arc<AfShared>, id: usize) -> Self {
        assert!(id < shared.cfg.writers, "writer id {id} out of range");
        AfWriterSim {
            shared,
            id,
            pc: WPc::Remainder,
            recover: false,
            burn_epoch: true,
        }
    }

    /// Build a writer whose recovery section **reuses** the interrupted
    /// passage's sequence number instead of burning it — deliberately
    /// re-introducing the seq-reuse bug that the epoch burn exists to
    /// prevent (stale reader helper CASes armed for the dead epoch fire
    /// into the new passage). Exposed, hidden, so the test suite can
    /// demonstrate the crash-augmented model checker catching the
    /// violation with a replayable counterexample.
    #[doc(hidden)]
    pub fn new_with_seq_reuse_bug(shared: Arc<AfShared>, id: usize) -> Self {
        let mut w = Self::new(shared, id);
        w.burn_epoch = false;
        w
    }

    /// This writer's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Definition 5: the writer is *waiting* iff its pc is line 14 or 21.
    pub fn is_waiting(&self) -> bool {
        matches!(self.pc, WPc::L1Await { .. } | WPc::L2Await { .. })
    }

    /// After the first-loop body for group `i` completes: next group or
    /// line 18.
    fn after_l1(&self, seq: i64, i: usize) -> WPc {
        if i + 1 < self.shared.groups {
            WPc::L1ReadC {
                seq,
                i: i + 1,
                m: self.shared.c[i + 1].read(),
            }
        } else {
            WPc::RsigWait { seq }
        }
    }

    /// After the second-loop body for group `i` completes: next group or
    /// the CS.
    fn after_l2(&self, seq: i64, i: usize) -> WPc {
        if i + 1 < self.shared.groups {
            WPc::L2ReadC {
                seq,
                i: i + 1,
                m: self.shared.c[i + 1].read(),
            }
        } else {
            WPc::Cs { seq }
        }
    }
}

impl Program for AfWriterSim {
    ccsim::impl_program_in_place_clone!();

    fn poll(&self) -> Step {
        match &self.pc {
            WPc::Remainder => Step::Remainder,
            WPc::WlEnter(m) => Step::Op(sub::poll_op(m)),
            WPc::ReadWseq => Step::Op(Op::Read(self.shared.wseq)),
            WPc::InitWsig { seq, i } => Step::Op(Op::Write(
                self.shared.wsig[*i],
                AfShared::sig_value(*seq, Opcode::Bot),
            )),
            WPc::RsigPreentry { seq } => Step::Op(Op::Write(
                self.shared.rsig,
                AfShared::sig_value(*seq, Opcode::Preentry),
            )),
            WPc::L1ReadC { m, .. } | WPc::L2ReadC { m, .. } => Step::Op(sub::poll_op(m)),
            WPc::L1Await { i, .. } | WPc::L2Await { i, .. } => {
                Step::Op(Op::Read(self.shared.wsig[*i]))
            }
            WPc::L1WriteWsig { seq, i } => Step::Op(Op::Write(
                self.shared.wsig[*i],
                AfShared::sig_value(*seq, Opcode::Wait),
            )),
            WPc::RsigWait { seq } => Step::Op(Op::Write(
                self.shared.rsig,
                AfShared::sig_value(*seq, Opcode::Wait),
            )),
            WPc::Cs { .. } => Step::Cs,
            WPc::IncWseq { seq } => Step::Op(Op::write(self.shared.wseq, *seq + 1)),
            WPc::RsigNop { seq } => Step::Op(Op::Write(
                self.shared.rsig,
                AfShared::sig_value(*seq + 1, Opcode::Nop),
            )),
            WPc::WlExit(m) | WPc::AbortWl(m) => Step::Op(sub::poll_op(m)),
            WPc::RecoverWlEnter(m) => Step::Op(sub::poll_op(m)),
            WPc::RecoverReadWseq => Step::Op(Op::Read(self.shared.wseq)),
            WPc::RecoverIncWseq { seq } => Step::Op(Op::write(self.shared.wseq, *seq + 1)),
            WPc::RecoverRsigNop { seq } => Step::Op(Op::Write(
                self.shared.rsig,
                AfShared::sig_value(*seq + 1, Opcode::Nop),
            )),
        }
    }

    fn resume(&mut self, response: Value) {
        self.pc = match std::mem::replace(&mut self.pc, WPc::Remainder) {
            WPc::Remainder => {
                // Begin passage: line 6. An m=1 tournament is empty. After
                // a crash the passage starts with the recovery section.
                let enter = self.shared.wl.enter(self.id);
                let done = matches!(enter.poll(), SubStep::Done(_));
                match (self.recover, done) {
                    (false, true) => WPc::ReadWseq,
                    (false, false) => WPc::WlEnter(enter),
                    (true, true) => WPc::RecoverReadWseq,
                    (true, false) => WPc::RecoverWlEnter(enter),
                }
            }
            WPc::WlEnter(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => WPc::ReadWseq,
                sub::Drive::Running => WPc::WlEnter(m),
            },
            WPc::ReadWseq => WPc::InitWsig {
                seq: response.expect_int(),
                i: 0,
            },
            WPc::InitWsig { seq, i } => {
                if i + 1 < self.shared.groups {
                    WPc::InitWsig { seq, i: i + 1 }
                } else {
                    WPc::RsigPreentry { seq }
                }
            }
            WPc::RsigPreentry { seq } => WPc::L1ReadC {
                seq,
                i: 0,
                m: self.shared.c[0].read(),
            },
            WPc::L1ReadC { seq, i, mut m } => match sub::drive(&mut m, response) {
                sub::Drive::Finished(v) => {
                    if v.expect_int() > 0 {
                        WPc::L1Await { seq, i } // line 14
                    } else {
                        WPc::L1WriteWsig { seq, i } // line 16
                    }
                }
                sub::Drive::Running => WPc::L1ReadC { seq, i, m },
            },
            WPc::L1Await { seq, i } => {
                if signal_of(response) == Signal::new(seq as u64, Opcode::Proceed) {
                    WPc::L1WriteWsig { seq, i }
                } else {
                    WPc::L1Await { seq, i } // keep spinning
                }
            }
            WPc::L1WriteWsig { seq, i } => self.after_l1(seq, i),
            WPc::RsigWait { seq } => WPc::L2ReadC {
                seq,
                i: 0,
                m: self.shared.c[0].read(),
            },
            WPc::L2ReadC { seq, i, mut m } => match sub::drive(&mut m, response) {
                sub::Drive::Finished(v) => {
                    if v.expect_int() > 0 {
                        WPc::L2Await { seq, i } // line 21
                    } else {
                        self.after_l2(seq, i)
                    }
                }
                sub::Drive::Running => WPc::L2ReadC { seq, i, m },
            },
            WPc::L2Await { seq, i } => {
                if signal_of(response) == Signal::new(seq as u64, Opcode::Cs) {
                    self.after_l2(seq, i)
                } else {
                    WPc::L2Await { seq, i }
                }
            }
            WPc::Cs { seq } => WPc::IncWseq { seq }, // begin exit (line 25)
            WPc::IncWseq { seq } => WPc::RsigNop { seq },
            WPc::RsigNop { .. } => {
                let exit = self.shared.wl.exit(self.id);
                if matches!(exit.poll(), SubStep::Done(_)) {
                    WPc::Remainder // m = 1: empty tournament exit
                } else {
                    WPc::WlExit(exit)
                }
            }
            WPc::WlExit(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => WPc::Remainder,
                sub::Drive::Running => WPc::WlExit(m),
            },
            WPc::RecoverWlEnter(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => WPc::RecoverReadWseq,
                sub::Drive::Running => WPc::RecoverWlEnter(m),
            },
            WPc::RecoverReadWseq => {
                let seq = response.expect_int();
                if self.burn_epoch {
                    WPc::RecoverIncWseq { seq }
                } else {
                    // Deliberately broken recovery (tests only): reuse the
                    // dead epoch — see `new_with_seq_reuse_bug`.
                    self.recover = false;
                    WPc::InitWsig { seq, i: 0 }
                }
            }
            WPc::RecoverIncWseq { seq } => WPc::RecoverRsigNop { seq },
            WPc::RecoverRsigNop { seq } => {
                // The dead epoch is burned and stale waiters unparked;
                // continue into a normal entry with the fresh sequence
                // number, keeping WL held (no exit/re-enter round trip).
                self.recover = false;
                WPc::InitWsig { seq: seq + 1, i: 0 }
            }
            WPc::AbortWl(mut m) => match sub::drive(&mut m, response) {
                sub::Drive::Finished(_) => WPc::Remainder,
                sub::Drive::Running => WPc::AbortWl(m),
            },
        };
    }

    fn phase(&self) -> Phase {
        match self.pc {
            WPc::Remainder => Phase::Remainder,
            WPc::Cs { .. } => Phase::Cs,
            WPc::IncWseq { .. } | WPc::RsigNop { .. } | WPc::WlExit(_) => Phase::Exit,
            // AbortWl stays Entry: the withdrawal is the tail of a failed
            // entry attempt (the writer never reached the CS).
            _ => Phase::Entry,
        }
    }

    fn role(&self) -> Role {
        Role::Writer
    }

    fn can_abort(&self) -> bool {
        // Only while still competing for WL: past that point the writer
        // has published signal state and the passage is committed.
        matches!(self.pc, WPc::WlEnter(_))
    }

    fn on_abort(&mut self) {
        let WPc::WlEnter(m) = &self.pc else {
            unreachable!("on_abort called without can_abort");
        };
        let exit = m.abort();
        self.pc = if matches!(exit.poll(), SubStep::Done(_)) {
            WPc::Remainder // no flag set yet: instant withdrawal
        } else {
            WPc::AbortWl(exit)
        };
    }

    fn on_crash(&mut self) {
        // Local state (pc, the in-flight WL machine, the cached seq) is
        // lost. The next passage must start with the recovery section:
        // re-acquire WL, then burn the interrupted epoch. Without the
        // epoch burn, re-entering with the same WSEQ lets stale reader
        // helper CASes (armed for the abandoned passage) fire into the
        // new one — a real mutual-exclusion violation the crash-augmented
        // model checker finds at n=1, m=1 with a two-passage quota (the
        // stale helper signal needs a second identically-numbered
        // passage to fire into).
        self.pc = WPc::Remainder;
        self.recover = true;
    }

    fn clone_box(&self) -> Box<dyn Program> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        self.pc.discriminant().hash(&mut h);
        self.recover.hash(&mut h);
        match &self.pc {
            WPc::WlEnter(m) | WPc::RecoverWlEnter(m) => m.fingerprint(h),
            WPc::WlExit(m) | WPc::AbortWl(m) => m.fingerprint(h),
            WPc::InitWsig { seq, i }
            | WPc::L1Await { seq, i }
            | WPc::L1WriteWsig { seq, i }
            | WPc::L2Await { seq, i } => {
                seq.hash(&mut h);
                i.hash(&mut h);
            }
            WPc::L1ReadC { seq, i, m } | WPc::L2ReadC { seq, i, m } => {
                seq.hash(&mut h);
                i.hash(&mut h);
                m.fingerprint(h);
            }
            WPc::RsigPreentry { seq }
            | WPc::RsigWait { seq }
            | WPc::Cs { seq }
            | WPc::IncWseq { seq }
            | WPc::RsigNop { seq }
            | WPc::RecoverIncWseq { seq }
            | WPc::RecoverRsigNop { seq } => seq.hash(&mut h),
            WPc::Remainder | WPc::ReadWseq | WPc::RecoverReadWseq => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AfConfig, FPolicy};
    use crate::world::af_world;
    use ccsim::{run_solo, Protocol};

    #[test]
    fn writer_solo_signal_protocol() {
        // Follow a solo writer through the exact signal sequence of
        // Algorithm 1: WSIG[i] armed to <0,⊥>, RSIG to <0,PREENTRY>,
        // WSIG to <0,WAIT>, RSIG to <0,WAIT>, CS, then WSEQ=1 and
        // RSIG=<1,NOP>.
        let cfg = AfConfig {
            readers: 2,
            writers: 1,
            policy: FPolicy::One,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let w = world.pids.writer(0);

        run_solo(&mut world.sim, w, 1_000, |s| s.phase(w) == Phase::Cs).unwrap();
        let mem = world.sim.mem();
        assert_eq!(world.shared.peek_rsig(mem), Signal::new(0, Opcode::Wait));
        assert_eq!(world.shared.peek_wsig(mem, 0), Signal::new(0, Opcode::Wait));

        run_solo(&mut world.sim, w, 1_000, |s| s.phase(w) == Phase::Remainder).unwrap();
        let mem = world.sim.mem();
        assert_eq!(world.shared.peek_rsig(mem), Signal::new(1, Opcode::Nop));
        assert_eq!(mem.peek(world.shared.wseq), Value::Int(1));
    }

    #[test]
    fn reader_wait_path_follows_definition4() {
        // Writer into the CS; reader must pass through the waiting states
        // of Definition 4 (pc in [34,36]) and park at AwaitRsig.
        let cfg = AfConfig {
            readers: 1,
            writers: 1,
            policy: FPolicy::One,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let (r, w) = (world.pids.reader(0), world.pids.writer(0));
        run_solo(&mut world.sim, w, 1_000, |s| s.phase(w) == Phase::Cs).unwrap();

        // The reader can never reach the CS while the writer holds it.
        assert_eq!(
            run_solo(&mut world.sim, r, 3_000, |s| s.phase(r) == Phase::Cs),
            None
        );
        // It is waiting in the Definition-4 sense, and W[0] counts it.
        assert_eq!(world.shared.peek_w(world.sim.mem(), 0), 1);
        assert_eq!(world.shared.peek_c(world.sim.mem(), 0), 1);
        // And it has already helped: WSIG[0] = <0, CS> (C == W == 1).
        assert_eq!(
            world.shared.peek_wsig(world.sim.mem(), 0),
            Signal::new(0, Opcode::Cs)
        );

        // Writer finishes; reader proceeds to the CS and W drains.
        run_solo(&mut world.sim, w, 1_000, |s| s.phase(w) == Phase::Remainder).unwrap();
        run_solo(&mut world.sim, r, 1_000, |s| s.phase(r) == Phase::Cs).unwrap();
        assert_eq!(world.shared.peek_w(world.sim.mem(), 0), 0);
    }

    #[test]
    fn is_waiting_matches_states() {
        let cfg = AfConfig {
            readers: 1,
            writers: 1,
            policy: FPolicy::One,
        };
        let shared = {
            let mut layout = ccsim::Layout::new();
            crate::af::shared::AfShared::allocate(&mut layout, cfg)
        };
        let reader = AfReaderSim::new(std::sync::Arc::clone(&shared), 0);
        assert!(!reader.is_waiting(), "fresh reader is not waiting");
        let writer = AfWriterSim::new(shared, 0);
        assert!(!writer.is_waiting(), "fresh writer is not waiting");
    }

    #[test]
    fn exiting_reader_signals_preentry_writer() {
        // Reader in CS; writer starts its passage and must block at line
        // 14 (await PROCEED). The exiting reader then CASes
        // WSIG[0] <0,⊥> -> <0,PROCEED> at line 45.
        let cfg = AfConfig {
            readers: 1,
            writers: 1,
            policy: FPolicy::One,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let (r, w) = (world.pids.reader(0), world.pids.writer(0));
        run_solo(&mut world.sim, r, 1_000, |s| s.phase(r) == Phase::Cs).unwrap();
        assert_eq!(
            run_solo(&mut world.sim, w, 3_000, |s| s.phase(w) == Phase::Cs),
            None,
            "writer must wait for the in-CS reader"
        );
        assert_eq!(
            world.shared.peek_rsig(world.sim.mem()),
            Signal::new(0, Opcode::Preentry),
            "writer parks in its PREENTRY loop"
        );
        // Reader exits: C hits 0, so it signals PROCEED (line 45)...
        run_solo(&mut world.sim, r, 1_000, |s| s.phase(r) == Phase::Remainder).unwrap();
        assert_eq!(
            world.shared.peek_wsig(world.sim.mem(), 0),
            Signal::new(0, Opcode::Proceed)
        );
        // ...and the writer sails into the CS.
        run_solo(&mut world.sim, w, 1_000, |s| s.phase(w) == Phase::Cs)
            .expect("writer proceeds after PROCEED signal");
    }

    #[test]
    fn reader_abort_from_waiting_retracts_counts_and_keeps_lock_live() {
        // Writer into the CS; reader parks in the waiting states; the
        // reader then aborts and must retract both its W and C
        // contributions, leaving the lock fully functional.
        let cfg = AfConfig {
            readers: 1,
            writers: 1,
            policy: FPolicy::One,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let (r, w) = (world.pids.reader(0), world.pids.writer(0));
        run_solo(&mut world.sim, w, 1_000, |s| s.phase(w) == Phase::Cs).unwrap();
        assert_eq!(
            run_solo(&mut world.sim, r, 3_000, |s| s.phase(r) == Phase::Cs),
            None
        );
        assert_eq!(world.shared.peek_w(world.sim.mem(), 0), 1);

        assert!(
            world.sim.abort(r).is_some(),
            "a waiting reader is abortable"
        );
        run_solo(&mut world.sim, r, 1_000, |s| s.phase(r) == Phase::Remainder).unwrap();
        assert_eq!(world.sim.stats(r).aborts, 1);
        assert_eq!(world.sim.stats(r).passages, 0, "an abort is not a passage");
        assert_eq!(world.shared.peek_w(world.sim.mem(), 0), 0, "W retracted");
        assert_eq!(world.shared.peek_c(world.sim.mem(), 0), 0, "C retracted");

        // Everyone still makes progress afterwards.
        run_solo(&mut world.sim, w, 1_000, |s| s.phase(w) == Phase::Remainder).unwrap();
        run_solo(&mut world.sim, r, 1_000, |s| s.stats(r).passages == 1).unwrap();
        run_solo(&mut world.sim, w, 1_000, |s| s.stats(w).passages == 2).unwrap();
    }

    #[test]
    fn reader_abort_is_refused_in_cs_and_exit() {
        let cfg = AfConfig {
            readers: 1,
            writers: 1,
            policy: FPolicy::One,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let r = world.pids.reader(0);
        assert!(world.sim.abort(r).is_none(), "remainder is not abortable");
        run_solo(&mut world.sim, r, 1_000, |s| s.phase(r) == Phase::Cs).unwrap();
        assert!(world.sim.abort(r).is_none(), "the CS is committed");
        run_solo(&mut world.sim, r, 1_000, |s| s.phase(r) == Phase::Remainder).unwrap();
        assert_eq!(world.sim.stats(r).passages, 1);
        assert_eq!(world.sim.stats(r).aborts, 0);
    }

    #[test]
    fn crashed_reader_recovery_drains_counts_and_unblocks_writers() {
        // Reader crashes inside the CS with C[0] = 1 published. Its
        // recovery passage must drain the stale count; a writer can then
        // complete a full passage (no permanently lost lock).
        let cfg = AfConfig {
            readers: 2,
            writers: 1,
            policy: FPolicy::One,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let (r, w) = (world.pids.reader(0), world.pids.writer(0));
        run_solo(&mut world.sim, r, 1_000, |s| s.phase(r) == Phase::Cs).unwrap();
        assert_eq!(world.shared.peek_c(world.sim.mem(), 0), 1);
        world.sim.crash(r);
        assert!(world.sim.is_recovering(r));

        // The recovery passage drains C back to 0 in bounded steps.
        run_solo(&mut world.sim, r, 1_000, |s| s.stats(r).passages == 1).unwrap();
        assert!(!world.sim.is_recovering(r));
        assert_eq!(
            world.shared.peek_c(world.sim.mem(), 0),
            0,
            "stale C drained"
        );
        run_solo(&mut world.sim, w, 2_000, |s| s.stats(w).passages == 1)
            .expect("writer acquires after the crashed reader recovered");
    }

    #[test]
    fn crash_mid_exit_leaves_no_stale_leaf_after_recovery() {
        // Crash the reader partway through its exit-path SubC: the mirror
        // already reads 0 but the leaf write may not have landed. The
        // unconditional recovery drain must still zero the tree.
        let cfg = AfConfig {
            readers: 2,
            writers: 1,
            policy: FPolicy::One,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let r = world.pids.reader(0);
        run_solo(&mut world.sim, r, 1_000, |s| s.phase(r) == Phase::Cs).unwrap();
        world.sim.step(r); // Cs -> SubC (machine created, mirror now 0)
        assert_eq!(world.sim.phase(r), Phase::Exit);
        world.sim.crash(r); // leaf still holds the stale 1
        assert_eq!(world.shared.peek_c(world.sim.mem(), 0), 1);
        run_solo(&mut world.sim, r, 1_000, |s| s.stats(r).passages == 1).unwrap();
        assert_eq!(world.shared.peek_c(world.sim.mem(), 0), 0, "leaf repaired");
    }

    #[test]
    fn writer_abort_releases_tournament_nodes() {
        // w0 holds WL (in CS); w1 parks in the tournament, aborts, and
        // must leave the tree clean: w0 re-acquires, then w1 completes a
        // full passage.
        let cfg = AfConfig {
            readers: 1,
            writers: 2,
            policy: FPolicy::One,
        };
        let mut world = af_world(cfg, Protocol::WriteBack);
        let (w0, w1) = (world.pids.writer(0), world.pids.writer(1));
        run_solo(&mut world.sim, w0, 1_000, |s| s.phase(w0) == Phase::Cs).unwrap();
        assert_eq!(
            run_solo(&mut world.sim, w1, 2_000, |s| s.phase(w1) == Phase::Cs),
            None
        );
        assert!(
            world.sim.abort(w1).is_some(),
            "a WL-competing writer is abortable"
        );
        run_solo(&mut world.sim, w1, 100, |s| s.phase(w1) == Phase::Remainder)
            .expect("withdrawal is bounded");
        assert_eq!(world.sim.stats(w1).aborts, 1);

        run_solo(&mut world.sim, w0, 2_000, |s| s.stats(w0).passages == 2).unwrap();
        run_solo(&mut world.sim, w1, 2_000, |s| s.stats(w1).passages == 1).unwrap();
        assert!(world.sim.abort(w0).is_none(), "remainder is not abortable");
    }

    #[test]
    fn seq_reuse_bug_constructor_skips_the_epoch_burn() {
        // The deliberately broken writer reuses the dead epoch: after a
        // crash-recovery round trip WSEQ must still read the old value
        // (a correct writer would have burned it to seq + 1).
        let cfg = AfConfig {
            readers: 1,
            writers: 1,
            policy: FPolicy::One,
        };
        let mut layout = ccsim::Layout::new();
        let shared = crate::af::shared::AfShared::allocate(&mut layout, cfg);
        let mem = ccsim::Memory::new(&layout, 2, Protocol::WriteBack);
        let procs: Vec<Box<dyn Program>> = vec![
            Box::new(AfReaderSim::new(Arc::clone(&shared), 0)),
            Box::new(AfWriterSim::new_with_seq_reuse_bug(Arc::clone(&shared), 0)),
        ];
        let mut sim = ccsim::Sim::new(mem, procs);
        let w = ccsim::ProcId(1);
        run_solo(&mut sim, w, 1_000, |s| s.phase(w) == Phase::Cs).unwrap();
        sim.crash(w);
        run_solo(&mut sim, w, 1_000, |s| s.phase(w) == Phase::Cs).unwrap();
        assert_eq!(
            sim.mem().peek(shared.wseq),
            ccsim::Value::Int(0),
            "the broken recovery must reuse epoch 0"
        );
    }

    #[test]
    fn reader_ids_map_to_distinct_group_leaves() {
        let cfg = AfConfig {
            readers: 6,
            writers: 1,
            policy: FPolicy::Groups(3),
        };
        let mut layout = ccsim::Layout::new();
        let shared = crate::af::shared::AfShared::allocate(&mut layout, cfg);
        let mut seen = std::collections::HashSet::new();
        for id in 0..6 {
            let m = AfReaderSim::new(std::sync::Arc::clone(&shared), id);
            assert!(seen.insert((m.slot.group, m.slot.leaf)), "slot collision");
        }
    }
}
