//! Lock-family configuration: the `f` parameter and reader grouping.

use std::fmt;

/// The `f` in `A_f`: how many RMRs the writer's entry section may spend,
/// i.e. how many reader groups the lock maintains.
///
/// The paper's family is parameterised on an arbitrary (non-superlinear)
/// function `f(n)`; per Theorem 18 the resulting lock has writer passages
/// in `Θ(f(n))` RMRs and reader passages in `Θ(log(n/f(n)))` RMRs. The
/// variants here are the tradeoff points the experiments sweep.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FPolicy {
    /// `f(n) = 1`: one group of all readers. Cheapest writers the family
    /// allows while readers pay the full `Θ(log n)`.
    One,
    /// `f(n) = ⌈log2 n⌉`: the balanced point — both sides `Θ(log n)`
    /// (up to a `log log` term on the reader side).
    LogN,
    /// `f(n) = ⌈√n⌉`: writers pay `Θ(√n)`, readers `Θ(½ log n)`.
    SqrtN,
    /// `f(n) = ⌈n/2⌉`: groups of two.
    Half,
    /// `f(n) = n`: one group per reader — constant-ish readers, linear
    /// writers (the other end of the tradeoff frontier).
    Linear,
    /// An explicit group count (clamped to `1..=n`).
    Groups(usize),
}

impl FPolicy {
    /// The number of reader groups `f(n)` for `n` readers, clamped to
    /// `1..=max(n, 1)`.
    pub fn groups(self, n: usize) -> usize {
        let raw = match self {
            FPolicy::One => 1,
            FPolicy::LogN => (usize::BITS - n.max(1).leading_zeros()) as usize, // ceil(log2(n))+~1
            FPolicy::SqrtN => (n as f64).sqrt().ceil() as usize,
            FPolicy::Half => n.div_ceil(2),
            FPolicy::Linear => n,
            FPolicy::Groups(g) => g,
        };
        raw.clamp(1, n.max(1))
    }

    /// All named policies (used by experiment sweeps).
    pub const NAMED: [FPolicy; 5] = [
        FPolicy::One,
        FPolicy::LogN,
        FPolicy::SqrtN,
        FPolicy::Half,
        FPolicy::Linear,
    ];
}

impl fmt::Display for FPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FPolicy::One => write!(f, "f=1"),
            FPolicy::LogN => write!(f, "f=log n"),
            FPolicy::SqrtN => write!(f, "f=sqrt n"),
            FPolicy::Half => write!(f, "f=n/2"),
            FPolicy::Linear => write!(f, "f=n"),
            FPolicy::Groups(g) => write!(f, "f={g}"),
        }
    }
}

/// Static configuration of one `A_f` lock instance: `n` readers, `m`
/// writers, and the `f` policy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct AfConfig {
    /// Number of reader processes `n` (ids `0..n`).
    pub readers: usize,
    /// Number of writer processes `m` (ids `0..m`).
    pub writers: usize,
    /// The `f` tradeoff policy.
    pub policy: FPolicy,
}

impl AfConfig {
    /// A configuration with the balanced [`FPolicy::LogN`] policy.
    pub fn new(readers: usize, writers: usize) -> Self {
        AfConfig {
            readers,
            writers,
            policy: FPolicy::LogN,
        }
    }

    /// Replace the policy (builder-style).
    pub fn with_policy(mut self, policy: FPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Validate the configuration.
    ///
    /// # Panics
    /// Panics if there are zero readers or zero writers (the paper's
    /// problem is defined for `n ≥ 1`, `m ≥ 1`; use a plain mutex or no
    /// lock otherwise).
    pub fn validate(&self) {
        assert!(self.readers > 0, "A_f needs at least one reader");
        assert!(self.writers > 0, "A_f needs at least one writer");
    }

    /// Number of reader groups, `f(n)`.
    pub fn groups(&self) -> usize {
        self.policy.groups(self.readers)
    }

    /// Nominal group size `K = ⌈n / f(n)⌉`.
    pub fn group_size(&self) -> usize {
        self.readers.div_ceil(self.groups())
    }

    /// The group a reader belongs to and its leaf index within the group's
    /// counters (readers are statically partitioned by id).
    ///
    /// # Panics
    /// Panics if `reader_id >= readers`.
    pub fn group_of(&self, reader_id: usize) -> GroupSlot {
        assert!(
            reader_id < self.readers,
            "reader id {reader_id} out of range (n = {})",
            self.readers
        );
        let k = self.group_size();
        GroupSlot {
            group: reader_id / k,
            leaf: reader_id % k,
        }
    }

    /// The number of readers assigned to group `g` (the last group may be
    /// smaller than `K`; middle groups never are).
    pub fn group_population(&self, g: usize) -> usize {
        let k = self.group_size();
        let start = g * k;
        debug_assert!(start < self.readers, "group {g} is empty");
        (self.readers - start).min(k)
    }

    /// Actual number of non-empty groups (≤ [`AfConfig::groups`]; can be
    /// smaller because `K` is rounded up).
    pub fn occupied_groups(&self) -> usize {
        self.readers.div_ceil(self.group_size())
    }
}

/// A reader's position in the group structure.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroupSlot {
    /// The reader's group index `i`.
    pub group: usize,
    /// The reader's leaf within the group's `K`-process counters.
    pub leaf: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_group_counts() {
        assert_eq!(FPolicy::One.groups(100), 1);
        assert_eq!(FPolicy::Linear.groups(100), 100);
        assert_eq!(FPolicy::Half.groups(100), 50);
        assert_eq!(FPolicy::SqrtN.groups(100), 10);
        assert_eq!(FPolicy::LogN.groups(1024), 11);
        assert_eq!(FPolicy::Groups(7).groups(100), 7);
    }

    #[test]
    fn policy_clamps_to_valid_range() {
        assert_eq!(FPolicy::Groups(0).groups(10), 1);
        assert_eq!(FPolicy::Groups(99).groups(10), 10);
        assert_eq!(FPolicy::Linear.groups(1), 1);
        assert_eq!(FPolicy::LogN.groups(1), 1);
    }

    #[test]
    fn grouping_partitions_all_readers() {
        for n in [1usize, 2, 7, 16, 100] {
            for policy in FPolicy::NAMED {
                let cfg = AfConfig {
                    readers: n,
                    writers: 1,
                    policy,
                };
                let mut seen = vec![0usize; cfg.occupied_groups()];
                for r in 0..n {
                    let slot = cfg.group_of(r);
                    assert!(slot.group < cfg.occupied_groups(), "{policy} n={n}");
                    assert!(slot.leaf < cfg.group_size());
                    assert!(slot.leaf < cfg.group_population(slot.group));
                    seen[slot.group] += 1;
                }
                for (g, &count) in seen.iter().enumerate() {
                    assert_eq!(count, cfg.group_population(g), "{policy} n={n} group {g}");
                }
            }
        }
    }

    #[test]
    fn group_size_times_groups_covers_n() {
        for n in 1..200 {
            for policy in FPolicy::NAMED {
                let cfg = AfConfig {
                    readers: n,
                    writers: 1,
                    policy,
                };
                assert!(cfg.group_size() * cfg.groups() >= n, "{policy} n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_of_rejects_bad_id() {
        AfConfig::new(4, 1).group_of(4);
    }

    #[test]
    #[should_panic(expected = "at least one reader")]
    fn validate_rejects_zero_readers() {
        AfConfig::new(0, 1).validate();
    }

    #[test]
    fn display_names() {
        assert_eq!(FPolicy::LogN.to_string(), "f=log n");
        assert_eq!(FPolicy::Groups(3).to_string(), "f=3");
    }
}
