//! Real-hardware throughput harness (experiment E8).
//!
//! Measures wall-clock passages/second of the real-atomics locks under
//! mixed read/write workloads, with per-thread roles fixed up front (the
//! `A_f` model has distinct reader and writer processes). The external
//! baseline is `std::sync::RwLock` only: the workspace builds offline
//! with zero external dependencies, so the `parking_lot` contender was
//! dropped.

use crate::hist::Histogram;
use ccsim::Prng;
use rwcore::{
    AfConfig, BusyForbiddenLock, CentralizedRwLock, FaaRwLock, MutexRwLock, RawAfLock, RawRwLock,
    ShardedAfRwLock,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// A lock adapter measured by the harness: one full passage per call,
/// with a tiny critical section touching shared data.
pub trait BenchLock: Send + Sync {
    /// One reader passage by reader process `id`.
    fn read_pass(&self, id: usize);
    /// One writer passage by writer process `id`.
    fn write_pass(&self, id: usize);
    /// Implementation name for tables.
    fn label(&self) -> String;
}

/// Wraps any [`RawRwLock`] (our locks) with a tiny shared-counter CS.
#[derive(Debug)]
pub struct RawAdapter<L> {
    lock: L,
    shared: AtomicU64,
}

impl<L: RawRwLock> RawAdapter<L> {
    /// Wrap a raw lock.
    pub fn new(lock: L) -> Self {
        RawAdapter {
            lock,
            shared: AtomicU64::new(0),
        }
    }
}

impl<L: RawRwLock> BenchLock for RawAdapter<L> {
    fn read_pass(&self, id: usize) {
        self.lock.reader_lock(id);
        std::hint::black_box(self.shared.load(Ordering::Relaxed));
        self.lock.reader_unlock(id);
    }
    fn write_pass(&self, id: usize) {
        self.lock.writer_lock(id);
        let v = self.shared.load(Ordering::Relaxed);
        self.shared.store(v + 1, Ordering::Relaxed);
        self.lock.writer_unlock(id);
    }
    fn label(&self) -> String {
        self.lock.name().to_string()
    }
}

/// `std::sync::RwLock` adapter.
#[derive(Debug, Default)]
pub struct StdAdapter {
    lock: std::sync::RwLock<u64>,
}

impl BenchLock for StdAdapter {
    fn read_pass(&self, _id: usize) {
        std::hint::black_box(*self.lock.read().unwrap());
    }
    fn write_pass(&self, _id: usize) {
        *self.lock.write().unwrap() += 1;
    }
    fn label(&self) -> String {
        "std::RwLock".into()
    }
}

/// Workload shape: how many reader and writer threads, and how many
/// passages each performs.
#[derive(Copy, Clone, Debug)]
pub struct Workload {
    /// Reader thread count.
    pub readers: usize,
    /// Writer thread count.
    pub writers: usize,
    /// Passages per reader thread.
    pub reads_per_reader: u64,
    /// Passages per writer thread.
    pub writes_per_writer: u64,
}

impl Workload {
    /// A read-heavy workload sized to `threads` total.
    pub fn read_heavy(threads: usize) -> Self {
        let writers = 1.max(threads / 8);
        Workload {
            readers: threads.saturating_sub(writers).max(1),
            writers,
            reads_per_reader: 20_000,
            writes_per_writer: 2_000,
        }
    }

    /// A balanced workload.
    pub fn mixed(threads: usize) -> Self {
        let writers = 1.max(threads / 2);
        Workload {
            readers: threads.saturating_sub(writers).max(1),
            writers,
            reads_per_reader: 10_000,
            writes_per_writer: 10_000,
        }
    }

    /// Total passages.
    pub fn total_passages(&self) -> u64 {
        self.readers as u64 * self.reads_per_reader + self.writers as u64 * self.writes_per_writer
    }
}

/// Result of one throughput run.
#[derive(Clone, Debug)]
pub struct ThroughputSample {
    /// Lock label.
    pub lock: String,
    /// The workload run.
    pub workload: Workload,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Total passages / second.
    pub passages_per_sec: f64,
}

/// Run `workload` against `lock` once and report throughput.
pub fn run_throughput(lock: Arc<dyn BenchLock>, workload: Workload) -> ThroughputSample {
    let barrier = Arc::new(Barrier::new(workload.readers + workload.writers + 1));
    let mut handles = Vec::new();
    for r in 0..workload.readers {
        let lock = Arc::clone(&lock);
        let barrier = Arc::clone(&barrier);
        let reads = workload.reads_per_reader;
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..reads {
                lock.read_pass(r);
            }
        }));
    }
    for w in 0..workload.writers {
        let lock = Arc::clone(&lock);
        let barrier = Arc::clone(&barrier);
        let writes = workload.writes_per_writer;
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..writes {
                lock.write_pass(w);
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("bench thread panicked");
    }
    let elapsed = start.elapsed();
    ThroughputSample {
        lock: lock.label(),
        workload,
        elapsed,
        passages_per_sec: workload.total_passages() as f64 / elapsed.as_secs_f64(),
    }
}

/// The standard contender set for a given `(readers, writers)` shape.
pub fn contenders(readers: usize, writers: usize) -> Vec<Arc<dyn BenchLock>> {
    vec![
        Arc::new(RawAdapter::new(RawAfLock::new(AfConfig::new(
            readers, writers,
        )))),
        Arc::new(RawAdapter::new(ShardedAfRwLock::with_auto_shards(writers))),
        Arc::new(RawAdapter::new(CentralizedRwLock::new())),
        Arc::new(RawAdapter::new(FaaRwLock::new(writers))),
        Arc::new(RawAdapter::new(MutexRwLock::new(readers, writers))),
        Arc::new(RawAdapter::new(BusyForbiddenLock::new(readers, writers))),
        Arc::new(StdAdapter::default()),
    ]
}

/// How long a contended run lasts.
#[derive(Copy, Clone, Debug)]
pub enum OpBudget {
    /// Run until the wall clock expires (measurement mode).
    Duration(Duration),
    /// Run a fixed per-thread op count (deterministic smoke mode: with a
    /// fixed seed, every thread's read/write sequence — and therefore
    /// the total read/write counts — is reproducible).
    PerThreadOps(u64),
}

/// A symmetric contended workload: `threads` identical threads, each
/// flipping a seeded per-thread coin before every op — read with
/// probability `reads_per_write / (reads_per_write + 1)`, write
/// otherwise. Thread `t` acts as reader id `t` *and* writer id `t` of
/// the lock under test (sized for `threads` readers and writers).
#[derive(Copy, Clone, Debug)]
pub struct MixedWorkload {
    /// OS thread count.
    pub threads: usize,
    /// Reads per write (e.g. 1000 for a 1000:1 read-mostly mix).
    pub reads_per_write: u64,
    /// Reader churn: threads occasionally yield the CPU between ops,
    /// modeling passages interleaved with other work (and forcing
    /// batch/indicator state to drain and rebuild).
    pub churn: bool,
    /// Run length.
    pub budget: OpBudget,
    /// Pin thread `t` to CPU `t % ncpu` (best-effort; see [`crate::pin`]).
    pub pin: bool,
    /// Per-run RNG seed (thread `t` derives its stream from `seed + t`).
    pub seed: u64,
}

/// Result of one contended run: totals plus merged per-thread latency
/// histograms (nanoseconds per op, lock passage + tiny CS).
#[derive(Clone, Debug)]
pub struct ContendedSample {
    /// Lock label.
    pub lock: String,
    /// Thread count.
    pub threads: usize,
    /// Total read passages completed.
    pub reads: u64,
    /// Total write passages completed.
    pub writes: u64,
    /// Wall-clock duration of the measured region.
    pub elapsed: Duration,
    /// Read-op latency histogram (merged across threads).
    pub read_hist: Histogram,
    /// Write-op latency histogram (merged across threads).
    pub write_hist: Histogram,
    /// Whether every thread was successfully pinned.
    pub pinned: bool,
}

impl ContendedSample {
    /// Total passages / second.
    pub fn ops_per_sec(&self) -> f64 {
        (self.reads + self.writes) as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Read and write histograms merged (every cell has at least one op,
    /// so quantiles over this merged view always exist).
    pub fn merged_hist(&self) -> Histogram {
        let mut h = self.read_hist.clone();
        h.merge(&self.write_hist);
        h
    }
}

/// What one bench thread brings home.
struct ThreadTake {
    reads: u64,
    writes: u64,
    read_hist: Histogram,
    write_hist: Histogram,
    pinned: bool,
}

/// Run `wl` against `lock` once: all threads start together behind a
/// barrier, record per-op latencies into thread-local histograms, and
/// stop on the budget (a stop flag for [`OpBudget::Duration`], a local
/// countdown for [`OpBudget::PerThreadOps`]).
pub fn run_contended(lock: Arc<dyn BenchLock>, wl: &MixedWorkload) -> ContendedSample {
    assert!(wl.threads > 0, "need at least one thread");
    let barrier = Arc::new(Barrier::new(wl.threads + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let ncpu = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut handles = Vec::with_capacity(wl.threads);
    for t in 0..wl.threads {
        let lock = Arc::clone(&lock);
        let barrier = Arc::clone(&barrier);
        let stop = Arc::clone(&stop);
        let wl = *wl;
        handles.push(std::thread::spawn(move || {
            let pinned = if wl.pin {
                crate::pin::pin_to_cpu(t % ncpu).is_ok()
            } else {
                false
            };
            let mut rng = Prng::new(wl.seed.wrapping_add(t as u64));
            let mut take = ThreadTake {
                reads: 0,
                writes: 0,
                read_hist: Histogram::new(),
                write_hist: Histogram::new(),
                pinned,
            };
            barrier.wait();
            let quota = match wl.budget {
                OpBudget::PerThreadOps(n) => n,
                OpBudget::Duration(_) => u64::MAX,
            };
            while take.reads + take.writes < quota {
                if matches!(wl.budget, OpBudget::Duration(_)) && stop.load(Ordering::Relaxed) {
                    break;
                }
                let is_read = rng.below(wl.reads_per_write as usize + 1) != 0;
                let t0 = Instant::now();
                if is_read {
                    lock.read_pass(t);
                } else {
                    lock.write_pass(t);
                }
                let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                if is_read {
                    take.read_hist.record(ns);
                    take.reads += 1;
                } else {
                    take.write_hist.record(ns);
                    take.writes += 1;
                }
                if wl.churn && rng.below(8) == 0 {
                    std::thread::yield_now();
                }
            }
            take
        }));
    }

    barrier.wait();
    let start = Instant::now();
    if let OpBudget::Duration(d) = wl.budget {
        std::thread::sleep(d);
        stop.store(true, Ordering::Relaxed);
    }
    let mut sample = ContendedSample {
        lock: lock.label(),
        threads: wl.threads,
        reads: 0,
        writes: 0,
        elapsed: Duration::ZERO,
        read_hist: Histogram::new(),
        write_hist: Histogram::new(),
        pinned: wl.pin,
    };
    for h in handles {
        let take = h.join().expect("bench thread panicked");
        sample.reads += take.reads;
        sample.writes += take.writes;
        sample.read_hist.merge(&take.read_hist);
        sample.write_hist.merge(&take.write_hist);
        sample.pinned &= take.pinned;
    }
    sample.elapsed = start.elapsed();
    sample
}

/// The contended-lab contender set for `threads` symmetric threads: the
/// single-instance `A_f`, the sharded variant (`shards` shards), the
/// real-atomics baselines, the busy-forbidden protocol, and
/// `std::sync::RwLock`.
pub fn contended_contenders(threads: usize, shards: usize) -> Vec<Arc<dyn BenchLock>> {
    vec![
        Arc::new(RawAdapter::new(RawAfLock::new(AfConfig::new(
            threads, threads,
        )))),
        Arc::new(RawAdapter::new(ShardedAfRwLock::new(shards, threads))),
        Arc::new(RawAdapter::new(CentralizedRwLock::new())),
        Arc::new(RawAdapter::new(FaaRwLock::new(threads))),
        Arc::new(RawAdapter::new(MutexRwLock::new(threads, threads))),
        Arc::new(RawAdapter::new(BusyForbiddenLock::new(threads, threads))),
        Arc::new(StdAdapter::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contenders_complete_a_small_workload() {
        let wl = Workload {
            readers: 2,
            writers: 1,
            reads_per_reader: 500,
            writes_per_writer: 100,
        };
        for lock in contenders(2, 1) {
            let sample = run_throughput(lock, wl);
            assert!(sample.passages_per_sec > 0.0, "{}", sample.lock);
        }
    }

    #[test]
    fn workload_shapes() {
        let rh = Workload::read_heavy(8);
        assert!(rh.readers > rh.writers);
        assert!(rh.total_passages() > 0);
        let mx = Workload::mixed(8);
        assert_eq!(mx.readers + mx.writers, 8);
    }

    #[test]
    fn contended_run_completes_for_all_locks() {
        let wl = MixedWorkload {
            threads: 2,
            reads_per_write: 9,
            churn: false,
            budget: OpBudget::PerThreadOps(200),
            pin: false,
            seed: 7,
        };
        for lock in contended_contenders(2, 2) {
            let label = lock.label();
            let s = run_contended(lock, &wl);
            assert_eq!(s.reads + s.writes, 400, "{label}");
            assert_eq!(s.read_hist.count(), s.reads, "{label}");
            assert_eq!(s.write_hist.count(), s.writes, "{label}");
            assert!(s.merged_hist().quantile(0.99).is_some(), "{label}");
            assert!(!s.pinned, "{label}: pinning was not requested");
        }
    }

    #[test]
    fn contended_op_mix_is_seed_deterministic() {
        let wl = MixedWorkload {
            threads: 3,
            reads_per_write: 99,
            churn: true,
            budget: OpBudget::PerThreadOps(300),
            pin: false,
            seed: 42,
        };
        let a = run_contended(Arc::new(StdAdapter::default()), &wl);
        let b = run_contended(Arc::new(StdAdapter::default()), &wl);
        assert_eq!((a.reads, a.writes), (b.reads, b.writes));
        assert_eq!(a.reads + a.writes, 900);
    }

    #[test]
    fn contended_duration_budget_stops() {
        let wl = MixedWorkload {
            threads: 2,
            reads_per_write: 9,
            churn: false,
            budget: OpBudget::Duration(Duration::from_millis(20)),
            pin: false,
            seed: 1,
        };
        let s = run_contended(Arc::new(StdAdapter::default()), &wl);
        assert!(s.reads + s.writes > 0);
        assert!(s.elapsed >= Duration::from_millis(20));
    }
}
