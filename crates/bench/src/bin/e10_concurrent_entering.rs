//! E10 — Concurrent Entering: with every writer in the remainder section,
//! a reader enters the CS within a bounded number `b` of its own steps,
//! even with all other readers interleaving. Measures `b` per
//! configuration.

use bench::{log2, measure_concurrent_entering, Table};
use ccsim::Protocol;
use rwcore::{AfConfig, FPolicy};

fn main() {
    let mut table = Table::new(["n", "f policy", "K=n/f", "max entry steps b", "b/log2K"]);
    for n in [8usize, 16, 32, 64, 128, 256, 512, 1024] {
        for policy in [FPolicy::One, FPolicy::LogN, FPolicy::SqrtN, FPolicy::Linear] {
            let cfg = AfConfig {
                readers: n,
                writers: 1,
                policy,
            };
            let b = measure_concurrent_entering(cfg, Protocol::WriteBack);
            let k = cfg.group_size();
            table.row([
                n.to_string(),
                policy.to_string(),
                k.to_string(),
                b.to_string(),
                format!("{:.1}", b as f64 / log2(k.max(2) as f64)),
            ]);
        }
    }
    println!("E10 — Concurrent Entering bound b (writers quiescent)\n");
    table.print();
    println!(
        "\nExpected shape: b is dominated by the C[i].add(1) f-array walk —\n\
         Θ(log(n/f)) steps — plus one RSIG read; it must never depend on\n\
         other readers' scheduling (the property's requirement)."
    );
}
