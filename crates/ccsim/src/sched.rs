//! Generic schedulers: round-robin, uniformly random, and solo runners.
//!
//! These drive a [`Sim`] while checking Mutual Exclusion after every step
//! and detecting stalls (no passage completing for a long stretch — the
//! observable symptom of deadlock or livelock in a finite run). The
//! adversarial lower-bound scheduler lives in the `knowledge` crate.

use crate::fault::{FaultDriver, FaultPlan};
use crate::program::{Phase, Step};
use crate::rng::Prng;
use crate::sim::{MutualExclusionViolation, Sim};
use crate::value::{ProcId, VarId};
use std::error::Error;
use std::fmt;

/// Configuration for the bulk runners.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RunConfig {
    /// Number of passages each process should complete.
    pub passages_per_proc: u64,
    /// Hard cap on total scheduled steps.
    pub max_steps: u64,
    /// If no passage completes for this many consecutive steps, the run is
    /// declared stalled (deadlock/livelock suspicion). Overridable at run
    /// time via the strictly-parsed `CCSIM_STALL_AFTER` environment
    /// variable (see [`parse_stall_after`]).
    pub stall_after: u64,
}

/// Environment variable overriding [`RunConfig::stall_after`] globally.
pub const STALL_AFTER_ENV: &str = "CCSIM_STALL_AFTER";

/// Strictly parse a `CCSIM_STALL_AFTER` value: `None` (unset) is fine,
/// otherwise the value must be a positive decimal integer. Anything else
/// is an error — the runners abort loudly instead of silently falling
/// back to the configured threshold, the same discipline as
/// `BENCH_THREADS`. A thin wrapper over [`crate::env::parse_strict_uint`]
/// (the shared strict-knob core).
///
/// # Errors
/// Returns a diagnostic naming the variable on a zero, malformed, or
/// out-of-range value.
pub fn parse_stall_after(raw: Option<&str>) -> Result<Option<u64>, String> {
    crate::env::parse_strict_uint(STALL_AFTER_ENV, raw, false)
}

/// The effective stall threshold: the `CCSIM_STALL_AFTER` override if set,
/// else `cfg.stall_after`.
///
/// # Panics
/// Panics on a malformed override (see [`parse_stall_after`]).
fn effective_stall_after(cfg: &RunConfig) -> u64 {
    crate::env::read_strict_uint(STALL_AFTER_ENV, false).unwrap_or(cfg.stall_after)
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            passages_per_proc: 1,
            max_steps: 1_000_000,
            stall_after: 200_000,
        }
    }
}

/// Why a run failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunError {
    /// Mutual Exclusion was violated after some step.
    MutualExclusion(MutualExclusionViolation),
    /// No passage completed within `RunConfig::stall_after` steps.
    Stalled {
        /// Steps executed by this run when the stall was declared.
        steps: u64,
        /// The watchdog's diagnosis: every mid-passage process with a
        /// pending memory operation, paired with the variable it is
        /// spinning on. Empty only if the stall has no blocked spinner
        /// (e.g. everyone is parked in the CS).
        spinners: Vec<(ProcId, VarId)>,
        /// Whether any process was inside a recovery window (crashed and
        /// not yet through a fresh passage) when the stall was declared —
        /// the telltale of a recovery path that wedges the lock.
        in_recovery: bool,
    },
    /// `RunConfig::max_steps` was exhausted before all quotas were met.
    StepBudgetExhausted {
        /// Passages completed per process when the budget ran out.
        completed: Vec<u64>,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::MutualExclusion(v) => write!(f, "{v}"),
            RunError::Stalled {
                steps,
                spinners,
                in_recovery,
            } => {
                write!(f, "run stalled: no passage completed near step {steps}")?;
                if spinners.is_empty() {
                    write!(f, "; no blocked spinners")?;
                } else {
                    write!(f, "; blocked spinners:")?;
                    for (i, (p, v)) in spinners.iter().enumerate() {
                        let sep = if i == 0 { " " } else { ", " };
                        write!(f, "{sep}{p} on {v}")?;
                    }
                }
                if *in_recovery {
                    write!(f, " (inside a recovery window)")?;
                }
                Ok(())
            }
            RunError::StepBudgetExhausted { completed } => {
                write!(
                    f,
                    "step budget exhausted; completed passages: {completed:?}"
                )
            }
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::MutualExclusion(v) => Some(v),
            _ => None,
        }
    }
}

impl From<MutualExclusionViolation> for RunError {
    fn from(v: MutualExclusionViolation) -> Self {
        RunError::MutualExclusion(v)
    }
}

/// Summary of a successful run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunReport {
    /// Steps executed by this run.
    pub steps: u64,
    /// Passages completed per process *during this run*.
    pub completed: Vec<u64>,
    /// Individual crashes injected by this run's [`FaultPlan`] (0 without
    /// one).
    pub crashes: u64,
    /// System-wide crashes ([`crate::Sim::crash_all`]) injected by this
    /// run's [`FaultPlan`].
    pub crash_alls: u64,
}

fn eligible(sim: &Sim, p: ProcId, done: &[u64], quota: u64) -> bool {
    match sim.poll(p) {
        Step::Op(_) | Step::Cs => true,
        Step::Remainder => done[p.0] < quota,
    }
}

/// The watchdog's stall diagnosis: every process that is mid-passage with
/// a pending memory operation, paired with the variable that operation
/// targets — i.e. who is blocked spinning on what. Sorted by process id.
pub fn blocked_spinners(sim: &Sim) -> Vec<(ProcId, VarId)> {
    sim.proc_ids()
        .filter(|&p| sim.phase(p) != Phase::Remainder)
        .filter_map(|p| sim.pending_op(p).map(|op| (p, op.var())))
        .collect()
}

/// Run every process for `cfg.passages_per_proc` passages, choosing the
/// next process round-robin among eligible ones.
///
/// # Errors
/// See [`RunError`].
pub fn run_round_robin(sim: &mut Sim, cfg: &RunConfig) -> Result<RunReport, RunError> {
    run_with(sim, cfg, None, |_, eligible_procs, turn| {
        (turn as usize) % eligible_procs.len()
    })
}

/// Run every process for `cfg.passages_per_proc` passages, choosing the
/// next process uniformly at random among eligible ones.
///
/// # Errors
/// See [`RunError`].
pub fn run_random(sim: &mut Sim, rng: &mut Prng, cfg: &RunConfig) -> Result<RunReport, RunError> {
    run_with(sim, cfg, None, |_, eligible_procs, _| {
        rng.below(eligible_procs.len())
    })
}

/// [`run_round_robin`] with crash injection: after each scheduled step the
/// given [`FaultPlan`] may crash the stepped process (see
/// [`crate::Sim::crash`]). A crashed process's in-progress passage is
/// abandoned and re-run — the quota counts *completed* passages.
///
/// # Errors
/// See [`RunError`].
pub fn run_round_robin_with_faults(
    sim: &mut Sim,
    cfg: &RunConfig,
    plan: &FaultPlan,
) -> Result<RunReport, RunError> {
    run_with(sim, cfg, Some(plan), |_, eligible_procs, turn| {
        (turn as usize) % eligible_procs.len()
    })
}

/// [`run_random`] with crash injection; see
/// [`run_round_robin_with_faults`].
///
/// # Errors
/// See [`RunError`].
pub fn run_random_with_faults(
    sim: &mut Sim,
    rng: &mut Prng,
    cfg: &RunConfig,
    plan: &FaultPlan,
) -> Result<RunReport, RunError> {
    run_with(sim, cfg, Some(plan), |_, eligible_procs, _| {
        rng.below(eligible_procs.len())
    })
}

/// The shared runner loop. `pick` returns an *index* into the eligible
/// slice (kept sorted by process id).
///
/// The eligible set and the per-process completion counts are maintained
/// incrementally: stepping process `p` can only change `p`'s own poll
/// state and passage count, so each iteration updates one entry instead
/// of rebuilding an `eligible` vector and recomputing every `done[i]`
/// from the stats — the runners allocate nothing per step.
fn run_with(
    sim: &mut Sim,
    cfg: &RunConfig,
    plan: Option<&FaultPlan>,
    mut pick: impl FnMut(&Sim, &[ProcId], u64) -> usize,
) -> Result<RunReport, RunError> {
    let n = sim.n_procs();
    let base: Vec<u64> = (0..n).map(|i| sim.stats(ProcId(i)).passages).collect();
    let mut faults = plan
        .filter(|p| !p.is_empty())
        .map(|p| FaultDriver::new(p, n));
    let mut done = vec![0u64; n];
    let mut steps = 0u64;
    let mut crashes = 0u64;
    let mut crash_alls = 0u64;
    let mut since_progress = 0u64;
    let mut turn = 0u64;
    let stall_after = effective_stall_after(cfg);
    // Eligibility is absorbing within a run: a process leaves the set only
    // by reaching its remainder section with its quota met, and the runner
    // never steps it again after that. (A crash preserves this: it resets
    // its victim to the remainder section *mid-passage*, i.e. with its
    // quota still unmet, so the victim stays eligible.)
    let mut eligible_procs: Vec<ProcId> = (0..n)
        .map(ProcId)
        .filter(|&p| eligible(sim, p, &done, cfg.passages_per_proc))
        .collect();

    loop {
        if eligible_procs.is_empty() {
            return Ok(RunReport {
                steps,
                completed: done,
                crashes,
                crash_alls,
            });
        }
        if steps >= cfg.max_steps {
            return Err(RunError::StepBudgetExhausted { completed: done });
        }
        if since_progress >= stall_after {
            return Err(RunError::Stalled {
                steps,
                spinners: blocked_spinners(sim),
                in_recovery: sim.proc_ids().any(|p| sim.is_recovering(p)),
            });
        }

        let idx = pick(sim, &eligible_procs, turn);
        let p = eligible_procs[idx];
        turn += 1;
        let before = sim.stats(p).passages;
        sim.step(p);
        steps += 1;
        sim.check_mutual_exclusion()?;
        let after = sim.stats(p).passages;
        if after > before {
            since_progress = 0;
            done[p.0] = after - base[p.0];
        } else {
            since_progress += 1;
        }
        if let Some(driver) = &mut faults {
            driver.note_step(p);
            if driver.fire_due(sim, p).is_some() {
                crashes += 1;
            }
            if driver.fire_crash_all_due(sim).is_some() {
                crash_alls += 1;
            }
        }
        if !eligible(sim, p, &done, cfg.passages_per_proc) {
            eligible_procs.remove(idx);
        }
    }
}

/// Step only process `p` until `until(sim)` holds, up to `max_steps`.
///
/// Returns the number of steps taken, or `None` if the budget was exhausted
/// before the predicate held. This is the building block for the paper's
/// "runs solo" execution fragments (e.g. `E_3`, where `W_1` enters the CS
/// alone).
pub fn run_solo(
    sim: &mut Sim,
    p: ProcId,
    max_steps: u64,
    mut until: impl FnMut(&Sim) -> bool,
) -> Option<u64> {
    let mut steps = 0;
    while !until(sim) {
        if steps >= max_steps {
            return None;
        }
        sim.step(p);
        steps += 1;
    }
    Some(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Protocol;
    use crate::layout::Layout;
    use crate::memory::Memory;
    use crate::op::Op;
    use crate::program::{Phase, Program, Role};
    use crate::trace::StepKind;
    use crate::value::{Value, VarId};
    use std::hash::Hasher;

    /// A client that performs one read in entry and one in exit.
    #[derive(Clone)]
    struct ReadClient {
        v: VarId,
        pc: u8,
    }

    impl Program for ReadClient {
        fn poll(&self) -> Step {
            match self.pc {
                0 => Step::Remainder,
                1 => Step::Op(Op::Read(self.v)),
                2 => Step::Cs,
                3 => Step::Op(Op::Read(self.v)),
                _ => unreachable!(),
            }
        }
        fn resume(&mut self, _: Value) {
            self.pc = (self.pc + 1) % 4;
        }
        fn phase(&self) -> Phase {
            [Phase::Remainder, Phase::Entry, Phase::Cs, Phase::Exit][self.pc as usize]
        }
        fn role(&self) -> Role {
            Role::Reader
        }
        fn on_crash(&mut self) {
            self.pc = 0;
        }
        fn fingerprint(&self, h: &mut dyn Hasher) {
            h.write_u8(self.pc);
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    /// A client that spins forever in its entry section (never enters CS).
    #[derive(Clone)]
    struct Spinner {
        v: VarId,
        started: bool,
    }

    impl Program for Spinner {
        fn poll(&self) -> Step {
            if self.started {
                Step::Op(Op::Read(self.v))
            } else {
                Step::Remainder
            }
        }
        fn resume(&mut self, _: Value) {
            self.started = true;
        }
        fn phase(&self) -> Phase {
            if self.started {
                Phase::Entry
            } else {
                Phase::Remainder
            }
        }
        fn role(&self) -> Role {
            Role::Reader
        }
        fn on_crash(&mut self) {
            self.started = false;
        }
        fn fingerprint(&self, h: &mut dyn Hasher) {
            h.write_u8(self.started as u8);
        }
        fn clone_box(&self) -> Box<dyn Program> {
            Box::new(self.clone())
        }
    }

    fn read_world(n: usize) -> Sim {
        let mut l = Layout::new();
        let v = l.var("x", Value::Int(0));
        let mem = Memory::new(&l, n, Protocol::WriteBack);
        let procs: Vec<Box<dyn Program>> = (0..n)
            .map(|_| Box::new(ReadClient { v, pc: 0 }) as Box<dyn Program>)
            .collect();
        Sim::new(mem, procs)
    }

    #[test]
    fn round_robin_completes_quotas() {
        let mut sim = read_world(3);
        let cfg = RunConfig {
            passages_per_proc: 5,
            ..Default::default()
        };
        let report = run_round_robin(&mut sim, &cfg).unwrap();
        assert_eq!(report.completed, vec![5, 5, 5]);
    }

    #[test]
    fn random_completes_quotas() {
        let mut sim = read_world(4);
        let mut rng = Prng::new(42);
        let cfg = RunConfig {
            passages_per_proc: 3,
            ..Default::default()
        };
        let report = run_random(&mut sim, &mut rng, &cfg).unwrap();
        assert_eq!(report.completed, vec![3, 3, 3, 3]);
    }

    #[test]
    fn stall_detection_fires_on_livelock_and_names_spinners() {
        let mut l = Layout::new();
        let v = l.var("x", Value::Int(0));
        let mem = Memory::new(&l, 2, Protocol::WriteBack);
        let mut sim = Sim::new(
            mem,
            vec![
                Box::new(Spinner { v, started: false }),
                Box::new(Spinner { v, started: false }),
            ],
        );
        let cfg = RunConfig {
            passages_per_proc: 1,
            max_steps: 10_000,
            stall_after: 100,
        };
        match run_round_robin(&mut sim, &cfg) {
            Err(err @ RunError::Stalled { .. }) => {
                let RunError::Stalled { ref spinners, .. } = err else {
                    unreachable!()
                };
                assert_eq!(
                    spinners.as_slice(),
                    &[(ProcId(0), v), (ProcId(1), v)],
                    "the watchdog must name every blocked spinner"
                );
                let msg = err.to_string();
                assert!(msg.contains("p0 on v0"), "got: {msg}");
                assert!(msg.contains("p1 on v0"), "got: {msg}");
            }
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn planned_crash_fires_and_passage_is_rerun() {
        let mut sim = read_world(1);
        // Crash p0 right after its second step (the entry read): the
        // passage is abandoned and re-run from the remainder section.
        let plan = FaultPlan::crash_after(ProcId(0), 2);
        let cfg = RunConfig {
            passages_per_proc: 2,
            ..Default::default()
        };
        let report = run_round_robin_with_faults(&mut sim, &cfg, &plan).unwrap();
        assert_eq!(report.crashes, 1);
        assert_eq!(report.completed, vec![2], "quota counts completed passages");
        assert_eq!(sim.stats(ProcId(0)).crashes, 1);
        assert!(sim.stats(ProcId(0)).recovery_ops > 0);
    }

    #[test]
    fn avoid_cs_defers_crash_until_exit() {
        // After its second step a ReadClient sits in the CS; with the
        // default avoid_cs policy the due crash must wait for the step
        // that leaves the CS.
        let mut sim = read_world(1);
        let plan = FaultPlan::crash_after(ProcId(0), 2);
        let cfg = RunConfig::default();
        let report = run_round_robin_with_faults(&mut sim, &cfg, &plan).unwrap();
        assert_eq!(report.crashes, 1);
        let t = {
            let mut sim2 = read_world(1);
            sim2.set_tracing(true);
            run_round_robin_with_faults(&mut sim2, &cfg, &plan).unwrap();
            sim2.take_trace().unwrap()
        };
        let crash_rec = t
            .iter()
            .find(|r| matches!(r.kind, StepKind::Crash))
            .expect("a crash must be recorded");
        assert_eq!(crash_rec.phase, Phase::Exit, "deferred past the CS");
    }

    #[test]
    fn crash_in_cs_allowed_when_policy_permits() {
        let mut sim = read_world(1);
        sim.set_tracing(true);
        let plan = FaultPlan::crash_after(ProcId(0), 2).allow_crash_in_cs(true);
        run_round_robin_with_faults(&mut sim, &RunConfig::default(), &plan).unwrap();
        let t = sim.take_trace().unwrap();
        let crash_rec = t
            .iter()
            .find(|r| matches!(r.kind, StepKind::Crash))
            .unwrap();
        assert_eq!(crash_rec.phase, Phase::Cs);
    }

    #[test]
    fn empty_plan_matches_plain_runner() {
        let mut a = read_world(3);
        let mut b = read_world(3);
        let cfg = RunConfig {
            passages_per_proc: 4,
            ..Default::default()
        };
        let ra = run_round_robin(&mut a, &cfg).unwrap();
        let rb = run_round_robin_with_faults(&mut b, &cfg, &FaultPlan::none()).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn run_solo_reaches_predicate() {
        let mut sim = read_world(2);
        let steps = run_solo(&mut sim, ProcId(0), 100, |s| {
            s.phase(ProcId(0)) == Phase::Cs
        })
        .unwrap();
        assert_eq!(steps, 2, "begin passage + one entry read");
        assert_eq!(sim.phase(ProcId(1)), Phase::Remainder, "others untouched");
    }

    #[test]
    fn run_solo_budget_exhaustion_returns_none() {
        let mut sim = read_world(1);
        assert_eq!(run_solo(&mut sim, ProcId(0), 3, |_| false), None);
    }

    #[test]
    fn planned_crash_all_fires_once_and_is_reported() {
        let mut sim = read_world(3);
        sim.set_tracing(true);
        // Due after the run's 4th total step; with avoid_cs it defers
        // until no process occupies the CS.
        let plan = FaultPlan::none().with_crash_all(4);
        let cfg = RunConfig {
            passages_per_proc: 2,
            ..Default::default()
        };
        let report = run_round_robin_with_faults(&mut sim, &cfg, &plan).unwrap();
        assert_eq!(report.crash_alls, 1);
        assert_eq!(report.crashes, 0);
        assert_eq!(report.completed, vec![2, 2, 2]);
        for i in 0..3 {
            assert_eq!(sim.stats(ProcId(i)).crashes, 1, "p{i} hit by crash-all");
        }
        let t = sim.take_trace().unwrap();
        assert_eq!(
            t.iter()
                .filter(|r| matches!(r.kind, StepKind::CrashAll))
                .count(),
            1,
            "one system-wide crash, one record"
        );
    }

    #[test]
    fn crash_all_defers_while_any_process_occupies_cs() {
        let mut sim = read_world(2);
        sim.set_tracing(true);
        // Step 2 puts p0 in the CS under round-robin... drive manually:
        // park p0 in the CS, then run with a crash-all due immediately.
        run_solo(&mut sim, ProcId(0), 10, |s| s.phase(ProcId(0)) == Phase::Cs).unwrap();
        let mut driver = FaultDriver::new(&FaultPlan::none().with_crash_all(0), 2);
        assert!(
            driver.fire_crash_all_due(&mut sim).is_none(),
            "due crash-all must wait for the CS to empty"
        );
        run_solo(&mut sim, ProcId(0), 10, |s| {
            s.phase(ProcId(0)) == Phase::Remainder
        })
        .unwrap();
        assert!(driver.fire_crash_all_due(&mut sim).is_some());
        assert!(driver.is_done());
    }

    #[test]
    fn stall_diagnostic_reports_recovery_window() {
        let mut l = Layout::new();
        let v = l.var("x", Value::Int(0));
        let mem = Memory::new(&l, 1, Protocol::WriteBack);
        let mut sim = Sim::new(mem, vec![Box::new(Spinner { v, started: false })]);
        let cfg = RunConfig {
            passages_per_proc: 1,
            max_steps: 10_000,
            stall_after: 50,
        };
        // Without a crash: the stall is not in a recovery window.
        match run_round_robin(&mut sim.clone_world(), &cfg) {
            Err(RunError::Stalled { in_recovery, .. }) => {
                assert!(!in_recovery);
            }
            other => panic!("expected stall, got {other:?}"),
        }
        // Crash the spinner first: the ensuing stall is inside recovery,
        // and the diagnostic says so.
        sim.crash(ProcId(0));
        match run_round_robin(&mut sim, &cfg) {
            Err(err @ RunError::Stalled { .. }) => {
                let RunError::Stalled { in_recovery, .. } = err else {
                    unreachable!()
                };
                assert!(in_recovery, "the spinner never completed a passage");
                assert!(err.to_string().contains("inside a recovery window"));
            }
            other => panic!("expected stall, got {other:?}"),
        }
    }

    #[test]
    fn parse_stall_after_is_strict() {
        assert_eq!(parse_stall_after(None), Ok(None));
        assert_eq!(parse_stall_after(Some("1")), Ok(Some(1)));
        assert_eq!(parse_stall_after(Some("200000")), Ok(Some(200_000)));
        for bad in ["0", "", " 5", "5 ", "+5", "-1", "0x10", "1e3", "five"] {
            let err = parse_stall_after(Some(bad))
                .expect_err(&format!("{bad:?} must be rejected, not defaulted"));
            assert!(err.contains(STALL_AFTER_ENV), "diagnostic names the var");
        }
    }

    #[test]
    fn second_run_quota_is_relative() {
        let mut sim = read_world(1);
        let cfg = RunConfig {
            passages_per_proc: 2,
            ..Default::default()
        };
        run_round_robin(&mut sim, &cfg).unwrap();
        let report = run_round_robin(&mut sim, &cfg).unwrap();
        assert_eq!(report.completed, vec![2], "quota counts from run start");
        assert_eq!(sim.stats(ProcId(0)).passages, 4);
    }
}
