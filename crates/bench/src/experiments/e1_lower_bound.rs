//! E1 — Theorem 5 / Figure 1: the lower-bound adversary against `A_f`.
//!
//! Reproduces the paper's central construction: all readers enter the CS,
//! exit under knowledge-throttled scheduling, then one writer enters. For
//! each `(n, f)` the table reports the iteration count `r` against the
//! predicted `log₃(n/f)`, the Lemma-2 growth bound, the worst per-reader
//! expanding-step count, and the Lemma-4 awareness check.

use super::prelude::*;
use ccsim::Protocol as P;
use knowledge::{run_lower_bound, AdversarySetup};
use rwcore::af_world;

/// Registry entry for the Theorem-5 lower-bound construction.
pub(crate) struct E1;

impl Experiment for E1 {
    fn id(&self) -> &'static str {
        "e1_lower_bound"
    }

    fn title(&self) -> &'static str {
        "lower-bound adversary against A_f (write-back CC)"
    }

    fn claim(&self) -> &'static str {
        "Theorem 5 / Figure 1: r = Θ(log₃(n/f)); Lemma 2 (M ≤ 3^j) and Lemma 4 (writer awareness) hold"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let (ns, policies): (&[usize], &[FPolicy]) = if ctx.smoke() {
            (&[8, 16], &[FPolicy::One, FPolicy::LogN])
        } else {
            (
                &[8, 16, 32, 64, 128, 256, 512, 1024],
                &[FPolicy::One, FPolicy::LogN, FPolicy::SqrtN],
            )
        };
        let configs: Vec<(usize, FPolicy)> = ns
            .iter()
            .flat_map(|&n| policies.iter().map(move |&p| (n, p)))
            .collect();
        let results = par_map(&configs, |&(n, policy)| {
            let cfg = AfConfig {
                readers: n,
                writers: 1,
                policy,
            };
            let mut world = af_world(cfg, P::WriteBack);
            let setup =
                AdversarySetup::new(world.pids.reader_pids().collect(), world.pids.writer(0));
            let lb = run_lower_bound(&mut world.sim, &setup)
                .unwrap_or_else(|e| panic!("n={n} {policy}: {e}"));
            (cfg, lb)
        });

        let mut table = Table::new([
            "n",
            "f policy",
            "groups",
            "r (iters)",
            "log3(n/f)",
            "max expand/reader",
            "reader exit RMR",
            "writer entry RMR",
            "M<=3^j",
            "Lemma 4",
        ]);
        let (mut lemma2_ok, mut lemma4_ok, mut expand_charged) = (0usize, 0usize, 0usize);
        for ((n, policy), (cfg, lb)) in configs.iter().zip(&results) {
            let predicted = log3(*n as f64 / cfg.occupied_groups() as f64);
            lemma2_ok += lb.lemma2_bound_held as usize;
            lemma4_ok += lb.writer_aware_of_all as usize;
            expand_charged += (lb.max_reader_exit_rmrs >= lb.max_reader_expanding) as usize;
            table.row([
                n.to_string(),
                policy.to_string(),
                cfg.occupied_groups().to_string(),
                lb.iterations.to_string(),
                format!("{predicted:.2}"),
                lb.max_reader_expanding.to_string(),
                lb.max_reader_exit_rmrs.to_string(),
                lb.writer_entry_rmrs.to_string(),
                if lb.lemma2_bound_held {
                    "ok"
                } else {
                    "VIOLATED"
                }
                .to_string(),
                if lb.writer_aware_of_all {
                    "ok"
                } else {
                    "VIOLATED"
                }
                .to_string(),
            ]);
        }

        let total = configs.len();
        let mut report = Report::new(self, ctx);
        report
            .section("construction per (n, f)", table)
            .check(Check::all(
                "Lemma 2: round population M_j <= 3^j throughout",
                lemma2_ok,
                total,
            ))
            .check(Check::all(
                "Lemma 4: writer ends aware of all n readers",
                lemma4_ok,
                total,
            ))
            .check(Check::all(
                "every expanding step is charged an RMR (exit RMR >= max expand)",
                expand_charged,
                total,
            ))
            .notes(
                "Expected shape: r grows with log3(n/f) at matching slope; every\n\
                 expanding step costs an RMR (exit RMR >= max expand); M_j <= 3^j\n\
                 (Lemma 2) and the writer ends aware of all n readers (Lemma 4).",
            );
        report
    }
}
