//! Strict env-knob parsing for the bench crate — a facade over
//! [`ccsim::env`], where the shared implementation lives (the sched
//! layer needs it too and cannot depend on bench).
//!
//! Until this module existed, `BENCH_THREADS`, `BENCH_MODELCHECK_SYMMETRY`,
//! `CCSIM_STALL_AFTER`, and the report/floor override sites each carried
//! their own copy of the parse-or-abort logic, and they disagreed on
//! empty strings: some treated `FOO=` as unset, others aborted. Now every
//! knob goes through [`parse_strict`]/[`parse_strict_uint`]/
//! [`read_nonempty`] and the discipline is uniform — unset means
//! default, anything else parses exactly or the process aborts with a
//! diagnostic naming the variable, and an empty string is a malformed
//! value, never an unset one.

pub use ccsim::env::{parse_strict, parse_strict_uint, raw_var, read_nonempty, read_strict_uint};

#[cfg(test)]
mod tests {
    use super::*;

    // The shared implementation carries its own unit tests in
    // `ccsim::env`; these pin the facade's semantics at the bench knobs'
    // call shapes.

    #[test]
    fn empty_string_is_malformed_not_unset() {
        assert!(parse_strict_uint("BENCH_THREADS", Some(""), false).is_err());
        assert!(parse_strict("BENCH_MODELCHECK_SYMMETRY", Some(""), |s| {
            s.parse::<modelcheck::Symmetry>()
        })
        .is_err());
    }

    #[test]
    fn symmetry_values_parse_through_the_generic_helper() {
        use modelcheck::Symmetry;
        let parse = |raw| parse_strict("BENCH_MODELCHECK_SYMMETRY", raw, str::parse::<Symmetry>);
        assert_eq!(parse(None), Ok(None));
        assert_eq!(parse(Some("quotient")), Ok(Some(Symmetry::Quotient)));
        let err = parse(Some("Quotient")).unwrap_err();
        assert!(err.starts_with("BENCH_MODELCHECK_SYMMETRY: "), "{err}");
        assert!(err.contains("bad symmetry mode"), "{err}");
    }

    #[test]
    fn out_path_overrides_reject_empty_values() {
        // `read_nonempty` is the one helper behind every *_OUT override;
        // its full behavior (including the empty-string panic) is tested
        // in ccsim. Here: the default flows through when unset.
        assert_eq!(
            read_nonempty("BENCH_ENV_TEST_SURELY_UNSET_1137", "BENCH_locks.json"),
            "BENCH_locks.json"
        );
    }
}
