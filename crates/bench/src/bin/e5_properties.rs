//! E5 — Theorem 18: mechanical validation of the lock's properties.
//!
//! Exhaustively model-checks small `A_f` instances for Mutual Exclusion
//! (every reachable interleaving), reproduces the HelpWCS read-order
//! counterexample against the paper-literal variant, and stress-tests
//! larger instances under randomized schedules (Deadlock Freedom /
//! starvation signals would surface as stalls).

use bench::Table;
use ccsim::{run_random, Prng, Protocol, RunConfig};
use modelcheck::{explore, CheckConfig};
use rwcore::{af_world, af_world_with_order, AfConfig, FPolicy, HelpOrder};

fn main() {
    let mut table = Table::new(["check", "config", "result", "detail"]);

    // Exhaustive mutual-exclusion checks.
    for (n, m, q, policy) in [
        (2usize, 1usize, 1u64, FPolicy::One),
        (2, 1, 1, FPolicy::Linear),
        (2, 2, 1, FPolicy::One),
        (3, 1, 1, FPolicy::One),
        (3, 1, 1, FPolicy::Groups(2)),
        (2, 1, 2, FPolicy::One),
    ] {
        let cfg = AfConfig {
            readers: n,
            writers: m,
            policy,
        };
        let t0 = std::time::Instant::now();
        match explore(
            || af_world(cfg, Protocol::WriteBack).sim,
            &CheckConfig {
                passages_per_proc: q,
                max_states: 200_000_000,
                ..Default::default()
            },
        ) {
            Ok(r) => table.row([
                "exhaustive MX".to_string(),
                format!("n={n} m={m} q={q} {policy}"),
                if r.complete {
                    "SAFE (complete)"
                } else {
                    "SAFE (capped)"
                }
                .to_string(),
                format!("{} states in {:?}", r.states_explored, t0.elapsed()),
            ]),
            Err(e) => table.row([
                "exhaustive MX".to_string(),
                format!("n={n} m={m} q={q} {policy}"),
                "VIOLATION".to_string(),
                e.to_string(),
            ]),
        };
    }

    // The reproduction finding: the paper-literal HelpWCS order violates MX.
    let cfg = AfConfig {
        readers: 3,
        writers: 1,
        policy: FPolicy::One,
    };
    let t0 = std::time::Instant::now();
    match explore(
        || af_world_with_order(cfg, Protocol::WriteBack, HelpOrder::PaperLiteral).sim,
        &CheckConfig {
            passages_per_proc: 1,
            max_states: 200_000_000,
            ..Default::default()
        },
    ) {
        Err(e) => table.row([
            "paper-literal HelpWCS".to_string(),
            "n=3 m=1 q=1 f=1".to_string(),
            "VIOLATION FOUND (expected)".to_string(),
            format!(
                "schedule length {} in {:?}",
                e.schedule().len(),
                t0.elapsed()
            ),
        ]),
        Ok(r) => table.row([
            "paper-literal HelpWCS".to_string(),
            "n=3 m=1 q=1 f=1".to_string(),
            "UNEXPECTEDLY SAFE".to_string(),
            format!("{} states", r.states_explored),
        ]),
    };

    // Randomized stress at larger scales (liveness: stalls would error).
    for (n, m, policy) in [
        (8usize, 2usize, FPolicy::LogN),
        (16, 4, FPolicy::SqrtN),
        (32, 2, FPolicy::One),
    ] {
        let cfg = AfConfig {
            readers: n,
            writers: m,
            policy,
        };
        let mut failures = 0;
        let seeds = 50;
        for seed in 0..seeds {
            let mut world = af_world(cfg, Protocol::WriteBack);
            let mut rng = Prng::new(seed);
            let rc = RunConfig {
                passages_per_proc: 5,
                ..Default::default()
            };
            if run_random(&mut world.sim, &mut rng, &rc).is_err() {
                failures += 1;
            }
        }
        table.row([
            "random stress".to_string(),
            format!("n={n} m={m} {policy}"),
            if failures == 0 {
                "SAFE + LIVE"
            } else {
                "FAILURES"
            }
            .to_string(),
            format!("{seeds} seeds x 5 passages/proc, {failures} failures"),
        ]);
    }

    println!("E5 — Theorem 18 property validation\n");
    table.print();
    println!(
        "\nThe paper-literal row demonstrates the reproduction finding: the\n\
         extended abstract's HelpWCS (read C[i] then W[i], line 51) admits\n\
         a mutual-exclusion violation; this library reads W[i] first (see\n\
         DESIGN.md, 'Reproduction findings')."
    );
}
