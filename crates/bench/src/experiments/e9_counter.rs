//! E9 — the f-array substrate: `add` takes `Θ(log K)` steps and `read`
//! takes `O(1)` steps (the complexities the paper imports from Jayanti
//! \[15\] as adapted to CAS \[14\]).

use super::prelude::*;
use ccsim::{Layout, Memory, ProcId, SubMachine, SubStep};
use fcounter::SimCounter;

/// Drive a sub-machine to completion; return `(steps, rmrs)`.
fn drive(mem: &mut Memory, p: ProcId, m: &mut dyn SubMachine) -> (u64, u64) {
    let (mut steps, mut rmrs) = (0, 0);
    while let SubStep::Op(op) = m.poll() {
        let out = mem.apply(p, &op);
        steps += 1;
        if out.rmr {
            rmrs += 1;
        }
        m.resume(out.response);
    }
    (steps, rmrs)
}

/// `(solo add steps, worst contended add steps, read steps)` for one K.
fn measure(k: usize) -> (u64, u64, u64) {
    // Cold solo add.
    let mut layout = Layout::new();
    let c = SimCounter::allocate(&mut layout, "C", k);
    let mut mem = Memory::new(&layout, k, Protocol::WriteBack);
    let mut h0 = c.handle(0);
    let (solo_steps, _) = drive(&mut mem, ProcId(0), &mut h0.add(1));

    // Contended adds: every process adds once, interleaved round-robin
    // one step at a time; report the worst per-process step count.
    let mut layout = Layout::new();
    let c = SimCounter::allocate(&mut layout, "C", k);
    let mut mem = Memory::new(&layout, k, Protocol::WriteBack);
    let mut machines: Vec<_> = (0..k).map(|i| c.handle(i).add(1)).collect();
    let mut steps = vec![0u64; k];
    let mut live = true;
    while live {
        live = false;
        for (i, m) in machines.iter_mut().enumerate() {
            if let SubStep::Op(op) = m.poll() {
                let out = mem.apply(ProcId(i), &op);
                m.resume(out.response);
                steps[i] += 1;
                live = true;
            }
        }
    }
    assert_eq!(c.peek(&mem), k as i64, "all adds must land");
    let contended = *steps.iter().max().unwrap();

    // Read cost.
    let mut r = c.read();
    let (read_steps, _) = drive(&mut mem, ProcId(0), &mut r);
    (solo_steps, contended, read_steps)
}

/// Registry entry for the f-array step-complexity measurement.
pub(crate) struct E9;

impl Experiment for E9 {
    fn id(&self) -> &'static str {
        "e9_counter"
    }

    fn title(&self) -> &'static str {
        "f-array counter step complexity"
    }

    fn claim(&self) -> &'static str {
        "f-array (Jayanti [15]/[14]): add is Θ(log K) steps wait-free, read is O(1)"
    }

    fn run(&self, ctx: &Ctx) -> Report {
        let ks: &[usize] = if ctx.smoke() {
            &[2, 8, 32]
        } else {
            &[2, 4, 8, 16, 32, 64, 128, 256, 512]
        };
        let samples = par_map(ks, |&k| measure(k));

        let mut table = Table::new([
            "K",
            "depth",
            "add steps (cold)",
            "add steps (contended)",
            "add/log2K",
            "read steps",
        ]);
        let (mut reads_const, mut contended_bounded) = (0usize, 0usize);
        let mut worst_ratio = 0f64;
        for (&k, &(solo, contended, read)) in ks.iter().zip(&samples) {
            let depth = (k.next_power_of_two()).trailing_zeros();
            let ratio = solo as f64 / log2(k.max(2) as f64);
            worst_ratio = worst_ratio.max(ratio);
            reads_const += usize::from(read == 1);
            // At most 2 refresh rounds per level under full interleaving.
            contended_bounded += usize::from(contended <= 2 * solo);
            table.row([
                k.to_string(),
                depth.to_string(),
                solo.to_string(),
                contended.to_string(),
                format!("{ratio:.1}"),
                read.to_string(),
            ]);
        }

        let mut report = Report::new(self, ctx);
        report
            .section("step counts per fan-in K (write-back CC)", table)
            .check(Check::le_f64(
                "cold add steps/log2(K) stays a small constant",
                worst_ratio,
                5.5,
            ))
            .check(Check::all(
                "read is exactly 1 step at every K",
                reads_const,
                ks.len(),
            ))
            .check(Check::all(
                "contended add stays within 2 refresh rounds per level (<= 2x cold)",
                contended_bounded,
                ks.len(),
            ))
            .notes(
                "Expected shape: add steps/log2(K) stays near a constant (each\n\
                 level costs one 4-step refresh, at most doubled on CAS failure);\n\
                 read is always exactly 1 step. The contended column shows the\n\
                 wait-free bound holds under full interleaving: at most 2 refresh\n\
                 rounds per level regardless of contention.",
            );
        report
    }
}
